"""Tests for CSV export of experiment series."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.export import export_experiment, read_csv_series, series_to_csv
from repro.sim.monitor import TimeSeries


def make_series(pairs):
    ts = TimeSeries("t")
    for t, v in pairs:
        ts.add(t, v)
    return ts


def test_series_roundtrip(tmp_path):
    series = make_series([(0.0, 1.5), (0.2, 2.5), (0.4, 3.25)])
    path = series_to_csv(series, tmp_path / "s.csv")
    pairs = read_csv_series(path)
    assert pairs == [(0.0, 1.5), (0.2, 2.5), (0.4, 3.25)]


def test_nan_becomes_empty_cell(tmp_path):
    series = make_series([(0.0, 1.0), (0.2, float("nan"))])
    path = series_to_csv(series, tmp_path / "s.csv")
    text = path.read_text()
    assert text.splitlines()[2].endswith(",")
    pairs = read_csv_series(path)
    assert math.isnan(pairs[1][1])


def test_header_names(tmp_path):
    series = make_series([(0.0, 1.0)])
    path = series_to_csv(series, tmp_path / "s.csv", value_header="rtt_s")
    assert path.read_text().splitlines()[0] == "time_s,rtt_s"


def test_export_experiment_writes_all_series(tmp_path):
    from repro import PATH_UMTS, run_characterization, voip_g711

    result = run_characterization(voip_g711(duration=2.0), path=PATH_UMTS, seed=71)
    written = export_experiment(result, tmp_path / "out", prefix="fig_")
    names = sorted(p.name for p in written)
    assert names == [
        "fig_bitrate_kbps.csv",
        "fig_jitter_s.csv",
        "fig_loss_pkt.csv",
        "fig_rab_grade_bps.csv",
        "fig_rtt_s.csv",
    ]
    bitrate = read_csv_series(tmp_path / "out" / "fig_bitrate_kbps.csv")
    assert len(bitrate) > 5
    total = sum(v for _, v in bitrate if v == v)
    assert total > 0


def test_export_ethernet_has_no_rab(tmp_path):
    from repro import PATH_ETHERNET, run_characterization, voip_g711

    result = run_characterization(voip_g711(duration=2.0), path=PATH_ETHERNET, seed=72)
    written = export_experiment(result, tmp_path)
    assert not any("rab" in p.name for p in written)
    assert len(written) == 4


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1000),
            st.floats(min_value=-1e9, max_value=1e9),
        ),
        min_size=0,
        max_size=50,
    )
)
@settings(max_examples=40)
def test_roundtrip_property(tmp_path_factory, pairs):
    tmp = tmp_path_factory.mktemp("csv")
    pairs = sorted(pairs, key=lambda p: p[0])
    series = make_series(pairs)
    path = series_to_csv(series, tmp / "s.csv")
    out = read_csv_series(path)
    assert len(out) == len(pairs)
    for (t0, v0), (t1, v1) in zip(pairs, out):
        assert t1 == pytest.approx(t0, abs=1e-6)
        assert v1 == pytest.approx(v0, rel=1e-6)
