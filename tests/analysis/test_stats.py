"""Unit and property tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    confidence_interval_95,
    mean,
    median,
    percentile,
    stdev,
)


def test_mean_skips_nan():
    assert mean([1.0, float("nan"), 3.0]) == 2.0


def test_mean_empty_is_nan():
    assert math.isnan(mean([]))
    assert math.isnan(mean([float("nan")]))


def test_stdev_basic():
    assert stdev([2.0, 4.0]) == pytest.approx(1.0)


def test_stdev_single_is_nan():
    assert math.isnan(stdev([1.0]))


def test_percentile_endpoints():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0


def test_percentile_interpolates():
    assert percentile([0.0, 10.0], 50) == 5.0
    assert percentile([0.0, 10.0], 25) == 2.5


def test_percentile_single_value():
    assert percentile([7.0], 99) == 7.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([1.0], -1)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_median_odd_even():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([1.0, 2.0, 3.0, 4.0]) == 2.5


def test_confidence_interval_contains_mean():
    values = [10.0, 11.0, 9.0, 10.5, 9.5]
    low, high = confidence_interval_95(values)
    assert low < mean(values) < high


def test_confidence_interval_needs_two():
    low, high = confidence_interval_95([1.0])
    assert math.isnan(low) and math.isnan(high)


def test_ci_narrows_with_more_samples():
    tight = confidence_interval_95([10.0, 10.1] * 50)
    loose = confidence_interval_95([10.0, 10.1] * 2)
    assert (tight[1] - tight[0]) < (loose[1] - loose[0])


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
@settings(max_examples=50)
def test_percentile_monotone_property(values):
    p25 = percentile(values, 25)
    p50 = percentile(values, 50)
    p75 = percentile(values, 75)
    assert p25 <= p50 <= p75


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
@settings(max_examples=50)
def test_mean_within_range_property(values):
    mu = mean(values)
    assert min(values) - 1e-9 <= mu <= max(values) + 1e-9


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=2, max_size=50))
@settings(max_examples=50)
def test_percentile_bounds_property(values):
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)
