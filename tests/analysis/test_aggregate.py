"""Tests for repetition-summary aggregation."""


import pytest

from repro.analysis.aggregate import (
    AGGREGATED_METRICS,
    aggregate_report,
    aggregate_summaries,
)
from repro.traffic.decoder import FlowSummary


def make_summary(bitrate=72.0, rtt=0.2, loss=0.0):
    return FlowSummary(
        packets_sent=1000,
        packets_received=int(1000 * (1 - loss)),
        packets_lost=int(1000 * loss),
        loss_fraction=loss,
        mean_bitrate_kbps=bitrate,
        mean_owd=rtt / 2,
        max_owd=rtt,
        mean_jitter=0.01,
        max_jitter=0.05,
        mean_rtt=rtt,
        max_rtt=rtt * 2,
        duration=120.0,
    )


def test_aggregate_covers_all_metrics():
    aggregates = aggregate_summaries([make_summary(), make_summary()])
    assert sorted(aggregates) == sorted(AGGREGATED_METRICS)


def test_aggregate_mean_and_bounds():
    summaries = [make_summary(bitrate=70.0), make_summary(bitrate=74.0)]
    agg = aggregate_summaries(summaries)["mean_bitrate_kbps"]
    assert agg.mean == pytest.approx(72.0)
    assert agg.minimum == 70.0
    assert agg.maximum == 74.0
    assert agg.runs == 2
    assert agg.ci_low < 72.0 < agg.ci_high


def test_aggregate_empty_rejected():
    with pytest.raises(ValueError):
        aggregate_summaries([])


def test_aggregate_constant_metric_zero_spread():
    summaries = [make_summary() for _ in range(5)]
    agg = aggregate_summaries(summaries)["mean_rtt"]
    assert agg.stdev == pytest.approx(0.0)
    assert agg.ci_low == pytest.approx(agg.ci_high)


def test_report_lines():
    lines = aggregate_report([make_summary(), make_summary(bitrate=73.0)])
    assert lines[0].startswith("metric")
    assert len(lines) == 1 + len(AGGREGATED_METRICS)
    assert any("mean_bitrate_kbps" in line for line in lines)


def test_real_repetitions_aggregate():
    from repro import PATH_ETHERNET, run_repetitions, voip_g711

    summaries = run_repetitions(
        lambda: voip_g711(duration=2.0),
        path=PATH_ETHERNET,
        repetitions=3,
        base_seed=500,
    )
    agg = aggregate_summaries(summaries)
    assert agg["loss_fraction"].maximum == 0.0
    assert agg["mean_bitrate_kbps"].mean == pytest.approx(72.0, rel=0.1)


def test_sniffer_save(tmp_path):
    from repro.net.interface import EthernetInterface
    from repro.net.link import Link
    from repro.net.sniffer import Sniffer
    from repro.net.stack import IPStack
    from repro.sim.engine import Simulator

    sim = Simulator()
    a = IPStack(sim, "a")
    b = IPStack(sim, "b")
    a_eth = a.add_interface(EthernetInterface("eth0"))
    b_eth = b.add_interface(EthernetInterface("eth0"))
    a.configure_interface(a_eth, "10.0.0.1", 24)
    b.configure_interface(b_eth, "10.0.0.2", 24)
    Link(sim, a_eth, b_eth)
    sniffer = Sniffer(sim)
    sniffer.attach(a_eth, directions="tx")
    server = b.socket()
    server.bind(port=9)
    a.socket().sendto("x", 10, "10.0.0.2", 9)
    sim.run(until=1.0)
    out = tmp_path / "capture.txt"
    sniffer.save(out)
    assert "10.0.0.2:9" in out.read_text()
