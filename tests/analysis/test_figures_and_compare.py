"""Tests for terminal figures and path comparison."""

import math

import pytest

from repro.analysis.compare import compare_paths, report_lines
from repro.analysis.figures import render_series_table, sparkline
from repro.sim.monitor import TimeSeries


def make_series(values, step=0.2):
    ts = TimeSeries("s")
    for i, v in enumerate(values):
        ts.add(i * step, v)
    return ts


def test_sparkline_empty():
    assert sparkline(TimeSeries()) == "(no samples)"


def test_sparkline_all_nan():
    assert sparkline(make_series([float("nan")] * 3)) == "(no samples)"


def test_sparkline_monotone_values_monotone_density():
    line = sparkline(make_series([0.0, 5.0, 10.0]))
    assert len(line) == 3
    assert line[0] == " "  # zero renders as the lowest block
    blocks = " .:-=+*#%@"
    assert blocks.index(line[2]) > blocks.index(line[1])


def test_sparkline_nan_renders_space():
    line = sparkline(make_series([1.0, float("nan"), 1.0]))
    assert line[1] == " "


def test_sparkline_downsamples_long_series():
    line = sparkline(make_series([1.0] * 500), width=50)
    assert len(line) <= 51


def test_sparkline_shared_scale():
    high = sparkline(make_series([10.0]), scale=10.0)
    low = sparkline(make_series([1.0]), scale=10.0)
    blocks = " .:-=+*#%@"
    assert blocks.index(high) > blocks.index(low)


def test_render_series_table():
    a = make_series([10.0] * 100)  # 0..20 s
    b = make_series([20.0] * 100)
    lines = render_series_table([("A", a), ("B", b)], step=10.0)
    assert "A" in lines[0] and "B" in lines[0]
    assert "10.00" in lines[1] and "20.00" in lines[1]
    assert len(lines) == 1 + 2  # header + rows at 0 and 10 (last sample 19.8s)


def test_render_series_table_empty():
    assert render_series_table([]) == []


def test_render_table_empty_window_dash():
    a = TimeSeries()
    a.add(0.0, 5.0)
    a.add(25.0, 5.0)
    lines = render_series_table([("A", a)], step=10.0)
    assert any(line.strip().endswith("-") for line in lines)


class FakeResult:
    """Quacks like ExperimentResult for compare_paths."""

    def __init__(self, bitrate, jitter, rtt, lost, series_values):
        from repro.traffic.decoder import FlowSummary

        self.summary = FlowSummary(
            packets_sent=100,
            packets_received=100 - lost,
            packets_lost=lost,
            loss_fraction=lost / 100,
            mean_bitrate_kbps=bitrate,
            mean_owd=0.01,
            max_owd=0.02,
            mean_jitter=jitter,
            max_jitter=jitter * 3,
            mean_rtt=rtt,
            max_rtt=rtt * 3,
            duration=10.0,
        )
        self._series = make_series(series_values)

    def bitrate_kbps(self):
        return self._series


def test_compare_paths_ratios():
    umts = FakeResult(72.0, 0.010, 0.220, 0, [60, 80, 70, 75])
    eth = FakeResult(72.0, 0.0002, 0.019, 0, [72, 72, 72, 72])
    cmp = compare_paths(umts, eth, "umts", "eth")
    assert cmp.bitrate_ratio == pytest.approx(1.0)
    assert cmp.jitter_ratio == pytest.approx(50.0)
    assert cmp.rtt_ratio == pytest.approx(0.220 / 0.019)
    assert cmp.loss_a == 0 and cmp.loss_b == 0
    assert cmp.bitrate_fluctuation_ratio > 5.0


def test_compare_paths_zero_denominator():
    a = FakeResult(72.0, 0.01, 0.2, 0, [72.0, 73.0])
    b = FakeResult(72.0, 0.0, 0.2, 0, [72.0, 72.0])
    cmp = compare_paths(a, b)
    assert math.isinf(cmp.jitter_ratio)


def test_report_lines_format():
    umts = FakeResult(72.0, 0.010, 0.220, 0, [60, 80])
    eth = FakeResult(72.0, 0.0002, 0.019, 2, [72, 72])
    lines = report_lines(compare_paths(umts, eth, "umts", "eth"))
    assert lines[0] == "umts vs eth:"
    assert any("0 vs 2 packets" in line for line in lines)
