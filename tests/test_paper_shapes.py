"""Fast sanity checks of the headline paper shapes.

The full 120 s reproductions live in benchmarks/; these 20-30 s
versions run with the plain test suite so a bare ``pytest tests/``
already validates that the model produces the paper's qualitative
results, not just that the machinery holds together.
"""

import pytest

from repro import PATH_ETHERNET, PATH_UMTS, cbr, run_characterization, voip_g711
from repro.umts.rab import RabConfig
from repro.umts.operator import commercial_operator


@pytest.fixture(scope="module")
def voip_pair():
    return (
        run_characterization(voip_g711(duration=20.0), path=PATH_UMTS, seed=3),
        run_characterization(voip_g711(duration=20.0), path=PATH_ETHERNET, seed=3),
    )


def test_voip_meets_72kbps_on_both_paths(voip_pair):
    umts, ethernet = voip_pair
    assert umts.summary.mean_bitrate_kbps == pytest.approx(72.0, rel=0.08)
    assert ethernet.summary.mean_bitrate_kbps == pytest.approx(72.0, rel=0.03)


def test_voip_zero_loss_on_both_paths(voip_pair):
    umts, ethernet = voip_pair
    assert umts.summary.packets_lost == 0
    assert ethernet.summary.packets_lost == 0


def test_voip_umts_jitter_and_rtt_dominate(voip_pair):
    umts, ethernet = voip_pair
    assert umts.summary.mean_jitter > 10 * ethernet.summary.mean_jitter
    assert umts.summary.mean_rtt > 5 * ethernet.summary.mean_rtt
    assert ethernet.summary.mean_rtt < 0.03


def test_saturation_plateau_at_initial_grade():
    # With a fast-upgrading config the plateau/upgrade shape shows in 30 s.
    def quick_operator(sim, streams):
        return commercial_operator(
            sim, streams, rab_config=RabConfig(sustain_time=10.0, grant_delay=2.0)
        )

    result = run_characterization(
        cbr(duration=30.0), path=PATH_UMTS, seed=3, operator_factory=quick_operator
    )
    bitrate = result.bitrate_kbps()
    early = bitrate.between(2.0, 10.0).mean()
    late = bitrate.between(18.0, 28.0).mean()
    assert 110.0 < early < 180.0  # the ~150 kbit/s plateau
    assert late > 2.0 * early  # "more than doubled"
    assert result.summary.max_rtt > 1.5  # seconds-deep RLC queueing
    assert result.summary.loss_fraction > 0.5


def test_ethernet_carries_the_megabit():
    result = run_characterization(cbr(duration=15.0), path=PATH_ETHERNET, seed=3)
    assert result.summary.mean_bitrate_kbps == pytest.approx(1000.0, rel=0.03)
    assert result.summary.packets_lost == 0
