"""Smoke tests: every shipped example runs end-to-end.

Each example is executed as a subprocess (shortened durations where it
accepts one) and its output is checked for the landmark lines a reader
is promised.
"""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=180):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "$ umts start" in out
    assert "pppd: ppp0 up" in out
    assert "UMTS (ppp0)" in out
    assert "Ethernet (eth0)" in out
    assert "rules deleted, interface unlocked" in out


def test_voip_characterization():
    out = run_example("voip_characterization.py", "20")
    assert "Figure 1 - bitrate" in out
    assert "Figure 2 - jitter" in out
    assert "Figure 3 - RTT" in out
    assert "(both ~72)" in out
    assert "(both 0)" in out


def test_uplink_saturation():
    out = run_example("uplink_saturation.py", "70")
    assert "RAB grade timeline" in out
    assert "144 kbit/s" in out
    assert "384 kbit/s" in out
    assert "UMTS-to-Ethernet" in out
    assert "Ethernet-to-Ethernet" in out


def test_slice_isolation_demo():
    out = run_example("slice_isolation_demo.py")
    assert "denied: slice 'rival_exp'" in out
    assert "locked by slice 'unina_umts'" in out
    assert "filter/OUTPUT drops: 2" in out
    assert "1 acquisitions, 1 contentions" in out


def test_multi_operator_comparison():
    out = run_example("multi_operator_comparison.py", "60")
    assert "commercial" in out
    assert "private micro-cell" in out
    assert "blocked" in out and "open" in out


def test_background_traffic_study():
    out = run_example("background_traffic_study.py", "25", timeout=300)
    assert "call OK" in out
    assert "degraded" in out or "unusable" in out
    assert "0 kb" in out and "128 kb" in out


def test_presence_heartbeat():
    out = run_example("presence_heartbeat.py")
    assert "-> ONLINE" in out
    assert "-> OFFLINE" in out
    assert "Offline detected" in out
    assert "redial -> exit 0" in out


def test_regenerate_harness(tmp_path):
    """The standalone figure-regeneration script produces all CSVs."""
    result = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES.parent / "benchmarks" / "regenerate.py"),
            "--out",
            str(tmp_path),
            "--duration",
            "10",
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    names = {p.name for p in tmp_path.iterdir()}
    for workload in ("voip", "sat"):
        for path in ("umts", "ethernet"):
            for series in ("bitrate_kbps", "jitter_s", "loss_pkt", "rtt_s"):
                assert f"{workload}_{path}_{series}.csv" in names
    assert "sat_umts_rab_grade_bps.csv" in names
    assert "summary.txt" in names
    assert "shape checkpoints" in (tmp_path / "summary.txt").read_text()
