"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "pppd: ppp0 up" in out
    assert "locked by: unina_umts" in out
    assert "demo complete" in out


def test_trace_command(capsys):
    assert main(["trace"]) == 0
    out = capsys.readouterr().out
    assert "trace:" in out
    for phase in ("dial.register", "dial.dial", "ppp.lcp.negotiation",
                  "ppp.ipcp.negotiation", "dial.addr_assigned",
                  "vsys.request", "umts.cmd"):
        assert phase in out, f"missing {phase} in trace output"
    assert "metrics:" in out
    assert "vsys.requests: 4" in out
    assert "flight recorder dump" not in out


def test_trace_fail_dumps_flight_recorder(capsys):
    assert main(["trace", "--fail"]) == 1
    out = capsys.readouterr().out
    assert "dial.dial.failed" in out
    assert "flight recorder dump" in out


def test_trace_jsonl_export(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    assert main(["trace", "--jsonl", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"trace exported to {path}" in out
    lines = path.read_text().splitlines()
    assert lines
    record = json.loads(lines[0])
    assert {"seq", "t", "kind", "name"} <= set(record)


def test_voip_command(capsys):
    assert main(["--seed", "5", "voip", "--duration", "5"]) == 0
    out = capsys.readouterr().out
    assert "UMTS-to-Ethernet" in out
    assert "Ethernet-to-Ethernet" in out
    assert "jitter ratio" in out
    assert "0 vs 0 packets" in out


def test_saturation_command(capsys):
    assert main(["saturation", "--duration", "10"]) == 0
    out = capsys.readouterr().out
    assert "RAB grades" in out
    assert "144k@0s" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["fly"])
