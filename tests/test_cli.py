"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "pppd: ppp0 up" in out
    assert "locked by: unina_umts" in out
    assert "demo complete" in out


def test_trace_command(capsys):
    assert main(["trace"]) == 0
    out = capsys.readouterr().out
    assert "trace:" in out
    for phase in ("dial.register", "dial.dial", "ppp.lcp.negotiation",
                  "ppp.ipcp.negotiation", "dial.addr_assigned",
                  "vsys.request", "umts.cmd"):
        assert phase in out, f"missing {phase} in trace output"
    assert "metrics:" in out
    assert "vsys.requests: 4" in out
    assert "flight recorder dump" not in out


def test_trace_fail_dumps_flight_recorder(capsys):
    assert main(["trace", "--fail"]) == 1
    out = capsys.readouterr().out
    assert "dial.dial.failed" in out
    assert "flight recorder dump" in out


def test_trace_jsonl_export(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    assert main(["trace", "--jsonl", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"trace exported to {path}" in out
    lines = path.read_text().splitlines()
    assert lines
    record = json.loads(lines[0])
    assert {"seq", "t", "kind", "name"} <= set(record)


def test_trace_last_bounds_the_printed_ring(capsys):
    assert main(["trace", "--last", "5"]) == 0
    out = capsys.readouterr().out
    assert "trace: last 5 of" in out
    # Early bring-up events must have been evicted from the ring.
    assert "dial.register" not in out
    assert "metrics:" in out


def test_trace_last_rejects_nonpositive(capsys):
    assert main(["trace", "--last", "0"]) == 2
    assert "--last must be positive" in capsys.readouterr().err


def test_report_run_mode(capsys):
    assert main(["report"]) == 0
    out = capsys.readouterr().out
    assert "run report: seed=3" in out
    assert "critical path: vsys.request > umts.cmd > umts.connect" in out
    assert "by subsystem" in out
    assert "by process" in out
    assert "metrics:" in out


def test_report_openmetrics_double_run_is_byte_identical(tmp_path):
    first, second = tmp_path / "a.om", tmp_path / "b.om"
    assert main(["report", "--openmetrics", str(first)]) == 0
    assert main(["report", "--openmetrics", str(second)]) == 0
    data = first.read_bytes()
    assert data == second.read_bytes()
    assert data.startswith(b"# TYPE repro_")
    assert data.endswith(b"# EOF\n")
    assert b"wall" not in data  # volatile families excluded by default


def test_report_openmetrics_to_stdout(capsys):
    assert main(["report", "--openmetrics"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("# TYPE repro_")
    assert out.endswith("# EOF\n")
    assert "run report" not in out  # exposition only, nothing mixed in


def test_report_jsonl_records(tmp_path):
    path = tmp_path / "report.jsonl"
    assert main(["report", "--jsonl", str(path)]) == 0
    records = [json.loads(line) for line in path.read_text().splitlines()]
    kinds = [record["record"] for record in records]
    assert kinds.count("profile") == 1
    assert kinds.count("metrics") == 1
    assert kinds.count("phase") > 5
    phases = {r["phase"] for r in records if r["record"] == "phase"}
    assert "umts.connect" in phases
    assert any(r["critical"] for r in records if r["record"] == "phase")
    (metrics,) = [r for r in records if r["record"] == "metrics"]
    assert "engine.events_dispatched" in metrics["metrics"]
    assert "engine.dispatch_wall_seconds" not in metrics["metrics"]


def test_report_campaign_openmetrics_identical_across_workers(tmp_path):
    serial, pooled = tmp_path / "j1.om", tmp_path / "j2.om"
    base = ["report", "--campaign", "sweep", "--seeds", "1:2",
            "--duration", "5", "--no-cache"]
    assert main(base + ["-j", "1", "--openmetrics", str(serial)]) == 0
    assert main(base + ["-j", "2", "--openmetrics", str(pooled)]) == 0
    data = serial.read_bytes()
    assert data == pooled.read_bytes()
    assert b"repro_traffic_packets_sent_total" in data


def test_report_campaign_human_summary(capsys):
    assert main(["report", "--campaign", "sweep", "--seeds", "1",
                 "--duration", "5", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "sweep campaign: 1 job(s)" in out
    assert "traffic.packets_sent" in out


def test_report_rejects_bad_seed_spec(capsys):
    assert main(["report", "--campaign", "sweep", "--seeds", "9:1"]) == 2
    assert "bad seed range" in capsys.readouterr().err


def test_voip_command(capsys):
    assert main(["--seed", "5", "voip", "--duration", "5"]) == 0
    out = capsys.readouterr().out
    assert "UMTS-to-Ethernet" in out
    assert "Ethernet-to-Ethernet" in out
    assert "jitter ratio" in out
    assert "0 vs 0 packets" in out


def test_saturation_command(capsys):
    assert main(["saturation", "--duration", "10"]) == 0
    out = capsys.readouterr().out
    assert "RAB grades" in out
    assert "144k@0s" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["fly"])


def test_bench_list(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ("engine", "hdlc_encode", "hdlc_decode",
                 "voip_characterization", "cbr_characterization", "vsys_rpc"):
        assert name in out


def test_bench_rejects_unknown_scenario(capsys):
    assert main(["bench", "--scenario", "warp_drive"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario" in err


def test_bench_update_then_check_roundtrip(tmp_path, capsys):
    root = str(tmp_path)
    args = ["bench", "--scenario", "hdlc_encode", "--repeats", "2",
            "--warmup", "0", "--root", root]
    assert main(args + ["--update-baselines"]) == 0
    baseline = tmp_path / "BENCH_hdlc_encode.json"
    assert baseline.exists()
    payload = json.loads(baseline.read_text())
    assert payload["scenario"] == "hdlc_encode"
    assert payload["result"]["repeats"] == 2
    assert payload["reference"]["pre_pr_median_s"] > 0
    capsys.readouterr()
    # A generous tolerance scale must pass against the just-written baseline.
    assert main(args + ["--check", "--tolerance-scale", "100"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "1/1 scenarios pass" in out


def test_bench_check_flags_regression(tmp_path, capsys):
    root = str(tmp_path)
    args = ["bench", "--scenario", "hdlc_decode", "--repeats", "1",
            "--warmup", "0", "--root", root]
    assert main(args + ["--update-baselines"]) == 0
    baseline = tmp_path / "BENCH_hdlc_decode.json"
    payload = json.loads(baseline.read_text())
    # Shrink the recorded median so any fresh run looks like a regression.
    payload["result"]["median_s"] = payload["result"]["median_s"] / 1e6
    baseline.write_text(json.dumps(payload))
    capsys.readouterr()
    assert main(args + ["--check"]) == 1
    out = capsys.readouterr().out
    assert "REGRESS" in out


def test_bench_check_missing_baseline_fails(tmp_path, capsys):
    assert main(["bench", "--scenario", "hdlc_encode", "--repeats", "1",
                 "--warmup", "0", "--root", str(tmp_path), "--check"]) == 1
    out = capsys.readouterr().out
    assert "MISSING" in out


def test_bench_output_dir_writes_fresh_results(tmp_path):
    out_dir = tmp_path / "fresh"
    assert main(["bench", "--scenario", "hdlc_encode", "--repeats", "1",
                 "--warmup", "0", "--output-dir", str(out_dir)]) == 0
    assert (out_dir / "BENCH_hdlc_encode.json").exists()


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("wall-clock", "unseeded-random", "direct-rng", "set-iteration",
                 "id-ordering", "fsm-exhaustive", "fsm-policy-override",
                 "untyped-def"):
        assert rule in out


def test_lint_clean_tree_exits_zero(capsys):
    # Default target is the installed repro package; it must be clean.
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "lint: 0 finding(s)" in out


def test_lint_findings_exit_one(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\n\ndef f() -> float:\n    return time.time()\n")
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "wall-clock" in out
    assert "lint: 1 finding(s)" in out


def test_lint_unknown_rule_exits_two(capsys):
    assert main(["lint", "--rule", "warp-drive"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err


def test_lint_rule_filter(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\n\ndef f() -> float:\n    return time.time()\n")
    # Filtering to an unrelated rule must not report the wall-clock read.
    assert main(["lint", "--rule", "id-ordering", str(bad)]) == 0
    capsys.readouterr()
    assert main(["lint", "--rule", "wall-clock", str(bad)]) == 1


def test_lint_jsonl_export(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n\n\ndef f() -> float:\n    return random.random()\n")
    report = tmp_path / "lint.jsonl"
    assert main(["lint", "--jsonl", str(report), str(bad)]) == 1
    records = [json.loads(line) for line in report.read_text().splitlines()]
    assert len(records) == 1
    assert records[0]["rule"] == "unseeded-random"
    assert records[0]["line"] == 5
    assert records[0]["severity"] == "error"


def test_lint_jsonl_stdout(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n\n\ndef f() -> float:\n    return random.random()\n")
    # --jsonl without a path streams to stdout (the option must come
    # after the positional so argparse doesn't swallow it as the path).
    assert main(["lint", str(bad), "--jsonl"]) == 1
    out = capsys.readouterr().out
    record = json.loads(out.splitlines()[0])
    assert record["rule"] == "unseeded-random"


def test_lint_unknown_rule_lists_the_known_ones(capsys):
    assert main(["lint", "--rule", "warp-drive"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule 'warp-drive'" in err
    assert "available:" in err
    assert "resource-lifecycle" in err
    assert "lease-protocol" in err


def _leaky_tree(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "hot.py").write_text(
        "import time\n\n\ndef stamp() -> float:\n    return time.time()\n"
    )
    (tree / "leak.py").write_text(
        "class C:\n"
        "    def f(self, trace: object, fast: bool) -> int:\n"
        "        span = trace.span('umts.cmd')\n"
        "        if fast:\n"
        "            return 1\n"
        "        span.end()\n"
        "        return 0\n"
    )
    return tree


def test_lint_sharded_report_is_byte_identical(tmp_path, capsys):
    tree = _leaky_tree(tmp_path)
    sequential = tmp_path / "j1.jsonl"
    sharded = tmp_path / "j2.jsonl"
    assert main(["lint", "-j", "1", "--no-cache",
                 "--jsonl", str(sequential), str(tree)]) == 1
    capsys.readouterr()
    assert main(["lint", "-j", "2", "--no-cache",
                 "--jsonl", str(sharded), str(tree)]) == 1
    out = capsys.readouterr().out
    assert sequential.read_bytes() == sharded.read_bytes()
    assert "campaign: 2 file(s) across 2 worker(s)" in out


def test_lint_cache_warms_across_runs(tmp_path, capsys):
    tree = _leaky_tree(tmp_path)
    cache_dir = tmp_path / "cache"
    argv = ["lint", "--cache-dir", str(cache_dir), "--cache-stats", str(tree)]
    assert main(argv) == 1
    cold = capsys.readouterr().out
    assert "misses=2" in cold and "stores=2" in cold
    assert main(argv) == 1
    warm = capsys.readouterr().out
    assert "hits=2" in warm
    assert "lint: 2 finding(s)" in warm


def test_lint_overlapping_paths_count_once(tmp_path, capsys):
    tree = _leaky_tree(tmp_path)
    assert main(["lint", "--no-cache", str(tree), str(tree / "hot.py")]) == 1
    out = capsys.readouterr().out
    assert "lint: 2 finding(s)" in out
