"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "pppd: ppp0 up" in out
    assert "locked by: unina_umts" in out
    assert "demo complete" in out


def test_voip_command(capsys):
    assert main(["--seed", "5", "voip", "--duration", "5"]) == 0
    out = capsys.readouterr().out
    assert "UMTS-to-Ethernet" in out
    assert "Ethernet-to-Ethernet" in out
    assert "jitter ratio" in out
    assert "0 vs 0 packets" in out


def test_saturation_command(capsys):
    assert main(["saturation", "--duration", "10"]) == 0
    out = capsys.readouterr().out
    assert "RAB grades" in out
    assert "144k@0s" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["fly"])
