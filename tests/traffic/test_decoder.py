"""Unit and property tests for ITGDec."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.decoder import ItgDecoder
from repro.traffic.records import (
    ReceiverLog,
    RecvRecord,
    RttRecord,
    SenderLog,
    SentRecord,
)


def build_logs(sent, received, rtts=()):
    """sent: [(seq, size, t)], received: [(seq, size, sent_at, recv_at)]."""
    s = SenderLog(1)
    for seq, size, t in sent:
        s.sent.append(SentRecord(seq, size, t))
    r = ReceiverLog(1)
    for seq, size, st_, rt in received:
        r.add(RecvRecord(seq, size, st_, rt))
    for seq, rtt, done in rtts:
        s.rtt.append(RttRecord(seq, rtt, done))
    return s, r


def test_flow_id_mismatch_rejected():
    s = SenderLog(1)
    r = ReceiverLog(2)
    with pytest.raises(ValueError):
        ItgDecoder(s, r)


def test_invalid_window_rejected():
    s, r = build_logs([(0, 100, 0.0)], [])
    with pytest.raises(ValueError):
        ItgDecoder(s, r, window=0)


def test_bitrate_series_simple():
    # 5 packets of 1000 B arriving in the first window.
    sent = [(i, 1000, i * 0.01) for i in range(5)]
    received = [(i, 1000, i * 0.01, i * 0.01 + 0.05) for i in range(5)]
    dec = ItgDecoder(*build_logs(sent, received))
    series = dec.bitrate_kbps()
    # 5000 B * 8 / 0.2 s = 200 kbit/s in window 0.
    assert series.values[0] == pytest.approx(200.0)


def test_bitrate_uses_arrival_time():
    sent = [(0, 1000, 0.0)]
    received = [(0, 1000, 0.0, 0.5)]  # delivered in the third window
    dec = ItgDecoder(*build_logs(sent, received))
    series = dec.bitrate_kbps()
    assert series.values[0] == 0.0
    assert series.values[2] == pytest.approx(1000 * 8 / 0.2 / 1000)


def test_owd_series():
    sent = [(i, 100, i * 0.1) for i in range(4)]
    received = [(i, 100, i * 0.1, i * 0.1 + 0.03) for i in range(4)]
    dec = ItgDecoder(*build_logs(sent, received))
    series = dec.owd_series()
    values = [v for v in series.values if not math.isnan(v)]
    assert all(v == pytest.approx(0.03) for v in values)


def test_jitter_series_constant_delay_is_zero():
    sent = [(i, 100, i * 0.01) for i in range(50)]
    received = [(i, 100, i * 0.01, i * 0.01 + 0.05) for i in range(50)]
    dec = ItgDecoder(*build_logs(sent, received))
    series = dec.jitter_series()
    values = [v for v in series.values if not math.isnan(v)]
    assert all(v == pytest.approx(0.0) for v in values)


def test_jitter_series_alternating_delay():
    sent = [(i, 100, i * 0.01) for i in range(40)]
    received = [
        (i, 100, i * 0.01, i * 0.01 + (0.05 if i % 2 else 0.07)) for i in range(40)
    ]
    dec = ItgDecoder(*build_logs(sent, received))
    series = dec.jitter_series()
    values = [v for v in series.values if not math.isnan(v)]
    assert values[0] == pytest.approx(0.02)


def test_loss_series_counts_missing_seqs():
    sent = [(i, 100, i * 0.01) for i in range(40)]  # 0.0 .. 0.39
    received = [(i, 100, i * 0.01, i * 0.01 + 0.01) for i in range(40) if i % 2 == 0]
    dec = ItgDecoder(*build_logs(sent, received))
    series = dec.loss_series()
    # Half of each window's 20 packets lost.
    assert series.values[0] == pytest.approx(10.0)
    assert series.values[1] == pytest.approx(10.0)
    assert sum(series.values) == pytest.approx(20.0)


def test_rtt_series():
    sent = [(i, 100, i * 0.01) for i in range(10)]
    rtts = [(i, 0.2, i * 0.01 + 0.2) for i in range(10)]
    received = [(i, 100, i * 0.01, i * 0.01 + 0.1) for i in range(10)]
    dec = ItgDecoder(*build_logs(sent, received, rtts))
    series = dec.rtt_series()
    assert series.values[0] == pytest.approx(0.2)


def test_origin_is_first_send():
    sent = [(0, 100, 5.0), (1, 100, 5.1)]
    received = [(0, 100, 5.0, 5.05), (1, 100, 5.1, 5.15)]
    dec = ItgDecoder(*build_logs(sent, received))
    assert dec.origin == 5.0
    series = dec.bitrate_kbps()
    assert series.times[0] == 0.0
    assert series.values[0] > 0


def test_summary_totals():
    sent = [(i, 1000, i * 0.01) for i in range(100)]
    received = [(i, 1000, i * 0.01, i * 0.01 + 0.05) for i in range(80)]
    rtts = [(i, 0.1, i * 0.01 + 0.1) for i in range(80)]
    dec = ItgDecoder(*build_logs(sent, received, rtts))
    summary = dec.summary()
    assert summary.packets_sent == 100
    assert summary.packets_received == 80
    assert summary.packets_lost == 20
    assert summary.loss_fraction == pytest.approx(0.2)
    assert summary.mean_owd == pytest.approx(0.05)
    assert summary.mean_rtt == pytest.approx(0.1)
    assert summary.max_rtt == pytest.approx(0.1)


def test_summary_empty_logs():
    dec = ItgDecoder(SenderLog(1), ReceiverLog(1))
    summary = dec.summary()
    assert summary.packets_sent == 0
    assert math.isnan(summary.mean_owd)
    assert math.isnan(summary.loss_fraction)


def test_duplicates_ignored():
    r = ReceiverLog(1)
    r.add(RecvRecord(0, 100, 0.0, 0.1))
    r.add(RecvRecord(0, 100, 0.0, 0.2))
    assert r.packets_received == 1
    assert r.duplicates == 1


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.booleans(),
        ),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=50)
def test_loss_conservation_property(events):
    """sum(loss series) == sent - received, always."""
    events = sorted(events, key=lambda e: e[0])
    s = SenderLog(1)
    r = ReceiverLog(1)
    for seq, (t, arrives) in enumerate(events):
        s.sent.append(SentRecord(seq, 100, t))
        if arrives:
            r.add(RecvRecord(seq, 100, t, t + 0.05))
    dec = ItgDecoder(s, r)
    total_loss = sum(dec.loss_series().values)
    assert total_loss == pytest.approx(s.packets_sent - r.packets_received)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=50)
def test_bitrate_conservation_property(times):
    """sum(bitrate * window) == total bytes delivered * 8."""
    times = sorted(times)
    s = SenderLog(1)
    r = ReceiverLog(1)
    for seq, t in enumerate(times):
        s.sent.append(SentRecord(seq, 500, t))
        r.add(RecvRecord(seq, 500, t, t + 0.01))
    dec = ItgDecoder(s, r)
    series = dec.bitrate_kbps()
    total_bits = sum(v * 0.2 * 1000.0 for v in series.values)
    assert total_bits == pytest.approx(r.bytes_received * 8.0, rel=1e-6)
