"""Integration tests: ITGSend/ITGRecv over a clean link."""

import pytest

from repro.net.interface import EthernetInterface
from repro.net.link import Link
from repro.net.stack import IPStack
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.traffic.flows import cbr, poisson, voip_g711
from repro.traffic.receiver import ItgReceiver
from repro.traffic.sender import ItgSender


def make_pair(sim, rate_bps=100e6, delay=0.005):
    a = IPStack(sim, "a")
    b = IPStack(sim, "b")
    a_eth = a.add_interface(EthernetInterface("eth0"))
    b_eth = b.add_interface(EthernetInterface("eth0"))
    a.configure_interface(a_eth, "10.0.0.1", 24)
    b.configure_interface(b_eth, "10.0.0.2", 24)
    Link(sim, a_eth, b_eth, rate_bps=rate_bps, delay=delay)
    return a, b


def run_flow(spec, seed=0, rate_bps=100e6, delay=0.005):
    sim = Simulator()
    a, b = make_pair(sim, rate_bps=rate_bps, delay=delay)
    receiver = ItgReceiver(sim, b.socket(), port=spec.dport)
    sender = ItgSender(
        sim, a.socket(), "10.0.0.2", spec, RandomStreams(seed).stream("idt")
    )
    sender.start()
    sim.run(until=spec.duration + 30.0)
    return sender, receiver


def test_voip_packet_count():
    spec = voip_g711(duration=10.0)
    sender, receiver = run_flow(spec)
    # 100 pps for 10 s: one packet every 10 ms starting at t=0.
    assert sender.log.packets_sent == pytest.approx(1000, abs=2)
    assert receiver.total_received == sender.log.packets_sent


def test_no_loss_on_clean_link():
    spec = cbr(duration=5.0)
    sender, receiver = run_flow(spec)
    log = receiver.log_for(sender.flow_id)
    assert log.packets_received == sender.log.packets_sent
    assert log.duplicates == 0


def test_rtt_metering_completes():
    spec = voip_g711(duration=5.0)
    sender, receiver = run_flow(spec)
    assert len(sender.log.rtt) == sender.log.packets_sent
    for record in sender.log.rtt:
        assert record.rtt == pytest.approx(0.010, abs=0.005)


def test_owd_mode_sends_no_replies():
    spec = voip_g711(duration=5.0, meter="owd")
    sender, receiver = run_flow(spec)
    assert sender.log.rtt == []
    assert receiver.socket.tx_packets == 0


def test_owd_measured_exactly():
    spec = voip_g711(duration=2.0, meter="owd")
    sender, receiver = run_flow(spec, delay=0.025)
    log = receiver.log_for(sender.flow_id)
    for record in log.received:
        assert record.owd == pytest.approx(0.025, abs=0.002)


def test_poisson_flow_rate_close_to_mean():
    spec = poisson(200.0, packet_size=100, duration=30.0)
    sender, _ = run_flow(spec, seed=3)
    rate = sender.log.packets_sent / 30.0
    assert rate == pytest.approx(200.0, rel=0.1)


def test_sender_stop_aborts_flow():
    sim = Simulator()
    a, b = make_pair(sim)
    spec = voip_g711(duration=100.0)
    receiver = ItgReceiver(sim, b.socket(), port=spec.dport)
    sender = ItgSender(sim, a.socket(), "10.0.0.2", spec, RandomStreams(0).stream("x"))
    sender.start()
    sim.schedule(10.0, sender.stop)
    sim.run(until=200.0)
    assert sender.finished
    assert 900 <= sender.log.packets_sent <= 1100


def test_start_delay():
    sim = Simulator()
    a, b = make_pair(sim)
    spec = voip_g711(duration=1.0)
    ItgReceiver(sim, b.socket(), port=spec.dport)
    sender = ItgSender(sim, a.socket(), "10.0.0.2", spec, RandomStreams(0).stream("x"))
    sender.start(at=5.0)
    sim.run()
    assert sender.log.sent[0].sent_at == pytest.approx(5.0)


def test_send_errors_counted_when_no_route():
    sim = Simulator()
    a = IPStack(sim, "lonely")
    eth = a.add_interface(EthernetInterface("eth0"))
    a.configure_interface(eth, "10.0.0.1", 24)
    spec = voip_g711(duration=1.0)
    sender = ItgSender(sim, a.socket(), "99.99.99.99", spec, RandomStreams(0).stream("x"))
    sender.start()
    sim.run(until=10.0)
    assert sender.log.packets_sent == 0
    assert sender.log.send_errors > 50


def test_two_flows_one_receiver_port():
    sim = Simulator()
    a, b = make_pair(sim)
    receiver = ItgReceiver(sim, b.socket(), port=8999)
    spec1 = voip_g711(duration=5.0)
    spec2 = cbr(duration=5.0)
    s1 = ItgSender(sim, a.socket(), "10.0.0.2", spec1, RandomStreams(0).stream("a"))
    s2 = ItgSender(sim, a.socket(), "10.0.0.2", spec2, RandomStreams(0).stream("b"))
    s1.start()
    s2.start()
    sim.run(until=60.0)
    assert receiver.log_for(s1.flow_id).packets_received == s1.log.packets_sent
    assert receiver.log_for(s2.flow_id).packets_received == s2.log.packets_sent


def test_double_start_rejected():
    sim = Simulator()
    a, b = make_pair(sim)
    spec = voip_g711(duration=1.0)
    sender = ItgSender(sim, a.socket(), "10.0.0.2", spec, RandomStreams(0).stream("x"))
    sender.start()
    with pytest.raises(RuntimeError):
        sender.start()


def test_loss_on_congested_link():
    # 1 Mbit/s offered into a 144 kbit/s link with a small queue.
    spec = cbr(duration=10.0, meter="owd")
    sender, receiver = run_flow(spec, rate_bps=144_000.0)
    log = receiver.log_for(sender.flow_id)
    # The link can carry ~17 pps; the rest is queued (bounded by the
    # 256 kB default queue) or dropped.
    sent = sender.log.packets_sent
    assert log.packets_received < 0.5 * sent
    max_deliverable = 17.2 * 10.0 + 256_000 / 1052
    assert log.packets_received <= max_deliverable + 2
