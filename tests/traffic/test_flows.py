"""Unit tests for flow specifications."""

import pytest

from repro.traffic.flows import (
    FlowSpec,
    cbr,
    exponential_onoff,
    poisson,
    telnet_like,
    voip_g711,
)
from repro.sim.rng import ConstantVariate


def test_voip_spec_is_the_papers():
    spec = voip_g711()
    assert spec.expected_packet_rate() == pytest.approx(100.0)
    assert spec.expected_bitrate() == pytest.approx(72_000.0)
    assert spec.duration == 120.0
    assert spec.meter == "rtt"


def test_cbr_default_is_the_papers_1mbps():
    spec = cbr()
    assert spec.expected_packet_rate() == pytest.approx(122.07, rel=0.01)
    assert spec.expected_bitrate() == pytest.approx(1_000_000.0)
    assert spec.ps.mean() == 1024


def test_cbr_custom_rate():
    spec = cbr(rate_bps=500_000.0, packet_size=500)
    assert spec.expected_bitrate() == pytest.approx(500_000.0)
    assert spec.expected_packet_rate() == pytest.approx(125.0)


def test_poisson_rate():
    spec = poisson(50.0, packet_size=100)
    assert spec.expected_packet_rate() == pytest.approx(50.0)


def test_telnet_like_valid():
    spec = telnet_like()
    assert spec.meter == "owd"
    assert spec.expected_packet_rate() > 0


def test_exponential_onoff_rate():
    spec = exponential_onoff(256_000.0, packet_size=512)
    assert spec.expected_bitrate() == pytest.approx(256_000.0)


def test_invalid_specs_rejected():
    with pytest.raises(ValueError):
        FlowSpec(ConstantVariate(0.01), ConstantVariate(100), duration=0)
    with pytest.raises(ValueError):
        FlowSpec(ConstantVariate(0.01), ConstantVariate(100), meter="telepathy")
    with pytest.raises(ValueError):
        cbr(rate_bps=0)
    with pytest.raises(ValueError):
        poisson(0)
