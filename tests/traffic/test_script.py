"""Tests for D-ITG script mode (the ITGSend flag language)."""

import pytest

from repro.net.interface import EthernetInterface
from repro.net.link import Link
from repro.net.stack import IPStack
from repro.sim.engine import Simulator
from repro.sim.rng import (
    ConstantVariate,
    ExponentialVariate,
    NormalVariate,
    RandomStreams,
    UniformVariate,
)
from repro.traffic.receiver import ItgReceiver
from repro.traffic.script import (
    ItgScriptRunner,
    ScriptError,
    parse_script,
    parse_script_line,
)


def test_parse_papers_voip_line():
    flow = parse_script_line("-a 138.96.250.100 -rp 8999 -C 100 -c 90 -t 120000 -m rttm")
    assert flow.destination == "138.96.250.100"
    assert flow.spec.dport == 8999
    assert flow.spec.duration == 120.0
    assert flow.spec.meter == "rtt"
    assert isinstance(flow.spec.idt, ConstantVariate)
    assert flow.spec.expected_packet_rate() == pytest.approx(100.0)
    assert flow.spec.ps.mean() == 90


def test_parse_exponential_and_uniform():
    flow = parse_script_line("-a 10.0.0.2 -E 50 -u 64 512 -t 10000")
    assert isinstance(flow.spec.idt, ExponentialVariate)
    assert isinstance(flow.spec.ps, UniformVariate)
    assert flow.spec.idt.mean() == pytest.approx(0.02)
    assert flow.spec.meter == "owd"


def test_parse_poisson_alias():
    flow = parse_script_line("-a 10.0.0.2 -O 25")
    assert isinstance(flow.spec.idt, ExponentialVariate)
    assert flow.spec.expected_packet_rate() == pytest.approx(25.0)


def test_parse_normal_ps_clamped():
    flow = parse_script_line("-a 10.0.0.2 -C 10 -n 512 128")
    assert isinstance(flow.spec.ps, NormalVariate)
    assert flow.spec.ps.low == 8
    assert flow.spec.ps.high == 1472


def test_parse_start_delay():
    flow = parse_script_line("-a 10.0.0.2 -C 10 -d 5000")
    assert flow.start_delay == 5.0


def test_defaults_match_ditg():
    flow = parse_script_line("-a 10.0.0.2")
    assert flow.spec.expected_packet_rate() == pytest.approx(1000.0)
    assert flow.spec.ps.mean() == 512


def test_blank_and_comment_lines_skipped():
    flows = parse_script(
        """
        # the paper's VoIP flow
        -a 10.0.0.2 -C 100 -c 90 -t 5000

        -a 10.0.0.2 -rp 9001 -C 10 -c 100 -t 5000
        """
    )
    assert len(flows) == 2


def test_missing_destination_rejected():
    with pytest.raises(ScriptError):
        parse_script_line("-C 100 -c 90")


def test_missing_operand_rejected():
    with pytest.raises(ScriptError):
        parse_script_line("-a 10.0.0.2 -u 64")


def test_unknown_flag_rejected():
    with pytest.raises(ScriptError):
        parse_script_line("-a 10.0.0.2 -Z 5")


def test_unknown_meter_rejected():
    with pytest.raises(ScriptError):
        parse_script_line("-a 10.0.0.2 -m telepathy")


def test_empty_script_rejected():
    sim = Simulator()
    stack = IPStack(sim, "a")
    with pytest.raises(ScriptError):
        ItgScriptRunner(sim, stack.socket, RandomStreams(0), "# nothing\n")


def test_runner_generates_multiple_flows():
    sim = Simulator()
    a = IPStack(sim, "a")
    b = IPStack(sim, "b")
    a_eth = a.add_interface(EthernetInterface("eth0"))
    b_eth = b.add_interface(EthernetInterface("eth0"))
    a.configure_interface(a_eth, "10.0.0.1", 24)
    b.configure_interface(b_eth, "10.0.0.2", 24)
    Link(sim, a_eth, b_eth)
    recv_a = ItgReceiver(sim, b.socket(), port=8999)
    recv_b = ItgReceiver(sim, b.socket(), port=9001)
    runner = ItgScriptRunner(
        sim,
        a.socket,
        RandomStreams(4),
        """
        -a 10.0.0.2 -rp 8999 -C 100 -c 90 -t 5000 -m rttm
        -a 10.0.0.2 -rp 9001 -E 50 -u 64 512 -t 5000 -d 1000
        """,
    )
    runner.start()
    sim.run(until=30.0)
    assert runner.finished
    voip_sender, noise_sender = runner.senders
    assert voip_sender.log.packets_sent == pytest.approx(500, abs=2)
    assert len(voip_sender.log.rtt) == voip_sender.log.packets_sent
    assert (
        recv_a.log_for(voip_sender.flow_id).packets_received
        == voip_sender.log.packets_sent
    )
    assert recv_b.log_for(noise_sender.flow_id).packets_received > 100
    # The -d 1000 delay held the second flow back by a second.
    assert noise_sender.log.sent[0].sent_at == pytest.approx(1.0, abs=0.1)
