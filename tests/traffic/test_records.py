"""Unit tests for packet logs and probe payloads."""

import pytest

from repro.traffic.records import (
    ProbePayload,
    ReceiverLog,
    RecvRecord,
    SenderLog,
    SentRecord,
)


def test_probe_payload_defaults():
    probe = ProbePayload(1, 7)
    assert probe.kind == "probe"
    assert probe.meter == "owd"
    assert "flow=1" in repr(probe) and "seq=7" in repr(probe)


def test_recv_record_owd():
    record = RecvRecord(0, 100, 1.0, 1.25)
    assert record.owd == pytest.approx(0.25)


def test_sender_log_totals():
    log = SenderLog(1)
    log.sent.append(SentRecord(0, 100, 0.0))
    log.sent.append(SentRecord(1, 200, 0.1))
    assert log.packets_sent == 2
    assert log.bytes_sent == 300


def test_receiver_log_dedup_and_totals():
    log = ReceiverLog(1)
    log.add(RecvRecord(0, 100, 0.0, 0.1))
    log.add(RecvRecord(1, 100, 0.1, 0.2))
    log.add(RecvRecord(0, 100, 0.0, 0.3))  # duplicate seq
    assert log.packets_received == 2
    assert log.bytes_received == 200
    assert log.duplicates == 1
    assert log.has_seq(0)
    assert not log.has_seq(99)


def test_fresh_logs_empty():
    assert SenderLog(1).packets_sent == 0
    assert SenderLog(1).bytes_sent == 0
    assert ReceiverLog(1).packets_received == 0
    assert ReceiverLog(1).bytes_received == 0
