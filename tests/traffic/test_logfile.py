"""Tests for packet-log persistence (the offline ITGDec workflow)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.decoder import ItgDecoder
from repro.traffic.logfile import (
    LogFormatError,
    load_receiver_log,
    load_sender_log,
    save_receiver_log,
    save_sender_log,
)
from repro.traffic.records import (
    ReceiverLog,
    RecvRecord,
    RttRecord,
    SenderLog,
    SentRecord,
)


def make_logs():
    sender = SenderLog(7, "voip-g711")
    receiver = ReceiverLog(7, "voip-g711")
    for seq in range(20):
        sender.sent.append(SentRecord(seq, 90, seq * 0.01))
        if seq % 5 != 4:
            receiver.add(RecvRecord(seq, 90, seq * 0.01, seq * 0.01 + 0.1))
            sender.rtt.append(RttRecord(seq, 0.2, seq * 0.01 + 0.2))
    sender.send_errors = 3
    return sender, receiver


def test_sender_roundtrip(tmp_path):
    sender, _ = make_logs()
    path = save_sender_log(sender, tmp_path / "send.log")
    loaded = load_sender_log(path)
    assert loaded.flow_id == 7
    assert loaded.name == "voip-g711"
    assert loaded.sent == sender.sent
    assert loaded.rtt == sender.rtt
    assert loaded.send_errors == 3


def test_receiver_roundtrip(tmp_path):
    _, receiver = make_logs()
    path = save_receiver_log(receiver, tmp_path / "recv.log")
    loaded = load_receiver_log(path)
    assert loaded.flow_id == 7
    assert loaded.received == receiver.received
    assert loaded.packets_received == receiver.packets_received


def test_offline_decode_matches_online(tmp_path):
    """The §3.1 workflow: save on both nodes, decode the files."""
    sender, receiver = make_logs()
    online = ItgDecoder(sender, receiver).summary()
    save_sender_log(sender, tmp_path / "s.log")
    save_receiver_log(receiver, tmp_path / "r.log")
    offline = ItgDecoder(
        load_sender_log(tmp_path / "s.log"),
        load_receiver_log(tmp_path / "r.log"),
    ).summary()
    assert offline == online


def test_wrong_file_kind_rejected(tmp_path):
    sender, receiver = make_logs()
    save_sender_log(sender, tmp_path / "s.log")
    with pytest.raises(LogFormatError):
        load_receiver_log(tmp_path / "s.log")
    save_receiver_log(receiver, tmp_path / "r.log")
    with pytest.raises(LogFormatError):
        load_sender_log(tmp_path / "r.log")


def test_garbage_rejected(tmp_path):
    bad = tmp_path / "junk.log"
    bad.write_text("hello world\n")
    with pytest.raises(LogFormatError):
        load_sender_log(bad)


def test_bad_record_rejected(tmp_path):
    bad = tmp_path / "bad.log"
    bad.write_text("# itg-sender-log flow=1 name=x\nZ 1 2 3\n")
    with pytest.raises(LogFormatError):
        load_sender_log(bad)


def test_empty_logs_roundtrip(tmp_path):
    sender = SenderLog(1)
    receiver = ReceiverLog(1)
    s = load_sender_log(save_sender_log(sender, tmp_path / "s.log"))
    r = load_receiver_log(save_receiver_log(receiver, tmp_path / "r.log"))
    assert s.packets_sent == 0
    assert r.packets_received == 0


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=8, max_value=1472),
            st.floats(min_value=0, max_value=1000, allow_nan=False),
        ),
        min_size=0,
        max_size=60,
        unique_by=lambda t: t[0],
    )
)
@settings(max_examples=40)
def test_sender_roundtrip_property(tmp_path_factory, records):
    tmp = tmp_path_factory.mktemp("logs")
    sender = SenderLog(2, "prop")
    for seq, size, t in records:
        sender.sent.append(SentRecord(seq, size, t))
    loaded = load_sender_log(save_sender_log(sender, tmp / "s.log"))
    assert len(loaded.sent) == len(sender.sent)
    for original, read in zip(sender.sent, loaded.sent):
        assert read.seq == original.seq
        assert read.size == original.size
        assert read.sent_at == pytest.approx(original.sent_at, abs=1e-8)
