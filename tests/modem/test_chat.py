"""Unit tests for the chat primitive."""


from repro.modem.chat import chat, is_terminal
from repro.modem.serial import SerialPort
from repro.sim.engine import Simulator
from repro.sim.process import spawn


def test_is_terminal_result_codes():
    for line in ("OK", "ERROR", "NO CARRIER", "BUSY", "NO DIALTONE",
                 "CONNECT 384000", "+CME ERROR: SIM PIN required"):
        assert is_terminal(line)
    for line in ("+CREG: 0,1", "+CSQ: 20,0", "GlobeTrotter 3G+", ""):
        assert not is_terminal(line)


def test_chat_collects_info_until_terminal():
    sim = Simulator()
    port = SerialPort(sim)
    result = {}

    def talker():
        result["value"] = yield from chat(port, "AT+CREG?")

    spawn(sim, talker())
    port._modem_write("+CREG: 0,1")
    port._modem_write("OK")
    sim.run()
    assert result["value"] == ("OK", ["+CREG: 0,1"])


def test_chat_skips_echo_and_blank_lines():
    sim = Simulator()
    port = SerialPort(sim)
    result = {}

    def talker():
        result["value"] = yield from chat(port, "AT")

    spawn(sim, talker())
    port._modem_write("AT")  # command echo (ATE1)
    port._modem_write("")
    port._modem_write("OK")
    sim.run()
    assert result["value"] == ("OK", [])


def test_chat_ignores_stray_frames():
    sim = Simulator()
    port = SerialPort(sim)
    result = {}

    from repro.ppp.frame import PPP_LCP, ControlPacket, PPPFrame

    def talker():
        result["value"] = yield from chat(port, "ATH")

    spawn(sim, talker())
    port._modem_write(PPPFrame(PPP_LCP, ControlPacket(5, 1)))
    port._modem_write("OK")
    sim.run()
    assert result["value"] == ("OK", [])


def test_serial_port_counters():
    sim = Simulator()
    port = SerialPort(sim, "ttyUSB1")
    port.write("AT")
    port._modem_write("OK")
    assert port.host_writes == 1
    assert port.modem_writes == 1
    assert port.read_available() == 1
    assert "ttyUSB1" in repr(port)
