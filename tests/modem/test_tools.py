"""Unit tests for comgt and wvdial against a simulated modem."""


from repro.modem.comgt import Comgt
from repro.modem.device import Modem3G
from repro.modem.wvdial import SerialPppTransport, Wvdial
from repro.ppp.frame import PPP_LCP, ControlPacket, PPPFrame
from repro.sim.engine import Simulator
from repro.sim.process import spawn
from repro.sim.rng import RandomStreams

from tests.modem.test_device import FakeNetwork


def run_tool(sim, generator):
    """Run a tool generator as a process to completion."""
    holder = {}

    def wrapper():
        holder["result"] = yield from generator

    spawn(sim, wrapper())
    sim.run()
    return holder["result"]


def test_comgt_registers():
    sim = Simulator()
    modem = Modem3G(sim, rng=RandomStreams(1).stream("m"))
    modem.plug_into(FakeNetwork())
    code, lines = run_tool(sim, Comgt(modem.port).run())
    assert code == 0
    assert any("registered" in line for line in lines)
    assert any("signal" in line for line in lines)


def test_comgt_waits_for_searching_modem():
    sim = Simulator()
    modem = Modem3G(sim, rng=RandomStreams(1).stream("m"))
    modem.plug_into(FakeNetwork())  # registration completes at t≈3s
    code, _ = run_tool(sim, Comgt(modem.port, poll_interval=0.5).run())
    assert code == 0
    assert sim.now >= 3.0


def test_comgt_fails_when_denied():
    sim = Simulator()
    modem = Modem3G(sim)
    modem.plug_into(FakeNetwork(deny=True))
    code, lines = run_tool(sim, Comgt(modem.port, poll_interval=0.5).run())
    assert code == 1
    assert "denied" in lines[0]


def test_comgt_times_out_without_network():
    sim = Simulator()
    modem = Modem3G(sim)
    code, lines = run_tool(
        sim, Comgt(modem.port, poll_interval=0.5, max_attempts=3).run()
    )
    assert code == 1
    assert "timed out" in lines[0]


def test_comgt_handles_pin():
    sim = Simulator()
    modem = Modem3G(sim, sim_pin="4321")
    modem.plug_into(FakeNetwork())
    code, _ = run_tool(sim, Comgt(modem.port, pin="4321").run())
    assert code == 0


def test_comgt_fails_without_needed_pin():
    sim = Simulator()
    modem = Modem3G(sim, sim_pin="4321")
    modem.plug_into(FakeNetwork())
    code, lines = run_tool(sim, Comgt(modem.port).run())
    assert code == 1
    assert "PIN" in lines[0]


def test_comgt_fails_with_wrong_pin():
    sim = Simulator()
    modem = Modem3G(sim, sim_pin="4321")
    modem.plug_into(FakeNetwork())
    code, lines = run_tool(sim, Comgt(modem.port, pin="1111").run())
    assert code == 1
    assert "rejected" in lines[0]


def test_wvdial_connects():
    sim = Simulator()
    modem = Modem3G(sim)
    modem.plug_into(FakeNetwork())
    sim.run(until=10.0)
    code, lines = run_tool(sim, Wvdial(modem.port, apn="x.apn").run())
    assert code == 0
    assert "CONNECT" in lines[-1]
    assert modem.data_mode
    assert modem.apn == "x.apn"


def test_wvdial_fails_when_unregistered():
    sim = Simulator()
    modem = Modem3G(sim)
    code, lines = run_tool(sim, Wvdial(modem.port, apn="x.apn").run())
    assert code == 1
    assert "NO CARRIER" in lines[0]


def test_wvdial_hangup():
    sim = Simulator()
    modem = Modem3G(sim)
    network = FakeNetwork()
    modem.plug_into(network)
    sim.run(until=10.0)
    dialer = Wvdial(modem.port, apn="x.apn")
    code, _ = run_tool(sim, dialer.run())
    assert code == 0
    code, lines = run_tool(sim, dialer.hangup())
    assert code == 0
    assert not modem.data_mode
    assert network.calls[0].hangup_reasons == ["local"]


def test_serial_ppp_transport_roundtrip():
    sim = Simulator()
    modem = Modem3G(sim)
    network = FakeNetwork()
    modem.plug_into(network)
    sim.run(until=10.0)
    run_tool(sim, Wvdial(modem.port, apn="x.apn").run())
    transport = SerialPppTransport(sim, modem.port)
    received = []
    transport.set_receiver(received.append)
    # Uplink: pppd frame reaches the data call.
    frame = PPPFrame(PPP_LCP, ControlPacket(1, 1))
    transport.send_frame(frame)
    sim.run()
    assert network.calls[0].uplink == [frame]
    # Downlink: network frame reaches pppd.
    down = PPPFrame(PPP_LCP, ControlPacket(2, 1))
    network.calls[0].downlink_cb(down)
    sim.run()
    assert received == [down]
    assert transport.frames_sent == 1
    assert transport.frames_received == 1


def test_serial_ppp_transport_carrier_lost():
    sim = Simulator()
    modem = Modem3G(sim)
    network = FakeNetwork()
    modem.plug_into(network)
    sim.run(until=10.0)
    run_tool(sim, Wvdial(modem.port, apn="x.apn").run())
    lost = []
    transport = SerialPppTransport(
        sim, modem.port, on_carrier_lost=lambda: lost.append(True)
    )
    network.calls[0].on_drop("timeout")
    sim.run()
    assert lost == [True]


def test_serial_ppp_transport_stop():
    sim = Simulator()
    modem = Modem3G(sim)
    transport = SerialPppTransport(sim, modem.port)
    transport.stop()
    sim.run()
    assert not transport._reader.alive
