"""Unit tests for the AT-command modem state machine."""


from repro.modem.cards import GlobetrotterGT3G, HuaweiE620
from repro.modem.chat import chat
from repro.modem.device import Modem3G, RegistrationStatus
from repro.ppp.frame import PPP_LCP, ControlPacket, PPPFrame
from repro.sim.engine import Simulator
from repro.sim.process import spawn
from repro.sim.rng import RandomStreams


class FakeDataCall:
    def __init__(self):
        self.uplink = []
        self.downlink_cb = None
        self.on_drop = None
        self.advertised_rate_bps = 384000
        self.hangup_reasons = []

    def send_uplink(self, frame):
        self.uplink.append(frame)

    def set_downlink(self, cb):
        self.downlink_cb = cb

    def set_on_drop(self, cb):
        self.on_drop = cb

    def hangup(self, reason):
        self.hangup_reasons.append(reason)


class FakeNetwork:
    operator_name = "FakeNet"

    def __init__(self, deny=False, fail_call=False):
        self.deny = deny
        self.fail_call = fail_call
        self.calls = []

    def registration_delay(self, rng):
        return 3.0

    def registration_result(self, modem):
        if self.deny:
            return RegistrationStatus.DENIED
        return RegistrationStatus.REGISTERED_HOME

    def signal_quality(self, rng):
        return 21

    def open_data_call(self, modem, apn=None):
        if self.fail_call:
            raise RuntimeError("no resources")
        call = FakeDataCall()
        self.calls.append(call)
        return call


def run_chat(sim, port, command):
    """Run one chat exchange to completion; returns (terminal, info)."""
    result = {}

    def proc():
        result["value"] = yield from chat(port, command)

    spawn(sim, proc())
    sim.run()
    return result["value"]


def test_at_ping():
    sim = Simulator()
    modem = Modem3G(sim)
    terminal, info = run_chat(sim, modem.port, "AT")
    assert terminal == "OK"
    assert info == []


def test_unknown_command_errors():
    sim = Simulator()
    modem = Modem3G(sim)
    terminal, _ = run_chat(sim, modem.port, "AT+NOSUCH")
    assert terminal == "ERROR"


def test_ati_reports_card_identity():
    sim = Simulator()
    option = GlobetrotterGT3G(sim)
    terminal, info = run_chat(sim, option.port, "ATI")
    assert terminal == "OK"
    assert info == ["Option N.V.", "GlobeTrotter 3G+"]
    huawei = HuaweiE620(sim)
    terminal, info = run_chat(sim, huawei.port, "ATI")
    assert info == ["huawei", "E620"]


def test_required_kernel_modules():
    sim = Simulator()
    assert GlobetrotterGT3G(sim).required_module == "nozomi"
    assert HuaweiE620(sim).required_module == "usbserial"


def test_cpin_ready_without_pin():
    sim = Simulator()
    modem = Modem3G(sim)
    terminal, info = run_chat(sim, modem.port, "AT+CPIN?")
    assert info == ["+CPIN: READY"]


def test_pin_flow():
    sim = Simulator()
    modem = Modem3G(sim, sim_pin="1234")
    _, info = run_chat(sim, modem.port, "AT+CPIN?")
    assert info == ["+CPIN: SIM PIN"]
    terminal, _ = run_chat(sim, modem.port, 'AT+CPIN="0000"')
    assert terminal.startswith("+CME ERROR")
    terminal, _ = run_chat(sim, modem.port, 'AT+CPIN="1234"')
    assert terminal == "OK"
    _, info = run_chat(sim, modem.port, "AT+CPIN?")
    assert info == ["+CPIN: READY"]


def test_dial_requires_pin():
    sim = Simulator()
    modem = Modem3G(sim, sim_pin="1234")
    modem.plug_into(FakeNetwork())
    sim.run(until=10.0)
    terminal, _ = run_chat(sim, modem.port, "ATD*99#")
    assert terminal.startswith("+CME ERROR")


def test_registration_takes_time():
    sim = Simulator()
    modem = Modem3G(sim, rng=RandomStreams(0).stream("m"))
    modem.plug_into(FakeNetwork())
    _, info = run_chat(sim, modem.port, "AT+CREG?")
    assert info == ["+CREG: 0,2"]  # searching
    sim.run(until=10.0)
    _, info = run_chat(sim, modem.port, "AT+CREG?")
    assert info == ["+CREG: 0,1"]


def test_registration_denied():
    sim = Simulator()
    modem = Modem3G(sim)
    modem.plug_into(FakeNetwork(deny=True))
    sim.run(until=10.0)
    _, info = run_chat(sim, modem.port, "AT+CREG?")
    assert info == ["+CREG: 0,3"]


def test_csq_reports_network_signal():
    sim = Simulator()
    modem = Modem3G(sim)
    modem.plug_into(FakeNetwork())
    sim.run(until=10.0)
    _, info = run_chat(sim, modem.port, "AT+CSQ")
    assert info == ["+CSQ: 21,0"]


def test_csq_without_network_is_unknown():
    sim = Simulator()
    modem = Modem3G(sim)
    _, info = run_chat(sim, modem.port, "AT+CSQ")
    assert info == ["+CSQ: 99,99"]


def test_cops_reports_operator():
    sim = Simulator()
    modem = Modem3G(sim)
    modem.plug_into(FakeNetwork())
    sim.run(until=10.0)
    _, info = run_chat(sim, modem.port, "AT+COPS?")
    assert info == ['+COPS: 0,0,"FakeNet"']


def test_cgdcont_sets_apn():
    sim = Simulator()
    modem = Modem3G(sim)
    terminal, _ = run_chat(sim, modem.port, 'AT+CGDCONT=1,"IP","my.apn.it"')
    assert terminal == "OK"
    assert modem.apn == "my.apn.it"


def test_malformed_cgdcont_errors():
    sim = Simulator()
    modem = Modem3G(sim)
    terminal, _ = run_chat(sim, modem.port, "AT+CGDCONT=1")
    assert terminal == "ERROR"


def test_dial_unregistered_no_carrier():
    sim = Simulator()
    modem = Modem3G(sim)
    terminal, _ = run_chat(sim, modem.port, "ATD*99#")
    assert terminal == "NO CARRIER"


def test_dial_success_enters_data_mode():
    sim = Simulator()
    modem = Modem3G(sim)
    network = FakeNetwork()
    modem.plug_into(network)
    sim.run(until=10.0)
    terminal, _ = run_chat(sim, modem.port, "ATD*99#")
    assert terminal.startswith("CONNECT 384000")
    assert modem.data_mode
    assert modem.connected


def test_dial_failure_when_network_refuses():
    sim = Simulator()
    modem = Modem3G(sim)
    modem.plug_into(FakeNetwork(fail_call=True))
    sim.run(until=10.0)
    terminal, _ = run_chat(sim, modem.port, "ATD*99#")
    assert terminal == "NO CARRIER"
    assert not modem.data_mode


def test_data_mode_relays_frames_both_ways():
    sim = Simulator()
    modem = Modem3G(sim)
    network = FakeNetwork()
    modem.plug_into(network)
    sim.run(until=10.0)
    run_chat(sim, modem.port, "ATD*99#")
    call = network.calls[0]
    frame = PPPFrame(PPP_LCP, ControlPacket(1, 1))
    modem.port.write(frame)
    sim.run()
    assert call.uplink == [frame]
    # Downlink frame appears on the host side of the serial port.
    down = PPPFrame(PPP_LCP, ControlPacket(2, 1))
    call.downlink_cb(down)
    assert modem.port.read_available() == 1


def test_escape_sequence_returns_to_command_mode():
    sim = Simulator()
    modem = Modem3G(sim)
    network = FakeNetwork()
    modem.plug_into(network)
    sim.run(until=10.0)
    run_chat(sim, modem.port, "ATD*99#")
    got = {}

    def escape():
        modem.port.write("+++")
        got["resp"] = yield modem.port.read()

    spawn(sim, escape())
    sim.run()
    assert got["resp"] == "OK"
    assert not modem.data_mode


def test_ath_hangs_up():
    sim = Simulator()
    modem = Modem3G(sim)
    network = FakeNetwork()
    modem.plug_into(network)
    sim.run(until=10.0)
    run_chat(sim, modem.port, "ATD*99#")
    call = network.calls[0]
    modem.data_mode = False  # after +++ escape
    terminal, _ = run_chat(sim, modem.port, "ATH")
    assert terminal == "OK"
    assert call.hangup_reasons == ["local"]
    assert not modem.connected


def test_network_hangup_emits_no_carrier():
    sim = Simulator()
    modem = Modem3G(sim)
    network = FakeNetwork()
    modem.plug_into(network)
    sim.run(until=10.0)
    run_chat(sim, modem.port, "ATD*99#")
    call = network.calls[0]
    call.on_drop("session timeout")
    assert modem.port.read_available() == 1
    assert not modem.data_mode


def test_atz_resets_state():
    sim = Simulator()
    modem = Modem3G(sim)
    run_chat(sim, modem.port, 'AT+CGDCONT=1,"IP","apn"')
    terminal, _ = run_chat(sim, modem.port, "ATZ")
    assert terminal == "OK"
    assert modem.apn is None


def test_at_log_records_commands():
    sim = Simulator()
    modem = Modem3G(sim)
    run_chat(sim, modem.port, "AT")
    run_chat(sim, modem.port, "AT+CREG?")
    assert modem.at_log == ["AT", "AT+CREG?"]
