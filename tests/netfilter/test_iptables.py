"""Unit tests for the iptables command facade."""

import pytest

from repro.net.packet import Packet
from repro.netfilter.chains import Netfilter
from repro.netfilter.iptables import Iptables, IptablesError
from repro.netfilter.targets import Verdict


@pytest.fixture()
def ipt():
    return Iptables(Netfilter())


def run_output(nf, packet, out_iface=None):
    return nf.run_hook("OUTPUT", packet, out_iface=out_iface)


def test_paper_marking_rule(ipt):
    ipt.run(
        "iptables -t mangle -A OUTPUT -m xid --xid 510 -d 138.96.250.100 "
        "-j MARK --set-mark 1"
    )
    p = Packet("138.96.250.100", xid=510)
    run_output(ipt.netfilter, p)
    assert p.mark == 1
    other = Packet("138.96.250.100", xid=511)
    run_output(ipt.netfilter, other)
    assert other.mark == 0


def test_paper_isolation_drop_rule(ipt):
    ipt.run("iptables -t filter -A OUTPUT -o ppp0 -m xid ! --xid 510 -j DROP")
    intruder = Packet("10.199.0.1", xid=511)
    assert run_output(ipt.netfilter, intruder, out_iface="ppp0") is False
    allowed = Packet("10.199.0.1", xid=510)
    assert run_output(ipt.netfilter, allowed, out_iface="ppp0") is True
    elsewhere = Packet("10.199.0.1", xid=511)
    assert run_output(ipt.netfilter, elsewhere, out_iface="eth0") is True


def test_delete_by_spec(ipt):
    ipt.run("-t mangle -A OUTPUT -m xid --xid 510 -d 1.2.3.4 -j MARK --set-mark 1")
    ipt.run("-t mangle -D OUTPUT -m xid --xid 510 -d 1.2.3.4 -j MARK --set-mark 1")
    assert ipt.list_rules("mangle", "OUTPUT") == []


def test_delete_missing_spec_raises(ipt):
    with pytest.raises(IptablesError):
        ipt.run("-t mangle -D OUTPUT -m xid --xid 510 -j MARK --set-mark 1")


def test_flush_chain(ipt):
    ipt.run("-A OUTPUT -j ACCEPT")
    ipt.run("-A INPUT -j ACCEPT")
    ipt.run("-F OUTPUT")
    assert ipt.list_rules("filter", "OUTPUT") == []
    assert len(ipt.list_rules("filter", "INPUT")) == 1


def test_flush_whole_table(ipt):
    ipt.run("-A OUTPUT -j ACCEPT")
    ipt.run("-A INPUT -j ACCEPT")
    ipt.run("-F")
    assert ipt.list_rules("filter", "OUTPUT") == []
    assert ipt.list_rules("filter", "INPUT") == []


def test_policy_command(ipt):
    ipt.run("-P OUTPUT DROP")
    assert ipt.netfilter.table("filter").chain("OUTPUT").policy == Verdict.DROP


def test_insert_at_head(ipt):
    ipt.run("-A OUTPUT -j ACCEPT")
    rule = ipt.run("-I OUTPUT -o ppp0 -j DROP")
    assert ipt.list_rules("filter", "OUTPUT")[0] is rule


def test_insert_with_index(ipt):
    first = ipt.run("-A OUTPUT -j ACCEPT")
    ipt.run("-I OUTPUT 2 -j DROP")
    rules = ipt.list_rules("filter", "OUTPUT")
    assert rules[0] is first


def test_protocol_and_ports(ipt):
    ipt.run("-A OUTPUT -p udp --dport 8999 -j DROP")
    p = Packet("10.0.0.1", dport=8999)
    assert run_output(ipt.netfilter, p) is False
    tcp = Packet("10.0.0.1", proto=6, dport=8999)
    assert run_output(ipt.netfilter, tcp) is True


def test_mark_match_string(ipt):
    ipt.run("-t mangle -A POSTROUTING -m mark --mark 0x1 -j LOG")
    marked = Packet("10.0.0.1")
    marked.mark = 1
    ipt.netfilter.run_hook("POSTROUTING", marked)
    rule = ipt.list_rules("mangle", "POSTROUTING")[0]
    assert rule.packets == 1


def test_source_match_string(ipt):
    ipt.run("-A INPUT -s 192.168.0.0/16 -j DROP")
    p = Packet("10.0.0.1", src="192.168.4.4")
    assert ipt.netfilter.run_hook("INPUT", p) is False


def test_unknown_protocol_raises(ipt):
    with pytest.raises(IptablesError):
        ipt.run("-A OUTPUT -p sctp -j DROP")


def test_rule_without_target_raises(ipt):
    with pytest.raises(IptablesError):
        ipt.run("-A OUTPUT -o ppp0")


def test_mark_without_setmark_raises(ipt):
    with pytest.raises(IptablesError):
        ipt.run("-t mangle -A OUTPUT -j MARK")


def test_unknown_target_raises(ipt):
    with pytest.raises(IptablesError):
        ipt.run("-A OUTPUT -j REJECT")


def test_no_operation_raises(ipt):
    with pytest.raises(IptablesError):
        ipt.run("-t filter")


def test_bad_chain_raises(ipt):
    with pytest.raises(IptablesError):
        ipt.run("-A NOSUCH -j ACCEPT")


def test_history_recorded(ipt):
    ipt.run("-A OUTPUT -j ACCEPT")
    assert ipt.history == ["-A OUTPUT -j ACCEPT"]


def test_typed_api_append_and_delete(ipt):
    from repro.netfilter.chains import Rule
    from repro.netfilter.matches import OutInterfaceMatch
    from repro.netfilter.targets import DropTarget

    rule = ipt.append("filter", "OUTPUT", Rule([OutInterfaceMatch("ppp0")], DropTarget()))
    assert ipt.list_rules("filter", "OUTPUT") == [rule]
    ipt.delete("filter", "OUTPUT", rule)
    assert ipt.list_rules("filter", "OUTPUT") == []


def test_policy_on_user_chain_rejected(ipt):
    ipt.netfilter.table("filter").new_chain("custom")
    with pytest.raises(IptablesError):
        ipt.policy("filter", "custom", "DROP")


def test_list_rules_bad_chain(ipt):
    with pytest.raises(IptablesError):
        ipt.list_rules("filter", "NOSUCH")


def test_insert_typed_api_index(ipt):
    from repro.netfilter.chains import Rule
    from repro.netfilter.targets import AcceptTarget, DropTarget

    first = ipt.append("filter", "OUTPUT", Rule([], AcceptTarget()))
    second = ipt.insert("filter", "OUTPUT", Rule([], DropTarget()), index=1)
    assert ipt.list_rules("filter", "OUTPUT") == [first, second]
