"""Property tests for the iptables command parser.

The back-end's delete-by-spec contract: any rule added with ``-A`` can
be removed by issuing ``-D`` with the same clause string.  We generate
random rule specifications from the supported vocabulary and check the
add/delete round trip always empties the chain.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netfilter.chains import Netfilter
from repro.netfilter.iptables import Iptables

ip_octet = st.integers(min_value=0, max_value=255)
addresses = st.builds(lambda a, b, c, d: f"{a}.{b}.{c}.{d}", ip_octet, ip_octet, ip_octet, ip_octet)

clause_strategies = st.lists(
    st.one_of(
        st.builds(lambda a: f"-s {a}", addresses),
        st.builds(lambda a: f"-d {a}", addresses),
        st.builds(lambda a: f"! -d {a}", addresses),
        st.sampled_from(["-o ppp0", "-o eth0", "! -o ppp0", "-i eth0"]),
        st.sampled_from(["-p udp", "-p tcp", "-p icmp"]),
        st.builds(lambda x: f"-m xid --xid {x}", st.integers(min_value=0, max_value=4095)),
        st.builds(lambda x: f"-m xid ! --xid {x}", st.integers(min_value=0, max_value=4095)),
        st.builds(lambda m: f"-m mark --mark {m:#x}", st.integers(min_value=0, max_value=255)),
        st.builds(lambda p: f"--dport {p}", st.integers(min_value=1, max_value=65535)),
        st.builds(lambda p: f"--sport {p}", st.integers(min_value=1, max_value=65535)),
    ),
    min_size=0,
    max_size=4,
)

targets = st.sampled_from(
    ["-j ACCEPT", "-j DROP", "-j RETURN", "-j MARK --set-mark 0x1", "-j LOG"]
)


@given(clause_strategies, targets, st.sampled_from(["filter", "mangle"]))
@settings(max_examples=150)
def test_add_then_delete_by_spec_roundtrip(clauses, target, table):
    if table == "filter" and "MARK" in target:
        target = "-j DROP"  # MARK lives in mangle
    spec = " ".join(clauses + [target])
    ipt = Iptables(Netfilter())
    ipt.run(f"-t {table} -A OUTPUT {spec}")
    assert len(ipt.list_rules(table, "OUTPUT")) == 1
    ipt.run(f"-t {table} -D OUTPUT {spec}")
    assert ipt.list_rules(table, "OUTPUT") == []


@given(clause_strategies, targets)
@settings(max_examples=100)
def test_added_rules_accumulate_in_order(clauses, target):
    spec = " ".join(clauses + [target])
    ipt = Iptables(Netfilter())
    first = ipt.run(f"-t mangle -A OUTPUT {spec}")
    second = ipt.run(f"-t mangle -A OUTPUT {spec}")
    rules = ipt.list_rules("mangle", "OUTPUT")
    assert rules == [first, second]
    # -D removes exactly one matching rule (the first).
    ipt.run(f"-t mangle -D OUTPUT {spec}")
    assert ipt.list_rules("mangle", "OUTPUT") == [second]


@given(clause_strategies)
@settings(max_examples=100)
def test_parse_never_crashes_on_valid_specs(clauses):
    spec = " ".join(clauses + ["-j ACCEPT"])
    ipt = Iptables(Netfilter())
    rule = ipt.run(f"-A OUTPUT {spec}")
    assert rule is not None
    # The rendered rule mentions its target.
    assert "ACCEPT" in repr(rule)
