"""Unit tests for netfilter chains, matches and targets."""

import pytest

from repro.net.packet import Packet
from repro.netfilter.chains import (
    HOOK_OUTPUT,
    Chain,
    Netfilter,
    PacketContext,
    Rule,
)
from repro.netfilter.matches import (
    DestinationMatch,
    DportMatch,
    InInterfaceMatch,
    MarkMatch,
    OutInterfaceMatch,
    ProtocolMatch,
    SourceMatch,
    SportMatch,
    XidMatch,
)
from repro.netfilter.targets import (
    AcceptTarget,
    DropTarget,
    JumpTarget,
    LogTarget,
    MarkTarget,
    ReturnTarget,
    Verdict,
)


def ctx_for(packet, out_iface=None, in_iface=None):
    return PacketContext(packet, HOOK_OUTPUT, in_iface=in_iface, out_iface=out_iface, now=0.0)


def test_xid_match():
    p = Packet("10.0.0.1", xid=510)
    assert XidMatch(510).matches(ctx_for(p))
    assert not XidMatch(511).matches(ctx_for(p))


def test_xid_match_inverted():
    p = Packet("10.0.0.1", xid=510)
    assert not XidMatch(510, invert=True).matches(ctx_for(p))
    assert XidMatch(511, invert=True).matches(ctx_for(p))


def test_destination_match_prefix():
    p = Packet("138.96.250.100")
    assert DestinationMatch("138.96.250.0/24").matches(ctx_for(p))
    assert DestinationMatch("138.96.250.100").matches(ctx_for(p))
    assert not DestinationMatch("10.0.0.0/8").matches(ctx_for(p))


def test_source_match():
    p = Packet("10.0.0.1", src="192.168.1.5")
    assert SourceMatch("192.168.1.0/24").matches(ctx_for(p))
    assert not SourceMatch("192.168.2.0/24").matches(ctx_for(p))


def test_out_interface_match():
    p = Packet("10.0.0.1")
    assert OutInterfaceMatch("ppp0").matches(ctx_for(p, out_iface="ppp0"))
    assert not OutInterfaceMatch("ppp0").matches(ctx_for(p, out_iface="eth0"))


def test_in_interface_match():
    p = Packet("10.0.0.1")
    assert InInterfaceMatch("eth0").matches(ctx_for(p, in_iface="eth0"))
    assert not InInterfaceMatch("eth0").matches(ctx_for(p, in_iface="ppp0"))


def test_mark_match_with_mask():
    p = Packet("10.0.0.1")
    p.mark = 0x5
    assert MarkMatch(0x5).matches(ctx_for(p))
    assert MarkMatch(0x1, mask=0x1).matches(ctx_for(p))
    assert not MarkMatch(0x2, mask=0x2).matches(ctx_for(p))


def test_protocol_and_port_matches():
    p = Packet("10.0.0.1", sport=1000, dport=2000)
    assert ProtocolMatch(17).matches(ctx_for(p))
    assert SportMatch(1000).matches(ctx_for(p))
    assert DportMatch(2000).matches(ctx_for(p))
    assert not DportMatch(2001).matches(ctx_for(p))


def test_mark_target_sets_mark_and_continues():
    p = Packet("10.0.0.1")
    chain = Chain("OUTPUT")
    chain.append(Rule([], MarkTarget(7)))
    verdict = chain.traverse(ctx_for(p))
    assert p.mark == 7
    assert verdict == Verdict.ACCEPT  # fell through to policy


def test_drop_target_terminates():
    p = Packet("10.0.0.1")
    chain = Chain("OUTPUT")
    chain.append(Rule([], DropTarget()))
    chain.append(Rule([], MarkTarget(9)))
    assert chain.traverse(ctx_for(p)) == Verdict.DROP
    assert p.mark == 0


def test_accept_target_terminates():
    chain = Chain("OUTPUT", policy=Verdict.DROP)
    chain.append(Rule([], AcceptTarget()))
    assert chain.traverse(ctx_for(Packet("10.0.0.1"))) == Verdict.ACCEPT


def test_policy_applies_when_no_rule_matches():
    chain = Chain("OUTPUT", policy=Verdict.DROP)
    chain.append(Rule([XidMatch(510)], AcceptTarget()))
    assert chain.traverse(ctx_for(Packet("10.0.0.1", xid=0))) == Verdict.DROP
    assert chain.policy_packets == 1


def test_rule_counters():
    rule = Rule([XidMatch(510)], AcceptTarget())
    chain = Chain("OUTPUT")
    chain.append(rule)
    p = Packet("10.0.0.1", xid=510, size=100)
    chain.traverse(ctx_for(p))
    chain.traverse(ctx_for(Packet("10.0.0.1", xid=0)))
    assert rule.packets == 1
    assert rule.bytes == p.length


def test_return_target_in_user_chain():
    user = Chain("mychain", policy=None)
    user.append(Rule([XidMatch(1)], ReturnTarget()))
    user.append(Rule([], DropTarget()))
    main = Chain("OUTPUT")
    main.append(Rule([], JumpTarget(user)))
    main.append(Rule([], MarkTarget(3)))
    p = Packet("10.0.0.1", xid=1)
    verdict = main.traverse(ctx_for(p))
    assert verdict == Verdict.ACCEPT
    assert p.mark == 3  # continued after the jump
    p2 = Packet("10.0.0.1", xid=2)
    assert main.traverse(ctx_for(p2)) == Verdict.DROP


def test_log_target_records():
    log = LogTarget(prefix="umts: ")
    chain = Chain("OUTPUT")
    chain.append(Rule([], log))
    chain.traverse(ctx_for(Packet("10.0.0.1")))
    assert len(log.entries) == 1
    assert log.entries[0][1].startswith("umts: ")


def test_insert_puts_rule_first():
    chain = Chain("OUTPUT")
    chain.append(Rule([], MarkTarget(1)))
    chain.insert(Rule([], DropTarget()))
    assert chain.traverse(ctx_for(Packet("10.0.0.1"))) == Verdict.DROP


def test_delete_missing_rule_raises():
    chain = Chain("OUTPUT")
    with pytest.raises(ValueError):
        chain.delete(Rule([], DropTarget()))


def test_netfilter_hook_mangle_before_filter():
    nf = Netfilter()
    # mangle marks, filter drops marked packets: proves ordering.
    nf.table("mangle").chain("OUTPUT").append(Rule([], MarkTarget(1)))
    nf.table("filter").chain("OUTPUT").append(Rule([MarkMatch(1)], DropTarget()))
    p = Packet("10.0.0.1")
    assert nf.run_hook("OUTPUT", p) is False
    assert nf.dropped == 1


def test_netfilter_run_chain_single_table():
    nf = Netfilter()
    nf.table("filter").chain("OUTPUT").append(Rule([], DropTarget()))
    p = Packet("10.0.0.1")
    assert nf.run_chain("mangle", "OUTPUT", p) is True
    assert nf.run_chain("filter", "OUTPUT", p) is False


def test_postrouting_has_no_filter_chain():
    nf = Netfilter()
    assert "POSTROUTING" not in nf.table("filter").chains
    assert "POSTROUTING" in nf.table("mangle").chains


def test_user_chain_creation_and_duplicate():
    nf = Netfilter()
    nf.table("filter").new_chain("slice-510")
    with pytest.raises(ValueError):
        nf.table("filter").new_chain("slice-510")
