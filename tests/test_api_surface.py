"""Meta-tests on the public API: imports, exports, documentation.

Deliverable hygiene: every name a subpackage exports must exist and be
documented, and the top-level convenience surface must stay importable.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.fleet",
    "repro.modem",
    "repro.net",
    "repro.netfilter",
    "repro.obs",
    "repro.ppp",
    "repro.routing",
    "repro.scenarios",
    "repro.sim",
    "repro.testbed",
    "repro.traffic",
    "repro.umts",
    "repro.vserver",
    "repro.vsys",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_imports(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for export in getattr(module, "__all__", []):
        assert hasattr(module, export), f"{name}.__all__ lists missing {export!r}"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_exported_objects_documented(name):
    module = importlib.import_module(name)
    for export in getattr(module, "__all__", []):
        obj = getattr(module, export)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name}.{export} lacks a docstring"


def test_every_module_has_docstring():
    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not module.__doc__:
            missing.append(info.name)
    assert missing == []


def test_public_methods_documented():
    """Every public method of every exported class carries a docstring."""
    undocumented = []
    for name in SUBPACKAGES:
        module = importlib.import_module(name)
        for export in getattr(module, "__all__", []):
            obj = getattr(module, export)
            if not inspect.isclass(obj):
                continue
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not attr.__doc__:
                    undocumented.append(f"{export}.{attr_name}")
    assert undocumented == []


def test_top_level_quickstart_surface():
    from repro import (  # noqa: F401
        OneLabScenario,
        PATH_ETHERNET,
        PATH_UMTS,
        cbr,
        run_characterization,
        run_repetitions,
        voip_g711,
    )

    assert repro.__version__


def test_version_matches_package_metadata():
    assert repro.__version__ == "1.0.0"
