"""Unit tests for the vsys daemon, ACLs and FIFO protocol."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import spawn
from repro.vsys.daemon import VsysDaemon, VsysError, VsysResult
from repro.vsys.pipes import EOF, FifoPair


def echo_handler(slice_name, argv):
    return 0, [f"{slice_name}: {' '.join(argv)}"]


def failing_handler(slice_name, argv):
    raise RuntimeError("boom")


def slow_handler(slice_name, argv):
    yield 5.0
    return 0, ["done after 5s"]


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def daemon(sim):
    d = VsysDaemon(sim, "node")
    d.register("echo", echo_handler, acl=["unina_umts"])
    d.register("fail", failing_handler, acl=["unina_umts"])
    d.register("slow", slow_handler, acl=["unina_umts"])
    return d


def test_register_duplicate_raises(daemon):
    with pytest.raises(VsysError):
        daemon.register("echo", echo_handler)


def test_open_unknown_script_raises(daemon):
    with pytest.raises(VsysError):
        daemon.open("unina_umts", "nosuch")


def test_acl_denies_unlisted_slice(daemon):
    with pytest.raises(VsysError):
        daemon.open("evil_slice", "echo")
    assert daemon.calls_denied == 1


def test_allow_then_open(daemon):
    daemon.allow("echo", "other")
    conn = daemon.open("other", "echo")
    assert conn.slice_name == "other"


def test_deny_revokes(daemon):
    daemon.deny("echo", "unina_umts")
    with pytest.raises(VsysError):
        daemon.open("unina_umts", "echo")


def test_is_allowed(daemon):
    assert daemon.is_allowed("echo", "unina_umts")
    assert not daemon.is_allowed("echo", "other")
    assert not daemon.is_allowed("nosuch", "unina_umts")


def test_call_blocking_roundtrip(daemon):
    conn = daemon.open("unina_umts", "echo")
    result = conn.call_blocking(["status", "now"])
    assert result.ok
    assert result.lines == ["unina_umts: status now"]
    assert result.text == "unina_umts: status now"


def test_handler_exception_becomes_exit_1(daemon):
    conn = daemon.open("unina_umts", "fail")
    result = conn.call_blocking(["x"])
    assert result.code == 1
    assert "boom" in result.lines[0]


def test_generator_handler_takes_simulated_time(sim, daemon):
    conn = daemon.open("unina_umts", "slow")
    result = conn.call_blocking(["go"])
    assert result.ok
    assert sim.now == pytest.approx(5.0)


def test_sequential_calls_on_one_connection(daemon):
    conn = daemon.open("unina_umts", "echo")
    first = conn.call_blocking(["one"])
    second = conn.call_blocking(["two"])
    assert first.lines == ["unina_umts: one"]
    assert second.lines == ["unina_umts: two"]


def test_concurrent_calls_rejected(sim, daemon):
    conn = daemon.open("unina_umts", "slow")
    conn.call(["first"])

    def second_caller():
        yield 1.0  # first call still running (takes 5s)
        with pytest.raises(VsysError):
            conn.call(["second"])

    spawn(sim, second_caller())
    sim.run()


def test_call_from_inside_process(sim, daemon):
    conn = daemon.open("unina_umts", "echo")
    results = []

    def experiment():
        result = yield conn.call(["hello"])
        results.append(result)

    spawn(sim, experiment())
    sim.run()
    assert results[0].lines == ["unina_umts: hello"]


def test_close_sends_eof_to_backend(sim, daemon):
    conn = daemon.open("unina_umts", "echo")
    conn.call_blocking(["x"])
    conn.close()
    sim.run()
    with pytest.raises(VsysError):
        conn.call(["after-close"])


def test_vsysresult_properties():
    good = VsysResult(0, ["a", "b"])
    bad = VsysResult(3, [])
    assert good.ok and not bad.ok
    assert good.text == "a\nb"


def test_fifo_pair_close_idempotent(sim):
    pipe = FifoPair(sim, "p")
    pipe.close()
    pipe.close()
    assert pipe.to_backend.get_nowait() is EOF
    with pytest.raises(IndexError):
        pipe.to_backend.get_nowait()


def test_quoting_of_arguments(daemon):
    conn = daemon.open("unina_umts", "echo")
    result = conn.call_blocking(["add", "two words"])
    assert result.lines == ["unina_umts: add two words"]


def test_connections_counter(daemon):
    daemon.open("unina_umts", "echo")
    daemon.open("unina_umts", "slow")
    assert daemon.connections_opened == 2


def test_scripts_listing(daemon):
    assert daemon.scripts() == ["echo", "fail", "slow"]


def test_two_slices_two_scripts_independent(sim, daemon):
    daemon.allow("echo", "slice-b")
    conn_a = daemon.open("unina_umts", "echo")
    conn_b = daemon.open("slice-b", "echo")
    result_a = conn_a.call_blocking(["from-a"])
    result_b = conn_b.call_blocking(["from-b"])
    assert result_a.lines == ["unina_umts: from-a"]
    assert result_b.lines == ["slice-b: from-b"]


def test_handler_returning_none_is_success(sim):
    daemon = VsysDaemon(sim)
    daemon.register("noop", lambda slice_name, argv: None, acl=["s"])
    conn = daemon.open("s", "noop")
    result = conn.call_blocking(["anything"])
    assert result.ok
    assert result.lines == []


def test_same_slice_multiple_connections_same_script(sim, daemon):
    first = daemon.open("unina_umts", "echo")
    second = daemon.open("unina_umts", "echo")
    assert first.call_blocking(["one"]).ok
    assert second.call_blocking(["two"]).ok
