"""Unit tests for the LCP and IPCP option policies."""


from repro.ppp.frame import CONF_ACK, CONF_NAK, CONF_REQ, ControlPacket
from repro.ppp.ipcp import IpcpClientFsm, IpcpServerFsm
from repro.ppp.lcp import DEFAULT_MRU, MIN_MRU, LcpFsm
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make(fsm_cls, **kwargs):
    sim = Simulator()
    sent = []
    fsm = fsm_cls(sim, sent.append, **kwargs)
    return sim, fsm, sent


def test_lcp_initial_options_contain_mru_and_magic():
    _, fsm, _ = make(LcpFsm, rng=RandomStreams(1).stream("m"))
    options = fsm.initial_options()
    assert options["mru"] == DEFAULT_MRU
    assert 0 <= options["magic"] < 2**32


def test_lcp_magic_differs_between_rngs():
    _, a, _ = make(LcpFsm, rng=RandomStreams(1).stream("a"))
    _, b, _ = make(LcpFsm, rng=RandomStreams(1).stream("b"))
    assert a.initial_options()["magic"] != b.initial_options()["magic"]


def test_lcp_accepts_normal_peer():
    _, fsm, sent = make(LcpFsm, rng=RandomStreams(1).stream("m"))
    fsm.open()
    fsm.receive(ControlPacket(CONF_REQ, 1, {"mru": 1500, "magic": 123}))
    assert sent[-1].code == CONF_ACK


def test_lcp_detects_loopback_magic():
    _, fsm, sent = make(LcpFsm, rng=RandomStreams(1).stream("m"))
    fsm.open()
    own_magic = fsm.options["magic"]
    fsm.receive(ControlPacket(CONF_REQ, 1, {"mru": 1500, "magic": own_magic}))
    assert sent[-1].code == CONF_NAK
    assert fsm.loopback_detected
    assert sent[-1].options["magic"] != own_magic


def test_lcp_naks_tiny_mru():
    _, fsm, sent = make(LcpFsm, rng=RandomStreams(1).stream("m"))
    fsm.open()
    fsm.receive(ControlPacket(CONF_REQ, 1, {"mru": MIN_MRU - 1, "magic": 5}))
    assert sent[-1].code == CONF_NAK
    assert sent[-1].options["mru"] == DEFAULT_MRU


def test_lcp_negotiated_mru_from_peer():
    _, fsm, _ = make(LcpFsm, rng=RandomStreams(1).stream("m"))
    fsm.open()
    fsm.receive(ControlPacket(CONF_REQ, 1, {"mru": 1400, "magic": 5}))
    assert fsm.negotiated_mru == 1400


def test_ipcp_client_requests_unspecified_address():
    _, fsm, _ = make(IpcpClientFsm)
    assert fsm.initial_options() == {"addr": "0.0.0.0"}
    fsm.open()
    assert fsm.local_address is None


def test_ipcp_client_takes_nak_address():
    _, fsm, sent = make(IpcpClientFsm)
    fsm.open()
    req = sent[-1]
    fsm.receive(ControlPacket(CONF_NAK, req.identifier, {"addr": "10.199.3.7"}))
    assert str(fsm.local_address) == "10.199.3.7"
    assert sent[-1].code == CONF_REQ
    assert sent[-1].options["addr"] == "10.199.3.7"


def test_ipcp_client_peer_address_after_ack():
    _, fsm, sent = make(IpcpClientFsm)
    fsm.open()
    fsm.receive(ControlPacket(CONF_REQ, 1, {"addr": "10.199.0.1"}))
    assert sent[-1].code == CONF_ACK
    assert str(fsm.peer_address) == "10.199.0.1"


def test_ipcp_client_dns_options():
    _, fsm, sent = make(IpcpClientFsm)
    fsm.open()
    req = sent[-1]
    fsm.receive(
        ControlPacket(
            CONF_NAK,
            req.identifier,
            {"addr": "10.199.3.7", "dns1": "10.199.0.53", "dns2": "10.199.0.54"},
        )
    )
    primary, secondary = fsm.dns_servers
    assert str(primary) == "10.199.0.53"
    assert str(secondary) == "10.199.0.54"


def test_ipcp_client_without_dns():
    _, fsm, _ = make(IpcpClientFsm)
    fsm.open()
    assert fsm.dns_servers == (None, None)


def test_ipcp_server_naks_wrong_address():
    _, fsm, sent = make(
        IpcpServerFsm, local_address="10.199.0.1", assign_address="10.199.3.7"
    )
    fsm.open()
    fsm.receive(ControlPacket(CONF_REQ, 1, {"addr": "0.0.0.0"}))
    assert sent[-1].code == CONF_NAK
    assert sent[-1].options["addr"] == "10.199.3.7"


def test_ipcp_server_acks_assigned_address():
    _, fsm, sent = make(
        IpcpServerFsm, local_address="10.199.0.1", assign_address="10.199.3.7"
    )
    fsm.open()
    fsm.receive(ControlPacket(CONF_REQ, 1, {"addr": "10.199.3.7"}))
    assert sent[-1].code == CONF_ACK
    assert str(fsm.assigned_address) == "10.199.3.7"
    assert str(fsm.local_address) == "10.199.0.1"


def test_ipcp_server_announces_own_address():
    _, fsm, _ = make(
        IpcpServerFsm, local_address="10.199.0.1", assign_address="10.199.3.7"
    )
    assert fsm.initial_options() == {"addr": "10.199.0.1"}


def test_ipcp_server_pushes_dns():
    _, fsm, sent = make(
        IpcpServerFsm,
        local_address="10.199.0.1",
        assign_address="10.199.3.7",
        dns1="10.199.0.53",
    )
    fsm.open()
    fsm.receive(
        ControlPacket(CONF_REQ, 1, {"addr": "10.199.3.7", "dns1": "0.0.0.0"})
    )
    assert sent[-1].code == CONF_NAK
    assert sent[-1].options["dns1"] == "10.199.0.53"
