"""Property test: PPP negotiation converges despite early frame loss.

The FSM retransmits Configure-Requests every 3 s (up to 10 times), so
any loss pattern confined to the first few seconds must still converge
to OPENED on both sides well within the retry budget.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.stack import IPStack
from repro.ppp.daemon import Pppd
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

from tests.ppp.test_negotiation import FramePipe


@given(
    drop_first_n=st.integers(min_value=0, max_value=12),
    delay_ms=st.integers(min_value=1, max_value=400),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_negotiation_converges_despite_losses(drop_first_n, delay_ms, seed):
    sim = Simulator()
    pipe = FramePipe(sim, delay=delay_ms / 1000.0, drop_first_n=drop_first_n)
    client_stack = IPStack(sim, "mobile")
    server_stack = IPStack(sim, "ggsn")
    streams = RandomStreams(seed)
    client = Pppd(
        sim,
        client_stack,
        pipe.a,
        role="client",
        ifname="ppp0",
        rng=streams.stream("client"),
    )
    server = Pppd(
        sim,
        server_stack,
        pipe.b,
        role="server",
        ifname="ppp-s",
        local_address="10.199.0.1",
        assign_address="10.199.3.7",
        rng=streams.stream("server"),
    )
    client.start()
    server.start()
    # Worst case: ~12 losses spread across both FSMs' early packets,
    # each costing one 3 s restart interval.
    sim.run(until=120.0)
    assert client.is_up
    assert server.is_up
    assert str(client.iface.address) == "10.199.3.7"
    assert str(server.iface.peer_address) == "10.199.3.7"
