"""Unit tests driving the negotiation FSM directly (no transport)."""


from repro.ppp.frame import (
    CONF_ACK,
    CONF_NAK,
    CONF_REQ,
    ECHO_REP,
    ECHO_REQ,
    TERM_ACK,
    TERM_REQ,
    ControlPacket,
)
from repro.ppp.fsm import FsmState, NegotiationFsm
from repro.sim.engine import Simulator


class Harness:
    """One FSM with captured output and callback flags."""

    def __init__(self, sim, fsm_cls=NegotiationFsm, **kwargs):
        self.sent = []
        self.ups = 0
        self.downs = []
        self.fails = []
        self.fsm = fsm_cls(
            sim,
            self.sent.append,
            on_up=lambda: setattr(self, "ups", self.ups + 1),
            on_down=self.downs.append,
            on_fail=self.fails.append,
            **kwargs,
        )

    def last(self):
        return self.sent[-1]


def test_open_sends_configure_request():
    sim = Simulator()
    h = Harness(sim)
    h.fsm.open()
    assert h.fsm.state == FsmState.REQ_SENT
    assert h.last().code == CONF_REQ


def test_open_twice_is_noop():
    sim = Simulator()
    h = Harness(sim)
    h.fsm.open()
    count = len(h.sent)
    h.fsm.open()
    assert len(h.sent) == count


def test_full_handshake_opens():
    sim = Simulator()
    h = Harness(sim)
    h.fsm.open()
    our_req = h.last()
    # Peer acks our request...
    h.fsm.receive(ControlPacket(CONF_ACK, our_req.identifier))
    assert h.fsm.state == FsmState.ACK_RCVD
    # ...and sends its own, which we ack.
    h.fsm.receive(ControlPacket(CONF_REQ, 1, {"x": 1}))
    assert h.fsm.state == FsmState.OPENED
    assert h.ups == 1
    assert h.fsm.peer_options == {"x": 1}
    assert h.last().code == CONF_ACK


def test_handshake_other_order():
    sim = Simulator()
    h = Harness(sim)
    h.fsm.open()
    our_req = h.last()
    h.fsm.receive(ControlPacket(CONF_REQ, 1, {}))
    assert h.fsm.state == FsmState.ACK_SENT
    h.fsm.receive(ControlPacket(CONF_ACK, our_req.identifier))
    assert h.fsm.state == FsmState.OPENED


def test_stale_ack_ignored():
    sim = Simulator()
    h = Harness(sim)
    h.fsm.open()
    h.fsm.receive(ControlPacket(CONF_ACK, 999))  # wrong identifier
    assert h.fsm.state == FsmState.REQ_SENT


def test_nak_adjusts_options_and_resends():
    sim = Simulator()
    h = Harness(sim)
    h.fsm.open()
    first = h.last()
    h.fsm.receive(ControlPacket(CONF_NAK, first.identifier, {"addr": "10.0.0.9"}))
    second = h.last()
    assert second.code == CONF_REQ
    assert second.identifier != first.identifier
    assert h.fsm.options["addr"] == "10.0.0.9"


def test_retransmission_on_timeout():
    sim = Simulator()
    h = Harness(sim)
    h.fsm.open()
    assert len(h.sent) == 1
    sim.run(until=3.5)
    assert len(h.sent) == 2
    assert h.sent[1].code == CONF_REQ


def test_negotiation_fails_after_max_configure():
    sim = Simulator()
    h = Harness(sim, max_configure=3)
    h.fsm.open()
    sim.run(until=60.0)
    assert h.fsm.state == FsmState.CLOSED
    assert len(h.fails) == 1
    assert len(h.sent) == 3


def test_terminate_request_closes_and_acks():
    sim = Simulator()
    h = Harness(sim)
    h.fsm.open()
    h.fsm.receive(ControlPacket(CONF_ACK, h.last().identifier))
    h.fsm.receive(ControlPacket(CONF_REQ, 1, {}))
    assert h.fsm.is_open
    h.fsm.receive(ControlPacket(TERM_REQ, 7))
    assert h.fsm.state == FsmState.CLOSED
    assert h.last().code == TERM_ACK
    assert h.last().identifier == 7
    assert h.downs == ["peer terminated"]


def test_close_sends_terminate_and_waits_ack():
    sim = Simulator()
    h = Harness(sim)
    h.fsm.open()
    h.fsm.receive(ControlPacket(CONF_ACK, h.last().identifier))
    h.fsm.receive(ControlPacket(CONF_REQ, 1, {}))
    h.fsm.close("test close")
    assert h.fsm.state == FsmState.CLOSING
    assert h.last().code == TERM_REQ
    assert h.downs == ["test close"]
    h.fsm.receive(ControlPacket(TERM_ACK, h.last().identifier))
    assert h.fsm.state == FsmState.CLOSED


def test_close_gives_up_after_retries():
    sim = Simulator()
    h = Harness(sim)
    h.fsm.open()
    h.fsm.close()
    sim.run(until=30.0)
    assert h.fsm.state == FsmState.CLOSED


def test_abort_skips_terminate_exchange():
    sim = Simulator()
    h = Harness(sim)
    h.fsm.open()
    h.fsm.receive(ControlPacket(CONF_ACK, h.last().identifier))
    h.fsm.receive(ControlPacket(CONF_REQ, 1, {}))
    sent_before = len(h.sent)
    h.fsm.abort("carrier lost")
    assert h.fsm.state == FsmState.CLOSED
    assert len(h.sent) == sent_before  # nothing transmitted
    assert h.downs == ["carrier lost"]


def test_echo_request_answered_when_open():
    sim = Simulator()
    h = Harness(sim)
    h.fsm.open()
    h.fsm.receive(ControlPacket(CONF_ACK, h.last().identifier))
    h.fsm.receive(ControlPacket(CONF_REQ, 1, {}))
    h.fsm.receive(ControlPacket(ECHO_REQ, 42, {"magic": 1}))
    assert h.last().code == ECHO_REP
    assert h.last().identifier == 42


def test_echo_request_ignored_when_not_open():
    sim = Simulator()
    h = Harness(sim)
    h.fsm.open()
    count = len(h.sent)
    h.fsm.receive(ControlPacket(ECHO_REQ, 42, {}))
    assert len(h.sent) == count


def test_packets_ignored_when_closed():
    sim = Simulator()
    h = Harness(sim)
    h.fsm.receive(ControlPacket(CONF_REQ, 1, {}))
    assert h.sent == []
    # ...except TERM_REQ, which is politely acked.
    h.fsm.receive(ControlPacket(TERM_REQ, 2))
    assert h.last().code == TERM_ACK


def test_renegotiation_from_opened():
    sim = Simulator()
    h = Harness(sim)
    h.fsm.open()
    h.fsm.receive(ControlPacket(CONF_ACK, h.last().identifier))
    h.fsm.receive(ControlPacket(CONF_REQ, 1, {}))
    assert h.fsm.is_open
    # Peer re-requests: we drop back to ACK_SENT and re-request too.
    h.fsm.receive(ControlPacket(CONF_REQ, 2, {"mru": 296}))
    assert h.fsm.state == FsmState.ACK_SENT
    assert any(p.code == CONF_REQ for p in h.sent[-2:])


def test_nak_path_on_check_peer_options():
    class PickyFsm(NegotiationFsm):
        def check_peer_options(self, options):
            if options.get("addr") != "10.0.0.1":
                merged = dict(options)
                merged["addr"] = "10.0.0.1"
                return CONF_NAK, merged
            return CONF_ACK, options

    sim = Simulator()
    h = Harness(sim, fsm_cls=PickyFsm)
    h.fsm.open()
    h.fsm.receive(ControlPacket(CONF_REQ, 1, {"addr": "0.0.0.0"}))
    assert h.last().code == CONF_NAK
    assert h.last().options["addr"] == "10.0.0.1"
    assert h.fsm.state == FsmState.REQ_SENT
    h.fsm.receive(ControlPacket(CONF_REQ, 2, {"addr": "10.0.0.1"}))
    assert h.last().code == CONF_ACK
