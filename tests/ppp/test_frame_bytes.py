"""The byte-level PPP codec: protocol packing and HDLC equivalence.

The table-driven HDLC implementation is checked against a literal
transcription of the RFC 1662 per-byte reference algorithm on random
and adversarial inputs — same octets out, same errors raised.
"""

import random

import pytest

from repro.ppp.frame import (
    PPP_IP,
    PPP_IPCP,
    PPP_LCP,
    FrameError,
    deframe_info,
    frame_info,
    pack_protocol,
    unpack_protocol,
)
from repro.ppp.hdlc import ESCAPE_XOR, FLAG, HdlcError, _fcs16, hdlc_decode, hdlc_encode


def test_pack_protocol_known_values():
    assert pack_protocol(PPP_IP) == b"\x00\x21"
    assert pack_protocol(PPP_LCP) == b"\xc0\x21"
    assert pack_protocol(PPP_IPCP) == b"\x80\x21"
    assert pack_protocol(0x1234) == b"\x12\x34"  # cache miss path


def test_pack_protocol_rejects_out_of_range():
    with pytest.raises(FrameError):
        pack_protocol(0x10000)
    with pytest.raises(FrameError):
        pack_protocol(-1)


def test_unpack_protocol_returns_memoryview():
    protocol, info = unpack_protocol(b"\x00\x21hello")
    assert protocol == PPP_IP
    assert isinstance(info, memoryview)
    assert bytes(info) == b"hello"
    with pytest.raises(FrameError):
        unpack_protocol(b"\x00")


def test_frame_info_roundtrip():
    frame = frame_info(PPP_LCP, b"\x01\x07\x00\x04")
    assert frame[0] == FLAG and frame[-1] == FLAG
    assert deframe_info(frame) == (PPP_LCP, b"\x01\x07\x00\x04")


# --- reference (pre-optimization) HDLC transcription -------------------------


def _ref_fcs16(data):
    fcs = 0xFFFF
    for byte in data:
        fcs ^= byte
        for _ in range(8):
            fcs = (fcs >> 1) ^ 0x8408 if fcs & 1 else fcs >> 1
    return fcs ^ 0xFFFF


def _ref_encode(payload):
    fcs = _ref_fcs16(payload)
    body = payload + bytes([fcs & 0xFF, (fcs >> 8) & 0xFF])
    out = bytearray([FLAG])
    for byte in body:
        if byte in (FLAG, 0x7D) or byte < 0x20:
            out.append(0x7D)
            out.append(byte ^ ESCAPE_XOR)
        else:
            out.append(byte)
    out.append(FLAG)
    return bytes(out)


def _ref_decode(frame):
    if len(frame) < 2 or frame[0] != FLAG or frame[-1] != FLAG:
        raise HdlcError("frame not delimited by flag octets")
    body = bytearray()
    escaped = False
    for byte in frame[1:-1]:
        if escaped:
            body.append(byte ^ ESCAPE_XOR)
            escaped = False
        elif byte == 0x7D:
            escaped = True
        elif byte == FLAG:
            raise HdlcError("unescaped flag inside frame")
        else:
            body.append(byte)
    if escaped:
        raise HdlcError("frame ends mid-escape")
    if len(body) < 2:
        raise HdlcError("frame too short for FCS")
    payload, fcs_bytes = bytes(body[:-2]), body[-2:]
    if _ref_fcs16(payload) != (fcs_bytes[0] | (fcs_bytes[1] << 8)):
        raise HdlcError("FCS mismatch")
    return payload


def test_table_fcs_matches_bitwise_reference():
    rng = random.Random(99)
    for _ in range(300):
        data = bytes(rng.randrange(256) for _ in range(rng.randrange(64)))
        assert _fcs16(data) == _ref_fcs16(data)


def test_encode_matches_reference():
    rng = random.Random(7)
    for _ in range(300):
        payload = bytes(rng.randrange(256) for _ in range(rng.randrange(120)))
        assert hdlc_encode(payload) == _ref_encode(payload)


def test_decode_matches_reference_on_adversarial_frames():
    rng = random.Random(11)
    interesting = [0x7E, 0x7D, 0x00, 0x1F, 0x20, 0x41]
    for _ in range(2000):
        choice = rng.random()
        if choice < 0.4:
            frame = bytes(rng.choice(interesting) for _ in range(rng.randrange(10)))
        elif choice < 0.7:
            mutated = bytearray(
                _ref_encode(bytes(rng.randrange(256) for _ in range(rng.randrange(24))))
            )
            for _ in range(rng.randrange(3)):
                if mutated:
                    mutated[rng.randrange(len(mutated))] = rng.randrange(256)
            frame = bytes(mutated)
        else:
            frame = b"\x7e" + bytes(rng.randrange(256) for _ in range(rng.randrange(30))) + b"\x7e"
        try:
            expected = ("ok", _ref_decode(frame))
        except HdlcError as error:
            expected = ("err", str(error))
        try:
            actual = ("ok", hdlc_decode(frame))
        except HdlcError as error:
            actual = ("err", str(error))
        assert actual == expected, f"divergence on {frame!r}"
