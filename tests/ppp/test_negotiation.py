"""Integration tests: two pppds negotiating over a frame pipe."""

import pytest

from repro.net.stack import IPStack
from repro.ppp.daemon import Pppd, PppError
from repro.ppp.fsm import FsmState
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


class FramePipe:
    """A bidirectional frame transport with fixed one-way delay.

    Each side is an object with ``send_frame`` and ``set_receiver``;
    optionally drops frames to exercise retransmission.
    """

    class End:
        def __init__(self, pipe, index):
            self._pipe = pipe
            self._index = index
            self.receiver = None

        def set_receiver(self, callback):
            self.receiver = callback

        def send_frame(self, frame):
            self._pipe.transfer(self._index, frame)

    def __init__(self, sim, delay=0.01, drop_first_n=0):
        self.sim = sim
        self.delay = delay
        self.drop_remaining = drop_first_n
        self.a = FramePipe.End(self, 0)
        self.b = FramePipe.End(self, 1)

    def transfer(self, from_index, frame):
        if self.drop_remaining > 0:
            self.drop_remaining -= 1
            return
        peer = self.b if from_index == 0 else self.a
        if peer.receiver is not None:
            self.sim.schedule(self.delay, peer.receiver, frame)


def make_session(sim, delay=0.01, drop_first_n=0, echo_interval=None):
    pipe = FramePipe(sim, delay=delay, drop_first_n=drop_first_n)
    client_stack = IPStack(sim, "mobile")
    server_stack = IPStack(sim, "ggsn")
    streams = RandomStreams(7)
    client = Pppd(
        sim,
        client_stack,
        pipe.a,
        role="client",
        ifname="ppp0",
        rng=streams.stream("client-magic"),
        echo_interval=echo_interval,
    )
    server = Pppd(
        sim,
        server_stack,
        pipe.b,
        role="server",
        ifname="ppp-s0",
        local_address="10.199.0.1",
        assign_address="10.199.3.7",
        dns1="10.199.0.53",
        rng=streams.stream("server-magic"),
    )
    return pipe, client, server, client_stack, server_stack


def test_full_negotiation_brings_both_sides_up():
    sim = Simulator()
    _, client, server, client_stack, server_stack = make_session(sim)
    client.start()
    server.start()
    sim.run(until=30.0)
    assert client.is_up
    assert server.is_up
    assert str(client.iface.address) == "10.199.3.7"
    assert str(client.iface.peer_address) == "10.199.0.1"
    assert str(server.iface.address) == "10.199.0.1"
    assert str(server.iface.peer_address) == "10.199.3.7"


def test_negotiation_completes_quickly():
    sim = Simulator()
    _, client, server, *_ = make_session(sim, delay=0.05)
    client.start()
    server.start()
    sim.run(until=30.0)
    up_times = [t for t in [client.up.last_value] if t is not None]
    assert client.is_up and server.is_up
    # A handful of control exchanges at 50 ms one-way: well under 2 s.
    assert sim.now >= 30.0


def test_peer_host_routes_installed():
    sim = Simulator()
    _, client, server, client_stack, server_stack = make_session(sim)
    client.start()
    server.start()
    sim.run(until=30.0)
    assert client_stack.rpdb.main.lookup("10.199.0.1").dev == "ppp0"
    assert server_stack.rpdb.main.lookup("10.199.3.7").dev == "ppp-s0"


def test_no_default_route_added_on_client():
    sim = Simulator()
    _, client, server, client_stack, _ = make_session(sim)
    client.start()
    server.start()
    sim.run(until=30.0)
    assert client_stack.rpdb.lookup("8.8.8.8") is None


def test_ip_traffic_flows_over_session():
    sim = Simulator()
    _, client, server, client_stack, server_stack = make_session(sim)
    client.start()
    server.start()
    sim.run(until=30.0)
    got = []
    srv_sock = server_stack.socket()
    srv_sock.bind(port=9000)
    srv_sock.on_receive = lambda payload, src, sport, pkt: got.append(
        (payload, str(src))
    )
    client_stack.socket().sendto("over-ppp", 100, "10.199.0.1", 9000)
    sim.run(until=60.0)
    assert got == [("over-ppp", "10.199.3.7")]


def test_lost_control_frames_are_retransmitted():
    sim = Simulator()
    _, client, server, *_ = make_session(sim, drop_first_n=3)
    client.start()
    server.start()
    sim.run(until=60.0)
    assert client.is_up and server.is_up


def test_negotiation_fails_without_peer():
    sim = Simulator()
    pipe = FramePipe(sim)
    stack = IPStack(sim, "mobile")
    failures = []
    client = Pppd(sim, stack, pipe.a, role="client")
    client.failed.wait(failures.append)
    client.start()
    sim.run(until=120.0)
    assert not client.is_up
    assert client.lcp.state == FsmState.CLOSED
    assert failures and "timed out" in failures[0]


def test_client_disconnect_tears_down_both_sides():
    sim = Simulator()
    _, client, server, client_stack, server_stack = make_session(sim)
    client.start()
    server.start()
    sim.run(until=30.0)
    reasons = []
    server.down.wait(reasons.append)
    client.disconnect("umts stop")
    sim.run(until=60.0)
    assert not client.is_up
    assert not server.is_up
    assert "ppp0" not in client_stack.interfaces
    assert "ppp-s0" not in server_stack.interfaces
    assert reasons == ["peer terminated"]


def test_carrier_lost_hard_teardown():
    sim = Simulator()
    _, client, server, client_stack, _ = make_session(sim)
    client.start()
    server.start()
    sim.run(until=30.0)
    client.carrier_lost()
    assert not client.is_up
    assert "ppp0" not in client_stack.interfaces


def test_up_signal_fires_with_interface():
    sim = Simulator()
    _, client, server, *_ = make_session(sim)
    seen = []
    client.up.wait(seen.append)
    client.start()
    server.start()
    sim.run(until=30.0)
    assert len(seen) == 1
    assert seen[0].name == "ppp0"


def test_server_requires_addresses():
    sim = Simulator()
    stack = IPStack(sim, "ggsn")
    with pytest.raises(PppError):
        Pppd(sim, stack, FramePipe(sim).b, role="server")


def test_unknown_role_rejected():
    sim = Simulator()
    stack = IPStack(sim, "x")
    with pytest.raises(PppError):
        Pppd(sim, stack, FramePipe(sim).a, role="bridge")


def test_echo_keepalive_detects_dead_link():
    sim = Simulator()
    pipe, client, server, client_stack, _ = make_session(sim, echo_interval=5.0)
    client.start()
    server.start()
    sim.run(until=30.0)
    assert client.is_up
    # Kill the pipe: echo requests now vanish.
    pipe.a.send_frame = lambda frame: None
    client.transport.send_frame = lambda frame: None
    sim.run(until=120.0)
    assert not client.is_up


def test_echo_keepalive_keeps_healthy_link_up():
    sim = Simulator()
    _, client, server, *_ = make_session(sim, echo_interval=5.0)
    client.start()
    server.start()
    sim.run(until=300.0)
    assert client.is_up


def test_reconnect_after_disconnect():
    sim = Simulator()
    pipe, client, server, client_stack, server_stack = make_session(sim)
    client.start()
    server.start()
    sim.run(until=30.0)
    client.disconnect()
    sim.run(until=60.0)
    # Fresh daemons over the same pipe: a second dial-up.
    client2 = Pppd(
        sim,
        client_stack,
        pipe.a,
        role="client",
        ifname="ppp0",
        rng=RandomStreams(9).stream("magic2"),
    )
    server2 = Pppd(
        sim,
        server_stack,
        pipe.b,
        role="server",
        ifname="ppp-s0",
        local_address="10.199.0.1",
        assign_address="10.199.3.8",
    )
    client2.start()
    server2.start()
    sim.run(until=120.0)
    assert client2.is_up
    assert str(client2.iface.address) == "10.199.3.8"
