"""Unit and property tests for HDLC framing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ppp.hdlc import ESCAPE, FLAG, HdlcError, hdlc_decode, hdlc_encode


def test_roundtrip_simple():
    assert hdlc_decode(hdlc_encode(b"hello ppp")) == b"hello ppp"


def test_roundtrip_empty():
    assert hdlc_decode(hdlc_encode(b"")) == b""


def test_flag_octets_delimit_frame():
    frame = hdlc_encode(b"x")
    assert frame[0] == FLAG
    assert frame[-1] == FLAG


def test_payload_flags_are_escaped():
    frame = hdlc_encode(bytes([FLAG, ESCAPE, 0x01]))
    # No raw flag/escape octets inside the frame body.
    assert FLAG not in frame[1:-1]


def test_corrupted_fcs_rejected():
    frame = bytearray(hdlc_encode(b"payload"))
    frame[3] ^= 0xFF
    with pytest.raises(HdlcError):
        hdlc_decode(bytes(frame))


def test_missing_flags_rejected():
    with pytest.raises(HdlcError):
        hdlc_decode(b"\x01\x02\x03")


def test_truncated_frame_rejected():
    with pytest.raises(HdlcError):
        hdlc_decode(bytes([FLAG, FLAG]))


def test_dangling_escape_rejected():
    with pytest.raises(HdlcError):
        hdlc_decode(bytes([FLAG, 0x40, 0x40, 0x40, ESCAPE, FLAG]))


def test_unescaped_interior_flag_rejected():
    good = hdlc_encode(b"abcdef")
    # Splice a raw flag into the body.
    broken = good[:3] + bytes([FLAG]) + good[3:]
    with pytest.raises(HdlcError):
        hdlc_decode(broken)


@given(st.binary(min_size=0, max_size=2048))
@settings(max_examples=200)
def test_roundtrip_property(payload):
    assert hdlc_decode(hdlc_encode(payload)) == payload


@given(st.binary(min_size=1, max_size=512))
@settings(max_examples=100)
def test_encoded_body_has_no_raw_flags(payload):
    frame = hdlc_encode(payload)
    assert FLAG not in frame[1:-1]


@given(st.binary(min_size=1, max_size=256), st.integers(min_value=0, max_value=255))
@settings(max_examples=100)
def test_single_byte_corruption_detected_or_harmless(payload, xor):
    frame = bytearray(hdlc_encode(payload))
    if xor == 0:
        return
    index = len(frame) // 2
    if index == 0 or index == len(frame) - 1:
        return
    frame[index] ^= xor
    try:
        decoded = hdlc_decode(bytes(frame))
    except HdlcError:
        return
    # Corrupting a plain body octet is a <=8-bit burst, which CRC-16
    # always detects; surviving decodes can only come from corruption
    # that re-aligned escapes, where CRC detection is probabilistic.
    # Either way the decoder must return bytes, never crash oddly.
    assert isinstance(decoded, bytes)
