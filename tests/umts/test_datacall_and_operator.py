"""Unit tests for data-call lifecycle details and operator bookkeeping."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.umts.operator import UmtsError, commercial_operator


class FakeModem:
    """Minimal stand-in for a registered modem."""

    def __init__(self):
        self.frames = []
        self.drops = []


def make_operator(seed=0):
    sim = Simulator()
    return sim, commercial_operator(sim, RandomStreams(seed))


def open_call(sim, operator):
    modem = FakeModem()
    call = operator.open_data_call(modem, apn=operator.apn)
    call.set_downlink(modem.frames.append)
    call.set_on_drop(modem.drops.append)
    return modem, call


def test_open_allocates_and_counts():
    sim, operator = make_operator()
    _, call = open_call(sim, operator)
    assert operator.sessions_opened == 1
    assert operator.ggsn.pool.in_use == 1
    assert call.active
    assert call.assigned_address in operator.ggsn.pool.prefix


def test_close_releases_everything():
    sim, operator = make_operator()
    _, call = open_call(sim, operator)
    operator.close_data_call(call, "test")
    assert not call.active
    assert operator.ggsn.pool.in_use == 0
    assert operator.calls == []
    assert operator.sessions_closed == 1


def test_close_is_idempotent():
    sim, operator = make_operator()
    _, call = open_call(sim, operator)
    operator.close_data_call(call)
    operator.close_data_call(call)
    assert operator.sessions_closed == 1


def test_hangup_routes_through_operator():
    sim, operator = make_operator()
    _, call = open_call(sim, operator)
    call.hangup("modem ATH")
    assert not call.active
    assert operator.calls == []


def test_drop_call_notifies_modem():
    sim, operator = make_operator()
    modem, call = open_call(sim, operator)
    operator.drop_call(call, "admin")
    assert modem.drops == ["admin"]
    assert not call.active


def test_frames_ignored_after_close():
    sim, operator = make_operator()
    modem, call = open_call(sim, operator)
    operator.close_data_call(call)
    from repro.ppp.frame import PPP_LCP, ControlPacket, PPPFrame

    call.send_uplink(PPPFrame(PPP_LCP, ControlPacket(1, 1)))
    call._downlink_deliver(PPPFrame(PPP_LCP, ControlPacket(2, 1)))
    sim.run(until=5.0)
    assert call.uplink_frames == 0
    assert modem.frames == []


def test_session_counter_names_interfaces_uniquely():
    sim, operator = make_operator()
    _, first = open_call(sim, operator)
    _, second = open_call(sim, operator)
    names = [c.server_pppd.ifname for c in (first, second)]
    assert len(set(names)) == 2


def test_advertised_rate_is_downlink():
    sim, operator = make_operator()
    _, call = open_call(sim, operator)
    assert call.advertised_rate_bps == operator.downlink_rate_bps


def test_session_ifaces_on_ggsn_stack():
    sim, operator = make_operator()
    _, call = open_call(sim, operator)
    sim.run(until=60.0)  # let the server pppd retransmit and give up
    # The session interface only appears once IPCP opens; with no
    # client on the other end, negotiation fails and nothing leaks.
    leftovers = [n for n in operator.ggsn.stack.interfaces if n.startswith("ppp-s")]
    assert leftovers == []


def test_wrong_apn_and_capacity():
    sim, operator = make_operator()
    with pytest.raises(UmtsError):
        operator.open_data_call(FakeModem(), apn="nope")
    operator.max_sessions = 0
    with pytest.raises(UmtsError):
        operator.open_data_call(FakeModem(), apn=operator.apn)


def test_cell_naming_sequence():
    sim, operator = make_operator()
    a = operator.new_cell()
    b = operator.new_cell()
    assert a.name == "cell-0"
    assert b.name == "cell-1"
