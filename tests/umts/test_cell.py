"""Unit tests for the radio cell."""


from repro.modem.device import RegistrationStatus
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.umts.operator import commercial_operator


def make_cell(**kwargs):
    sim = Simulator()
    operator = commercial_operator(sim, RandomStreams(0))
    return operator.new_cell(**kwargs)


def test_registration_delay_within_bounds():
    cell = make_cell(search_time_min=2.0, search_time_max=8.0)
    rng = RandomStreams(1).stream("r")
    for _ in range(50):
        delay = cell.registration_delay(rng)
        assert 2.0 <= delay <= 8.0


def test_home_registration_default():
    cell = make_cell()
    assert cell.registration_result(None) == RegistrationStatus.REGISTERED_HOME
    assert cell.attached_modems == 1


def test_roaming_cell():
    cell = make_cell(roaming=True)
    assert cell.registration_result(None) == RegistrationStatus.REGISTERED_ROAMING


def test_denying_cell():
    cell = make_cell(deny_registration=True)
    assert cell.registration_result(None) == RegistrationStatus.DENIED
    assert cell.attached_modems == 0


def test_signal_quality_clamped():
    cell = make_cell(base_csq=30, csq_spread=10)
    rng = RandomStreams(2).stream("s")
    values = [cell.signal_quality(rng) for _ in range(200)]
    assert all(0 <= v <= 31 for v in values)
    assert max(values) == 31  # the clamp engaged at least once


def test_signal_quality_low_end_clamp():
    cell = make_cell(base_csq=1, csq_spread=5)
    rng = RandomStreams(3).stream("s")
    values = [cell.signal_quality(rng) for _ in range(200)]
    assert all(0 <= v <= 31 for v in values)
    assert min(values) == 0


def test_operator_name_exposed():
    cell = make_cell()
    assert "commercial" in cell.operator_name


def test_open_data_call_delegates_to_operator():
    sim = Simulator()
    operator = commercial_operator(sim, RandomStreams(0))
    cell = operator.new_cell()

    class FakeModem:
        pass

    call = cell.open_data_call(FakeModem(), apn=operator.apn)
    assert call in operator.calls
