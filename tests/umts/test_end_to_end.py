"""End-to-end UMTS integration: register, dial, PPP up, traffic flows.

Builds the full chain the paper's node uses — modem → cell → operator
core → Internet → remote host — without the PlanetLab management layer
(that lives in repro.testbed) and drives a complete dial-up.
"""

import pytest

from repro.modem.cards import GlobetrotterGT3G
from repro.modem.comgt import Comgt
from repro.modem.wvdial import SerialPppTransport, Wvdial
from repro.net.interface import EthernetInterface
from repro.net.link import Link
from repro.net.stack import IPStack
from repro.ppp.daemon import Pppd
from repro.sim.engine import Simulator
from repro.sim.process import spawn
from repro.sim.rng import RandomStreams
from repro.umts.operator import UmtsError, commercial_operator, private_microcell


class UmtsWorld:
    """Mobile + operator + internet router + remote host."""

    def __init__(self, seed=0, operator_factory=commercial_operator):
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.operator = operator_factory(self.sim, self.streams)
        self.cell = self.operator.new_cell()
        # Internet core.
        self.router = IPStack(self.sim, "internet")
        self.router.forwarding = True
        self.operator.connect_to_internet(self.router, "85.37.17.2", "85.37.17.1")
        # Remote host on its own LAN.
        self.remote = IPStack(self.sim, "inria")
        r_eth = self.remote.add_interface(EthernetInterface("eth0"))
        self.remote.configure_interface(r_eth, "138.96.250.100", 24)
        router_iface = self.router.add_interface(EthernetInterface("to-inria"))
        self.router.configure_interface(router_iface, "138.96.250.1", 24)
        Link(self.sim, r_eth, router_iface, rate_bps=100e6, delay=0.004)
        self.remote.ip.route_add("default", "eth0", via="138.96.250.1")
        # The mobile node.
        self.mobile = IPStack(self.sim, "napoli")
        self.modem = GlobetrotterGT3G(
            self.sim, rng=self.streams.stream("modem")
        )
        self.modem.plug_into(self.cell)
        self.pppd = None

    def dial(self):
        """comgt + wvdial + pppd as one process; returns the process."""

        def sequence():
            code, lines = yield from Comgt(self.modem.port).run()
            if code != 0:
                return ("comgt-failed", lines)
            code, lines = yield from Wvdial(
                self.modem.port, apn=self.operator.apn
            ).run()
            if code != 0:
                return ("wvdial-failed", lines)
            transport = SerialPppTransport(self.sim, self.modem.port)
            self.pppd = Pppd(
                self.sim,
                self.mobile,
                transport,
                role="client",
                ifname="ppp0",
                rng=self.streams.stream("magic"),
            )
            self.pppd.start()
            result = yield self.pppd.up
            return ("up", result)

        return spawn(self.sim, sequence(), name="dial")


@pytest.fixture()
def world():
    return UmtsWorld()


def test_full_dialup_brings_ppp0_up(world):
    process = world.dial()
    world.sim.run(until=60.0)
    assert not process.alive
    status, iface = process.value
    assert status == "up"
    assert iface.name == "ppp0"
    assert world.pppd.is_up
    assert iface.address in world.operator.ggsn.pool.prefix
    assert str(iface.peer_address) == str(world.operator.ggsn.internal_address)


def test_dialup_takes_realistic_time(world):
    process = world.dial()
    world.sim.run(until=60.0)
    # Registration search (2-8 s) + PDP activation (~2 s) + PPP RTTs.
    assert 4.0 < world.sim.now or not process.alive
    assert not process.alive


def test_traffic_mobile_to_remote(world):
    world.dial()
    world.sim.run(until=60.0)
    world.mobile.ip.route_add("default", "ppp0", metric=10)
    got = []
    server = world.remote.socket()
    server.bind(port=8999)
    server.on_receive = lambda payload, src, sport, pkt: got.append(
        (payload, str(src))
    )
    world.mobile.socket().sendto("from-the-field", 100, "138.96.250.100", 8999)
    world.sim.run(until=70.0)
    assert len(got) == 1
    payload, src = got[0]
    assert payload == "from-the-field"
    assert src == str(world.pppd.iface.address)


def test_remote_can_reply_to_mobile(world):
    world.dial()
    world.sim.run(until=60.0)
    world.mobile.ip.route_add("default", "ppp0", metric=10)
    replies = []

    server = world.remote.socket()
    server.bind(port=8999)

    def echo(payload, src, sport, pkt):
        # answer back to the mobile's source address/port
        server.sendto(f"echo:{payload}", 50, src, sport)

    server.on_receive = echo
    client = world.mobile.socket()
    client.bind(port=17000)
    client.on_receive = lambda payload, src, sport, pkt: replies.append(payload)
    client.sendto("ping", 50, "138.96.250.100", 8999)
    world.sim.run(until=80.0)
    assert replies == ["echo:ping"]


def test_unsolicited_inbound_blocked_by_operator_firewall(world):
    world.dial()
    world.sim.run(until=60.0)
    mobile_addr = str(world.pppd.iface.address)
    listener = world.mobile.socket()
    listener.bind(port=22)
    got = []
    listener.on_receive = lambda payload, *a: got.append(payload)
    intruder = world.remote.socket()
    intruder.sendto("ssh-probe", 60, mobile_addr, 22)
    world.sim.run(until=90.0)
    assert got == []
    assert world.operator.ggsn.inbound_blocked >= 1


def test_private_microcell_allows_inbound():
    world = UmtsWorld(operator_factory=private_microcell)
    world.dial()
    world.sim.run(until=60.0)
    mobile_addr = str(world.pppd.iface.address)
    listener = world.mobile.socket()
    listener.bind(port=22)
    got = []
    listener.on_receive = lambda payload, *a: got.append(payload)
    world.remote.socket().sendto("ssh-ok", 60, mobile_addr, 22)
    world.sim.run(until=90.0)
    assert got == ["ssh-ok"]


def test_established_flow_opens_return_path(world):
    world.dial()
    world.sim.run(until=60.0)
    world.mobile.ip.route_add("default", "ppp0", metric=10)
    mobile_addr = str(world.pppd.iface.address)
    # Mobile initiates towards the remote: the flow becomes established.
    client = world.mobile.socket()
    client.bind(port=5060)
    got = []
    client.on_receive = lambda payload, *a: got.append(payload)
    client.sendto("register", 50, "138.96.250.100", 8999)
    world.sim.run(until=70.0)
    # Now the remote can push data back in.
    world.remote.socket().sendto("push", 50, mobile_addr, 5060)
    world.sim.run(until=90.0)
    assert got == ["push"]


def test_hangup_releases_address_and_session(world):
    world.dial()
    world.sim.run(until=60.0)
    assert world.operator.ggsn.pool.in_use == 1
    assert len(world.operator.calls) == 1
    world.pppd.disconnect("umts stop")
    call = None  # modem still holds the call; hang up via modem
    world.modem._hangup("stop")
    world.sim.run(until=90.0)
    assert world.operator.ggsn.pool.in_use == 0
    assert world.operator.calls == []
    assert world.operator.sessions_closed == 1


def test_wrong_apn_rejected(world):
    world.sim.run(until=20.0)  # let registration finish

    class Holder:
        pass

    with pytest.raises(UmtsError):
        world.operator.open_data_call(world.modem, apn="wrong.apn")


def test_session_capacity_enforced():
    world = UmtsWorld()
    world.operator.max_sessions = 1
    world.sim.run(until=20.0)
    world.operator.open_data_call(world.modem, apn=world.operator.apn)
    with pytest.raises(UmtsError):
        world.operator.open_data_call(world.modem, apn=world.operator.apn)


def test_network_drop_notifies_modem(world):
    world.dial()
    world.sim.run(until=60.0)
    call = world.operator.calls[0]
    world.operator.drop_call(call, "admin drop")
    world.sim.run(until=70.0)
    assert not world.modem.data_mode
    assert world.operator.calls == []


def test_two_seeds_give_different_but_valid_runs():
    w1 = UmtsWorld(seed=1)
    w2 = UmtsWorld(seed=2)
    p1 = w1.dial()
    p2 = w2.dial()
    w1.sim.run(until=60.0)
    w2.sim.run(until=60.0)
    assert p1.value[0] == "up" and p2.value[0] == "up"


def test_same_seed_is_deterministic():
    w1 = UmtsWorld(seed=5)
    w2 = UmtsWorld(seed=5)
    w1.dial()
    w2.dial()
    w1.sim.run(until=60.0)
    w2.sim.run(until=60.0)
    assert str(w1.pppd.iface.address) == str(w2.pppd.iface.address)
