"""Unit tests for the GGSN: flow table, ingress filter, pool wiring."""

import pytest

from repro.net.addressing import ip
from repro.net.packet import Packet
from repro.netfilter.chains import HOOK_FORWARD, PacketContext
from repro.sim.engine import Simulator
from repro.umts.ggsn import EstablishedFlowMatch, Ggsn


@pytest.fixture()
def ggsn():
    return Ggsn(
        Simulator(),
        "ggsn",
        "10.199.0.0/16",
        "10.199.0.1",
        block_inbound=True,
        conntrack_ttl=300.0,
    )


def test_pool_reserves_internal_address(ggsn):
    for _ in range(20):
        assert ggsn.pool.allocate() != ip("10.199.0.1")


def test_flow_recording_and_lookup(ggsn):
    mobile, remote = ip("10.199.3.7"), ip("138.96.250.100")
    assert not ggsn.is_established(remote, mobile, now=10.0)
    ggsn.record_flow(mobile, remote, now=5.0)
    assert ggsn.is_established(remote, mobile, now=10.0)
    # Direction matters: the mobile initiated toward the remote.
    assert not ggsn.is_established(mobile, remote, now=10.0)


def test_flow_expiry(ggsn):
    mobile, remote = ip("10.199.3.7"), ip("138.96.250.100")
    ggsn.record_flow(mobile, remote, now=0.0)
    assert ggsn.is_established(remote, mobile, now=299.0)
    assert not ggsn.is_established(remote, mobile, now=301.0)
    # The expired entry was dropped on lookup.
    assert ggsn.active_flows == 0


def test_flow_refresh_extends_lifetime(ggsn):
    mobile, remote = ip("10.199.3.7"), ip("138.96.250.100")
    ggsn.record_flow(mobile, remote, now=0.0)
    ggsn.record_flow(mobile, remote, now=250.0)
    assert ggsn.is_established(remote, mobile, now=500.0)


def test_expire_flows_sweep(ggsn):
    ggsn.record_flow(ip("10.199.3.7"), ip("1.1.1.1"), now=0.0)
    ggsn.record_flow(ip("10.199.3.8"), ip("2.2.2.2"), now=400.0)
    removed = ggsn.expire_flows(now=500.0)
    assert removed == 1
    assert ggsn.active_flows == 1


def test_forward_chain_has_ingress_rule(ggsn):
    rules = ggsn.stack.netfilter.table("filter").chain(HOOK_FORWARD).rules
    assert len(rules) == 1
    assert "conntrack" in repr(rules[0])


def test_inbound_to_pool_dropped_without_flow(ggsn):
    packet = Packet("10.199.3.7", src="138.96.250.100", size=10)
    ok = ggsn.stack.netfilter.run_hook(
        HOOK_FORWARD, packet, in_iface="gi", out_iface="ppp-s0", now=0.0
    )
    assert ok is False
    assert ggsn.inbound_blocked == 1


def test_inbound_allowed_with_established_flow(ggsn):
    ggsn.record_flow(ip("10.199.3.7"), ip("138.96.250.100"), now=0.0)
    packet = Packet("10.199.3.7", src="138.96.250.100", size=10)
    ok = ggsn.stack.netfilter.run_hook(
        HOOK_FORWARD, packet, in_iface="gi", out_iface="ppp-s0", now=1.0
    )
    assert ok is True


def test_transit_traffic_not_affected(ggsn):
    # Traffic not destined to the pool passes the ingress rule.
    packet = Packet("8.8.8.8", src="10.199.3.7", size=10)
    ok = ggsn.stack.netfilter.run_hook(
        HOOK_FORWARD, packet, in_iface="ppp-s0", out_iface="gi", now=0.0
    )
    assert ok is True


def test_open_ggsn_has_no_rule():
    open_ggsn = Ggsn(
        Simulator(), "g", "10.201.0.0/16", "10.201.0.1", block_inbound=False
    )
    assert open_ggsn.stack.netfilter.table("filter").chain(HOOK_FORWARD).rules == []
    assert open_ggsn.inbound_blocked == 0


def test_established_match_inversion(ggsn):
    match = EstablishedFlowMatch(ggsn, invert=False)
    packet = Packet("10.199.3.7", src="138.96.250.100")
    ctx = PacketContext(packet, HOOK_FORWARD, now=0.0)
    assert not match.matches(ctx)
    ggsn.record_flow(ip("10.199.3.7"), ip("138.96.250.100"), now=0.0)
    assert match.matches(ctx)
