"""Unit tests for RAB grades and adaptation."""

import pytest

from repro.net.link import Channel
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.umts.rab import (
    DEFAULT_UPLINK_GRADES,
    RENEG_IDLE,
    RENEG_PENDING,
    RabConfig,
    RabController,
)


def make_channel(sim, rate=144000.0, queue_bytes=50000):
    return Channel(sim, lambda p: None, rate_bps=rate, delay=0.05, queue_bytes=queue_bytes)


def saturate(sim, channel, pps=122, size=1024, duration=120.0):
    """Offer a constant overload to the channel."""

    def tick(t=[0.0]):
        channel.send(Packet("10.0.0.1", size=size))
        t[0] += 1.0 / pps
        if t[0] < duration:
            sim.schedule(1.0 / pps, tick)

    sim.schedule(0.0, tick)


def test_config_defaults_valid():
    config = RabConfig()
    assert config.grades == DEFAULT_UPLINK_GRADES
    assert config.grades[config.initial_grade_index] == 144000.0


def test_config_validation():
    with pytest.raises(ValueError):
        RabConfig(grades=[])
    with pytest.raises(ValueError):
        RabConfig(grades=[384000.0, 64000.0])
    with pytest.raises(ValueError):
        RabConfig(initial_grade_index=7)
    with pytest.raises(ValueError):
        RabConfig(eval_period=0)


def test_config_copy_overrides():
    config = RabConfig()
    quick = config.copy(sustain_time=5.0)
    assert quick.sustain_time == 5.0
    assert quick.grades == config.grades
    assert config.sustain_time != 5.0


def test_initial_grade_applied_to_channel():
    sim = Simulator()
    channel = make_channel(sim, rate=999.0)
    RabController(sim, channel, RabConfig())
    assert channel.rate_bps == 144000.0


def test_upgrade_after_sustained_demand():
    sim = Simulator()
    channel = make_channel(sim)
    controller = RabController(sim, channel, RabConfig())
    saturate(sim, channel)
    sim.run(until=120.0)
    assert controller.upgrades == 1
    assert controller.current_rate == 384000.0
    # The upgrade lands around t = sustain + grant ≈ 48 s.
    upgrade_time = controller.grade_history.times[1]
    assert 40.0 <= upgrade_time <= 60.0


def test_no_upgrade_when_disabled():
    sim = Simulator()
    channel = make_channel(sim)
    controller = RabController(
        sim, channel, RabConfig(adaptation_enabled=False)
    )
    saturate(sim, channel)
    sim.run(until=120.0)
    assert controller.upgrades == 0
    assert controller.current_rate == 144000.0


def test_light_load_never_upgrades():
    sim = Simulator()
    channel = make_channel(sim)
    controller = RabController(sim, channel, RabConfig())
    saturate(sim, channel, pps=10, size=100)  # ~8 kbit/s
    sim.run(until=120.0)
    assert controller.upgrades == 0


def test_downgrade_after_idle():
    sim = Simulator()
    channel = make_channel(sim)
    controller = RabController(sim, channel, RabConfig())
    saturate(sim, channel, duration=60.0)
    sim.run(until=200.0)
    assert controller.upgrades == 1
    assert controller.downgrades == 1
    assert controller.current_rate == 144000.0


def test_stop_halts_evaluation():
    sim = Simulator()
    channel = make_channel(sim)
    controller = RabController(sim, channel, RabConfig())
    saturate(sim, channel)
    sim.run(until=10.0)
    controller.stop()
    sim.run(until=120.0)
    assert controller.upgrades == 0
    assert controller.current_rate == 144000.0


def test_grade_history_records_changes():
    sim = Simulator()
    channel = make_channel(sim)
    controller = RabController(sim, channel, RabConfig())
    saturate(sim, channel)
    sim.run(until=120.0)
    assert controller.grade_history.values[0] == 144000.0
    assert controller.grade_history.values[-1] == 384000.0


def test_upgrade_stops_at_top_grade():
    sim = Simulator()
    channel = make_channel(sim)
    config = RabConfig(sustain_time=4.0, grant_delay=1.0)
    controller = RabController(sim, channel, config)
    saturate(sim, channel, duration=300.0)
    sim.run(until=300.0)
    assert controller.current_rate == 384000.0
    assert controller.upgrades == 1  # 144k -> 384k, nothing above


# -- explicit renegotiation (the scenario grammar's RAB-modify path) -------


def ladder_controller(sim):
    """A 3-grade ladder with adaptation off: only renegotiation moves it."""
    channel = make_channel(sim)
    config = RabConfig(
        grades=[64000.0, 144000.0, 384000.0],
        initial_grade_index=0,
        adaptation_enabled=False,
        grant_delay=4.0,
    )
    return RabController(sim, channel, config), channel


def test_renegotiate_applies_after_grant_delay():
    sim = Simulator()
    controller, channel = ladder_controller(sim)
    assert controller.renegotiate(2) is True
    assert controller.renegotiation == RENEG_PENDING
    sim.run(until=2.0)
    assert channel.rate_bps == 64000.0  # grant still in flight
    sim.run(until=5.0)
    assert controller.renegotiation == RENEG_IDLE
    assert channel.rate_bps == 384000.0
    assert controller.renegotiations == 1
    assert controller.upgrades == 1
    assert controller.renegotiations_failed == 0


def test_renegotiate_down_counts_a_downgrade():
    sim = Simulator()
    controller, channel = ladder_controller(sim)
    controller.renegotiate(2)
    sim.run(until=5.0)
    controller.renegotiate(0)
    sim.run(until=10.0)
    assert channel.rate_bps == 64000.0
    assert controller.downgrades == 1
    assert controller.renegotiations == 2


def test_renegotiate_supersedes_earlier_renegotiation():
    sim = Simulator()
    controller, channel = ladder_controller(sim)
    controller.renegotiate(2)
    sim.run(until=1.0)
    controller.renegotiate(1)  # re-decide while the grant is in flight
    sim.run(until=10.0)
    # Only the second request lands; the first grant was cancelled.
    assert channel.rate_bps == 144000.0
    assert controller.renegotiations == 1


def test_renegotiate_rejects_bad_target():
    sim = Simulator()
    controller, _ = ladder_controller(sim)
    with pytest.raises(ValueError):
        controller.renegotiate(3)
    with pytest.raises(ValueError):
        controller.renegotiate(-1)


def test_renegotiate_against_released_bearer_fails_softly():
    sim = Simulator()
    controller, channel = ladder_controller(sim)
    controller.stop()
    assert controller.renegotiate(2) is False
    assert controller.renegotiations_failed == 1
    assert channel.rate_bps == 64000.0


def test_preempt_mid_renegotiation_settles_at_lowest_grade():
    # The satellite fix: a RAB preempted while a renegotiation grant is
    # outstanding must settle to a *defined* state — the preempted
    # (lowest) grade — with the stale grant revoked, not applied later.
    sim = Simulator()
    controller, channel = ladder_controller(sim)
    controller.renegotiate(2)
    sim.run(until=1.0)
    controller.preempt()
    assert controller.renegotiation == RENEG_IDLE
    assert controller.renegotiations_failed == 1
    sim.run(until=20.0)  # past the cancelled grant's landing time
    assert channel.rate_bps == 64000.0
    assert controller.renegotiations == 0  # the aborted one never counted


def test_stop_mid_renegotiation_aborts_cleanly():
    sim = Simulator()
    controller, channel = ladder_controller(sim)
    controller.renegotiate(2)
    sim.run(until=1.0)
    controller.stop()
    assert controller.renegotiation == RENEG_IDLE
    assert controller.renegotiations_failed == 1
    sim.run(until=20.0)
    assert channel.rate_bps == 64000.0


def test_demand_upgrade_defers_to_pending_renegotiation():
    sim = Simulator()
    channel = make_channel(sim)
    config = RabConfig(sustain_time=4.0, grant_delay=30.0)
    controller = RabController(sim, channel, config)
    saturate(sim, channel, duration=60.0)
    sim.run(until=2.0)
    controller.renegotiate(0)  # long grant window overlapping demand
    sim.run(until=20.0)
    # The demand loop saw sustained backlog but must not race the
    # explicit renegotiation with its own grant.
    assert controller.renegotiation == RENEG_PENDING
    assert controller.upgrades == 0
