"""Unit tests for RAB grades and adaptation."""

import pytest

from repro.net.link import Channel
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.umts.rab import DEFAULT_UPLINK_GRADES, RabConfig, RabController


def make_channel(sim, rate=144000.0, queue_bytes=50000):
    return Channel(sim, lambda p: None, rate_bps=rate, delay=0.05, queue_bytes=queue_bytes)


def saturate(sim, channel, pps=122, size=1024, duration=120.0):
    """Offer a constant overload to the channel."""

    def tick(t=[0.0]):
        channel.send(Packet("10.0.0.1", size=size))
        t[0] += 1.0 / pps
        if t[0] < duration:
            sim.schedule(1.0 / pps, tick)

    sim.schedule(0.0, tick)


def test_config_defaults_valid():
    config = RabConfig()
    assert config.grades == DEFAULT_UPLINK_GRADES
    assert config.grades[config.initial_grade_index] == 144000.0


def test_config_validation():
    with pytest.raises(ValueError):
        RabConfig(grades=[])
    with pytest.raises(ValueError):
        RabConfig(grades=[384000.0, 64000.0])
    with pytest.raises(ValueError):
        RabConfig(initial_grade_index=7)
    with pytest.raises(ValueError):
        RabConfig(eval_period=0)


def test_config_copy_overrides():
    config = RabConfig()
    quick = config.copy(sustain_time=5.0)
    assert quick.sustain_time == 5.0
    assert quick.grades == config.grades
    assert config.sustain_time != 5.0


def test_initial_grade_applied_to_channel():
    sim = Simulator()
    channel = make_channel(sim, rate=999.0)
    RabController(sim, channel, RabConfig())
    assert channel.rate_bps == 144000.0


def test_upgrade_after_sustained_demand():
    sim = Simulator()
    channel = make_channel(sim)
    controller = RabController(sim, channel, RabConfig())
    saturate(sim, channel)
    sim.run(until=120.0)
    assert controller.upgrades == 1
    assert controller.current_rate == 384000.0
    # The upgrade lands around t = sustain + grant ≈ 48 s.
    upgrade_time = controller.grade_history.times[1]
    assert 40.0 <= upgrade_time <= 60.0


def test_no_upgrade_when_disabled():
    sim = Simulator()
    channel = make_channel(sim)
    controller = RabController(
        sim, channel, RabConfig(adaptation_enabled=False)
    )
    saturate(sim, channel)
    sim.run(until=120.0)
    assert controller.upgrades == 0
    assert controller.current_rate == 144000.0


def test_light_load_never_upgrades():
    sim = Simulator()
    channel = make_channel(sim)
    controller = RabController(sim, channel, RabConfig())
    saturate(sim, channel, pps=10, size=100)  # ~8 kbit/s
    sim.run(until=120.0)
    assert controller.upgrades == 0


def test_downgrade_after_idle():
    sim = Simulator()
    channel = make_channel(sim)
    controller = RabController(sim, channel, RabConfig())
    saturate(sim, channel, duration=60.0)
    sim.run(until=200.0)
    assert controller.upgrades == 1
    assert controller.downgrades == 1
    assert controller.current_rate == 144000.0


def test_stop_halts_evaluation():
    sim = Simulator()
    channel = make_channel(sim)
    controller = RabController(sim, channel, RabConfig())
    saturate(sim, channel)
    sim.run(until=10.0)
    controller.stop()
    sim.run(until=120.0)
    assert controller.upgrades == 0
    assert controller.current_rate == 144000.0


def test_grade_history_records_changes():
    sim = Simulator()
    channel = make_channel(sim)
    controller = RabController(sim, channel, RabConfig())
    saturate(sim, channel)
    sim.run(until=120.0)
    assert controller.grade_history.values[0] == 144000.0
    assert controller.grade_history.values[-1] == 384000.0


def test_upgrade_stops_at_top_grade():
    sim = Simulator()
    channel = make_channel(sim)
    config = RabConfig(sustain_time=4.0, grant_delay=1.0)
    controller = RabController(sim, channel, config)
    saturate(sim, channel, duration=300.0)
    sim.run(until=300.0)
    assert controller.current_rate == 384000.0
    assert controller.upgrades == 1  # 144k -> 384k, nothing above
