"""Unit tests for the PDP address pool and the operator pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addressing import ip
from repro.umts.pool import (
    AddressPool,
    NoOperatorError,
    OperatorPool,
    PoolExhaustedError,
)


def test_allocates_distinct_addresses():
    pool = AddressPool("10.199.0.0/24")
    addrs = {pool.allocate() for _ in range(50)}
    assert len(addrs) == 50


def test_reserved_addresses_never_allocated():
    pool = AddressPool("10.199.0.0/29", reserved=["10.199.0.1"])
    allocated = [pool.allocate() for _ in range(5)]
    assert ip("10.199.0.1") not in allocated
    assert ip("10.199.0.0") not in allocated  # network address


def test_exhaustion_raises():
    pool = AddressPool("10.199.0.0/30", reserved=["10.199.0.1"])
    pool.allocate()  # .2 is the only host left (.3 is broadcast)
    with pytest.raises(PoolExhaustedError):
        pool.allocate()


def test_release_and_reuse():
    pool = AddressPool("10.199.0.0/30", reserved=["10.199.0.1"])
    addr = pool.allocate()
    pool.release(addr)
    assert pool.allocate() == addr


def test_release_unallocated_raises():
    pool = AddressPool("10.199.0.0/24")
    with pytest.raises(ValueError):
        pool.release(ip("10.199.0.5"))


def test_in_use_counter():
    pool = AddressPool("10.199.0.0/24")
    a = pool.allocate()
    pool.allocate()
    assert pool.in_use == 2
    pool.release(a)
    assert pool.in_use == 1


def test_contains():
    pool = AddressPool("10.199.0.0/16")
    assert "10.199.3.7" in pool
    assert ip("10.199.0.1") in pool
    assert "10.200.0.1" not in pool


@given(st.integers(min_value=1, max_value=60))
@settings(max_examples=20)
def test_allocate_release_cycles_property(n):
    pool = AddressPool("10.199.0.0/24", reserved=["10.199.0.1"])
    live = []
    for i in range(n):
        live.append(pool.allocate())
        if i % 3 == 2:
            pool.release(live.pop(0))
    assert len(set(live)) == len(live)
    assert pool.in_use == len(live)


def test_allocation_order_is_deterministic_host_order():
    # Two pools over the same prefix hand out identical sequences:
    # ascending host order, skipping reserved (no set/hash ordering).
    first = AddressPool("10.199.0.0/28", reserved=["10.199.0.1", "10.199.0.3"])
    second = AddressPool("10.199.0.0/28", reserved=["10.199.0.1", "10.199.0.3"])
    sequence = [str(first.allocate()) for _ in range(5)]
    assert sequence == [str(second.allocate()) for _ in range(5)]
    assert sequence == [
        "10.199.0.2",
        "10.199.0.4",
        "10.199.0.5",
        "10.199.0.6",
        "10.199.0.7",
    ]


def test_exhausted_pool_recovers_after_release():
    pool = AddressPool("10.199.0.0/29", reserved=["10.199.0.1"])
    held = [pool.allocate() for _ in range(5)]  # .2 .. .6 (.7 broadcast)
    with pytest.raises(PoolExhaustedError):
        pool.allocate()
    pool.release(held[2])
    assert pool.allocate() == held[2]


# -- OperatorPool ----------------------------------------------------------


class FakeOperator:
    def __init__(self, name, apn):
        self.name = name
        self.apn = apn

    def __repr__(self):
        return f"<FakeOperator {self.name}>"


def make_pool():
    pool = OperatorPool()
    home = pool.register(FakeOperator("TIM", "web.tim.it"), home=True)
    visited_a = pool.register(FakeOperator("FR Mobile", "web.tim.it"))
    visited_b = pool.register(FakeOperator("DE Mobile", "web.de.example"))
    return pool, home, visited_a, visited_b


def test_operator_pool_orders_home_first_then_registration_order():
    pool, home, visited_a, visited_b = make_pool()
    assert pool.operators() == [home, visited_a, visited_b]
    assert pool.home is home
    assert len(pool) == 3


def test_operator_selection_is_deterministic():
    pool, home, visited_a, _ = make_pool()
    # Home wins outright; the roaming partner is the first *visited*
    # operator serving the APN, in registration order — never a draw.
    assert pool.select(apn="web.tim.it") is home
    assert pool.roaming_partner(apn="web.tim.it") is visited_a
    assert pool.select(apn="web.tim.it", exclude=(home,)) is visited_a


def test_operator_pool_raises_typed_error_when_drained():
    pool, home, visited_a, visited_b = make_pool()
    with pytest.raises(NoOperatorError):
        pool.select(apn="web.nowhere.example")
    with pytest.raises(NoOperatorError):
        pool.select(exclude=(home, visited_a, visited_b))
    with pytest.raises(NoOperatorError):
        pool.roaming_partner(apn="web.de.example2")
    with pytest.raises(NoOperatorError):
        OperatorPool().select()


def test_single_home_operator_enforced_and_visited_deduped():
    pool, home, visited_a, _ = make_pool()
    with pytest.raises(ValueError):
        pool.register(FakeOperator("other", "apn"), home=True)
    pool.register(visited_a)  # re-registering is a no-op, not a dup
    assert len(pool) == 3
