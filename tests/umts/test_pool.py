"""Unit tests for the PDP address pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addressing import ip
from repro.umts.pool import AddressPool, PoolExhaustedError


def test_allocates_distinct_addresses():
    pool = AddressPool("10.199.0.0/24")
    addrs = {pool.allocate() for _ in range(50)}
    assert len(addrs) == 50


def test_reserved_addresses_never_allocated():
    pool = AddressPool("10.199.0.0/29", reserved=["10.199.0.1"])
    allocated = [pool.allocate() for _ in range(5)]
    assert ip("10.199.0.1") not in allocated
    assert ip("10.199.0.0") not in allocated  # network address


def test_exhaustion_raises():
    pool = AddressPool("10.199.0.0/30", reserved=["10.199.0.1"])
    pool.allocate()  # .2 is the only host left (.3 is broadcast)
    with pytest.raises(PoolExhaustedError):
        pool.allocate()


def test_release_and_reuse():
    pool = AddressPool("10.199.0.0/30", reserved=["10.199.0.1"])
    addr = pool.allocate()
    pool.release(addr)
    assert pool.allocate() == addr


def test_release_unallocated_raises():
    pool = AddressPool("10.199.0.0/24")
    with pytest.raises(ValueError):
        pool.release(ip("10.199.0.5"))


def test_in_use_counter():
    pool = AddressPool("10.199.0.0/24")
    a = pool.allocate()
    pool.allocate()
    assert pool.in_use == 2
    pool.release(a)
    assert pool.in_use == 1


def test_contains():
    pool = AddressPool("10.199.0.0/16")
    assert "10.199.3.7" in pool
    assert ip("10.199.0.1") in pool
    assert "10.200.0.1" not in pool


@given(st.integers(min_value=1, max_value=60))
@settings(max_examples=20)
def test_allocate_release_cycles_property(n):
    pool = AddressPool("10.199.0.0/24", reserved=["10.199.0.1"])
    live = []
    for i in range(n):
        live.append(pool.allocate())
        if i % 3 == 2:
            pool.release(live.pop(0))
    assert len(set(live)) == len(live)
    assert pool.in_use == len(live)
