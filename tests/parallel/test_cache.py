"""Content-addressed cache: keying, invalidation, hit/miss accounting."""

import pytest

from repro.parallel import Job, ResultCache, execute_job, run_campaign, sweep_jobs
from repro.parallel.cache import default_cache_dir, tree_digest


def make_job(seed: int = 1, duration: float = 5.0) -> Job:
    return sweep_jobs("voip", seeds=[seed], paths=["umts"], duration=duration)[0]


class TestCacheKey:
    def test_key_is_stable_for_identical_jobs(self, tmp_path):
        cache = ResultCache(root=tmp_path, source_digest="d1")
        assert cache.key_for(make_job()) == cache.key_for(make_job())

    def test_seed_change_changes_key(self, tmp_path):
        cache = ResultCache(root=tmp_path, source_digest="d1")
        assert cache.key_for(make_job(seed=1)) != cache.key_for(make_job(seed=2))

    def test_config_change_changes_key(self, tmp_path):
        cache = ResultCache(root=tmp_path, source_digest="d1")
        assert cache.key_for(make_job(duration=5.0)) != cache.key_for(
            make_job(duration=6.0)
        )

    def test_source_digest_change_changes_key(self, tmp_path):
        before = ResultCache(root=tmp_path, source_digest="d1")
        after = ResultCache(root=tmp_path, source_digest="d2")
        assert before.key_for(make_job()) != after.key_for(make_job())

    def test_default_source_digest_is_the_package_tree(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert len(cache.source_digest) == 64  # a real SHA-256

    def test_tree_digest_tracks_any_source_file(self, tmp_path):
        tree = tmp_path / "pkg"
        (tree / "sub").mkdir(parents=True)
        (tree / "a.py").write_text("A = 1\n")
        (tree / "sub" / "b.py").write_text("B = 2\n")
        (tree / "notes.txt").write_text("not hashed\n")
        first = tree_digest(tree)
        (tree / "notes.txt").write_text("still not hashed\n")
        assert tree_digest(tree) == first
        (tree / "sub" / "b.py").write_text("B = 3\n")
        assert tree_digest(tree) != first


class TestCacheBehaviour:
    def test_store_then_load_round_trips(self, tmp_path):
        cache = ResultCache(root=tmp_path, source_digest="d1")
        job = make_job()
        result = execute_job(job)
        cache.store(job, result)
        hit = cache.load(job)
        assert hit is not None and hit.cached
        assert hit.stable_digest_line() == result.stable_digest_line()
        assert cache.stats.as_dict() == {
            "hits": 1, "misses": 0, "stores": 1, "uncacheable": 0,
        }

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path, source_digest="d1")
        job = make_job()
        cache.store(job, execute_job(job))
        cache.path_for(job).write_text("{not json")
        assert cache.load(job) is None
        assert cache.stats.misses == 1

    def test_uncacheable_jobs_never_stored(self, tmp_path):
        cache = ResultCache(root=tmp_path, source_digest="d1")
        job = Job(kind="sweep", key="k", payload=make_job().payload,
                  cacheable=False)
        assert cache.store(job, execute_job(job)) is None
        assert cache.load(job) is None
        assert cache.stats.uncacheable == 1
        assert list(tmp_path.iterdir()) == []

    def test_campaign_second_run_is_all_hits(self, tmp_path):
        jobs = sweep_jobs("voip", seeds=[1, 2], paths=["umts"], duration=5.0)
        first = run_campaign(jobs, workers=2, cache=ResultCache(
            root=tmp_path, source_digest="d1"))
        assert first.cache_stats == {
            "hits": 0, "misses": 2, "stores": 2, "uncacheable": 0,
        }
        second = run_campaign(jobs, workers=2, cache=ResultCache(
            root=tmp_path, source_digest="d1"))
        assert second.cache_stats == {
            "hits": 2, "misses": 0, "stores": 0, "uncacheable": 0,
        }
        assert second.digest == first.digest
        assert second.cached_count() == 2

    def test_source_change_invalidates_campaign_cache(self, tmp_path):
        jobs = sweep_jobs("voip", seeds=[1], paths=["umts"], duration=5.0)
        run_campaign(jobs, cache=ResultCache(root=tmp_path, source_digest="d1"))
        after_edit = run_campaign(
            jobs, cache=ResultCache(root=tmp_path, source_digest="d2")
        )
        assert after_edit.cache_stats["hits"] == 0
        assert after_edit.cache_stats["misses"] == 1

    def test_default_dir_honours_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_dir().name == "repro"


@pytest.mark.parametrize("workers", [1, 3])
def test_cache_hits_preserve_merge_order(tmp_path, workers):
    jobs = sweep_jobs("voip", seeds=[1, 2, 3], paths=["umts"], duration=5.0)
    cache = ResultCache(root=tmp_path, source_digest="d1")
    reference = run_campaign(jobs, workers=workers, cache=cache)
    # Warm cache for a strict subset, then re-run all: mixed hit/fresh
    # results must still merge into the same digest.
    partial = ResultCache(root=tmp_path, source_digest="d1")
    mixed = run_campaign(jobs, workers=workers, cache=partial)
    assert mixed.cache_stats["hits"] == 3
    assert mixed.digest == reference.digest
