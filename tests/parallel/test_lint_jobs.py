"""Sharded lint: worker-count parity and the content-addressed cache."""

from pathlib import Path

from repro.lint import jsonl_report, lint_campaign, lint_paths, ruleset_digest
from repro.parallel import ResultCache, lint_jobs

SRC = Path(__file__).parents[2] / "src" / "repro"

#: A slice of the real tree that exercises both project-phase rules.
TARGETS = [SRC / "core", SRC / "fleet"]


def report_bytes(findings) -> bytes:
    return ("\n".join(jsonl_report(findings)) + "\n").encode()


class TestWorkerParity:
    def test_j2_findings_match_sequential_byte_for_byte(self):
        sequential = lint_paths(TARGETS)
        sharded, campaign = lint_campaign(TARGETS, workers=2)
        assert report_bytes(sharded) == report_bytes(sequential)
        assert campaign.workers == 2

    def test_parity_holds_with_findings_present(self, tmp_path):
        # Copy two real modules and break both, so per-file findings
        # AND project-phase findings must merge identically.
        backend = tmp_path / "backend.py"
        backend.write_text(
            (SRC / "core" / "backend.py").read_text().replace(
                "        except BaseException:\n", "        except ValueError:\n"
            )
        )
        isolation = tmp_path / "isolation.py"
        isolation.write_text(
            (SRC / "core" / "isolation.py").read_text().replace(
                '        self.stack.ip.run(f"rule del pref {PREF_SRC_RULE}")\n', ""
            )
        )
        sequential = lint_paths([tmp_path], rule_ids=["resource-lifecycle"])
        assert sequential != []  # the mutations are visible
        sharded, _ = lint_campaign(
            [tmp_path], rule_ids=["resource-lifecycle"], workers=2
        )
        assert report_bytes(sharded) == report_bytes(sequential)


class TestLintJobs:
    def test_job_keys_are_per_file_and_content_addressed(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("A = 1\n")
        before = lint_jobs([target], ["wall-clock"])[0]
        assert before.key == f"lint:{target}"
        target.write_text("A = 2\n")
        after = lint_jobs([target], ["wall-clock"])[0]
        assert before.key == after.key  # same identity ...
        assert before.payload["digest"] != after.payload["digest"]  # ... new content

    def test_rule_selection_is_part_of_the_payload(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("A = 1\n")
        narrow = lint_jobs([target], ["wall-clock"])[0]
        wide = lint_jobs([target], ["wall-clock", "retry-policy"])[0]
        assert narrow.payload_json() != wide.payload_json()


class TestLintCache:
    def make_tree(self, tmp_path: Path) -> Path:
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "a.py").write_text(
            "import time\n\n\ndef stamp() -> float:\n    return time.time()\n"
        )
        (tree / "b.py").write_text("B = 2\n")
        return tree

    def test_warm_run_is_all_hits_and_identical(self, tmp_path):
        tree = self.make_tree(tmp_path)
        cache = ResultCache(root=tmp_path / "cache", source_digest="lint-test")
        cold, _ = lint_campaign([tree], workers=1, cache=cache)
        assert cache.stats.as_dict()["misses"] == 2
        assert cache.stats.as_dict()["stores"] == 2
        warm, _ = lint_campaign([tree], workers=1, cache=cache)
        assert cache.stats.as_dict()["hits"] == 2
        assert report_bytes(warm) == report_bytes(cold)

    def test_cache_is_shared_across_worker_counts(self, tmp_path):
        tree = self.make_tree(tmp_path)
        cache = ResultCache(root=tmp_path / "cache", source_digest="lint-test")
        lint_campaign([tree], workers=1, cache=cache)
        sharded, _ = lint_campaign([tree], workers=2, cache=cache)
        assert cache.stats.as_dict()["hits"] == 2
        assert [f.rule for f in sharded] == ["wall-clock"]

    def test_editing_a_file_invalidates_only_its_entry(self, tmp_path):
        tree = self.make_tree(tmp_path)
        cache = ResultCache(root=tmp_path / "cache", source_digest="lint-test")
        lint_campaign([tree], workers=1, cache=cache)
        (tree / "b.py").write_text("import time\nB = time.time()\n")
        findings, _ = lint_campaign([tree], workers=1, cache=cache)
        stats = cache.stats.as_dict()
        assert stats["hits"] == 1  # a.py untouched
        assert stats["misses"] == 3  # cold a+b, then the edited b
        assert sorted(f.path.endswith("b.py") for f in findings) == [False, True]

    def test_ruleset_digest_is_a_real_sha256(self):
        digest = ruleset_digest()
        assert len(digest) == 64
        assert digest == ruleset_digest()  # cached and stable in-process
