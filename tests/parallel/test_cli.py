"""CLI-level parity: -j N and the cache never change command output."""

import json

import pytest

from repro.__main__ import main


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


class TestChaosSharded:
    def test_jsonl_byte_identical_j1_vs_j2(self, tmp_path, cache_dir):
        one = tmp_path / "j1.jsonl"
        two = tmp_path / "j2.jsonl"
        assert main(["chaos", "--jsonl", str(one), "--no-cache"]) == 0
        assert main(["chaos", "-j", "2", "--jsonl", str(two), "--no-cache"]) == 0
        assert one.read_bytes() == two.read_bytes()

    def test_cache_round_trip_with_stats(self, tmp_path, cache_dir, capsys):
        args = ["chaos", "--scenario", "dial_no_carrier",
                "--cache-dir", cache_dir, "--cache-stats"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "cache: hits=0 misses=1 stores=1" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "cache: hits=1 misses=0 stores=0" in second
        assert "cached=1/1" in second

    def test_check_runs_fresh_even_with_warm_cache(self, cache_dir, capsys):
        args = ["chaos", "--scenario", "dial_no_carrier",
                "--cache-dir", cache_dir]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--check", "-j", "2"]) == 0
        out = capsys.readouterr().out
        assert "NON-DETERMINISTIC" not in out
        assert "ok  " in out

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["chaos", "--scenario", "nope", "--no-cache"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestBenchSharded:
    def test_j2_prints_campaign_and_speedup(self, capsys):
        assert main(["bench", "--scenario", "vsys_rpc", "--scenario",
                     "hdlc_encode", "--repeats", "1", "--warmup", "0",
                     "-j", "2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "vsys_rpc" in out and "hdlc_encode" in out
        assert "speedup" in out and "vs pre-PR median" in out
        assert "campaign: 2 scenario(s) across 2 worker(s)" in out

    def test_results_always_fresh_despite_cache(self, cache_dir, capsys):
        args = ["bench", "--scenario", "vsys_rpc", "--repeats", "1",
                "--warmup", "0", "--cache-dir", cache_dir, "--cache-stats"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "uncacheable=1" in out
        assert "hits=0" in out


class TestSweep:
    def test_sweep_table_and_jsonl(self, tmp_path, capsys):
        path = tmp_path / "sweep.jsonl"
        assert main(["sweep", "--kind", "voip", "--seeds", "1:3",
                     "--duration", "5", "-j", "3", "--no-cache",
                     "--jsonl", str(path)]) == 0
        out = capsys.readouterr().out
        assert "voip sweep: 3 seed(s) x 1 path(s)" in out
        assert out.count("seed=") == 3
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["seed"] for r in records] == [1, 2, 3]
        assert all(len(r["digest"]) == 64 for r in records)

    def test_sweep_digest_independent_of_jobs(self, tmp_path, capsys):
        def run(jobs):
            assert main(["sweep", "--seeds", "3,5", "--duration", "5",
                         "-j", jobs, "--no-cache"]) == 0
            out = capsys.readouterr().out
            (line,) = [ln for ln in out.splitlines()
                       if ln.startswith("campaign: digest=")]
            return line.split()[1]

        assert run("1") == run("2")

    def test_seed_list_and_both_paths(self, capsys):
        assert main(["sweep", "--seeds", "7", "--path", "both",
                     "--duration", "5", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "ethernet" in out and "umts" in out

    def test_bad_seed_spec_exits_2(self, capsys):
        assert main(["sweep", "--seeds", "9:1", "--no-cache"]) == 2
        assert "bad seed range" in capsys.readouterr().err

    def test_sweep_cache_hits_on_rerun(self, cache_dir, capsys):
        args = ["sweep", "--seeds", "11", "--duration", "5",
                "--cache-dir", cache_dir, "--cache-stats"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "hits=1 misses=0" in out
        assert "cached=1/1" in out
