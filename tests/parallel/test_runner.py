"""The campaign runner's central promise: -j N never changes a result."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    Job,
    JobResult,
    bench_jobs,
    campaign_digest,
    chaos_jobs,
    default_start_method,
    execute_job,
    resolve_entry_point,
    run_campaign,
    sweep_jobs,
    validate_jobs,
)

# A small deterministic workload: four seeds of the fast characterization.
SWEEP = sweep_jobs("voip", seeds=[1, 2, 3, 4], paths=["umts"], duration=5.0)


class TestJobModel:
    def test_payload_json_is_canonical(self):
        a = Job(kind="k", key="x", payload={"b": 1, "a": 2})
        b = Job(kind="k", key="x", payload={"a": 2, "b": 1})
        assert a.payload_json() == b.payload_json()

    def test_duplicate_keys_rejected(self):
        jobs = [Job(kind="k", key="same"), Job(kind="k", key="same")]
        with pytest.raises(ValueError, match="duplicate job key"):
            validate_jobs(jobs)
        with pytest.raises(ValueError, match="duplicate job key"):
            run_campaign(jobs)

    def test_unknown_kind_is_a_keyerror(self):
        with pytest.raises(KeyError, match="unknown job kind"):
            resolve_entry_point("no-such-kind")

    def test_result_record_round_trips(self):
        result = execute_job(SWEEP[0])
        clone = JobResult.from_record(
            json.loads(json.dumps(result.record())), cached=True
        )
        assert clone.cached and not result.cached
        assert clone.stable_digest_line() == result.stable_digest_line()

    def test_builders_reject_bad_input(self):
        with pytest.raises(KeyError):
            chaos_jobs(names=["no-such-scenario"])
        with pytest.raises(ValueError):
            chaos_jobs(repeats=0)
        with pytest.raises(KeyError):
            sweep_jobs("nope", seeds=[1], paths=["umts"], duration=1.0)
        with pytest.raises(ValueError):
            sweep_jobs("voip", seeds=[1], paths=["umts"], duration=0.0)


class TestDeterministicMerge:
    def test_digest_identical_across_worker_counts(self):
        serial = run_campaign(SWEEP, workers=1)
        pooled = run_campaign(SWEEP, workers=4)
        assert serial.digest == pooled.digest
        assert [r.stable for r in serial.results] == [
            r.stable for r in pooled.results
        ]

    def test_digest_independent_of_submission_order(self):
        forward = run_campaign(SWEEP, workers=1)
        backward = run_campaign(list(reversed(SWEEP)), workers=1)
        assert forward.digest == backward.digest
        assert campaign_digest(forward.results) == campaign_digest(
            list(reversed(forward.results))
        )

    def test_results_come_back_key_sorted(self):
        campaign = run_campaign(list(reversed(SWEEP)), workers=2)
        keys = [result.key for result in campaign.results]
        assert keys == sorted(keys)

    def test_spawn_start_method_matches_fork(self):
        # The spawn path re-imports everything in the worker; two jobs
        # keep it cheap while still exercising a real pool.
        jobs = SWEEP[:2]
        reference = run_campaign(jobs, workers=1)
        spawned = run_campaign(jobs, workers=2, start_method="spawn")
        assert spawned.digest == reference.digest

    def test_workers_zero_means_cpu_count(self):
        campaign = run_campaign(SWEEP[:2], workers=0)
        assert campaign.workers >= 1
        assert campaign.digest == run_campaign(SWEEP[:2], workers=1).digest

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_campaign(SWEEP, workers=-1)

    def test_default_start_method_is_real(self):
        import multiprocessing

        assert default_start_method() in multiprocessing.get_all_start_methods()


class TestChaosCampaignParity:
    """The 17-scenario chaos suite is the flagship -j workload."""

    def test_full_campaign_digest_equal_j1_j4(self):
        jobs = chaos_jobs()
        assert len(jobs) == 17
        serial = run_campaign(jobs, workers=1)
        pooled = run_campaign(jobs, workers=4)
        assert serial.digest == pooled.digest
        assert all(r.stable["ok"] for r in serial.results)

    def test_batched_repeats_reproduce_and_count(self):
        jobs = chaos_jobs(names=["dial_no_carrier"], repeats=3)
        campaign = run_campaign(jobs, workers=1)
        (result,) = campaign.results
        assert result.stable["campaign_repeats"] == 3
        single = run_campaign(chaos_jobs(names=["dial_no_carrier"]), workers=1)
        assert result.stable["digest"] == single.results[0].stable["digest"]


class TestMetricsFold:
    def test_campaign_metrics_sum_worker_registries(self):
        jobs = chaos_jobs(names=["dial_no_carrier", "session_drop"])
        campaign = run_campaign(jobs, workers=2)
        folded = campaign.metrics.counter("engine.events_dispatched").value
        by_job = sum(
            r.metrics["engine.events_dispatched"]["value"]
            for r in campaign.results
        )
        assert folded == by_job > 0

    def test_simulated_metrics_identical_across_j(self):
        jobs = chaos_jobs(names=["dial_no_carrier", "session_drop"])
        serial = run_campaign(jobs, workers=1).metrics.snapshot()
        pooled = run_campaign(jobs, workers=2).metrics.snapshot()
        # Wall-clock histograms legitimately differ run to run; every
        # simulated-domain metric must not.
        serial.pop("engine.dispatch_wall_seconds")
        pooled.pop("engine.dispatch_wall_seconds")
        assert serial == pooled

    def test_bench_jobs_carry_config_not_timings_in_stable(self):
        jobs = bench_jobs(["vsys_rpc"], repeats=1, warmup=0)
        assert not jobs[0].cacheable
        first = run_campaign(jobs, workers=1)
        second = run_campaign(jobs, workers=1)
        assert first.digest == second.digest
        assert "times_s" not in first.results[0].stable
        assert len(first.results[0].volatile["times_s"]) == 1


class TestMetricsRegistryDefault:
    def test_sweep_jobs_ship_simulated_metrics(self):
        campaign = run_campaign(SWEEP[:1], workers=1)
        assert isinstance(campaign.metrics, MetricsRegistry)
        assert campaign.metrics.counter("engine.events_dispatched").value > 0
        assert campaign.metrics.counter("traffic.packets_sent").value > 0

    def test_campaign_without_metrics_yields_empty_registry(self):
        jobs = bench_jobs(["vsys_rpc"], repeats=1, warmup=0)
        campaign = run_campaign(jobs, workers=1)
        assert isinstance(campaign.metrics, MetricsRegistry)
        assert len(campaign.metrics) == 0
