"""Failure injection on the connection manager and backend cleanup.

The paper's back-end must never leave stale rules or a stuck lock:
these tests drive registration denial, dead networks, carrier loss
mid-session, and re-dial after each failure.
"""


from repro.core.connection import ConnectionState
from repro.core.isolation import UMTS_TABLE
from repro.testbed.scenarios import OneLabScenario


def run_until(scenario, seconds):
    scenario.sim.run(until=scenario.sim.now + seconds)


def test_start_fails_when_registration_denied():
    scenario = OneLabScenario(seed=31)
    scenario.cell.deny_registration = True
    scenario.napoli.modem.registration = scenario.cell.registration_result(
        scenario.napoli.modem
    )
    umts = scenario.umts_command()
    result = umts.start_blocking()
    assert not result.ok
    assert "denied" in result.text
    # No stale state: lock free, no ppp0, no rules.
    backend = scenario.napoli.umts_backend
    assert not backend.lock.locked
    assert "ppp0" not in scenario.napoli.stack.interfaces
    assert scenario.napoli.stack.ip.route_list(UMTS_TABLE) == []
    assert scenario.napoli.connection.state == ConnectionState.DOWN


def test_start_fails_cleanly_without_coverage():
    """No cell at all: comgt times out, everything stays clean."""
    scenario = OneLabScenario(seed=32)
    scenario.napoli.modem.network = None
    scenario.napoli.modem.registration = 0
    umts = scenario.umts_command()
    result = umts.start_blocking()
    assert not result.ok
    assert "timed out" in result.text
    assert not scenario.napoli.umts_backend.lock.locked


def test_retry_after_failed_start_succeeds():
    scenario = OneLabScenario(seed=33)
    scenario.cell.deny_registration = True
    scenario.napoli.modem.registration = scenario.cell.registration_result(
        scenario.napoli.modem
    )
    umts = scenario.umts_command()
    assert not umts.start_blocking().ok
    # Coverage returns.
    scenario.cell.deny_registration = False
    from repro.modem.device import RegistrationStatus

    scenario.napoli.modem.registration = RegistrationStatus.REGISTERED_HOME
    result = umts.start_blocking()
    assert result.ok, result.text


def test_carrier_loss_cleans_rules_and_lock():
    scenario = OneLabScenario(seed=34)
    umts = scenario.umts_command()
    assert umts.start_blocking().ok
    umts.add_destination_blocking(scenario.inria_addr)
    backend = scenario.napoli.umts_backend
    assert backend.lock.locked
    # The operator drops the session (e.g. coverage loss).
    call = scenario.operator.calls[0]
    scenario.operator.drop_call(call, "coverage lost")
    run_until(scenario, 5.0)
    assert not backend.lock.locked
    assert not backend.isolation.active
    assert "ppp0" not in scenario.napoli.stack.interfaces
    assert scenario.napoli.stack.ip.route_list(UMTS_TABLE) == []
    assert scenario.napoli.connection.state == ConnectionState.DOWN
    events = [msg for _, msg in backend.events]
    assert any("cleanup" in e for e in events)


def test_status_after_carrier_loss():
    scenario = OneLabScenario(seed=35)
    umts = scenario.umts_command()
    umts.start_blocking()
    scenario.operator.drop_call(scenario.operator.calls[0], "dropped")
    run_until(scenario, 5.0)
    status = umts.status_blocking()
    assert "state: down" in status.lines[0]
    assert any("unlocked" in line for line in status.lines)


def test_redial_after_carrier_loss():
    scenario = OneLabScenario(seed=36)
    umts = scenario.umts_command()
    assert umts.start_blocking().ok
    first_addr = scenario.umts_address()
    scenario.operator.drop_call(scenario.operator.calls[0], "dropped")
    run_until(scenario, 5.0)
    result = umts.start_blocking()
    assert result.ok, result.text
    assert scenario.umts_address() is not None
    assert scenario.napoli.connection.is_up
    # The pool recycled cleanly.
    assert scenario.operator.ggsn.pool.in_use == 1


def test_carrier_loss_counter():
    scenario = OneLabScenario(seed=37)
    umts = scenario.umts_command()
    umts.start_blocking()
    scenario.operator.drop_call(scenario.operator.calls[0], "x")
    run_until(scenario, 2.0)
    assert scenario.napoli.connection.carrier_losses == 1


def test_traffic_stops_when_carrier_lost_midflow():
    scenario = OneLabScenario(seed=38)
    umts = scenario.umts_command()
    umts.start_blocking()
    umts.add_destination_blocking(scenario.inria_addr)
    got = []
    server = scenario.inria_sliver.socket()
    server.bind(port=9000)
    server.on_receive = lambda payload, *a: got.append(payload)
    sender = scenario.napoli_sliver.socket()
    sender.sendto("before", 50, scenario.inria_addr, 9000)
    run_until(scenario, 5.0)
    scenario.operator.drop_call(scenario.operator.calls[0], "gone")
    run_until(scenario, 5.0)
    # With ppp0 gone and the fwmark rule removed, traffic reverts to eth0.
    sender.sendto("after", 50, scenario.inria_addr, 9000)
    run_until(scenario, 5.0)
    assert got == ["before", "after"]


def test_connect_status_lines_cover_states():
    scenario = OneLabScenario(seed=39)
    connection = scenario.napoli.connection
    assert connection.status_lines() == ["state: down"]
    umts = scenario.umts_command()
    umts.start_blocking()
    lines = connection.status_lines()
    assert lines[0] == "state: up"
    assert any(line.startswith("uptime:") for line in lines)
    assert connection.uptime() is not None
    assert connection.uptime() >= 0.0


def test_disconnect_when_down_reports_error():
    scenario = OneLabScenario(seed=40)
    connection = scenario.napoli.connection

    def drive():
        outcome = yield from connection.disconnect()
        return outcome

    from repro.sim.process import spawn

    process = spawn(scenario.sim, drive())
    scenario.sim.run(until=5.0)
    code, lines = process.value
    assert code == 1
    assert "expected up" in lines[0]
