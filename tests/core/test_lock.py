"""Unit tests for the one-slice-at-a-time interface lock."""

import pytest

from repro.core.errors import InterfaceLockedError, NotOwnerError
from repro.core.lock import InterfaceLock


def test_fresh_lock_is_free():
    lock = InterfaceLock()
    assert not lock.locked
    assert lock.holder is None


def test_acquire_sets_holder():
    lock = InterfaceLock()
    lock.acquire("unina_umts")
    assert lock.locked
    assert lock.holder == "unina_umts"
    assert lock.acquisitions == 1


def test_second_slice_rejected():
    lock = InterfaceLock()
    lock.acquire("unina_umts")
    with pytest.raises(InterfaceLockedError):
        lock.acquire("other_slice")
    assert lock.contentions == 1
    assert lock.holder == "unina_umts"


def test_reacquire_by_holder_rejected():
    lock = InterfaceLock()
    lock.acquire("unina_umts")
    with pytest.raises(InterfaceLockedError):
        lock.acquire("unina_umts")


def test_release_frees():
    lock = InterfaceLock()
    lock.acquire("unina_umts")
    lock.release("unina_umts")
    assert not lock.locked
    lock.acquire("other_slice")


def test_release_by_non_holder_rejected():
    lock = InterfaceLock()
    lock.acquire("unina_umts")
    with pytest.raises(NotOwnerError):
        lock.release("other_slice")


def test_release_when_free_rejected():
    lock = InterfaceLock()
    with pytest.raises(NotOwnerError):
        lock.release("unina_umts")


def test_require_owner():
    lock = InterfaceLock()
    lock.acquire("unina_umts")
    lock.require_owner("unina_umts", "stop")  # no raise
    with pytest.raises(NotOwnerError):
        lock.require_owner("other", "stop")


def test_require_owner_when_free():
    lock = InterfaceLock()
    with pytest.raises(NotOwnerError):
        lock.require_owner("unina_umts", "add")


def test_force_release():
    lock = InterfaceLock()
    lock.acquire("unina_umts")
    lock.force_release()
    assert not lock.locked


def test_repr_shows_state():
    lock = InterfaceLock("umts0")
    assert "free" in repr(lock)
    lock.acquire("s")
    assert "'s'" in repr(lock)
