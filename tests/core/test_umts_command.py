"""Integration tests for the umts command over the full scenario.

These drive the exact user-visible behaviour §2.2/§2.3 describe: the
five subcommands, the one-slice-at-a-time policy, vsys ACLs, and the
packet-level isolation between slices.
"""

import pytest

from repro.core.isolation import UMTS_TABLE
from repro.testbed.scenarios import OneLabScenario
from repro.vserver.slice import Slice
from repro.vsys.daemon import VsysError


@pytest.fixture()
def scenario():
    return OneLabScenario(seed=11)


def test_start_status_stop_cycle(scenario):
    umts = scenario.umts_command()
    started = umts.start_blocking()
    assert started.ok, started.text
    assert "pppd: ppp0 up" in started.text
    status = umts.status_blocking()
    assert "state: up" in status.lines[0]
    assert any("locked by: unina_umts" in line for line in status.lines)
    stopped = umts.stop_blocking()
    assert stopped.ok, stopped.text
    status = umts.status_blocking()
    assert "state: down" in status.lines[0]
    assert any("unlocked" in line for line in status.lines)


def test_start_twice_fails(scenario):
    umts = scenario.umts_command()
    assert umts.start_blocking().ok
    second = umts.start_blocking()
    assert not second.ok
    assert "already holds" in second.text or "locked" in second.text


def test_stop_without_start_fails(scenario):
    umts = scenario.umts_command()
    result = umts.stop_blocking()
    assert not result.ok
    assert "not active" in result.text


def test_add_requires_lock(scenario):
    umts = scenario.umts_command()
    result = umts.add_destination_blocking("138.96.250.100")
    assert not result.ok


def test_add_and_del_destination(scenario):
    umts = scenario.umts_command()
    umts.start_blocking()
    added = umts.add_destination_blocking("138.96.250.100")
    assert added.ok
    status = umts.status_blocking()
    assert any("destinations: 138.96.250.100" in line for line in status.lines)
    deleted = umts.del_destination_blocking("138.96.250.100")
    assert deleted.ok
    status = umts.status_blocking()
    assert not any("destinations" in line for line in status.lines)


def test_bad_destination_reports_error(scenario):
    umts = scenario.umts_command()
    umts.start_blocking()
    result = umts.add_destination_blocking("notanip")
    assert not result.ok
    assert "umts:" in result.text


def test_usage_for_unknown_command(scenario):
    umts = scenario.umts_command()
    result = umts._conn.call_blocking(["frobnicate"])
    assert not result.ok
    assert "usage" in result.text


def test_unauthorized_slice_cannot_open_vsys(scenario):
    rogue = Slice("rogue_slice", 666)
    rogue_sliver = scenario.napoli.create_sliver(rogue)
    with pytest.raises(VsysError):
        rogue_sliver.vsys_open("umts")


def test_second_slice_cannot_start_while_locked(scenario):
    other = Slice("other_exp", 600)
    other_sliver = scenario.napoli.create_sliver(other)
    scenario.napoli.authorize_umts("other_exp")
    first = scenario.umts_command()
    assert first.start_blocking().ok
    from repro.core.frontend import UmtsCommand

    second = UmtsCommand(other_sliver)
    result = second.start_blocking()
    assert not result.ok
    assert "locked by slice 'unina_umts'" in result.text


def test_other_slice_cannot_stop(scenario):
    other = Slice("other_exp", 600)
    other_sliver = scenario.napoli.create_sliver(other)
    scenario.napoli.authorize_umts("other_exp")
    assert scenario.umts_command().start_blocking().ok
    from repro.core.frontend import UmtsCommand

    result = UmtsCommand(other_sliver).stop_blocking()
    assert not result.ok
    assert "held by slice 'unina_umts'" in result.text


def test_umts_slice_traffic_uses_ppp0(scenario):
    umts = scenario.umts_command()
    umts.start_blocking()
    umts.add_destination_blocking(scenario.inria_addr)
    got = []
    server = scenario.inria_sliver.socket()
    server.bind(port=9000)
    server.on_receive = lambda payload, src, sport, pkt: got.append(str(src))
    scenario.napoli_sliver.socket().sendto("x", 50, scenario.inria_addr, 9000)
    scenario.sim.run(until=scenario.sim.now + 10.0)
    assert len(got) == 1
    # Source address proves the packet went out via the UMTS connection.
    assert got[0] == scenario.umts_address()


def test_non_destination_traffic_stays_on_eth0(scenario):
    umts = scenario.umts_command()
    umts.start_blocking()
    # No destination registered: traffic to INRIA keeps using eth0.
    got = []
    server = scenario.inria_sliver.socket()
    server.bind(port=9000)
    server.on_receive = lambda payload, src, sport, pkt: got.append(str(src))
    scenario.napoli_sliver.socket().sendto("x", 50, scenario.inria_addr, 9000)
    scenario.sim.run(until=scenario.sim.now + 10.0)
    assert got == [scenario.napoli_addr]


def test_other_slice_cannot_use_ppp0_even_bound(scenario):
    """The paper's special case: a foreign slice binds to the UMTS
    interface; the drop rule must stop its packets."""
    other = Slice("other_exp", 600)
    scenario.napoli.create_sliver(other)
    umts = scenario.umts_command()
    umts.start_blocking()
    rogue_sock = scenario.napoli.slivers["other_exp"].socket()
    rogue_sock.bind_to_device("ppp0")
    dropped_before = scenario.napoli.stack.dropped_filter
    rogue_sock.sendto("sneaky", 20, "10.199.0.1", 53)
    scenario.sim.run(until=scenario.sim.now + 5.0)
    assert scenario.napoli.stack.dropped_filter == dropped_before + 1


def test_other_slice_traffic_to_ppp_peer_dropped(scenario):
    """Second special case: packets addressed to the PPP endpoint."""
    other = Slice("other_exp", 600)
    scenario.napoli.create_sliver(other)
    umts = scenario.umts_command()
    umts.start_blocking()
    ggsn_addr = str(scenario.operator.ggsn.internal_address)
    dropped_before = scenario.napoli.stack.dropped_filter
    # The peer host route points at ppp0, so this would egress ppp0.
    scenario.napoli.slivers["other_exp"].socket().sendto("x", 20, ggsn_addr, 53)
    scenario.sim.run(until=scenario.sim.now + 5.0)
    assert scenario.napoli.stack.dropped_filter == dropped_before + 1


def test_stop_restores_clean_state(scenario):
    umts = scenario.umts_command()
    umts.start_blocking()
    umts.add_destination_blocking(scenario.inria_addr)
    umts.stop_blocking()
    stack = scenario.napoli.stack
    assert "ppp0" not in stack.interfaces
    assert stack.ip.route_list(UMTS_TABLE) == []
    assert stack.iptables.list_rules("mangle", "OUTPUT") == []
    assert stack.iptables.list_rules("filter", "OUTPUT") == []
    # Traffic to INRIA works normally over eth0.
    got = []
    server = scenario.inria_sliver.socket()
    server.bind(port=9001)
    server.on_receive = lambda payload, src, sport, pkt: got.append(str(src))
    scenario.napoli_sliver.socket().sendto("x", 50, scenario.inria_addr, 9001)
    scenario.sim.run(until=scenario.sim.now + 5.0)
    assert got == [scenario.napoli_addr]


def test_destinations_persist_across_sessions(scenario):
    umts = scenario.umts_command()
    umts.start_blocking()
    umts.add_destination_blocking(scenario.inria_addr)
    umts.stop_blocking()
    assert umts.start_blocking().ok
    status = umts.status_blocking()
    assert any("destinations: 138.96.250.100" in line for line in status.lines)


def test_restart_after_stop_gets_fresh_address_or_same(scenario):
    umts = scenario.umts_command()
    umts.start_blocking()
    first = scenario.umts_address()
    umts.stop_blocking()
    umts.start_blocking()
    second = scenario.umts_address()
    assert first is not None and second is not None
    from repro.net.addressing import ip

    assert ip(second) in scenario.operator.ggsn.pool.prefix


def test_backend_event_log(scenario):
    umts = scenario.umts_command()
    umts.start_blocking()
    umts.stop_blocking()
    events = [msg for _, msg in scenario.napoli.umts_backend.events]
    assert any("lock acquired" in e for e in events)
    assert any("lock released" in e for e in events)


def test_wire_level_isolation_invariant(scenario):
    """Every packet ever transmitted on ppp0 belongs to the UMTS slice.

    A sniffer on the PPP interface during a busy run (owner traffic,
    rival attempts, root pings) must see xid 510 exclusively at egress
    — the strongest statement of §2.3's isolation.
    """
    from repro.net.sniffer import Sniffer

    other = Slice("noisy_exp", 640)
    noisy = scenario.napoli.create_sliver(other)
    umts = scenario.umts_command()
    umts.start_blocking()
    umts.add_destination_blocking(scenario.inria_addr)
    sniffer = Sniffer(scenario.sim)
    sniffer.attach(scenario.napoli.stack.iface("ppp0"), directions="tx")
    # Owner sends a burst; rival tries everything it can think of.
    owner_sock = scenario.napoli_sliver.socket()
    rival_sock = noisy.socket()
    rival_bound = noisy.socket()
    rival_bound.bind_to_device("ppp0")
    ggsn_addr = str(scenario.operator.ggsn.internal_address)
    for i in range(10):
        owner_sock.sendto("legit", 100, scenario.inria_addr, 9000 + i)
        rival_sock.sendto("nope", 100, ggsn_addr, 53)
        rival_bound.sendto("nope", 100, ggsn_addr, 53)
    scenario.sim.run(until=scenario.sim.now + 10.0)
    egress = sniffer.packets(direction="tx")
    assert len(egress) >= 10
    assert all(p.xid == scenario.slice.xid for p in egress)
