"""Unit tests for the isolation manager's rule set."""

import pytest

from repro.core.isolation import (
    PREF_FWMARK_RULE,
    PREF_SRC_RULE,
    UMTS_FWMARK,
    UMTS_TABLE,
    IsolationManager,
)
from repro.net.interface import EthernetInterface, PPPInterface
from repro.net.packet import Packet
from repro.net.stack import IPStack
from repro.sim.engine import Simulator


@pytest.fixture()
def stack():
    sim = Simulator()
    stack = IPStack(sim, "node")
    eth = stack.add_interface(EthernetInterface("eth0"))
    stack.configure_interface(eth, "143.225.229.100", 24)
    stack.ip.route_add("default", "eth0", via="143.225.229.1")
    ppp = stack.add_interface(PPPInterface("ppp0"))
    ppp.configure_p2p("10.199.3.7", "10.199.0.1")
    return stack


def test_install_creates_table_rules_and_filter(stack):
    iso = IsolationManager(stack)
    iso.install(510, "10.199.3.7")
    assert iso.active
    routes = stack.ip.route_list(UMTS_TABLE)
    assert len(routes) == 1
    assert routes[0].dev == "ppp0"
    prefs = [r.pref for r in stack.ip.rule_list()]
    assert PREF_FWMARK_RULE in prefs and PREF_SRC_RULE in prefs
    drop_rules = stack.iptables.list_rules("filter", "OUTPUT")
    assert len(drop_rules) == 1


def test_double_install_rejected(stack):
    iso = IsolationManager(stack)
    iso.install(510, "10.199.3.7")
    with pytest.raises(RuntimeError):
        iso.install(510, "10.199.3.7")


def test_marked_slice_traffic_routes_via_ppp0(stack):
    iso = IsolationManager(stack)
    iso.install(510, "10.199.3.7")
    iso.add_destination("138.96.250.100")
    packet = Packet("138.96.250.100", xid=510, size=10)
    stack.netfilter.run_chain("mangle", "OUTPUT", packet, now=0.0)
    assert packet.mark == UMTS_FWMARK
    route = stack.rpdb.lookup(packet.dst, mark=packet.mark)
    assert route.dev == "ppp0"


def test_other_slice_traffic_unmarked(stack):
    iso = IsolationManager(stack)
    iso.install(510, "10.199.3.7")
    iso.add_destination("138.96.250.100")
    packet = Packet("138.96.250.100", xid=666, size=10)
    stack.netfilter.run_chain("mangle", "OUTPUT", packet, now=0.0)
    assert packet.mark == 0
    assert stack.rpdb.lookup(packet.dst, mark=0).dev == "eth0"


def test_unregistered_destination_not_marked(stack):
    iso = IsolationManager(stack)
    iso.install(510, "10.199.3.7")
    iso.add_destination("138.96.250.100")
    packet = Packet("8.8.8.8", xid=510, size=10)
    stack.netfilter.run_chain("mangle", "OUTPUT", packet, now=0.0)
    assert packet.mark == 0


def test_source_address_rule_covers_bound_sockets(stack):
    iso = IsolationManager(stack)
    iso.install(510, "10.199.3.7")
    route = stack.rpdb.lookup("8.8.8.8", src="10.199.3.7")
    assert route.dev == "ppp0"


def test_drop_rule_blocks_other_slices_on_ppp0(stack):
    iso = IsolationManager(stack)
    iso.install(510, "10.199.3.7")
    intruder = Packet("10.199.0.1", xid=666, size=10)
    ok = stack.netfilter.run_chain(
        "filter", "OUTPUT", intruder, out_iface="ppp0", now=0.0
    )
    assert ok is False
    allowed = Packet("10.199.0.1", xid=510, size=10)
    assert stack.netfilter.run_chain(
        "filter", "OUTPUT", allowed, out_iface="ppp0", now=0.0
    )
    # Root-context traffic (xid 0) is also blocked on ppp0.
    root = Packet("10.199.0.1", xid=0, size=10)
    assert not stack.netfilter.run_chain(
        "filter", "OUTPUT", root, out_iface="ppp0", now=0.0
    )


def test_del_destination_removes_rule(stack):
    iso = IsolationManager(stack)
    iso.install(510, "10.199.3.7")
    iso.add_destination("138.96.250.100")
    iso.del_destination("138.96.250.100")
    packet = Packet("138.96.250.100", xid=510, size=10)
    stack.netfilter.run_chain("mangle", "OUTPUT", packet, now=0.0)
    assert packet.mark == 0
    assert stack.iptables.list_rules("mangle", "OUTPUT") == []


def test_duplicate_destination_rejected(stack):
    iso = IsolationManager(stack)
    iso.add_destination("138.96.250.100")
    with pytest.raises(ValueError):
        iso.add_destination("138.96.250.100")


def test_del_unknown_destination_rejected(stack):
    iso = IsolationManager(stack)
    with pytest.raises(ValueError):
        iso.del_destination("138.96.250.100")


def test_invalid_destination_rejected(stack):
    iso = IsolationManager(stack)
    with pytest.raises(ValueError):
        iso.add_destination("not-an-ip")


def test_destinations_survive_stop_start(stack):
    iso = IsolationManager(stack)
    iso.add_destination("138.96.250.100")
    iso.install(510, "10.199.3.7", destinations=sorted(iso.destinations))
    iso.remove()
    assert "138.96.250.100" in iso.destinations
    iso.install(510, "10.199.3.8", destinations=sorted(iso.destinations))
    packet = Packet("138.96.250.100", xid=510, size=10)
    stack.netfilter.run_chain("mangle", "OUTPUT", packet, now=0.0)
    assert packet.mark == UMTS_FWMARK


def test_remove_clears_everything(stack):
    iso = IsolationManager(stack)
    iso.install(510, "10.199.3.7", destinations=[])
    iso.add_destination("138.96.250.100")
    iso.remove()
    assert not iso.active
    assert stack.ip.route_list(UMTS_TABLE) == []
    assert stack.iptables.list_rules("filter", "OUTPUT") == []
    assert stack.iptables.list_rules("mangle", "OUTPUT") == []
    assert all(r.pref not in (PREF_FWMARK_RULE, PREF_SRC_RULE) for r in stack.ip.rule_list())


def test_remove_idempotent(stack):
    iso = IsolationManager(stack)
    iso.install(510, "10.199.3.7")
    iso.remove()
    iso.remove()


def test_add_before_install_applies_at_install(stack):
    iso = IsolationManager(stack)
    iso.add_destination("138.96.250.100")
    iso.install(510, "10.199.3.7", destinations=sorted(iso.destinations))
    packet = Packet("138.96.250.100", xid=510, size=10)
    stack.netfilter.run_chain("mangle", "OUTPUT", packet, now=0.0)
    assert packet.mark == UMTS_FWMARK


def test_command_history_looks_like_the_paper(stack):
    iso = IsolationManager(stack)
    iso.install(510, "10.199.3.7")
    iso.add_destination("138.96.250.100")
    assert any("table umts" in c for c in stack.ip.history)
    assert any("fwmark" in c for c in stack.ip.history)
    assert any("from 10.199.3.7" in c for c in stack.ip.history)
    assert any("! --xid 510 -j DROP" in c for c in stack.iptables.history)
    assert any("-j MARK --set-mark 0x1" in c for c in stack.iptables.history)
