"""Dispatch-order equivalence: bucket kernel vs the legacy tuple heap.

The shared-kernel rewrite replaced the ``(time, seq, event)`` heap with
bucketed same-timestamp storage and tombstone cancellation.  Golden
digests pin whole campaigns; these properties pin the engine semantics
directly: for *any* program of schedules, nested schedules,
schedule-at-``now`` calls and cancellations (at build time or
mid-dispatch), the new kernel and the preserved pre-rewrite engine
(``tests/sim/legacy_engine.py``) must dispatch the same callbacks in
the same order at the same clock readings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from tests.sim.legacy_engine import Simulator as LegacySimulator

#: All program times sit on this grid so equal instants are bitwise
#: equal floats (0.125 is exactly representable).
GRID = 0.125

#: One scheduled root event: (frame, behaviour, argument, build-time kill).
_OPS = st.tuples(
    st.integers(min_value=0, max_value=24),
    st.sampled_from(["leaf", "spawn", "spawn_now", "cancel"]),
    st.integers(min_value=0, max_value=7),
    st.booleans(),
)

_PROGRAMS = st.lists(_OPS, min_size=1, max_size=60)

_UNTIL_FRAMES = st.one_of(st.none(), st.integers(min_value=0, max_value=30))


def _execute(sim, program, until_frame):
    """Run one program and return its observable behaviour.

    The interpreter only uses the public engine API, and every decision
    (which handle a ``cancel`` targets, what a ``spawn`` schedules) is a
    deterministic function of dispatch order — so two engines agree on
    the trace iff they dispatch identically.
    """
    fired = []
    handles = []

    def leaf(index):
        fired.append((sim.now, index, "child"))

    def root(index, kind, arg):
        fired.append((sim.now, index, kind))
        if kind == "spawn":
            handles.append(sim.schedule(arg * GRID, leaf, index))
        elif kind == "spawn_now":
            handles.append(sim.schedule_at(sim.now, leaf, index))
        elif kind == "cancel" and handles:
            handles[arg % len(handles)].cancel()

    for index, (frame, kind, arg, kill) in enumerate(program):
        event = sim.schedule_at(frame * GRID, root, index, kind, arg)
        handles.append(event)
        if kill:
            event.cancel()

    boundary_state = None
    if until_frame is not None:
        sim.run(until=until_frame * GRID)
        boundary_state = (sim.now, sim.pending_count())
    sim.run()
    return fired, boundary_state, sim.now, sim.pending_count()


@given(program=_PROGRAMS, until_frame=_UNTIL_FRAMES)
@settings(max_examples=100, deadline=None)
def test_kernel_matches_legacy_engine_for_any_program(program, until_frame):
    new = _execute(Simulator(), program, until_frame)
    legacy = _execute(LegacySimulator(), program, until_frame)
    assert new == legacy
    # Every live event fired: the O(1) live counter drained to zero,
    # exactly like the legacy engine's O(n) heap scan.
    assert new[3] == 0


@given(program=_PROGRAMS)
@settings(max_examples=50, deadline=None)
def test_kernel_instrumented_loop_matches_legacy_engine(program):
    """The single-scan instrumented loop preserves dispatch order too."""
    from repro.obs import MetricsRegistry

    sim = Simulator()
    sim.metrics = MetricsRegistry()
    instrumented = _execute(sim, program, None)
    legacy = _execute(LegacySimulator(), program, None)
    assert instrumented == legacy
    dispatched = sim.metrics.counter("engine.events_dispatched").value
    assert dispatched == len(instrumented[0])
