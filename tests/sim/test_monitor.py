"""Unit tests for time series and monitors."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.monitor import Monitor, TimeSeries


def make_series(pairs):
    ts = TimeSeries("t")
    for t, v in pairs:
        ts.add(t, v)
    return ts


def test_empty_series_stats_are_nan():
    ts = TimeSeries()
    assert math.isnan(ts.mean())
    assert math.isnan(ts.maximum())
    assert math.isnan(ts.minimum())
    assert math.isnan(ts.stdev())


def test_single_sample_stdev_is_zero():
    # One sample has no spread — stdev must be 0.0, not NaN.
    ts = make_series([(0, 5.0)])
    assert ts.stdev() == 0.0


def test_add_and_basic_stats():
    ts = make_series([(0, 1.0), (1, 2.0), (2, 3.0)])
    assert len(ts) == 3
    assert ts.mean() == 2.0
    assert ts.maximum() == 3.0
    assert ts.minimum() == 1.0
    assert ts.stdev() == pytest.approx(math.sqrt(2.0 / 3.0))


def test_add_rejects_time_going_backwards():
    ts = make_series([(5, 1.0)])
    with pytest.raises(ValueError):
        ts.add(4.0, 2.0)


def test_between_is_half_open():
    ts = make_series([(0, 0.0), (1, 1.0), (2, 2.0), (3, 3.0)])
    sub = ts.between(1.0, 3.0)
    assert sub.as_pairs() == [(1.0, 1.0), (2.0, 2.0)]


def test_window_average_basic():
    ts = make_series([(0.05, 10.0), (0.15, 20.0), (0.25, 30.0)])
    win = ts.window_average(0.2, start=0.0, end=0.4)
    assert win.times == [0.0, 0.2]
    assert win.values[0] == pytest.approx(15.0)
    assert win.values[1] == pytest.approx(30.0)


def test_window_average_empty_window_is_nan():
    ts = make_series([(0.05, 10.0), (0.45, 20.0)])
    win = ts.window_average(0.2, start=0.0, end=0.6)
    assert math.isnan(win.values[1])


def test_window_sum_empty_is_zero():
    ts = make_series([(0.05, 10.0)])
    win = ts.window_sum(0.2, start=0.0, end=0.6)
    assert win.values == [10.0, 0.0, 0.0]


def test_window_count():
    ts = make_series([(0.0, 1.0), (0.1, 1.0), (0.3, 1.0)])
    win = ts.window_count(0.2, start=0.0, end=0.4)
    assert win.values == [2, 1]


def test_window_rejects_nonpositive():
    ts = make_series([(0.0, 1.0)])
    with pytest.raises(ValueError):
        ts.window_average(0.0)


def test_window_default_end_covers_last_sample():
    ts = make_series([(0.0, 1.0), (1.0, 2.0)])
    win = ts.window_average(0.5)
    assert len(win) >= 3
    assert win.values[0] == 1.0


def test_samples_outside_range_excluded():
    ts = make_series([(0.0, 1.0), (5.0, 99.0)])
    win = ts.window_sum(1.0, start=0.0, end=2.0)
    assert sum(win.values) == 1.0


def test_monitor_creates_named_series():
    mon = Monitor("umts")
    mon.record("queue", 0.0, 1.0)
    mon.record("queue", 1.0, 2.0)
    assert "queue" in mon
    assert mon.series("queue").name == "umts.queue"
    assert mon.keys() == ["queue"]
    assert len(mon.series("queue")) == 2


def test_monitor_distinct_keys():
    mon = Monitor()
    mon.record("a", 0.0, 1.0)
    mon.record("b", 0.0, 2.0)
    assert mon.keys() == ["a", "b"]
    assert "c" not in mon


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=50)
def test_window_sum_preserves_total(pairs):
    pairs = sorted(pairs, key=lambda p: p[0])
    ts = make_series(pairs)
    win = ts.window_sum(7.3, start=0.0, end=101.0)
    assert sum(win.values) == pytest.approx(sum(v for _, v in pairs), rel=1e-9, abs=1e-6)


@given(
    st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False), min_size=2, max_size=50
    )
)
@settings(max_examples=50)
def test_mean_between_min_and_max(values):
    ts = make_series([(float(i), v) for i, v in enumerate(values)])
    assert ts.minimum() - 1e-9 <= ts.mean() <= ts.maximum() + 1e-9


def test_window_aggregate_custom_function():
    ts = make_series([(0.05, 5.0), (0.1, 9.0), (0.25, 2.0)])
    win = ts.window_aggregate(0.2, max, start=0.0, end=0.4)
    assert win.values == [9.0, 2.0]


def test_window_aggregate_custom_empty_value():
    ts = make_series([(0.05, 5.0)])
    win = ts.window_aggregate(0.2, max, start=0.0, end=0.6, empty_value=-1.0)
    assert win.values == [5.0, -1.0, -1.0]


def test_nan_samples_ignored_by_stats():
    ts = make_series([(0.0, 1.0), (1.0, float("nan")), (2.0, 3.0)])
    assert ts.mean() == pytest.approx(2.0)
    assert ts.maximum() == 3.0
    assert ts.minimum() == 1.0


def test_between_preserves_name():
    ts = make_series([(0.0, 1.0)])
    assert ts.between(0.0, 1.0).name == ts.name
