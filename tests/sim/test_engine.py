"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.errors import ScheduleInPastError


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(5.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.5]
    assert sim.now == 5.5


def test_run_until_leaves_later_events_pending():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ScheduleInPastError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ScheduleInPastError):
        sim.schedule_at(1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_events_scheduled_during_dispatch_run():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_zero_delay_event_fires_at_same_time():
    sim = Simulator()
    times = []
    sim.schedule(3.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [3.0]


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, lambda: sim.stop())
    sim.schedule(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a"]
    # Run again continues with the remaining event.
    sim.run()
    assert fired == ["a", "c"]


def test_peek_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.peek() == 2.0


def test_peek_empty_returns_none():
    assert Simulator().peek() is None


def test_pending_count_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_count() == 1
    keep.cancel()
    assert sim.pending_count() == 0


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_many_events_monotone_clock():
    sim = Simulator()
    stamps = []
    import random

    rng = random.Random(7)
    for _ in range(500):
        sim.schedule(rng.uniform(0, 100), lambda: stamps.append(sim.now))
    sim.run()
    assert stamps == sorted(stamps)
    assert len(stamps) == 500
