"""The discrete-event engine.

A :class:`Simulator` owns a virtual clock and a priority queue of
:class:`Event` objects.  Components schedule callbacks with
:meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and the main loop
dispatches them in timestamp order.  Ties are broken by insertion
order, which keeps runs bit-for-bit deterministic.

The heap stores ``(time, seq, event)`` tuples rather than bare
:class:`Event` objects so that every heap sift compares tuples in C
instead of calling a Python-level ``__lt__`` — the single largest cost
in the dispatch loop.  ``seq`` is unique, so two entries never compare
beyond the first two fields and the :class:`Event` objects themselves
are never compared.

:meth:`Simulator.run` has two loops.  The **fast path** runs when
``trace``, ``metrics``, ``profile`` and ``on_dispatch`` are all
``None`` (the
observability layer's no-sink contract): no ``time.perf_counter``
pair, no histogram update, no per-event ``peek``/``step`` method-call
round-trip.  Attaching instrumentation *mid-run* from inside a
callback takes effect on the next :meth:`run` call; attach it before
running (as :class:`repro.obs.Observability` does) for per-event
coverage.  Both loops dispatch events in exactly the same order, so
instrumented and uninstrumented runs are bit-for-bit identical.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.errors import ScheduleInPastError

#: Histogram edges for per-event wall-clock dispatch cost (seconds).
DISPATCH_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1)


class Event:
    """A scheduled callback.

    Events are created by the simulator; user code holds them only to
    :meth:`cancel` them.  A cancelled event stays in the heap but is
    skipped when popped (lazy deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, callback: Callable[..., Any], args: Tuple[Any, ...]
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """Single-threaded discrete-event simulator.

    The clock starts at ``0.0`` and only moves forward, driven by the
    timestamps of dispatched events.  Time is measured in **seconds**
    throughout the code base.

    Example::

        sim = Simulator()
        sim.schedule(1.0, print, "one second elapsed")
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        #: optional :class:`~repro.obs.TraceBus`; components check this
        #: before emitting, so ``None`` keeps the stack uninstrumented.
        self.trace: Optional[Any] = None
        #: optional :class:`~repro.obs.MetricsRegistry` (same contract).
        self.metrics: Optional[Any] = None
        #: optional ``callback(event, wall_seconds)`` run after each dispatch.
        self.on_dispatch: Optional[Callable[[Event, float], None]] = None
        #: optional :class:`~repro.obs.SimProfiler` fed once per dispatch
        #: (same zero-cost-when-``None`` contract as ``metrics``).
        self.profile: Optional[Any] = None
        #: optional :class:`~repro.faults.FaultRegistry`; injection
        #: points check this before consulting fault plans, so ``None``
        #: keeps unfaulted runs bit-identical.
        self.faults: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.  A negative
        (or NaN) delay raises :class:`ScheduleInPastError`.
        """
        if not delay >= 0:  # rejects negatives and NaN in one comparison
            raise ScheduleInPastError(f"negative delay {delay!r}")
        when = self._now + delay
        event = Event(when, seq := next(self._seq), callback, args)
        heapq.heappush(self._heap, (when, seq, event))
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at the absolute time ``time``.

        A time earlier than the clock — or NaN, which would silently
        corrupt the heap ordering — raises :class:`ScheduleInPastError`.
        """
        if not time >= self._now:
            if math.isnan(time):
                raise ScheduleInPastError(f"cannot schedule at NaN time {time!r}")
            raise ScheduleInPastError(
                f"cannot schedule at {time!r}; clock already at {self._now!r}"
            )
        event = Event(time, seq := next(self._seq), callback, args)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def stop(self) -> None:
        """Make :meth:`run` return after the event being dispatched."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def step(self) -> bool:
        """Dispatch the next event.  Returns ``False`` if none remained."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            when, _seq, event = pop(heap)
            if event.cancelled:
                continue
            self._now = when
            if self.metrics is None and self.on_dispatch is None and self.profile is None:
                event.callback(*event.args)
            else:
                self._dispatch_instrumented(event)
            return True
        return False

    def _dispatch_instrumented(self, event: Event) -> None:
        """Dispatch one event under timing/metrics instrumentation."""
        start = time.perf_counter()
        event.callback(*event.args)
        elapsed = time.perf_counter() - start
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("engine.events_dispatched").inc()
            metrics.histogram("engine.dispatch_wall_seconds", DISPATCH_BUCKETS).observe(
                elapsed
            )
            metrics.gauge("engine.queue_depth").set(len(self._heap))
        profile = self.profile
        if profile is not None:
            profile.record(event, self._now, elapsed)
        if self.on_dispatch is not None:
            self.on_dispatch(event, elapsed)

    def run(self, until: Optional[float] = None) -> float:
        """Run the event loop.

        With ``until=None`` the loop drains the queue completely.  With a
        deadline, events strictly after ``until`` are left pending and
        the clock is advanced exactly to ``until``.  Returns the final
        clock value.

        When ``trace``, ``metrics``, ``profile`` and ``on_dispatch``
        are all ``None`` a tight fast path is used; dispatch order is
        identical either way.
        """
        self._running = True
        self._stopped = False
        try:
            if (
                self.trace is None
                and self.metrics is None
                and self.on_dispatch is None
                and self.profile is None
            ):
                self._run_fast(until)
            else:
                self._run_instrumented(until)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def _run_fast(self, until: Optional[float]) -> None:
        """Uninstrumented loop: locals hoisted, one heap pop per event."""
        heap = self._heap
        pop = heapq.heappop
        if until is None:
            until = math.inf
        while heap and not self._stopped:
            head = heap[0]
            event = head[2]
            if event.cancelled:
                pop(heap)
                continue
            when = head[0]
            if when > until:
                break
            pop(heap)
            self._now = when
            event.callback(*event.args)

    def _run_instrumented(self, until: Optional[float]) -> None:
        """Original peek/step loop, used whenever instrumentation is attached."""
        while not self._stopped:
            next_time = self.peek()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued (O(n))."""
        return sum(1 for entry in self._heap if not entry[2].cancelled)
