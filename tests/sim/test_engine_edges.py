"""Edge-semantics tests for the engine's dispatch loop.

These pin down the behaviours the fast-path rewrite must preserve:
cancellation of already-dispatched events, scheduling at exactly
``now``, ``run(until=...)`` boundary inclusivity, tie-break ordering
under heavy same-timestamp load, and the schedule guards (negative,
past, NaN).  The fast and instrumented loops are also run against the
same workload to prove identical dispatch order.
"""

import math

import pytest

from repro.obs import MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.errors import ScheduleInPastError


def test_cancel_already_dispatched_event_is_harmless():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.schedule(2.0, fired.append, "y")
    sim.run(until=1.5)
    assert fired == ["x"]
    # The event already fired; cancelling it now must not disturb the
    # remaining queue or raise.
    event.cancel()
    event.cancel()
    sim.run()
    assert fired == ["x", "y"]


def test_cancel_own_event_during_dispatch():
    sim = Simulator()
    fired = []

    def self_cancelling(event_box):
        fired.append("ran")
        event_box[0].cancel()  # cancelling mid-dispatch must be a no-op

    box = [None]
    box[0] = sim.schedule(1.0, self_cancelling, box)
    sim.run()
    assert fired == ["ran"]


def test_schedule_at_exactly_now_fires():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: sim.schedule_at(sim.now, fired.append, sim.now))
    sim.run()
    assert fired == [3.0]
    assert sim.now == 3.0


def test_run_until_boundary_is_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "at-boundary")
    sim.schedule(5.0 + 1e-9, fired.append, "after-boundary")
    sim.run(until=5.0)
    # An event at exactly ``until`` fires; one strictly after stays.
    assert fired == ["at-boundary"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["at-boundary", "after-boundary"]


def test_tie_break_order_under_heavy_same_timestamp_load():
    sim = Simulator()
    fired = []
    cancelled = []
    for i in range(2000):
        event = sim.schedule(1.0, fired.append, i)
        if i % 7 == 0:
            event.cancel()
            cancelled.append(i)
    # Interleave a second batch at the same instant scheduled from a
    # dispatched event: they must run after the first batch, in order.
    sim.schedule(1.0, lambda: [sim.schedule(0.0, fired.append, ("late", i)) for i in range(50)])
    sim.run()
    expected = [i for i in range(2000) if i % 7 != 0]
    assert fired[: len(expected)] == expected
    assert fired[len(expected) :] == [("late", i) for i in range(50)]


def test_negative_delay_and_past_time_raise():
    sim = Simulator()
    with pytest.raises(ScheduleInPastError):
        sim.schedule(-1e-9, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(ScheduleInPastError):
        sim.schedule_at(1.999999, lambda: None)


def test_nan_delay_and_time_rejected():
    sim = Simulator()
    with pytest.raises(ScheduleInPastError):
        sim.schedule(math.nan, lambda: None)
    with pytest.raises(ScheduleInPastError):
        sim.schedule_at(math.nan, lambda: None)


def test_stop_from_callback_halts_fast_path():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "c"]


def _workload(sim, fired):
    """A branchy workload: nested scheduling, cancellations, ties."""
    def leaf(tag):
        fired.append((sim.now, tag))

    def parent(tag):
        fired.append((sim.now, tag))
        sim.schedule(0.0, leaf, f"{tag}/child-same-time")
        sim.schedule(0.5, leaf, f"{tag}/child-later")
        doomed = sim.schedule(0.25, leaf, f"{tag}/doomed")
        doomed.cancel()

    for i in range(50):
        sim.schedule(1.0 + (i % 5) * 0.125, parent, f"p{i}")


def test_fast_and_instrumented_paths_dispatch_identically():
    plain_sim = Simulator()
    plain_fired = []
    _workload(plain_sim, plain_fired)
    plain_sim.run()

    metered_sim = Simulator()
    metered_sim.metrics = MetricsRegistry()
    metered_fired = []
    _workload(metered_sim, metered_fired)
    metered_sim.run()

    assert plain_fired == metered_fired
    assert plain_sim.now == metered_sim.now
    dispatched = metered_sim.metrics.counter("engine.events_dispatched").value
    assert dispatched == len(metered_fired)
