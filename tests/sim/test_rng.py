"""Unit and property tests for random streams and distributions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import (
    CauchyVariate,
    ConstantVariate,
    ExponentialVariate,
    GammaVariate,
    LogNormalVariate,
    NormalVariate,
    ParetoVariate,
    RandomStreams,
    UniformVariate,
    WeibullVariate,
)


def test_same_name_returns_same_stream_object():
    streams = RandomStreams(1)
    assert streams.stream("a") is streams.stream("a")


def test_different_names_give_independent_sequences():
    streams = RandomStreams(1)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_same_seed_reproduces_sequences():
    one = RandomStreams(42)
    two = RandomStreams(42)
    assert [one.stream("x").random() for _ in range(10)] == [
        two.stream("x").random() for _ in range(10)
    ]


def test_different_seeds_differ():
    assert RandomStreams(1).stream("x").random() != RandomStreams(2).stream("x").random()


def test_fork_is_deterministic_and_distinct():
    base = RandomStreams(7)
    f1 = base.fork("rep-1")
    f2 = base.fork("rep-1")
    f3 = base.fork("rep-2")
    assert f1.seed == f2.seed
    assert f1.seed != f3.seed
    assert f1.seed != base.seed


def test_constant_variate():
    rng = RandomStreams(0).stream("c")
    dist = ConstantVariate(3.5)
    assert all(dist.sample(rng) == 3.5 for _ in range(10))
    assert dist.mean() == 3.5


def test_uniform_variate_bounds_and_mean():
    rng = RandomStreams(0).stream("u")
    dist = UniformVariate(2.0, 4.0)
    samples = [dist.sample(rng) for _ in range(2000)]
    assert all(2.0 <= s <= 4.0 for s in samples)
    assert sum(samples) / len(samples) == pytest.approx(3.0, abs=0.1)
    assert dist.mean() == 3.0


def test_uniform_rejects_reversed_bounds():
    with pytest.raises(ValueError):
        UniformVariate(4.0, 2.0)


def test_exponential_mean():
    rng = RandomStreams(0).stream("e")
    dist = ExponentialVariate(0.5)
    samples = [dist.sample(rng) for _ in range(5000)]
    assert sum(samples) / len(samples) == pytest.approx(0.5, rel=0.1)
    assert dist.mean() == 0.5


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        ExponentialVariate(0.0)


def test_normal_clamping():
    rng = RandomStreams(0).stream("n")
    dist = NormalVariate(0.0, 1.0, low=0.0)
    assert all(dist.sample(rng) >= 0.0 for _ in range(1000))


def test_normal_rejects_negative_sigma():
    with pytest.raises(ValueError):
        NormalVariate(0.0, -1.0)


def test_pareto_minimum_is_scale():
    rng = RandomStreams(0).stream("p")
    dist = ParetoVariate(2.0, 10.0)
    assert all(dist.sample(rng) >= 10.0 for _ in range(1000))
    assert dist.mean() == pytest.approx(20.0)


def test_pareto_infinite_mean_when_alpha_leq_1():
    assert math.isinf(ParetoVariate(1.0, 5.0).mean())


def test_pareto_rejects_bad_params():
    with pytest.raises(ValueError):
        ParetoVariate(-1.0, 1.0)
    with pytest.raises(ValueError):
        ParetoVariate(1.0, 0.0)


def test_cauchy_clamped_sampling():
    rng = RandomStreams(0).stream("cy")
    dist = CauchyVariate(0.0, 1.0, low=-100.0, high=100.0)
    samples = [dist.sample(rng) for _ in range(1000)]
    assert all(-100.0 <= s <= 100.0 for s in samples)
    assert math.isnan(dist.mean())


def test_cauchy_rejects_nonpositive_gamma():
    with pytest.raises(ValueError):
        CauchyVariate(0.0, 0.0)


def test_weibull_mean():
    rng = RandomStreams(0).stream("w")
    dist = WeibullVariate(1.0, 1.0)  # reduces to Exponential(1)
    samples = [dist.sample(rng) for _ in range(5000)]
    assert sum(samples) / len(samples) == pytest.approx(1.0, rel=0.1)
    assert dist.mean() == pytest.approx(1.0)


def test_gamma_mean():
    rng = RandomStreams(0).stream("g")
    dist = GammaVariate(2.0, 3.0)
    samples = [dist.sample(rng) for _ in range(5000)]
    assert sum(samples) / len(samples) == pytest.approx(6.0, rel=0.1)
    assert dist.mean() == 6.0


def test_lognormal_mean():
    dist = LogNormalVariate(0.0, 0.5)
    assert dist.mean() == pytest.approx(math.exp(0.125))


def test_distribution_low_high_validation():
    with pytest.raises(ValueError):
        NormalVariate(0, 1, low=5.0, high=1.0)


@given(st.floats(min_value=-1e6, max_value=1e6), st.integers(min_value=0, max_value=2**32))
@settings(max_examples=50)
def test_constant_variate_is_always_value(value, seed):
    rng = RandomStreams(seed).stream("s")
    assert ConstantVariate(value).sample(rng) == value


@given(
    st.floats(min_value=0.001, max_value=1e3),
    st.floats(min_value=0.001, max_value=1e3),
    st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=50)
def test_clamps_respected_for_exponential(mean, low, seed):
    rng = RandomStreams(seed).stream("s")
    dist = ExponentialVariate(mean, low=low)
    assert dist.sample(rng) >= low


@given(st.integers(min_value=0, max_value=2**63 - 1), st.text(min_size=1, max_size=20))
@settings(max_examples=50)
def test_stream_determinism_property(seed, name):
    a = RandomStreams(seed).stream(name).random()
    b = RandomStreams(seed).stream(name).random()
    assert a == b
