"""Unit tests for processes, signals and stores."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError
from repro.sim.process import Interrupt, Process, Signal, Store, spawn


def test_process_sleeps_on_numeric_yield():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield 2.5
        trace.append(("woke", sim.now))

    spawn(sim, proc())
    sim.run()
    assert trace == [("start", 0.0), ("woke", 2.5)]


def test_process_integer_yield():
    sim = Simulator()
    done = []

    def proc():
        yield 3
        done.append(sim.now)

    spawn(sim, proc())
    sim.run()
    assert done == [3.0]


def test_process_completion_sets_value():
    sim = Simulator()

    def proc():
        yield 1.0
        return 42

    p = spawn(sim, proc())
    sim.run()
    assert not p.alive
    assert p.value == 42


def test_process_waits_on_signal_and_receives_value():
    sim = Simulator()
    sig = Signal(sim, "go")
    got = []

    def waiter():
        value = yield sig
        got.append((sim.now, value))

    spawn(sim, waiter())
    sim.schedule(4.0, sig.fire, "payload")
    sim.run()
    assert got == [(4.0, "payload")]


def test_signal_wakes_multiple_waiters():
    sim = Simulator()
    sig = Signal(sim, "go")
    woken = []

    def waiter(tag):
        yield sig
        woken.append(tag)

    for tag in "abc":
        spawn(sim, waiter(tag))
    sim.schedule(1.0, sig.fire)
    sim.run()
    assert sorted(woken) == ["a", "b", "c"]


def test_signal_fire_only_wakes_current_waiters():
    sim = Simulator()
    sig = Signal(sim, "go")
    woken = []

    def late_waiter():
        yield 5.0
        yield sig
        woken.append("late")

    spawn(sim, late_waiter())
    sim.schedule(1.0, sig.fire)  # fires before the waiter blocks
    sim.run(until=10.0)
    assert woken == []


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    store.put("hello")
    spawn(sim, consumer())
    sim.run()
    assert got == ["hello"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    spawn(sim, consumer())
    sim.schedule(3.0, store.put, "x")
    sim.run()
    assert got == [(3.0, "x")]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        while True:
            item = yield store.get()
            got.append(item)
            if item == "stop":
                return

    for item in ["a", "b", "c", "stop"]:
        store.put(item)
    spawn(sim, consumer())
    sim.run()
    assert got == ["a", "b", "c", "stop"]


def test_store_get_nowait_raises_when_empty():
    sim = Simulator()
    store = Store(sim)
    with pytest.raises(IndexError):
        store.get_nowait()


def test_process_waits_on_other_process():
    sim = Simulator()
    order = []

    def worker():
        yield 2.0
        order.append("worker done")
        return "result"

    def boss():
        value = yield w
        order.append(f"boss saw {value}")

    w = spawn(sim, worker())
    spawn(sim, boss())
    sim.run()
    assert order == ["worker done", "boss saw result"]


def test_waiting_on_finished_process_resumes_immediately():
    sim = Simulator()
    result = []

    def worker():
        yield 1.0
        return "early"

    w = spawn(sim, worker())

    def boss():
        yield 5.0  # worker finished long ago
        value = yield w
        result.append((sim.now, value))

    spawn(sim, boss())
    sim.run()
    assert result == [(5.0, "early")]


def test_interrupt_raises_inside_process():
    sim = Simulator()
    trace = []

    def proc():
        try:
            yield 100.0
        except Interrupt as exc:
            trace.append((sim.now, exc.cause))

    p = spawn(sim, proc())
    sim.schedule(2.0, p.interrupt, "teardown")
    sim.run()
    assert trace == [(2.0, "teardown")]
    assert not p.alive


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def proc():
        yield 1.0

    p = spawn(sim, proc())
    sim.run()
    p.interrupt("too late")
    sim.run()


def test_unhandled_interrupt_kills_process():
    sim = Simulator()

    def proc():
        yield 100.0

    p = spawn(sim, proc())
    sim.schedule(1.0, p.interrupt)
    sim.run()
    assert not p.alive


def test_interrupt_cancels_pending_sleep():
    sim = Simulator()
    trace = []

    def proc():
        try:
            yield 100.0
        except Interrupt:
            trace.append("interrupted")
            yield 1.0
            trace.append("slept again")

    p = spawn(sim, proc())
    sim.schedule(2.0, p.interrupt)
    sim.run()
    assert trace == ["interrupted", "slept again"]
    assert sim.now == pytest.approx(3.0)


def test_invalid_yield_raises():
    sim = Simulator()

    def proc():
        yield "not a waitable"

    spawn(sim, proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_process_done_signal_fires():
    sim = Simulator()
    observed = []

    def proc():
        yield 1.0
        return "v"

    p = spawn(sim, proc())
    p.done.wait(observed.append)
    sim.run()
    assert observed == ["v"]


def test_process_repr_and_name():
    sim = Simulator()

    def proc():
        yield 0.1

    p = Process(sim, proc(), name="my-proc")
    assert "my-proc" in repr(p)
    sim.run()


def test_interrupted_store_getter_does_not_swallow_items():
    """Regression: a process interrupted while blocked on store.get()
    must deregister; otherwise the next put() is silently consumed."""
    sim = Simulator()
    store = Store(sim)

    def stale_reader():
        yield store.get()

    def live_reader(got):
        item = yield store.get()
        got.append(item)

    stale = spawn(sim, stale_reader())
    sim.run()  # stale reader is now blocked on the store
    stale.interrupt("stop")
    sim.run()
    got = []
    spawn(sim, live_reader(got))
    store.put("precious")
    sim.run()
    assert got == ["precious"]
