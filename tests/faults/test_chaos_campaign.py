"""The chaos campaign: no hangs, expected outcomes, bit-identical reruns.

The delete-one-handler proof lives here: every spec a scenario declares
must actually fire at least once, so removing the injection hook at any
point (serial, registration, dial, ppp, vsys, session) fails the
campaign instead of silently turning a chaos scenario into a happy-path
run.
"""

import pytest

from repro.faults.chaos import (
    BUILTIN_SCENARIOS,
    DEGRADED,
    RECOVERED,
    run_campaign,
    run_scenario,
    scenario_names,
)

SCENARIOS = {scenario.name: scenario for scenario in BUILTIN_SCENARIOS}


def _run_all():
    """One campaign run shared by every per-scenario assertion below."""
    code, campaign_reports = run_campaign()
    return code, {report["scenario"]: report for report in campaign_reports}


CODE, REPORTS = _run_all()


def test_campaign_exit_code_is_zero():
    assert CODE == 0


def test_every_builtin_scenario_reported():
    assert sorted(REPORTS) == sorted(scenario_names())


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_matches_expectation_and_never_hangs(name):
    report = REPORTS[name]
    assert not report["hung"], f"{name} hung: {report}"
    assert report["ok"], (
        f"{name}: expected {report['expected']}, got {report['outcome']} "
        f"(start={report['start_code']} status={report['status_lines']} "
        f"stop={report['stop_code']} clean={report['clean']})"
    )


@pytest.mark.parametrize(
    "name",
    [scenario.name for scenario in BUILTIN_SCENARIOS if scenario.specs],
)
def test_every_declared_fault_fires(name):
    """Delete-one-handler proof: each injection point consumed its spec."""
    scenario = SCENARIOS[name]
    report = REPORTS[name]
    for spec in scenario.specs:
        key = spec.split("@", 1)[0]
        assert report["fired"].get(key, 0) >= 1, (
            f"{name}: {key} never fired — injection hook missing? {report['fired']}"
        )


def test_baseline_is_fault_free_and_recovers():
    report = REPORTS["baseline"]
    assert report["outcome"] == RECOVERED
    assert report["faults_injected"] == 0
    assert report["retries"] == 0


def test_degraded_scenarios_end_clean():
    for name, report in REPORTS.items():
        if report["expected"] == DEGRADED:
            assert report["clean"], f"{name} degraded dirty: {report}"


def test_supervised_drop_heals():
    report = REPORTS["session_drop_supervised"]
    assert report["heals"] == 1
    assert report["outcome"] == RECOVERED


def test_transient_faults_cost_retries():
    assert REPORTS["registration_cme"]["retries"] == 2
    assert REPORTS["dial_no_carrier"]["retries"] == 1
    assert REPORTS["registration_denied"]["retries"] == 0  # permanent: no retry


@pytest.mark.parametrize("name", scenario_names())
def test_two_runs_are_bit_identical(name):
    rerun = run_scenario(SCENARIOS[name])
    assert rerun["digest"] == REPORTS[name]["digest"], (
        f"{name}: recovery timeline is not a pure function of the seed"
    )


def test_check_mode_flags_determinism():
    code, campaign_reports = run_campaign(names=["baseline", "serial_drop"], check=True)
    assert code == 0
    assert all(report["deterministic"] for report in campaign_reports)


def test_unknown_scenario_raises():
    with pytest.raises(KeyError):
        run_campaign(names=["baseline", "nosuch"])
