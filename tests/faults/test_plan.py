"""The fault-plan grammar and the live registry semantics."""

import pytest

from repro.faults import (
    CATALOG,
    FaultPlan,
    FaultRegistry,
    FaultSpec,
    FaultSpecError,
    Garbled,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


class TestSpecGrammar:
    def test_full_spec_parses(self):
        plan = FaultPlan.from_spec("registration:cme_error@t=2.0,count=2")
        (spec,) = plan.specs
        assert spec.point == "registration"
        assert spec.mode == "cme_error"
        assert spec.at == 2.0
        assert spec.count == 2
        assert spec.duration is None
        assert spec.probability is None

    def test_defaults(self):
        (spec,) = FaultPlan.from_spec("serial:drop").specs
        assert spec.at == 0.0
        assert spec.duration is None
        assert spec.count is None
        assert spec.key == "serial:drop"

    def test_window_probability_and_params(self):
        (spec,) = FaultPlan.from_spec(
            "session:drop@t=40,for=10,p=0.5,reason=idle timer"
        ).specs
        assert spec.duration == 10.0
        assert spec.probability == 0.5
        assert spec.params == {"reason": "idle timer"}

    def test_str_round_trips(self):
        for text in (
            "serial:drop@t=0",
            "registration:cme_error@t=2,count=2",
            "ppp:lcp_drop@t=1.5,for=15",
            "session:drop@t=40,p=0.25,reason=ggsn",
        ):
            (spec,) = FaultPlan.from_spec(text).specs
            (reparsed,) = FaultPlan.from_spec(str(spec)).specs
            assert reparsed == spec

    @pytest.mark.parametrize(
        "bad",
        [
            "serial",  # no mode
            ":drop",  # no point
            "serial:",  # empty mode
            "nosuch:drop",  # unknown point
            "serial:explode",  # unknown mode for the point
            "serial:drop@t",  # key without value
            "serial:drop@t=abc",  # unparsable float
            "serial:drop@t=-1",  # negative activation time
            "serial:drop@for=-5",  # negative window
            "serial:drop@count=0",  # count below 1
            "serial:drop@p=0",  # probability outside (0, 1]
            "serial:drop@p=1.5",
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_spec(bad)

    def test_catalog_is_the_whole_vocabulary(self):
        for point, modes in CATALOG.items():
            for mode in modes:
                FaultSpec(point, mode)  # every pair constructs

    def test_triggered_classification(self):
        assert FaultSpec("session", "drop").triggered
        assert FaultSpec("session", "rab_preempt").triggered
        assert not FaultSpec("session", "refuse").triggered
        assert not FaultSpec("serial", "drop").triggered

    def test_active_window(self):
        spec = FaultSpec("serial", "drop", at=5.0, duration=10.0)
        assert not spec.active_at(4.9)
        assert spec.active_at(5.0)
        assert spec.active_at(15.0)
        assert not spec.active_at(15.1)


class TestRegistryFire:
    def test_count_consumes_then_exhausts(self):
        sim = Simulator()
        registry = FaultPlan.from_spec("serial:drop@t=0,count=2").install(sim)
        assert sim.faults is registry
        assert registry.fire("serial", "drop") is not None
        assert registry.fire("serial", "drop") is not None
        assert registry.fire("serial", "drop") is None
        assert registry.fired == {"serial:drop": 2}
        assert registry.fired_total("serial") == 2

    def test_mode_filter_and_any_mode(self):
        sim = Simulator()
        registry = FaultPlan.from_spec("serial:garble@t=0,count=1").install(sim)
        assert registry.fire("serial", "drop") is None
        spec = registry.fire("serial", "drop", "garble")
        assert spec is not None and spec.mode == "garble"

    def test_window_gates_firing(self):
        sim = Simulator()
        registry = FaultPlan.from_spec("serial:drop@t=10,for=5").install(sim)
        assert registry.fire("serial", "drop") is None  # too early (t=0)
        sim.schedule(12.0, lambda: None)
        sim.run(until=12.0)
        assert registry.fire("serial", "drop") is not None
        sim.schedule(20.0, lambda: None)
        sim.run(until=20.0)
        assert registry.fire("serial", "drop") is None  # window closed

    def test_probability_needs_rng_at_install(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_spec("serial:drop@p=0.5").install(Simulator())

    def test_probability_draws_are_seed_deterministic(self):
        def outcomes(seed):
            sim = Simulator()
            rng = RandomStreams(seed).stream("faults")
            registry = FaultPlan.from_spec("serial:drop@p=0.5").install(sim, rng=rng)
            return [registry.fire("serial", "drop") is not None for _ in range(32)]

        assert outcomes(7) == outcomes(7)
        assert any(outcomes(7))
        assert not all(outcomes(7))


class TestTriggeredDelivery:
    def test_handler_consumes_activated_trigger(self):
        sim = Simulator()
        registry = FaultPlan.from_spec("session:drop@t=5").install(sim)
        seen = []
        registry.subscribe("session", lambda spec: (seen.append(spec), True)[1])
        sim.run(until=10.0)
        assert len(seen) == 1
        assert registry.fired == {"session:drop": 1}

    def test_late_subscriber_gets_pending_trigger(self):
        sim = Simulator()
        registry = FaultPlan.from_spec("session:drop@t=1").install(sim)
        sim.run(until=5.0)  # activates with nobody listening
        seen = []
        registry.subscribe("session", lambda spec: (seen.append(spec), True)[1])
        sim.run(until=6.0)
        assert len(seen) == 1

    def test_declining_handler_leaves_trigger_pending(self):
        sim = Simulator()
        registry = FaultPlan.from_spec("session:drop@t=1").install(sim)
        registry.subscribe("session", lambda spec: False)
        sim.run(until=2.0)
        assert registry.fired == {}
        taken = []
        registry.subscribe("session", lambda spec: (taken.append(spec), True)[1])
        sim.run(until=3.0)
        assert len(taken) == 1
        assert registry.fired == {"session:drop": 1}

    def test_subscribe_is_idempotent(self):
        sim = Simulator()
        registry = FaultPlan.from_spec("session:drop@t=1").install(sim)
        seen = []

        def handler(spec):
            seen.append(spec)
            return True

        registry.subscribe("session", handler)
        registry.subscribe("session", handler)
        sim.run(until=2.0)
        assert len(seen) == 1

    def test_triggered_spec_never_fires_passively(self):
        sim = Simulator()
        registry = FaultPlan.from_spec("session:drop@t=0").install(sim)
        assert registry.fire("session", "drop") is None


class TestGarbled:
    def test_wraps_original(self):
        wrapped = Garbled("OK")
        assert wrapped.original == "OK"
