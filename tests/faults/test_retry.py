"""RetryPolicy arithmetic, jitter determinism, and failure classification."""

import pytest

from repro.core.retry import (
    PERMANENT,
    TRANSIENT,
    RetryPolicy,
    classify_comgt,
    classify_wvdial,
)
from repro.sim.rng import RandomStreams


class TestPolicyMath:
    def test_exponential_schedule_capped(self):
        policy = RetryPolicy(max_attempts=5, base_delay=2.0, multiplier=2.0, max_delay=10.0)
        assert [policy.delay(a) for a in range(5)] == [2.0, 4.0, 8.0, 10.0, 10.0]

    def test_constant_schedule(self):
        policy = RetryPolicy(max_attempts=3, base_delay=2.0, multiplier=1.0, max_delay=2.0)
        assert policy.delays() == [2.0, 2.0]

    def test_attempts_and_is_last(self):
        policy = RetryPolicy(max_attempts=3)
        assert list(policy.attempts()) == [0, 1, 2]
        assert [policy.is_last(a) for a in policy.attempts()] == [False, False, True]

    def test_delays_has_one_entry_per_backoff(self):
        assert RetryPolicy(max_attempts=1).delays() == []
        assert len(RetryPolicy(max_attempts=4).delays()) == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"max_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestJitter:
    POLICY = RetryPolicy(max_attempts=4, base_delay=2.0, multiplier=2.0, jitter=0.25)

    def test_no_rng_no_jitter(self):
        # The unfaulted happy path must not consume RNG draws.
        assert self.POLICY.delay(0) == 2.0
        assert self.POLICY.delays() == [2.0, 4.0, 8.0]

    def test_jitter_bounds(self):
        rng = RandomStreams(11).stream("retry")
        for attempt in range(3):
            base = RetryPolicy(max_attempts=4, base_delay=2.0, multiplier=2.0).delay(attempt)
            jittered = self.POLICY.delay(attempt, rng)
            assert base <= jittered <= base * 1.25

    def test_jitter_is_seed_deterministic(self):
        first = self.POLICY.delays(RandomStreams(11).stream("retry"))
        second = self.POLICY.delays(RandomStreams(11).stream("retry"))
        other = self.POLICY.delays(RandomStreams(12).stream("retry"))
        assert first == second
        assert first != other


class TestClassification:
    def test_comgt_permanent_markers(self):
        assert classify_comgt(["registration denied"]) == PERMANENT
        assert classify_comgt(["SIM PIN required"]) == PERMANENT
        assert classify_comgt(["PIN rejected"]) == PERMANENT

    def test_comgt_transient_by_default(self):
        assert classify_comgt(["+CME ERROR: no network service"]) == TRANSIENT
        assert classify_comgt(["comgt: timeout waiting for response"]) == TRANSIENT
        assert classify_comgt([]) == TRANSIENT

    def test_wvdial_classification(self):
        assert classify_wvdial(["wvdial: modem reports SIM PIN"]) == PERMANENT
        assert classify_wvdial(["NO CARRIER"]) == TRANSIENT
        assert classify_wvdial(["pppd: LCP negotiation failed"]) == TRANSIENT
