"""ConnectionSupervisor: heal, stand down on purpose, give up on budget."""

from repro.core.retry import RetryPolicy
from repro.core.supervisor import ConnectionSupervisor
from repro.sim.engine import Simulator
from repro.sim.process import Signal

FAST = RetryPolicy(max_attempts=2, base_delay=1.0, multiplier=2.0, max_delay=10.0)


class FakeConnection:
    """Just enough connection: the ``went_down`` signal."""

    def __init__(self, sim):
        self.went_down = Signal(sim, "went-down")


def make_restart(codes, calls):
    """A restart factory whose generator returns the next canned code."""

    def restart():
        calls.append(len(calls))
        yield 0.0
        code = codes[min(len(calls) - 1, len(codes) - 1)]
        return (code, [])

    return restart


def test_heals_on_unexpected_down():
    sim = Simulator()
    connection = FakeConnection(sim)
    calls = []
    supervisor = ConnectionSupervisor(
        sim, connection, make_restart([0], calls), policy=FAST
    )
    connection.went_down.fire("carrier lost")
    sim.run(until=30.0)
    assert calls == [0]
    assert supervisor.heals == 1
    assert supervisor.gave_up == 0


def test_deliberate_stop_is_ignored():
    sim = Simulator()
    connection = FakeConnection(sim)
    calls = []
    supervisor = ConnectionSupervisor(
        sim, connection, make_restart([0], calls), policy=FAST
    )
    connection.went_down.fire("umts stop")
    sim.run(until=30.0)
    assert calls == []
    assert supervisor.heals == 0
    # Still armed: a later unexpected death is handled.
    connection.went_down.fire("carrier lost")
    sim.run(until=60.0)
    assert supervisor.heals == 1


def test_gives_up_when_budget_spent():
    sim = Simulator()
    connection = FakeConnection(sim)
    calls = []
    supervisor = ConnectionSupervisor(
        sim, connection, make_restart([1], calls), policy=FAST
    )
    connection.went_down.fire("no coverage")
    sim.run(until=60.0)
    assert calls == [0, 1]  # exactly max_attempts restarts
    assert supervisor.heals == 0
    assert supervisor.gave_up == 1


def test_retries_until_restart_sticks():
    sim = Simulator()
    connection = FakeConnection(sim)
    calls = []
    supervisor = ConnectionSupervisor(
        sim, connection, make_restart([1, 0], calls), policy=FAST
    )
    connection.went_down.fire("carrier lost")
    sim.run(until=60.0)
    assert calls == [0, 1]
    assert supervisor.heals == 1
    assert supervisor.gave_up == 0


def test_stopped_supervisor_stays_down():
    sim = Simulator()
    connection = FakeConnection(sim)
    calls = []
    supervisor = ConnectionSupervisor(
        sim, connection, make_restart([0], calls), policy=FAST
    )
    supervisor.stop()
    connection.went_down.fire("carrier lost")
    sim.run(until=30.0)
    assert calls == []
    assert supervisor.heals == 0


def test_no_double_heal_while_healing():
    sim = Simulator()
    connection = FakeConnection(sim)
    calls = []
    supervisor = ConnectionSupervisor(
        sim, connection, make_restart([0], calls), policy=FAST
    )
    connection.went_down.fire("carrier lost")
    connection.went_down.fire("carrier lost again")
    sim.run(until=30.0)
    assert calls == [0]
    assert supervisor.heals == 1
