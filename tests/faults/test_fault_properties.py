"""Property tests: arbitrary fault plans never wedge or dirty the node.

Whatever combination of faults a plan throws at the stack, two
invariants must hold at the end of the run:

- **liveness** — the ``umts start``/``status``/``stop`` driver finishes
  before the deadline (every layer owns a timeout or an attempt
  budget, so no fault can hang the slice tool);
- **exclusivity/cleanliness** — the interface lock, the isolation
  rules, ``ppp0`` and the UMTS routing table are either all live (the
  connection is up) or all released (it is down).  No fault may leak
  state past its scenario.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.isolation import UMTS_TABLE
from repro.faults.plan import CATALOG, FaultPlan, FaultSpec
from repro.sim.process import spawn
from repro.testbed.scenarios import OneLabScenario

#: Every (point, mode) pair in the catalog, in a stable order.
PAIRS = sorted((point, mode) for point, modes in CATALOG.items() for mode in modes)


@st.composite
def fault_specs(draw):
    point, mode = draw(st.sampled_from(PAIRS))
    at = draw(st.integers(min_value=0, max_value=80)) / 2.0
    count = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=3)))
    duration = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=60)))
    probability = draw(st.one_of(st.none(), st.floats(min_value=0.2, max_value=1.0)))
    return FaultSpec(
        point,
        mode,
        at=at,
        duration=None if duration is None else float(duration),
        count=count,
        probability=probability,
    )


@given(
    specs=st.lists(fault_specs(), max_size=4),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=40, deadline=None)
def test_any_plan_finishes_and_leaks_nothing(specs, seed):
    testbed = OneLabScenario(seed=seed)
    sim = testbed.sim
    FaultPlan(specs).install(sim, rng=testbed.streams.stream("faults"))
    umts = testbed.umts_command()
    finished = []

    def driver():
        yield umts.start()
        yield 60.0
        yield umts.status()
        if testbed.napoli.connection.is_up:
            yield umts.stop()
        finished.append(True)

    spawn(sim, driver(), name="property-driver")
    sim.run(until=900.0)

    # Liveness: no fault combination may wedge the driver.
    assert finished, f"driver hung under plan {[str(s) for s in specs]}"

    backend = testbed.napoli.umts_backend
    stack = testbed.napoli.stack
    connection = testbed.napoli.connection
    plan_text = [str(s) for s in specs]
    if connection.is_up:
        # Slice exclusivity: a live connection holds the lock.
        assert backend.lock.locked, f"up but unlocked under {plan_text}"
    else:
        # Nothing may leak once the connection is down.
        assert not backend.lock.locked, f"stale lock under {plan_text}"
        assert not backend.isolation.active, f"stale isolation under {plan_text}"
        assert "ppp0" not in stack.interfaces, f"stale ppp0 under {plan_text}"
        assert stack.ip.route_list(UMTS_TABLE) == [], f"stale routes under {plan_text}"
