"""Unit tests for the ip command facade (typed API and string parser)."""

import pytest

from repro.routing.iproute2 import IpRoute2, IpRouteError
from repro.routing.rpdb import RoutingPolicyDatabase


@pytest.fixture()
def ipr():
    return IpRoute2(RoutingPolicyDatabase())


def test_route_add_and_lookup(ipr):
    ipr.route_add("143.225.229.0/24", "eth0")
    ipr.route_add("default", "eth0", via="143.225.229.1")
    route = ipr.rpdb.lookup("8.8.8.8")
    assert route.dev == "eth0"
    assert str(route.via) == "143.225.229.1"


def test_route_add_to_user_table(ipr):
    ipr.route_add("default", "ppp0", table="umts")
    assert len(ipr.route_list("umts")) == 1
    assert len(ipr.route_list("main")) == 0


def test_route_del(ipr):
    ipr.route_add("default", "eth0")
    ipr.route_del("default", table="main")
    assert ipr.route_list() == []


def test_route_del_missing_raises(ipr):
    with pytest.raises(IpRouteError):
        ipr.route_del("default")


def test_rule_add_and_del(ipr):
    ipr.rule_add("umts", 100, fwmark=1)
    assert any(r.fwmark == 1 for r in ipr.rule_list())
    assert ipr.rule_del(fwmark=1) == 1


def test_rule_add_duplicate_raises(ipr):
    ipr.rule_add("umts", 100, fwmark=1)
    with pytest.raises(IpRouteError):
        ipr.rule_add("umts", 100, fwmark=1)


def test_string_route_add_with_table(ipr):
    ipr.run("ip route add default dev ppp0 table umts")
    routes = ipr.route_list("umts")
    assert len(routes) == 1
    assert routes[0].dev == "ppp0"
    assert routes[0].prefix.prefixlen == 0


def test_string_route_add_via(ipr):
    ipr.run("route add default via 143.225.229.1 dev eth0")
    route = ipr.rpdb.lookup("8.8.8.8")
    assert str(route.via) == "143.225.229.1"


def test_string_route_replace(ipr):
    ipr.run("route add default dev eth0")
    ipr.run("route replace default dev eth0")
    assert len(ipr.route_list()) == 1


def test_string_route_del(ipr):
    ipr.run("route add default dev ppp0 table umts")
    ipr.run("route del default dev ppp0 table umts")
    assert ipr.route_list("umts") == []


def test_string_route_flush_table(ipr):
    ipr.run("route add default dev ppp0 table umts")
    ipr.run("route flush table umts")
    assert ipr.route_list("umts") == []


def test_string_rule_add_fwmark(ipr):
    ipr.run("rule add fwmark 0x1 lookup umts pref 100")
    rule = [r for r in ipr.rule_list() if r.table == "umts"][0]
    assert rule.fwmark == 1
    assert rule.pref == 100


def test_string_rule_add_from(ipr):
    ipr.run("rule add from 10.199.3.7 lookup umts pref 101")
    rule = [r for r in ipr.rule_list() if r.table == "umts"][0]
    assert str(rule.src) == "10.199.3.7/32"


def test_string_rule_del(ipr):
    ipr.run("rule add fwmark 1 lookup umts pref 100")
    ipr.run("rule del fwmark 1")
    assert all(r.table != "umts" for r in ipr.rule_list())


def test_history_records_commands(ipr):
    ipr.run("route add default dev eth0")
    ipr.run("rule add fwmark 1 lookup umts pref 100")
    assert len(ipr.history) == 2
    assert "route add" in ipr.history[0]


def test_unsupported_object_raises(ipr):
    with pytest.raises(IpRouteError):
        ipr.run("link set ppp0 up")


def test_unsupported_route_option_raises(ipr):
    with pytest.raises(IpRouteError):
        ipr.run("route add default dev eth0 nexthop whatever")


def test_route_add_without_dev_raises(ipr):
    with pytest.raises(IpRouteError):
        ipr.run("route add default table umts")


def test_short_command_raises(ipr):
    with pytest.raises(IpRouteError):
        ipr.run("route")


def test_dangling_token_raises(ipr):
    with pytest.raises(IpRouteError):
        ipr.run("route add default dev")


def test_rule_from_all(ipr):
    ipr.run("rule add from all lookup umts pref 99")
    rule = [r for r in ipr.rule_list() if r.pref == 99][0]
    assert rule.src is None


def test_route_del_with_via_filter(ipr):
    ipr.route_add("default", "eth0", via="10.0.0.1")
    ipr.route_add("default", "eth0", via="10.0.0.2", metric=5)
    ipr.route_del("default", via="10.0.0.1")
    remaining = ipr.route_list()
    assert len(remaining) == 1
    assert str(remaining[0].via) == "10.0.0.2"


def test_string_rule_del_by_pref_only(ipr):
    ipr.run("rule add fwmark 1 lookup umts pref 100")
    ipr.run("rule del pref 100")
    assert all(r.pref != 100 for r in ipr.rule_list())


def test_string_route_add_with_src_and_metric(ipr):
    ipr.run("route add 10.0.0.0/8 dev eth0 src 10.0.0.9 metric 7")
    route = ipr.route_list()[0]
    assert str(route.src) == "10.0.0.9"
    assert route.metric == 7
