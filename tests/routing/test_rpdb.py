"""Unit tests for the routing policy database."""

import pytest

from repro.routing.rpdb import PREF_MAIN, RoutingPolicyDatabase, Rule
from repro.routing.table import Route


def make_rpdb_with_umts():
    """An RPDB shaped exactly like the paper's back-end leaves it."""
    rpdb = RoutingPolicyDatabase()
    rpdb.main.add(Route("143.225.229.0/24", "eth0"))
    rpdb.main.add(Route("default", "eth0", via="143.225.229.1"))
    rpdb.table("umts").add(Route("default", "ppp0"))
    rpdb.add_rule(Rule(100, "umts", fwmark=1))
    rpdb.add_rule(Rule(101, "umts", src="10.199.3.7/32"))
    return rpdb


def test_fresh_rpdb_has_main_and_default():
    rpdb = RoutingPolicyDatabase()
    assert rpdb.has_table("main")
    assert rpdb.has_table("default")
    prefs = [r.pref for r in rpdb.rules()]
    assert prefs == sorted(prefs)


def test_unmarked_traffic_uses_main():
    rpdb = make_rpdb_with_umts()
    route = rpdb.lookup("138.96.250.100", src="143.225.229.100", mark=0)
    assert route.dev == "eth0"


def test_marked_traffic_uses_umts_table():
    rpdb = make_rpdb_with_umts()
    route = rpdb.lookup("138.96.250.100", src="143.225.229.100", mark=1)
    assert route.dev == "ppp0"


def test_source_address_rule_selects_umts():
    rpdb = make_rpdb_with_umts()
    route = rpdb.lookup("138.96.250.100", src="10.199.3.7", mark=0)
    assert route.dev == "ppp0"


def test_rule_priority_order_respected():
    rpdb = RoutingPolicyDatabase()
    rpdb.table("a").add(Route("default", "devA"))
    rpdb.table("b").add(Route("default", "devB"))
    rpdb.add_rule(Rule(10, "a"))
    rpdb.add_rule(Rule(5, "b"))
    assert rpdb.lookup("8.8.8.8").dev == "devB"


def test_empty_table_falls_through_to_next_rule():
    rpdb = RoutingPolicyDatabase()
    rpdb.table("umts")  # exists but empty
    rpdb.add_rule(Rule(100, "umts", fwmark=1))
    rpdb.main.add(Route("default", "eth0"))
    route = rpdb.lookup("8.8.8.8", mark=1)
    assert route.dev == "eth0"


def test_lookup_no_match_returns_none():
    rpdb = RoutingPolicyDatabase()
    assert rpdb.lookup("8.8.8.8") is None


def test_duplicate_rule_rejected():
    rpdb = RoutingPolicyDatabase()
    rpdb.add_rule(Rule(100, "umts", fwmark=1))
    with pytest.raises(ValueError):
        rpdb.add_rule(Rule(100, "umts", fwmark=1))


def test_delete_rule_by_pref():
    rpdb = make_rpdb_with_umts()
    rpdb.delete_rule(pref=100)
    route = rpdb.lookup("138.96.250.100", mark=1)
    assert route.dev == "eth0"


def test_delete_rule_by_fwmark():
    rpdb = make_rpdb_with_umts()
    assert rpdb.delete_rule(fwmark=1) == 1


def test_delete_missing_rule_raises():
    rpdb = RoutingPolicyDatabase()
    with pytest.raises(ValueError):
        rpdb.delete_rule(pref=9999)


def test_drop_table():
    rpdb = RoutingPolicyDatabase()
    rpdb.table("umts").add(Route("default", "ppp0"))
    rpdb.drop_table("umts")
    assert not rpdb.has_table("umts")


def test_drop_builtin_table_refused():
    rpdb = RoutingPolicyDatabase()
    with pytest.raises(ValueError):
        rpdb.drop_table("main")


def test_iif_rule():
    rpdb = RoutingPolicyDatabase()
    rpdb.table("t").add(Route("default", "eth1"))
    rpdb.add_rule(Rule(50, "t", iif="ppp0"))
    rpdb.main.add(Route("default", "eth0"))
    assert rpdb.lookup("8.8.8.8", iif="ppp0").dev == "eth1"
    assert rpdb.lookup("8.8.8.8", iif="eth0").dev == "eth0"


def test_main_pref_constant():
    rpdb = RoutingPolicyDatabase()
    mains = [r for r in rpdb.rules() if r.table == "main"]
    assert mains[0].pref == PREF_MAIN


def test_rule_repr():
    rule = Rule(100, "umts", fwmark=1)
    assert "fwmark 0x1" in repr(rule)
    assert "lookup umts" in repr(rule)
    rule2 = Rule(101, "umts", src="10.199.3.7/32")
    assert "from 10.199.3.7/32" in repr(rule2)
