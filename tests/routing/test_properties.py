"""Property tests: LPM against a brute-force reference implementation."""

import ipaddress

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.table import Route, RoutingTable


def brute_force_lookup(routes, dst):
    """The specification: longest matching prefix, lowest metric."""
    best = None
    for route in routes:
        if dst not in route.prefix:
            continue
        if best is None:
            best = route
        elif route.prefix.prefixlen > best.prefix.prefixlen:
            best = route
        elif route.prefix.prefixlen == best.prefix.prefixlen and route.metric < best.metric:
            best = route
    return best


prefixes = st.builds(
    lambda addr, plen: ipaddress.IPv4Network((addr & (2**32 - 2**(32 - plen)), plen)),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=32),
)

routes_strategy = st.lists(
    st.builds(
        lambda prefix, dev, metric: Route(prefix, dev, metric=metric),
        prefixes,
        st.sampled_from(["eth0", "eth1", "ppp0"]),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=0,
    max_size=20,
)

addresses = st.builds(
    ipaddress.IPv4Address, st.integers(min_value=0, max_value=2**32 - 1)
)


@given(routes_strategy, addresses)
@settings(max_examples=200)
def test_lookup_matches_brute_force(routes, dst):
    table = RoutingTable("t")
    for route in routes:
        try:
            table.add(route)
        except ValueError:
            continue  # duplicate key generated; spec keeps the first
    found = table.lookup(dst)
    expected = brute_force_lookup(list(table), dst)
    if expected is None:
        assert found is None
    else:
        assert found is not None
        assert found.prefix.prefixlen == expected.prefix.prefixlen
        assert found.metric == expected.metric


@given(routes_strategy, addresses)
@settings(max_examples=100)
def test_lookup_result_always_matches_destination(routes, dst):
    table = RoutingTable("t")
    for route in routes:
        try:
            table.add(route)
        except ValueError:
            continue
    found = table.lookup(dst)
    if found is not None:
        assert dst in found.prefix


@given(routes_strategy, addresses, st.sampled_from(["eth0", "eth1", "ppp0"]))
@settings(max_examples=100)
def test_oif_constraint_property(routes, dst, oif):
    table = RoutingTable("t")
    for route in routes:
        try:
            table.add(route)
        except ValueError:
            continue
    found = table.lookup(dst, oif=oif)
    if found is not None:
        assert found.dev == oif
    else:
        # No route through oif should match dst.
        assert all(
            not (dst in r.prefix and r.dev == oif) for r in table
        )
