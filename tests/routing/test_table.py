"""Unit tests for routing tables."""

import pytest

from repro.routing.table import Route, RoutingTable


def test_longest_prefix_wins():
    table = RoutingTable("main")
    table.add(Route("10.0.0.0/8", "eth0"))
    table.add(Route("10.1.0.0/16", "eth1"))
    assert table.lookup("10.1.2.3").dev == "eth1"
    assert table.lookup("10.2.2.3").dev == "eth0"


def test_default_route_matches_everything():
    table = RoutingTable("main")
    table.add(Route("default", "eth0", via="10.0.0.1"))
    assert table.lookup("8.8.8.8").dev == "eth0"


def test_no_match_returns_none():
    table = RoutingTable("main")
    table.add(Route("10.0.0.0/8", "eth0"))
    assert table.lookup("192.168.1.1") is None


def test_metric_breaks_ties():
    table = RoutingTable("main")
    table.add(Route("10.0.0.0/8", "eth0", metric=10))
    table.add(Route("10.0.0.0/8", "eth1", metric=5))
    assert table.lookup("10.1.1.1").dev == "eth1"


def test_duplicate_add_rejected():
    table = RoutingTable("main")
    table.add(Route("10.0.0.0/8", "eth0"))
    with pytest.raises(ValueError):
        table.add(Route("10.0.0.0/8", "eth0"))


def test_replace_overwrites():
    table = RoutingTable("main")
    table.add(Route("10.0.0.0/8", "eth0"))
    table.add(Route("10.0.0.0/8", "eth0", src="10.0.0.9"), replace=True)
    assert len(table) == 1
    assert str(table.lookup("10.1.1.1").src) == "10.0.0.9"


def test_delete_by_prefix():
    table = RoutingTable("main")
    table.add(Route("10.0.0.0/8", "eth0"))
    table.delete("10.0.0.0/8")
    assert len(table) == 0


def test_delete_respects_dev_filter():
    table = RoutingTable("main")
    table.add(Route("10.0.0.0/8", "eth0"))
    table.add(Route("10.0.0.0/8", "eth1", metric=1))
    table.delete("10.0.0.0/8", dev="eth1")
    assert len(table) == 1
    assert table.lookup("10.1.1.1").dev == "eth0"


def test_delete_missing_raises():
    table = RoutingTable("main")
    with pytest.raises(ValueError):
        table.delete("10.0.0.0/8")


def test_flush():
    table = RoutingTable("main")
    table.add(Route("10.0.0.0/8", "eth0"))
    table.add(Route("default", "eth1"))
    table.flush()
    assert len(table) == 0


def test_remove_dev():
    table = RoutingTable("main")
    table.add(Route("10.0.0.0/8", "ppp0"))
    table.add(Route("default", "eth0"))
    assert table.remove_dev("ppp0") == 1
    assert table.lookup("10.1.1.1").dev == "eth0"


def test_oif_constrained_lookup():
    table = RoutingTable("main")
    table.add(Route("default", "eth0", via="10.0.0.1"))
    table.add(Route("default", "ppp0", metric=10))
    assert table.lookup("8.8.8.8").dev == "eth0"
    assert table.lookup("8.8.8.8", oif="ppp0").dev == "ppp0"
    assert table.lookup("8.8.8.8", oif="wlan0") is None


def test_host_route_from_bare_address():
    table = RoutingTable("main")
    table.add(Route("10.9.9.9", "ppp0"))
    assert table.lookup("10.9.9.9").dev == "ppp0"
    assert table.lookup("10.9.9.8") is None


def test_route_repr_readable():
    route = Route("default", "eth0", via="10.0.0.1", src="10.0.0.5", metric=3)
    text = repr(route)
    assert text.startswith("default via 10.0.0.1 dev eth0")
    assert "src 10.0.0.5" in text and "metric 3" in text
