"""Unit tests for the packet model."""

import pytest

from repro.net.addressing import PROTO_ICMP, PROTO_TCP, PROTO_UDP, UNSPECIFIED
from repro.net.packet import IP_HEADER_SIZE, ROOT_XID, UDP_HEADER_SIZE, Packet


def test_defaults():
    p = Packet("10.0.0.1")
    assert p.src == UNSPECIFIED
    assert p.proto == PROTO_UDP
    assert p.ttl == 64
    assert p.mark == 0
    assert p.xid == ROOT_XID
    assert p.sent_at is None


def test_udp_length_includes_headers():
    p = Packet("10.0.0.1", size=1024)
    assert p.length == IP_HEADER_SIZE + UDP_HEADER_SIZE + 1024


def test_icmp_length():
    p = Packet("10.0.0.1", proto=PROTO_ICMP, size=56)
    assert p.length == 20 + 8 + 56


def test_other_proto_length():
    p = Packet("10.0.0.1", proto=PROTO_TCP, size=100)
    assert p.length == 20 + 100


def test_uids_are_unique_and_increasing():
    a = Packet("10.0.0.1")
    b = Packet("10.0.0.1")
    assert b.uid > a.uid


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Packet("10.0.0.1", size=-1)


def test_nonpositive_ttl_rejected():
    with pytest.raises(ValueError):
        Packet("10.0.0.1", ttl=0)


def test_copy_preserves_fields_but_not_uid():
    p = Packet("10.0.0.2", src="10.0.0.1", size=10, sport=1, dport=2, xid=7)
    p.mark = 3
    p.meta["flow"] = 42
    twin = p.copy()
    assert twin.uid != p.uid
    assert twin.dst == p.dst
    assert twin.src == p.src
    assert twin.mark == 3
    assert twin.xid == 7
    assert twin.meta == {"flow": 42}
    twin.meta["flow"] = 1
    assert p.meta["flow"] == 42


def test_repr_mentions_endpoints():
    p = Packet("10.0.0.2", src="10.0.0.1", sport=5, dport=6)
    text = repr(p)
    assert "10.0.0.1:5" in text and "10.0.0.2:6" in text
