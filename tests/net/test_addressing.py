"""Unit tests for address helpers."""

import ipaddress

import pytest

from repro.net.addressing import (
    DEFAULT_NETWORK,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    ip,
    network,
    proto_name,
)


def test_ip_parses_string():
    assert ip("10.0.0.1") == ipaddress.IPv4Address("10.0.0.1")


def test_ip_is_idempotent():
    addr = ipaddress.IPv4Address("10.0.0.1")
    assert ip(addr) is addr


def test_ip_rejects_garbage():
    with pytest.raises(ValueError):
        ip("not-an-address")


def test_network_parses_cidr():
    assert network("10.0.0.0/8") == ipaddress.IPv4Network("10.0.0.0/8")


def test_network_default_keyword():
    assert network("default") == DEFAULT_NETWORK
    assert DEFAULT_NETWORK.prefixlen == 0


def test_network_bare_address_is_host_route():
    assert network("10.1.2.3") == ipaddress.IPv4Network("10.1.2.3/32")


def test_network_non_strict():
    # Host bits set are tolerated, like `ip route` does.
    assert network("10.1.2.3/8") == ipaddress.IPv4Network("10.0.0.0/8")


def test_network_idempotent():
    net = ipaddress.IPv4Network("10.0.0.0/8")
    assert network(net) is net


def test_proto_names():
    assert proto_name(PROTO_UDP) == "udp"
    assert proto_name(PROTO_TCP) == "tcp"
    assert proto_name(PROTO_ICMP) == "icmp"
    assert proto_name(99) == "99"
