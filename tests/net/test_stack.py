"""Integration tests for the IP stack: sockets, routing, hooks, ping."""

import pytest

from repro.net.errors import AddressInUseError, NoRouteError
from repro.net.icmp import Pinger
from repro.net.interface import EthernetInterface
from repro.net.link import Link
from repro.net.stack import IPStack
from repro.sim.engine import Simulator


@pytest.fixture()
def sim():
    return Simulator()


def two_nodes(sim, rate_bps=100e6, delay=0.001):
    """alice (10.0.0.1) <-> bob (10.0.0.2) on one LAN."""
    alice = IPStack(sim, "alice")
    bob = IPStack(sim, "bob")
    a_eth = alice.add_interface(EthernetInterface("eth0"))
    b_eth = bob.add_interface(EthernetInterface("eth0"))
    alice.configure_interface(a_eth, "10.0.0.1", 24)
    bob.configure_interface(b_eth, "10.0.0.2", 24)
    Link(sim, a_eth, b_eth, rate_bps=rate_bps, delay=delay)
    return alice, bob


def routed_triangle(sim):
    """alice -- router -- bob across two /24s; router forwards."""
    alice = IPStack(sim, "alice")
    router = IPStack(sim, "router")
    bob = IPStack(sim, "bob")
    router.forwarding = True
    a_eth = alice.add_interface(EthernetInterface("eth0"))
    r_a = router.add_interface(EthernetInterface("eth0"))
    r_b = router.add_interface(EthernetInterface("eth1"))
    b_eth = bob.add_interface(EthernetInterface("eth0"))
    alice.configure_interface(a_eth, "10.1.0.2", 24)
    router.configure_interface(r_a, "10.1.0.1", 24)
    router.configure_interface(r_b, "10.2.0.1", 24)
    bob.configure_interface(b_eth, "10.2.0.2", 24)
    alice.ip.route_add("default", "eth0", via="10.1.0.1")
    bob.ip.route_add("default", "eth0", via="10.2.0.1")
    Link(sim, a_eth, r_a, delay=0.001)
    Link(sim, r_b, b_eth, delay=0.001)
    return alice, router, bob


def test_udp_delivery_between_two_nodes(sim):
    alice, bob = two_nodes(sim)
    got = []
    server = bob.socket()
    server.bind(port=9000)
    server.on_receive = lambda payload, src, sport, pkt: got.append(
        (payload, str(src))
    )
    client = alice.socket()
    client.sendto("hello", 100, "10.0.0.2", 9000)
    sim.run()
    assert got == [("hello", "10.0.0.1")]


def test_source_address_selected_from_interface(sim):
    alice, bob = two_nodes(sim)
    seen = []
    server = bob.socket()
    server.bind(port=9000)
    server.on_receive = lambda payload, src, sport, pkt: seen.append(pkt)
    alice.socket().sendto("x", 10, "10.0.0.2", 9000)
    sim.run()
    assert str(seen[0].src) == "10.0.0.1"


def test_send_without_route_raises(sim):
    alice, _ = two_nodes(sim)
    with pytest.raises(NoRouteError):
        alice.socket().sendto("x", 10, "8.8.8.8", 1)


def test_local_destination_loops_back(sim):
    alice, _ = two_nodes(sim)
    got = []
    server = alice.socket()
    server.bind(port=7)
    server.on_receive = lambda payload, *a: got.append(payload)
    alice.socket().sendto("loop", 4, "10.0.0.1", 7)
    sim.run()
    assert got == ["loop"]


def test_loopback_address_delivery(sim):
    alice, _ = two_nodes(sim)
    got = []
    server = alice.socket()
    server.bind(port=7)
    server.on_receive = lambda payload, *a: got.append(payload)
    alice.socket().sendto("lo", 2, "127.0.0.1", 7)
    sim.run()
    assert got == ["lo"]


def test_forwarding_through_router(sim):
    alice, router, bob = routed_triangle(sim)
    got = []
    server = bob.socket()
    server.bind(port=9000)
    server.on_receive = lambda payload, *a: got.append(payload)
    alice.socket().sendto("via-router", 50, "10.2.0.2", 9000)
    sim.run()
    assert got == ["via-router"]
    assert router.forwarded_packets == 1


def test_router_without_forwarding_drops(sim):
    alice, router, bob = routed_triangle(sim)
    router.forwarding = False
    server = bob.socket()
    server.bind(port=9000)
    alice.socket().sendto("x", 10, "10.2.0.2", 9000)
    sim.run()
    assert router.dropped_no_route == 1
    assert server.rx_packets == 0


def test_ttl_expires(sim):
    alice, router, bob = routed_triangle(sim)
    sock = alice.socket()
    sock.bind()
    from repro.net.packet import Packet

    p = Packet("10.2.0.2", src="10.1.0.2", size=10, sport=sock.port, dport=1, ttl=1)
    alice.send(p)
    sim.run()
    assert router.dropped_ttl == 1


def test_ping_rtt(sim):
    alice, bob = two_nodes(sim, rate_bps=1e9, delay=0.005)
    pinger = Pinger(alice)
    pinger.send("10.0.0.2")
    sim.run()
    assert len(pinger.results) == 1
    seq, rtt = pinger.results[0]
    assert seq == 1
    assert rtt == pytest.approx(0.010, abs=0.002)


def test_ping_through_router(sim):
    alice, router, bob = routed_triangle(sim)
    pinger = Pinger(alice)
    pinger.send("10.2.0.2")
    sim.run()
    assert len(pinger.results) == 1


def test_mangle_mark_steers_policy_routing(sim):
    """The paper's trick end-to-end: MARK in mangle/OUTPUT + ip rule."""
    alice = IPStack(sim, "alice")
    eth = alice.add_interface(EthernetInterface("eth0"))
    ppp = alice.add_interface(EthernetInterface("ppp0"))
    alice.configure_interface(eth, "10.0.0.1", 24)
    alice.configure_interface(ppp, "10.199.3.7", 32, add_connected_route=False)
    bob = IPStack(sim, "bob")
    b1 = bob.add_interface(EthernetInterface("eth0"))
    b2 = bob.add_interface(EthernetInterface("eth1"))
    bob.configure_interface(b1, "10.0.0.2", 24)
    bob.configure_interface(b2, "10.199.0.1", 16)
    Link(sim, eth, b1)
    Link(sim, ppp, b2)
    alice.ip.route_add("default", "eth0", via="10.0.0.2")
    alice.ip.run("route add default dev ppp0 table umts")
    alice.ip.run("rule add fwmark 1 lookup umts pref 100")
    alice.iptables.run(
        "-t mangle -A OUTPUT -m xid --xid 510 -d 10.199.0.1 -j MARK --set-mark 1"
    )
    # A packet from the marked slice leaves through ppp0...
    alice.socket(xid=510).sendto("x", 10, "10.199.0.1", 1)
    # ...while root-context traffic to the same place uses eth0.
    alice.socket(xid=0).sendto("y", 10, "10.199.0.1", 1)
    sim.run()
    assert alice.iface("ppp0").tx_packets == 1
    assert alice.iface("eth0").tx_packets == 1


def test_filter_output_drop_by_xid(sim):
    alice, bob = two_nodes(sim)
    alice.iptables.run("-A OUTPUT -o eth0 -m xid ! --xid 510 -j DROP")
    server = bob.socket()
    server.bind(port=9)
    alice.socket(xid=510).sendto("ok", 2, "10.0.0.2", 9)
    alice.socket(xid=666).sendto("blocked", 7, "10.0.0.2", 9)
    sim.run()
    assert server.rx_packets == 1
    assert alice.dropped_filter == 1


def test_bind_to_device_constrains_route(sim):
    alice = IPStack(sim, "alice")
    eth = alice.add_interface(EthernetInterface("eth0"))
    ppp = alice.add_interface(EthernetInterface("ppp0"))
    alice.configure_interface(eth, "10.0.0.1", 24)
    alice.configure_interface(ppp, "10.199.3.7", 32, add_connected_route=False)
    peer = IPStack(sim, "peer")
    p1 = peer.add_interface(EthernetInterface("eth0"))
    peer.configure_interface(p1, "10.199.0.1", 16)
    Link(sim, ppp, p1)
    alice.ip.route_add("default", "eth0", via="10.0.0.254")
    alice.ip.route_add("default", "ppp0", metric=10)
    sock = alice.socket()
    sock.bind_to_device("ppp0")
    sock.sendto("x", 5, "10.199.0.1", 80)
    sim.run()
    assert alice.iface("ppp0").tx_packets == 1
    assert alice.iface("eth0").tx_packets == 0


def test_ephemeral_ports_unique(sim):
    alice, _ = two_nodes(sim)
    ports = {alice.socket().bind() for _ in range(100)}
    assert len(ports) == 100


def test_port_conflict_raises(sim):
    alice, _ = two_nodes(sim)
    alice.socket().bind(port=5000)
    with pytest.raises(AddressInUseError):
        alice.socket().bind(port=5000)


def test_rebind_after_close(sim):
    alice, _ = two_nodes(sim)
    sock = alice.socket()
    sock.bind(port=5000)
    sock.close()
    alice.socket().bind(port=5000)


def test_duplicate_interface_name_rejected(sim):
    alice, _ = two_nodes(sim)
    with pytest.raises(ValueError):
        alice.add_interface(EthernetInterface("eth0"))


def test_remove_interface_purges_routes(sim):
    alice, _ = two_nodes(sim)
    ppp = alice.add_interface(EthernetInterface("ppp0"))
    alice.configure_interface(ppp, "10.199.3.7", 32, add_connected_route=False)
    alice.ip.run("route add default dev ppp0 table umts")
    alice.remove_interface("ppp0")
    assert alice.ip.route_list("umts") == []
    assert "ppp0" not in alice.interfaces


def test_no_socket_counter(sim):
    alice, bob = two_nodes(sim)
    alice.socket().sendto("x", 5, "10.0.0.2", 4242)
    sim.run()
    assert bob.dropped_no_socket == 1


def test_socket_receive_respects_bound_device(sim):
    alice, bob = two_nodes(sim)
    server = bob.socket()
    server.bind(port=9)
    server.bind_to_device("eth1")  # not the arrival interface
    alice.socket().sendto("x", 5, "10.0.0.2", 9)
    sim.run()
    assert server.rx_packets == 0
    assert bob.dropped_no_socket == 1


def test_is_local_address(sim):
    alice, _ = two_nodes(sim)
    assert alice.is_local_address("10.0.0.1")
    assert alice.is_local_address("127.0.0.1")
    assert not alice.is_local_address("10.0.0.2")
