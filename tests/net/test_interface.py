"""Unit tests for interface behaviours."""

import pytest

from repro.net.errors import InterfaceDownError
from repro.net.interface import (
    EthernetInterface,
    LoopbackInterface,
    PPPInterface,
)
from repro.net.link import Channel, Link
from repro.net.packet import Packet
from repro.sim.engine import Simulator


def test_interface_starts_down_and_unconfigured():
    iface = EthernetInterface("eth0")
    assert not iface.up
    assert iface.address is None
    assert iface.connected_network() is None


def test_configure_sets_connected_network():
    iface = EthernetInterface("eth0")
    iface.configure("10.0.0.5", 24)
    assert str(iface.connected_network()) == "10.0.0.0/24"


def test_configure_rejects_bad_prefix():
    iface = EthernetInterface("eth0")
    with pytest.raises(ValueError):
        iface.configure("10.0.0.5", 33)


def test_transmit_down_raises():
    iface = EthernetInterface("eth0")
    with pytest.raises(InterfaceDownError):
        iface.transmit(Packet("10.0.0.1"))


def test_transmit_unattached_raises():
    iface = EthernetInterface("eth0")
    iface.bring_up()
    with pytest.raises(InterfaceDownError):
        iface.transmit(Packet("10.0.0.1"))


def test_oversized_packet_dropped_not_raised():
    sim = Simulator()
    got = []
    iface = EthernetInterface("eth0", mtu=100)
    iface.attach(Channel(sim, got.append, rate_bps=1e6, delay=0.0))
    iface.bring_up()
    iface.transmit(Packet("10.0.0.1", size=5000))
    sim.run()
    assert got == []
    assert iface.tx_dropped == 1
    assert iface.tx_packets == 0


def test_counters_track_traffic():
    sim = Simulator()
    a = EthernetInterface("eth0")
    b = EthernetInterface("eth0")
    Link(sim, a, b)
    b.stack = type("S", (), {"receive": lambda self, p, i: None})()
    p = Packet("10.0.0.1", size=100)
    a.transmit(p)
    sim.run()
    assert a.tx_packets == 1
    assert a.tx_bytes == p.length
    assert b.rx_packets == 1
    assert b.rx_bytes == p.length


def test_deliver_to_down_interface_drops():
    iface = EthernetInterface("eth0")
    iface.deliver(Packet("10.0.0.1"))
    assert iface.rx_dropped == 1


def test_deliver_without_stack_drops():
    iface = EthernetInterface("eth0")
    iface.bring_up()
    iface.deliver(Packet("10.0.0.1"))
    assert iface.rx_dropped == 1


def test_loopback_always_up_and_self_delivers():
    lo = LoopbackInterface()
    assert lo.up
    assert str(lo.address) == "127.0.0.1"
    seen = []
    lo.stack = type("S", (), {"receive": lambda self, p, i: seen.append(p)})()
    lo.transmit(Packet("127.0.0.1", size=10))
    assert len(seen) == 1
    assert lo.tx_packets == 1
    assert lo.rx_packets == 1


def test_ppp_interface_p2p_configuration():
    ppp = PPPInterface("ppp0")
    assert ppp.point_to_point
    assert ppp.connected_network() is None
    ppp.configure_p2p("10.199.3.7", "10.199.0.1")
    assert str(ppp.address) == "10.199.3.7"
    assert str(ppp.peer_address) == "10.199.0.1"
    assert str(ppp.connected_network()) == "10.199.0.1/32"
    assert ppp.prefix_len == 32


def test_ethernet_not_point_to_point():
    assert not EthernetInterface("eth0").point_to_point


def test_repr_readable():
    iface = EthernetInterface("eth0")
    assert "unconfigured" in repr(iface)
    iface.configure("10.0.0.1", 24)
    iface.bring_up()
    assert "10.0.0.1/24" in repr(iface)
    assert "up" in repr(iface)
