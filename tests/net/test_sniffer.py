"""Tests for the packet sniffer."""

import pytest

from repro.net.addressing import PROTO_ICMP
from repro.net.interface import EthernetInterface
from repro.net.link import Link
from repro.net.sniffer import CaptureFilter, Sniffer
from repro.net.stack import IPStack
from repro.sim.engine import Simulator


def linked_pair(sim):
    a = IPStack(sim, "a")
    b = IPStack(sim, "b")
    a_eth = a.add_interface(EthernetInterface("eth0"))
    b_eth = b.add_interface(EthernetInterface("eth0"))
    a.configure_interface(a_eth, "10.0.0.1", 24)
    b.configure_interface(b_eth, "10.0.0.2", 24)
    Link(sim, a_eth, b_eth, delay=0.001)
    return a, b


def send_one(sim, a, b, payload="x", port=9, xid=0):
    server = b.socket()
    try:
        server.bind(port=port)
    except Exception:
        pass
    a.socket(xid=xid).sendto(payload, 10, "10.0.0.2", port)
    sim.run(until=sim.now + 1.0)


def test_captures_tx_and_rx():
    sim = Simulator()
    a, b = linked_pair(sim)
    sniffer = Sniffer(sim)
    sniffer.attach(a.iface("eth0"))
    sniffer.attach(b.iface("eth0"))
    send_one(sim, a, b)
    directions = [(r.iface, r.direction) for r in sniffer.records]
    assert ("eth0", "tx") in directions
    assert ("eth0", "rx") in directions
    assert len(sniffer) == 2


def test_direction_restriction():
    sim = Simulator()
    a, b = linked_pair(sim)
    sniffer = Sniffer(sim)
    sniffer.attach(a.iface("eth0"), directions="tx")
    sniffer.attach(b.iface("eth0"), directions="tx")
    send_one(sim, a, b)
    assert all(r.direction == "tx" for r in sniffer.records)
    assert len(sniffer) == 1


def test_bad_direction_rejected():
    sim = Simulator()
    a, _ = linked_pair(sim)
    with pytest.raises(ValueError):
        Sniffer(sim).attach(a.iface("eth0"), directions="sideways")


def test_filter_by_port():
    sim = Simulator()
    a, b = linked_pair(sim)
    sniffer = Sniffer(sim, CaptureFilter(port=9))
    sniffer.attach(a.iface("eth0"), directions="tx")
    send_one(sim, a, b, port=9)
    send_one(sim, a, b, port=10)
    assert len(sniffer) == 1
    assert sniffer.records[0].packet.dport == 9


def test_filter_by_xid():
    sim = Simulator()
    a, b = linked_pair(sim)
    sniffer = Sniffer(sim, CaptureFilter(xid=510))
    sniffer.attach(a.iface("eth0"), directions="tx")
    send_one(sim, a, b, xid=510, port=11)
    send_one(sim, a, b, xid=0, port=12)
    assert len(sniffer) == 1
    assert sniffer.records[0].packet.xid == 510


def test_filter_by_host_and_proto():
    f = CaptureFilter(host="10.0.0.2", proto=PROTO_ICMP)
    from repro.net.packet import Packet

    icmp_hit = Packet("10.0.0.2", proto=PROTO_ICMP, src="10.0.0.1")
    udp_miss = Packet("10.0.0.2", src="10.0.0.1")
    other_host = Packet("10.0.0.9", proto=PROTO_ICMP, src="10.0.0.8")
    assert f.matches(icmp_hit)
    assert not f.matches(udp_miss)
    assert not f.matches(other_host)


def test_filter_src_dst():
    from repro.net.packet import Packet

    f = CaptureFilter(src="10.0.0.1", dst="10.0.0.2")
    assert f.matches(Packet("10.0.0.2", src="10.0.0.1"))
    assert not f.matches(Packet("10.0.0.1", src="10.0.0.2"))


def test_detach_stops_capture():
    sim = Simulator()
    a, b = linked_pair(sim)
    sniffer = Sniffer(sim)
    sniffer.attach(a.iface("eth0"))
    send_one(sim, a, b, port=13)
    count = len(sniffer)
    sniffer.detach_all()
    send_one(sim, a, b, port=14)
    assert len(sniffer) == count
    assert a.iface("eth0").taps == []


def test_dump_lines_readable():
    sim = Simulator()
    a, b = linked_pair(sim)
    sniffer = Sniffer(sim)
    sniffer.attach(a.iface("eth0"), directions="tx")
    send_one(sim, a, b, port=15)
    lines = sniffer.dump()
    assert len(lines) == 1
    assert "10.0.0.1" in lines[0] and "10.0.0.2:15" in lines[0]
    assert "eth0 tx" in lines[0]


def test_packets_accessor_filters():
    sim = Simulator()
    a, b = linked_pair(sim)
    sniffer = Sniffer(sim)
    sniffer.attach(a.iface("eth0"))
    sniffer.attach(b.iface("eth0"))
    send_one(sim, a, b, port=16)
    assert len(sniffer.packets(direction="tx")) == 1
    assert len(sniffer.packets(iface="eth0")) == 2


def test_sniffer_proves_mark_on_wire():
    """The instrument in action: the fwmark is visible at egress."""
    sim = Simulator()
    a, b = linked_pair(sim)
    a.iptables.run("-t mangle -A OUTPUT -m xid --xid 510 -j MARK --set-mark 1")
    sniffer = Sniffer(sim)
    sniffer.attach(a.iface("eth0"), directions="tx")
    send_one(sim, a, b, xid=510, port=17)
    assert sniffer.records[0].packet.mark == 1
