"""Tests for the DNS server and resolver."""

import pytest

from repro.net.addressing import ip
from repro.net.dns import DnsResolver, DnsServer, ResolutionError
from repro.net.interface import EthernetInterface
from repro.net.link import Link
from repro.net.stack import IPStack
from repro.sim.engine import Simulator


def make_world(sim, loss_rate=0.0, seed=1):
    client = IPStack(sim, "client")
    server = IPStack(sim, "server")
    c_eth = client.add_interface(EthernetInterface("eth0"))
    s_eth = server.add_interface(EthernetInterface("eth0"))
    client.configure_interface(c_eth, "10.0.0.1", 24)
    server.configure_interface(s_eth, "10.0.0.2", 24)
    rng = None
    if loss_rate:
        from repro.sim.rng import RandomStreams

        rng = RandomStreams(seed).stream("loss")
    Link(sim, c_eth, s_eth, delay=0.005, loss_rate=loss_rate, rng=rng)
    dns = DnsServer(
        server.socket(),
        zone={"onelab03.inria.fr": "138.96.250.100", "WWW.Example.COM": "1.2.3.4"},
    )
    resolver = DnsResolver(sim, client.socket(), "10.0.0.2")
    return client, server, dns, resolver


def test_resolve_known_name():
    sim = Simulator()
    _, _, dns, resolver = make_world(sim)
    address = resolver.resolve_blocking("onelab03.inria.fr")
    assert address == ip("138.96.250.100")
    assert dns.queries == 1
    assert resolver.sent_queries == 1


def test_names_case_insensitive_and_fqdn_dot():
    sim = Simulator()
    _, _, dns, resolver = make_world(sim)
    assert resolver.resolve_blocking("www.example.com") == ip("1.2.3.4")
    assert resolver.resolve_blocking("WWW.EXAMPLE.COM.") == ip("1.2.3.4")


def test_nxdomain_raises():
    sim = Simulator()
    _, _, dns, resolver = make_world(sim)
    with pytest.raises(ResolutionError, match="NXDOMAIN"):
        resolver.resolve_blocking("nosuch.example.org")
    assert dns.nxdomains == 1


def test_add_and_remove_record():
    sim = Simulator()
    _, _, dns, resolver = make_world(sim)
    dns.add_record("new.host", "9.9.9.9")
    assert resolver.resolve_blocking("new.host") == ip("9.9.9.9")
    dns.remove_record("new.host")
    with pytest.raises(ResolutionError):
        resolver.resolve_blocking("new.host")


def test_retry_overcomes_loss():
    sim = Simulator()
    # 40% loss: with 3 attempts the query almost certainly completes.
    _, _, dns, resolver = make_world(sim, loss_rate=0.4, seed=3)
    resolver.retries = 5
    address = resolver.resolve_blocking("onelab03.inria.fr")
    assert address == ip("138.96.250.100")


def test_dead_server_times_out():
    sim = Simulator()
    client = IPStack(sim, "client")
    c_eth = client.add_interface(EthernetInterface("eth0"))
    client.configure_interface(c_eth, "10.0.0.1", 24)
    hole = IPStack(sim, "hole")
    h_eth = hole.add_interface(EthernetInterface("eth0"))
    hole.configure_interface(h_eth, "10.0.0.2", 24)
    Link(sim, c_eth, h_eth)
    resolver = DnsResolver(sim, client.socket(), "10.0.0.2", timeout=0.5, retries=1)
    with pytest.raises(ResolutionError, match="timed out"):
        resolver.resolve_blocking("anything.example")
    assert resolver.timeouts == 2
    assert sim.now >= 1.0  # two timeouts of 0.5 s


def test_resolve_inside_process():
    sim = Simulator()
    _, _, dns, resolver = make_world(sim)
    got = []

    def experiment():
        address = yield resolver.resolve("onelab03.inria.fr")
        got.append(address)

    from repro.sim.process import spawn

    spawn(sim, experiment())
    sim.run(until=5.0)
    assert got == [ip("138.96.250.100")]


def test_resolution_over_umts_with_operator_dns():
    """End-to-end: the mobile resolves via the DNS that IPCP pushed."""
    from repro.testbed.scenarios import OneLabScenario

    scenario = OneLabScenario(seed=81)
    umts = scenario.umts_command()
    assert umts.start_blocking().ok
    primary, _secondary = scenario.napoli.connection.dns_servers()
    assert primary == scenario.operator.ggsn.internal_address
    resolver = DnsResolver(
        scenario.sim, scenario.napoli_sliver.socket(), primary
    )
    address = resolver.resolve_blocking(scenario.inria.name)
    assert str(address) == scenario.inria_addr
    # And the answer's transport really was the UMTS interface: the
    # query went to the PPP peer, which only ppp0 can reach.
    assert scenario.napoli.stack.iface("ppp0").tx_packets > 0


def test_dns_servers_when_down():
    from repro.testbed.scenarios import OneLabScenario

    scenario = OneLabScenario(seed=82)
    assert scenario.napoli.connection.dns_servers() == (None, None)
