"""Unit tests for channels and links."""

import pytest

from repro.net.interface import EthernetInterface
from repro.net.link import Channel, Link
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.rng import ConstantVariate, RandomStreams, UniformVariate


def make_channel(sim, sink, **kwargs):
    defaults = dict(rate_bps=1e6, delay=0.01)
    defaults.update(kwargs)
    return Channel(sim, sink.append, **defaults)


def test_serialization_plus_propagation_delay():
    sim = Simulator()
    received = []
    ch = Channel(sim, lambda p: received.append(sim.now), rate_bps=8000.0, delay=0.5)
    ch.send(Packet("10.0.0.1", size=972))  # 1000 bytes on the wire
    sim.run()
    # 1000 B * 8 / 8000 bps = 1 s serialization + 0.5 s propagation
    assert received == [pytest.approx(1.5)]


def test_fifo_back_to_back_packets():
    sim = Simulator()
    times = []
    ch = Channel(sim, lambda p: times.append(sim.now), rate_bps=8000.0, delay=0.0)
    ch.send(Packet("10.0.0.1", size=972))
    ch.send(Packet("10.0.0.1", size=972))
    sim.run()
    assert times == [pytest.approx(1.0), pytest.approx(2.0)]


def test_queue_overflow_drops():
    sim = Simulator()
    got = []
    ch = Channel(
        sim, got.append, rate_bps=8000.0, delay=0.0, queue_bytes=1100
    )
    # First goes to transmitter, second queues (1000 B), third overflows.
    assert ch.send(Packet("10.0.0.1", size=972)) is True
    assert ch.send(Packet("10.0.0.1", size=972)) is True
    assert ch.send(Packet("10.0.0.1", size=972)) is False
    sim.run()
    assert len(got) == 2
    assert ch.dropped_queue == 1


def test_backlog_accounting():
    sim = Simulator()
    ch = Channel(sim, lambda p: None, rate_bps=8000.0, delay=0.0, queue_bytes=10**6)
    ch.send(Packet("10.0.0.1", size=972))
    ch.send(Packet("10.0.0.1", size=972))
    ch.send(Packet("10.0.0.1", size=972))
    assert ch.backlog_packets == 2
    assert ch.backlog_bytes == 2000
    sim.run()
    assert ch.backlog_packets == 0
    assert ch.backlog_bytes == 0


def test_rate_change_applies_to_next_packet():
    sim = Simulator()
    times = []
    ch = Channel(sim, lambda p: times.append(sim.now), rate_bps=8000.0, delay=0.0)
    ch.send(Packet("10.0.0.1", size=972))
    ch.send(Packet("10.0.0.1", size=972))
    # Double the rate while the first packet is in flight.
    sim.schedule(0.5, lambda: setattr(ch, "rate_bps", 16000.0))
    sim.run()
    assert times == [pytest.approx(1.0), pytest.approx(1.5)]


def test_random_loss():
    sim = Simulator()
    got = []
    rng = RandomStreams(1).stream("loss")
    ch = Channel(sim, got.append, rate_bps=1e9, delay=0.0, loss_rate=0.5, rng=rng)
    for _ in range(1000):
        ch.send(Packet("10.0.0.1", size=100))
    sim.run()
    assert 350 < len(got) < 650
    assert ch.dropped_loss == 1000 - len(got)


def test_jitter_does_not_reorder():
    sim = Simulator()
    order = []
    rng = RandomStreams(2).stream("jitter")
    ch = Channel(
        sim,
        lambda p: order.append(p.uid),
        rate_bps=1e9,
        delay=0.01,
        jitter=UniformVariate(0.0, 0.1),
        rng=rng,
    )
    packets = [Packet("10.0.0.1", size=10) for _ in range(50)]
    for p in packets:
        ch.send(p)
    sim.run()
    assert order == [p.uid for p in packets]


def test_loss_without_rng_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, lambda p: None, rate_bps=1e6, delay=0.0, loss_rate=0.1)


def test_invalid_channel_params_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, lambda p: None, rate_bps=0.0, delay=0.0)
    with pytest.raises(ValueError):
        Channel(sim, lambda p: None, rate_bps=1.0, delay=-1.0)
    with pytest.raises(ValueError):
        Channel(
            sim,
            lambda p: None,
            rate_bps=1.0,
            delay=0.0,
            loss_rate=1.0,
            rng=RandomStreams(0).stream("x"),
        )


def test_constant_jitter_adds_delay():
    sim = Simulator()
    times = []
    rng = RandomStreams(3).stream("j")
    ch = Channel(
        sim,
        lambda p: times.append(sim.now),
        rate_bps=1e9,
        delay=0.1,
        jitter=ConstantVariate(0.05),
        rng=rng,
    )
    ch.send(Packet("10.0.0.1", size=10))
    sim.run()
    assert times[0] == pytest.approx(0.15, abs=1e-3)


def test_link_wires_two_interfaces():
    sim = Simulator()
    a = EthernetInterface("eth0")
    b = EthernetInterface("eth0")
    link = Link(sim, a, b, rate_bps=1e6, delay=0.001)
    assert a.up and b.up
    assert a.channel is link.ab
    assert b.channel is link.ba


def test_link_asymmetric_rates():
    sim = Simulator()
    a = EthernetInterface("eth0")
    b = EthernetInterface("eth0")
    link = Link(sim, a, b, rate_bps_ab=1e6, rate_bps_ba=2e6, delay=0.001)
    assert link.ab.rate_bps == 1e6
    assert link.ba.rate_bps == 2e6


def test_channel_counters():
    sim = Simulator()
    got = []
    ch = Channel(sim, got.append, rate_bps=1e6, delay=0.0)
    p = Packet("10.0.0.1", size=100)
    ch.send(p)
    sim.run()
    assert ch.tx_packets == 1
    assert ch.tx_bytes == p.length
