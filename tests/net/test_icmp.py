"""Unit tests for ICMP echo / the pinger."""

import pytest

from repro.net.icmp import IcmpEcho, Pinger
from repro.net.interface import EthernetInterface
from repro.net.link import Link
from repro.net.stack import IPStack
from repro.sim.engine import Simulator


def linked_pair(sim, delay=0.005):
    a = IPStack(sim, "a")
    b = IPStack(sim, "b")
    a_eth = a.add_interface(EthernetInterface("eth0"))
    b_eth = b.add_interface(EthernetInterface("eth0"))
    a.configure_interface(a_eth, "10.0.0.1", 24)
    b.configure_interface(b_eth, "10.0.0.2", 24)
    Link(sim, a_eth, b_eth, rate_bps=1e9, delay=delay)
    return a, b


def test_multiple_pings_sequence_numbers():
    sim = Simulator()
    a, b = linked_pair(sim)
    pinger = Pinger(a)
    for _ in range(5):
        pinger.send("10.0.0.2")
    sim.run()
    assert [seq for seq, _ in pinger.results] == [1, 2, 3, 4, 5]
    assert pinger.sent == 5


def test_rtt_reflects_path_delay():
    sim = Simulator()
    a, b = linked_pair(sim, delay=0.030)
    pinger = Pinger(a)
    pinger.send("10.0.0.2")
    sim.run()
    _, rtt = pinger.results[0]
    assert rtt == pytest.approx(0.060, abs=0.005)


def test_on_reply_callback():
    sim = Simulator()
    a, b = linked_pair(sim)
    seen = []
    pinger = Pinger(a, on_reply=lambda seq, rtt: seen.append(seq))
    pinger.send("10.0.0.2")
    sim.run()
    assert seen == [1]


def test_two_pingers_do_not_cross_talk():
    sim = Simulator()
    a, b = linked_pair(sim)
    p1 = Pinger(a)
    p2 = Pinger(a)
    p1.send("10.0.0.2")
    p2.send("10.0.0.2")
    sim.run()
    assert len(p1.results) == 1
    assert len(p2.results) == 1


def test_closed_pinger_ignores_replies():
    sim = Simulator()
    a, b = linked_pair(sim)
    pinger = Pinger(a)
    pinger.send("10.0.0.2")
    pinger.close()
    sim.run()
    assert pinger.results == []


def test_ping_to_self():
    sim = Simulator()
    a, _ = linked_pair(sim)
    pinger = Pinger(a)
    pinger.send("10.0.0.1")
    sim.run()
    assert len(pinger.results) == 1
    _, rtt = pinger.results[0]
    assert rtt == 0.0


def test_ping_unroutable_raises():
    sim = Simulator()
    a, _ = linked_pair(sim)
    from repro.net.errors import NoRouteError

    pinger = Pinger(a)
    with pytest.raises(NoRouteError):
        pinger.send("192.168.99.99")


def test_icmp_echo_payload_repr():
    echo = IcmpEcho("echo-request", 1, 2, 0.0)
    assert "echo-request" in repr(echo)
