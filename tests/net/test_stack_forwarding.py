"""Corner-path tests for the router/forwarding code paths."""


from repro.net.interface import EthernetInterface
from repro.net.link import Link
from repro.net.stack import IPStack
from repro.sim.engine import Simulator


def build_router_world(sim):
    """alice (10.1) -- router -- bob (10.2), forwarding enabled."""
    alice = IPStack(sim, "alice")
    router = IPStack(sim, "router")
    bob = IPStack(sim, "bob")
    router.forwarding = True
    a = alice.add_interface(EthernetInterface("eth0"))
    ra = router.add_interface(EthernetInterface("eth0"))
    rb = router.add_interface(EthernetInterface("eth1"))
    b = bob.add_interface(EthernetInterface("eth0"))
    alice.configure_interface(a, "10.1.0.2", 24)
    router.configure_interface(ra, "10.1.0.1", 24)
    router.configure_interface(rb, "10.2.0.1", 24)
    bob.configure_interface(b, "10.2.0.2", 24)
    alice.ip.route_add("default", "eth0", via="10.1.0.1")
    bob.ip.route_add("default", "eth0", via="10.2.0.1")
    Link(sim, a, ra)
    Link(sim, rb, b)
    return alice, router, bob


def server_on(stack, port=9):
    got = []
    sock = stack.socket()
    sock.bind(port=port)
    sock.on_receive = lambda payload, *a: got.append(payload)
    return got


def test_prerouting_mangle_drop(sim=None):
    sim = Simulator()
    alice, router, bob = build_router_world(sim)
    router.iptables.run("-t mangle -A PREROUTING -i eth0 -j LOG")
    bob_got = server_on(bob)
    alice.socket().sendto("x", 10, "10.2.0.2", 9)
    sim.run(until=2.0)
    assert bob_got == ["x"]
    log = router.iptables.list_rules("mangle", "PREROUTING")[0]
    assert log.packets == 1


def test_input_filter_drop():
    sim = Simulator()
    alice, router, bob = build_router_world(sim)
    # Router refuses datagrams addressed to itself.
    router.iptables.run("-A INPUT -p udp -j DROP")
    router_got = server_on(router)
    alice.socket().sendto("x", 10, "10.1.0.1", 9)
    sim.run(until=2.0)
    assert router_got == []
    assert router.dropped_filter == 1


def test_forward_filter_drop():
    sim = Simulator()
    alice, router, bob = build_router_world(sim)
    router.iptables.run("-A FORWARD -s 10.1.0.0/24 -j DROP")
    bob_got = server_on(bob)
    alice.socket().sendto("x", 10, "10.2.0.2", 9)
    sim.run(until=2.0)
    assert bob_got == []
    assert router.dropped_filter == 1


def test_postrouting_mark_visible_on_forwarded_packet():
    sim = Simulator()
    alice, router, bob = build_router_world(sim)
    router.iptables.run("-t mangle -A POSTROUTING -o eth1 -j MARK --set-mark 0x7")
    seen = []
    sock = bob.socket()
    sock.bind(port=9)
    sock.on_receive = lambda payload, src, sport, pkt: seen.append(pkt.mark)
    alice.socket().sendto("x", 10, "10.2.0.2", 9)
    sim.run(until=2.0)
    assert seen == [0x7]


def test_prerouting_mark_steers_forwarding():
    """Policy routing on a router: marked transit traffic detours."""
    sim = Simulator()
    alice, router, bob = build_router_world(sim)
    # A second path off the router.
    rc = router.add_interface(EthernetInterface("eth2"))
    carol = IPStack(sim, "carol")
    c = carol.add_interface(EthernetInterface("eth0"))
    router.configure_interface(rc, "10.3.0.1", 24)
    carol.configure_interface(c, "10.3.0.2", 24)
    Link(sim, rc, c)
    carol.forwarding = False
    router.ip.run("route add 10.2.0.0/24 dev eth2 via 10.3.0.2 table detour")
    router.ip.run("rule add fwmark 5 lookup detour pref 50")
    router.iptables.run(
        "-t mangle -A PREROUTING -i eth0 -p udp --dport 9 -j MARK --set-mark 5"
    )
    alice.socket().sendto("x", 10, "10.2.0.2", 9)
    sim.run(until=2.0)
    # The packet left via eth2 (toward carol) instead of eth1.
    assert router.iface("eth2").tx_packets == 1
    assert router.iface("eth1").tx_packets == 0


def test_forward_no_route_counted():
    sim = Simulator()
    alice, router, bob = build_router_world(sim)
    dropped_before = router.dropped_no_route
    # 10.9/24 is nowhere in the router's tables.
    from repro.net.packet import Packet

    sock = alice.socket()
    sock.bind()
    packet = Packet("10.9.0.1", src="10.1.0.2", size=10, sport=sock.port, dport=1)
    alice.send(packet)
    sim.run(until=2.0)
    assert router.dropped_no_route == dropped_before + 1


def test_forwarded_ttl_decrements():
    sim = Simulator()
    alice, router, bob = build_router_world(sim)
    seen = []
    sock = bob.socket()
    sock.bind(port=9)
    sock.on_receive = lambda payload, src, sport, pkt: seen.append(pkt.ttl)
    alice.socket().sendto("x", 10, "10.2.0.2", 9)
    sim.run(until=2.0)
    assert seen == [63]
