"""The spec layer: validation, enumeration, JSON round-trip."""

import json

import pytest

from repro.scenarios import (
    DIMENSIONS,
    HANDOVERS,
    LADDERS,
    RAT_ORDER,
    RAT_RATES,
    REMOTE_SIM,
    ROAMING,
    HandoverSpec,
    RateLadderSpec,
    RemoteSimSpec,
    ScenarioSpec,
    ScenarioSpecError,
    enumerate_grammar,
    grammar_point,
    point_name,
    point_names,
    signal_grade_cap,
)

# -- dimension specs ---------------------------------------------------------


def test_rat_rates_ascending():
    rates = [RAT_RATES[rat] for rat in RAT_ORDER]
    assert rates == sorted(rates)
    assert RAT_ORDER == ("gprs", "edge", "umts", "hsdpa")


def test_ladder_rejects_unknown_and_misordered_rats():
    with pytest.raises(ScenarioSpecError):
        RateLadderSpec(rats=("lte",))
    with pytest.raises(ScenarioSpecError):
        RateLadderSpec(rats=("umts", "gprs"))
    with pytest.raises(ScenarioSpecError):
        RateLadderSpec(rats=("umts", "umts"))
    with pytest.raises(ScenarioSpecError):
        RateLadderSpec(rats=())


def test_ladder_rejects_bad_indices_and_schedules():
    with pytest.raises(ScenarioSpecError):
        RateLadderSpec(rats=("gprs", "umts"), initial=2)
    with pytest.raises(ScenarioSpecError):
        RateLadderSpec(rats=("gprs", "umts"), moves=((10.0, 5),))
    with pytest.raises(ScenarioSpecError):
        RateLadderSpec(rats=("gprs", "umts"), moves=((10.0, 1), (10.0, 0)))
    with pytest.raises(ScenarioSpecError):
        RateLadderSpec(rats=("gprs", "umts"), moves=((0.0, 1),))


def test_ladder_rab_config_realizes_rates():
    ladder = RateLadderSpec(rats=("gprs", "edge", "hsdpa"), initial=1)
    config = ladder.rab_config()
    assert config.grades == list(ladder.rates)
    assert config.initial_grade_index == 1
    assert config.adaptation_enabled is False


def test_handover_rejects_bad_csq():
    with pytest.raises(ScenarioSpecError):
        HandoverSpec(events=((10.0, 32),))
    with pytest.raises(ScenarioSpecError):
        HandoverSpec(events=((10.0, -1),))


def test_remote_sim_validation_and_fault_specs():
    with pytest.raises(ScenarioSpecError):
        RemoteSimSpec(latency=0.5)  # latency without tunnel
    with pytest.raises(ScenarioSpecError):
        RemoteSimSpec(tunnel=True, latency=-1.0)
    assert RemoteSimSpec().fault_specs() == ()
    specs = RemoteSimSpec(tunnel=True, latency=0.25, loss_count=2).fault_specs()
    assert specs == (
        "serial:at_drop@t=0,count=2",
        "serial:latency@t=0,delay=0.25",
    )


def test_scenario_spec_validation():
    with pytest.raises(ScenarioSpecError):
        ScenarioSpec(name="")
    with pytest.raises(ScenarioSpecError):
        ScenarioSpec(name="x", hold=0.0)
    with pytest.raises(ScenarioSpecError):
        ScenarioSpec(name="x", hold=60.0, deadline=60.0)


# -- the grammar registry ----------------------------------------------------


def test_grammar_is_the_full_cross_product():
    names = point_names()
    expected = len(LADDERS) * len(HANDOVERS) * len(ROAMING) * len(REMOTE_SIM)
    assert len(names) == expected == 36
    assert len(set(names)) == len(names)
    specs = enumerate_grammar()
    assert [spec.name for spec in specs] == names


def test_enumeration_order_is_frozen():
    # Digests derived from enumeration order depend on this exact
    # sequence; reordering a catalog is a digest-breaking change.
    names = point_names()
    assert names[0] == "r99/none/home/local"
    assert names[-1] == "collapse/recover/visit/tunnel"
    assert names.index("climb/fade/visit/tunnel") == 19


def test_grammar_point_resolves_and_rejects():
    spec = grammar_point("climb/fade/visit/tunnel")
    assert spec.ladder is LADDERS["climb"]
    assert spec.handover is HANDOVERS["fade"]
    assert spec.roaming.visit is True
    assert spec.remote_sim.tunnel is True
    with pytest.raises(ScenarioSpecError):
        grammar_point("climb/fade/visit")
    with pytest.raises(ScenarioSpecError):
        grammar_point("climb/blizzard/visit/tunnel")
    assert point_name("r99", "none", "home", "local") == "r99/none/home/local"
    assert DIMENSIONS == ("ladder", "handover", "roaming", "sim")


# -- payload round-trip ------------------------------------------------------


def test_every_grammar_point_round_trips_through_json():
    for spec in enumerate_grammar():
        payload = json.loads(json.dumps(spec.to_payload()))
        assert ScenarioSpec.from_payload(payload) == spec


def test_malformed_payload_raises_spec_error():
    with pytest.raises(ScenarioSpecError):
        ScenarioSpec.from_payload({})
    with pytest.raises(ScenarioSpecError):
        ScenarioSpec.from_payload({"name": "x", "ladder": {"rats": ["lte"]}})


# -- signal mapping ----------------------------------------------------------


def test_signal_grade_cap_monotone_and_clamped():
    for count in (1, 2, 4):
        caps = [signal_grade_cap(csq, count) for csq in range(32)]
        assert caps == sorted(caps)  # monotone in CSQ
        assert all(0 <= cap < count for cap in caps)
    # Calibration: a fringe cell pins GPRS, a strong one allows HSDPA.
    assert signal_grade_cap(7, 4) == 0
    assert signal_grade_cap(24, 4) == 3
