"""Hypothesis profiles for the scenario-grammar property tests.

Every example instantiates and runs a whole testbed simulation, so the
default 200 ms deadline and example counts are wrong for this package:

- ``scenarios-dev`` (default): a quick derandomized pass that keeps the
  tier-1 suite fast and reproducible;
- ``scenarios-ci``: the CI gate — 200 derandomized examples across the
  whole grammar space (the issue's acceptance bar), with the example
  database cached between runs.

Select with ``HYPOTHESIS_PROFILE=scenarios-ci``.
"""

import os

from hypothesis import HealthCheck, settings

_COMMON = dict(
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    print_blob=True,
)

settings.register_profile("scenarios-dev", max_examples=20, **_COMMON)
settings.register_profile("scenarios-ci", max_examples=200, **_COMMON)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "scenarios-dev"))
