"""Scenario grammar threaded through the fleet: sharding-proof digests.

A fleet spec can carry grammar points; nodes draw them round-robin by
*fleet-wide* index, so what a node experiences never depends on how the
fleet is sharded into groups — which is what keeps ``-j1`` and ``-j2``
campaign digests byte-identical over the scenario space too.
"""

import json

from repro.fleet.campaign import run_group
from repro.fleet.spec import FleetSpec, FleetSpecError
from repro.parallel import fleet_jobs, run_campaign

import pytest

QUICK = dict(nodes=6, group_size=3, duration=1.0, stagger=6.0, drain=1.0)
POINTS = ("climb/fade/home/local", "r99/none/home/local")


def test_bad_scenario_fails_at_spec_build_time():
    with pytest.raises(FleetSpecError):
        FleetSpec(scenarios=("climb/blizzard/home/local",), **QUICK)


def test_scenario_assignment_uses_fleet_wide_index():
    spec = FleetSpec(scenarios=POINTS, **QUICK)
    assigned = [
        node.scenario
        for group in range(spec.group_count())
        for node in spec.node_specs(group)
    ]
    # Round-robin over the whole fleet, across group boundaries.
    assert assigned == [POINTS[i % len(POINTS)] for i in range(spec.nodes)]


def test_fleet_spec_payload_round_trips_scenarios():
    spec = FleetSpec(scenarios=POINTS, **QUICK)
    payload = json.loads(json.dumps(spec.to_payload()))
    assert FleetSpec.from_payload(payload) == spec


def test_two_group_fleet_with_different_grammar_points_runs_clean():
    spec = FleetSpec(scenarios=POINTS, **QUICK)
    for group in range(spec.group_count()):
        report = run_group(spec, group)
        assert report["finished"] and report["clean"]
        # Every experiment record names the grammar point its sender ran.
        scenarios = {r["scenario"] for r in report["experiments"]}
        assert scenarios <= set(POINTS) | {""}
        assert scenarios & set(POINTS)


def test_scenarios_change_the_group_digest():
    plain = run_group(FleetSpec(**QUICK), 0)["digest"]
    shaped = run_group(FleetSpec(scenarios=POINTS, **QUICK), 0)["digest"]
    assert plain != shaped


def test_fleet_scenario_campaign_byte_identical_across_workers():
    spec = FleetSpec(scenarios=POINTS, **QUICK)
    jobs = fleet_jobs(spec)
    assert len(jobs) == 2
    serial = run_campaign(jobs, workers=1)
    sharded = run_campaign(jobs, workers=2)
    assert serial.digest == sharded.digest
    for a, b in zip(serial.results, sharded.results):
        assert a.stable == b.stable
