"""CLI threading: the grammar reaches chaos, sweep and fleet runners."""

from repro.__main__ import main

POINTS = ["climb/fade/visit/tunnel", "r99/none/home/local"]


def test_chaos_scenario_grammar_list_prints_all_points(capsys):
    assert main(["chaos", "--scenario-grammar", "--list"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert len(lines) == 36
    assert lines[0] == "r99/none/home/local"
    assert "climb/fade/visit/tunnel" in lines


def test_chaos_scenario_grammar_runs_points(capsys):
    args = ["chaos", "--scenario-grammar", "--no-cache"]
    for point in POINTS:
        args += ["--scenario", point]
    assert main(args) == 0
    out = capsys.readouterr().out
    for point in POINTS:
        assert point in out
    assert "2/2 scenarios as expected" in out


def test_chaos_scenario_grammar_jsonl_byte_identical_j1_vs_j2(tmp_path):
    one, two = tmp_path / "j1.jsonl", tmp_path / "j2.jsonl"
    base = ["chaos", "--scenario-grammar", "--no-cache",
            "--scenario", POINTS[0], "--scenario", POINTS[1]]
    assert main(base + ["--jsonl", str(one)]) == 0
    assert main(base + ["-j", "2", "--jsonl", str(two)]) == 0
    assert one.read_bytes() == two.read_bytes()


def test_chaos_unknown_grammar_point_exits_2(capsys):
    assert main(["chaos", "--scenario-grammar", "--no-cache",
                 "--scenario", "climb/blizzard/home/local"]) == 2
    assert "blizzard" in capsys.readouterr().err


def test_sweep_scenario_changes_the_digest(capsys):
    def digest(extra):
        assert main(["sweep", "--seeds", "2", "--duration", "5",
                     "--no-cache"] + extra) == 0
        out = capsys.readouterr().out
        (line,) = [ln for ln in out.splitlines()
                   if ln.startswith("campaign: digest=")]
        return line.split()[1]

    plain = digest([])
    shaped = digest(["--scenario", "collapse/recover/home/local"])
    assert plain != shaped


def test_sweep_bad_scenario_exits_2(capsys):
    assert main(["sweep", "--seeds", "2", "--no-cache",
                 "--scenario", "not/a/real/point"]) == 2


def test_fleet_scenario_flag_threads_through(capsys):
    assert main(["fleet", "--nodes", "4", "--group-size", "2",
                 "--duration", "1", "--stagger", "6",
                 "--no-cache", "--scenario", POINTS[0],
                 "--scenario", POINTS[1]]) == 0
    out = capsys.readouterr().out
    assert "fleet: 4 node(s) in 2 group(s)" in out


def test_fleet_bad_scenario_exits_2(capsys):
    assert main(["fleet", "--nodes", "4", "--no-cache",
                 "--scenario", "nope"]) == 2
