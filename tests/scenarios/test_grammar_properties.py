"""Property tests over the whole scenario space, not just named points.

The strategy below generates *arbitrary* valid specs — any RAT subset,
any renegotiation schedule, any handover/CSQ sequence, roaming or not,
any remote-SIM tunnel shape — and asserts the grammar-wide contract on
every one of them:

- the driver always finishes (never hangs against the deadline);
- the node is left clean (no lock, no isolation, no ppp0, no routes);
- datacall QoS is monotone with the rate ladder: every bearer rate the
  run ever grants is drawn from the spec's ladder, and the ladder
  itself ascends with the RAT order.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.scenarios import (
    RAT_ORDER,
    HandoverSpec,
    RateLadderSpec,
    RemoteSimSpec,
    RoamingSpec,
    ScenarioSpec,
    enumerate_grammar,
    run_grammar_scenario,
)

_times = st.floats(5.0, 55.0, allow_nan=False, allow_infinity=False)


@st.composite
def ladders(draw):
    """Any non-empty ordered RAT subset with any renegotiation walk."""
    mask = draw(
        st.lists(
            st.booleans(), min_size=len(RAT_ORDER), max_size=len(RAT_ORDER)
        ).filter(any)
    )
    rats = tuple(rat for rat, keep in zip(RAT_ORDER, mask) if keep)
    initial = draw(st.integers(0, len(rats) - 1))
    times = sorted(draw(st.lists(_times, unique=True, max_size=3)))
    moves = tuple((at, draw(st.integers(0, len(rats) - 1))) for at in times)
    return RateLadderSpec(rats=rats, initial=initial, moves=moves)


@st.composite
def handovers(draw):
    """Up to two handovers, onto cells of arbitrary signal strength."""
    times = sorted(draw(st.lists(_times, unique=True, max_size=2)))
    events = tuple((at, draw(st.integers(0, 31))) for at in times)
    return HandoverSpec(events=events)


@st.composite
def remote_sims(draw):
    """A local SIM, or a tunnel with arbitrary latency/loss shape."""
    if not draw(st.booleans()):
        return RemoteSimSpec()
    return RemoteSimSpec(
        tunnel=True,
        latency=draw(st.floats(0.05, 0.8, allow_nan=False)),
        loss_count=draw(st.integers(0, 2)),
    )


@st.composite
def scenario_specs(draw):
    """An arbitrary valid point of the (unnamed) scenario space."""
    return ScenarioSpec(
        name="property",
        ladder=draw(ladders()),
        handover=draw(handovers()),
        roaming=RoamingSpec(visit=draw(st.booleans())),
        remote_sim=draw(remote_sims()),
        seed=draw(st.integers(0, 5)),
    )


@given(spec=scenario_specs())
def test_any_valid_scenario_never_hangs_never_leaks(spec):
    report = run_grammar_scenario(spec)
    # The PR-4 invariants, extended over the whole grammar space.
    assert not report["hung"], report
    assert report["clean"], report
    assert report["ok"], report
    # QoS monotone with the rate ladder.
    ladder = report["ladder_rates"]
    assert ladder == sorted(ladder)
    assert set(report["rab_rates"]) <= set(ladder), report
    # Event accounting: nothing scheduled is silently lost.
    assert report["moves_applied"] + report["moves_missed"] == len(
        spec.ladder.moves
    )
    assert report["handovers"] == len(spec.handover.events)
    assert report["roamed"] is spec.roaming.visit


@given(spec=scenario_specs())
def test_spec_round_trip_is_lossless(spec):
    assert ScenarioSpec.from_payload(spec.to_payload()) == spec


def test_named_grammar_points_all_run_clean():
    """The 36 named points satisfy the same contract as random ones."""
    for spec in enumerate_grammar():
        report = run_grammar_scenario(spec)
        assert report["ok"], (spec.name, report["outcome"])
        assert set(report["rab_rates"]) <= set(report["ladder_rates"])


def test_scenario_run_is_deterministic():
    spec = enumerate_grammar()[19]  # climb/fade/visit/tunnel
    first = run_grammar_scenario(spec)
    second = run_grammar_scenario(spec)
    assert first["digest"] == second["digest"]
    assert first == second
