"""The delete-one proof: every grammar dimension earns its keep.

Starting from the fully-loaded point ``climb/fade/visit/tunnel``,
resetting any single dimension to its neutral value must change the
run's trace digest — i.e. each dimension demonstrably alters at least
one run.  A dimension that never moved a digest would be dead grammar.
"""

import pytest

from repro.scenarios import grammar_point, run_grammar_scenario

LOADED = "climb/fade/visit/tunnel"

#: dimension index in the point name -> its neutral value.
NEUTRAL = {
    "ladder": "r99",
    "handover": "none",
    "roaming": "home",
    "sim": "local",
}

DIMENSION_INDEX = {"ladder": 0, "handover": 1, "roaming": 2, "sim": 3}


@pytest.fixture(scope="module")
def loaded_digest():
    return run_grammar_scenario(grammar_point(LOADED))["digest"]


@pytest.mark.parametrize("dimension", sorted(NEUTRAL))
def test_resetting_one_dimension_changes_the_digest(dimension, loaded_digest):
    parts = LOADED.split("/")
    parts[DIMENSION_INDEX[dimension]] = NEUTRAL[dimension]
    ablated = run_grammar_scenario(grammar_point("/".join(parts)))
    assert ablated["digest"] != loaded_digest, (
        f"dimension {dimension!r} had no observable effect"
    )


def test_neutral_point_differs_from_loaded(loaded_digest):
    neutral = run_grammar_scenario(grammar_point("r99/none/home/local"))
    assert neutral["digest"] != loaded_digest
    assert neutral["ok"]
