"""Tests for the §3 experiment runner (short flows for speed)."""

import pytest

from repro.testbed.experiment import (
    PATH_ETHERNET,
    PATH_UMTS,
    ExperimentError,
    run_characterization,
    run_repetitions,
)
from repro.traffic.flows import cbr, voip_g711
from repro.umts.operator import private_microcell


def test_unknown_path_rejected():
    with pytest.raises(ExperimentError):
        run_characterization(voip_g711(duration=1.0), path="carrier-pigeon")


def test_voip_over_ethernet():
    result = run_characterization(voip_g711(duration=5.0), path=PATH_ETHERNET, seed=1)
    s = result.summary
    assert s.packets_sent == pytest.approx(500, abs=2)
    assert s.packets_lost == 0
    assert s.mean_bitrate_kbps == pytest.approx(72.0, rel=0.05)
    assert s.mean_rtt < 0.05
    assert result.rab_history is None


def test_voip_over_umts():
    result = run_characterization(voip_g711(duration=5.0), path=PATH_UMTS, seed=1)
    s = result.summary
    assert s.packets_lost == 0
    assert s.mean_bitrate_kbps == pytest.approx(72.0, rel=0.1)
    assert s.mean_rtt > 0.1
    assert result.rab_history is not None


def test_umts_experiment_cleans_up():
    result = run_characterization(voip_g711(duration=3.0), path=PATH_UMTS, seed=2)
    scenario = result.scenario
    assert not scenario.napoli.umts_backend.lock.locked
    assert "ppp0" not in scenario.napoli.stack.interfaces
    assert scenario.operator.calls == []


def test_umts_probe_source_is_mobile_address():
    result = run_characterization(voip_g711(duration=2.0), path=PATH_UMTS, seed=3)
    # Receiver saw packets; the scenario's eth address saw none of them.
    log = result.receiver.log_for(result.sender.flow_id)
    assert log.packets_received > 0
    # All RTT probes completed => replies reached the mobile address.
    assert len(result.sender.log.rtt) == log.packets_received


def test_series_accessors():
    result = run_characterization(voip_g711(duration=3.0), path=PATH_ETHERNET, seed=4)
    assert len(result.bitrate_kbps()) > 10
    assert len(result.jitter_series()) > 10
    assert len(result.loss_series()) > 10
    assert len(result.rtt_series()) > 10


def test_saturation_loses_packets_on_umts():
    result = run_characterization(cbr(duration=10.0), path=PATH_UMTS, seed=5)
    s = result.summary
    assert s.loss_fraction > 0.5
    assert s.mean_rtt > 1.0


def test_reusing_scenario_for_both_paths():
    # Ethernet first, then UMTS, on the same scenario instance.
    result_eth = run_characterization(
        voip_g711(duration=2.0), path=PATH_ETHERNET, seed=6
    )
    scenario = result_eth.scenario
    result_umts = run_characterization(
        voip_g711(duration=2.0, dport=9001), path=PATH_UMTS, scenario=scenario
    )
    assert result_umts.summary.packets_received > 0


def test_repetitions_return_per_run_summaries():
    summaries = run_repetitions(
        lambda: voip_g711(duration=2.0),
        path=PATH_ETHERNET,
        repetitions=3,
        base_seed=100,
    )
    assert len(summaries) == 3
    for s in summaries:
        assert s.packets_lost == 0


def test_operator_factory_plumbs_through():
    result = run_characterization(
        voip_g711(duration=2.0),
        path=PATH_UMTS,
        seed=7,
        operator_factory=private_microcell,
    )
    assert not result.scenario.operator.ggsn.block_inbound
    assert result.summary.packets_received > 0
