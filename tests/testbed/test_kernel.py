"""Unit tests for the kernel module registry."""

import pytest

from repro.testbed.kernel import (
    CARD_MODULE_SETS,
    PPP_MODULE_SET,
    KernelModuleRegistry,
    ModuleError,
)


def test_fresh_registry_empty():
    reg = KernelModuleRegistry()
    assert reg.loaded_modules() == []
    assert not reg.is_loaded("ppp_generic")


def test_load_pulls_dependencies():
    reg = KernelModuleRegistry()
    reg.load("ppp_async")
    assert reg.is_loaded("ppp_async")
    assert reg.is_loaded("ppp_generic")
    assert reg.is_loaded("crc_ccitt")
    assert reg.is_loaded("slhc")


def test_load_unknown_module():
    reg = KernelModuleRegistry()
    with pytest.raises(ModuleError):
        reg.load("floppy")


def test_unload():
    reg = KernelModuleRegistry()
    reg.load("nozomi")
    reg.unload("nozomi")
    assert not reg.is_loaded("nozomi")


def test_unload_in_use_refused():
    reg = KernelModuleRegistry()
    reg.load("pl2303")
    with pytest.raises(ModuleError):
        reg.unload("usbserial")
    reg.unload("pl2303")
    reg.unload("usbserial")


def test_unload_not_loaded():
    reg = KernelModuleRegistry()
    with pytest.raises(ModuleError):
        reg.unload("nozomi")


def test_load_umts_support_nozomi():
    reg = KernelModuleRegistry()
    loaded = reg.load_umts_support("nozomi")
    for module in PPP_MODULE_SET:
        assert reg.is_loaded(module)
    assert reg.is_loaded("nozomi")
    assert not reg.is_loaded("usbserial")
    assert "nozomi" in loaded


def test_load_umts_support_usbserial():
    reg = KernelModuleRegistry()
    reg.load_umts_support("usbserial")
    assert reg.is_loaded("pl2303")
    assert reg.is_loaded("usbserial")


def test_load_umts_support_unknown_card():
    reg = KernelModuleRegistry()
    with pytest.raises(ModuleError):
        reg.load_umts_support("broadcom")


def test_has_umts_support():
    reg = KernelModuleRegistry()
    assert not reg.has_umts_support("nozomi")
    reg.load_umts_support("nozomi")
    assert reg.has_umts_support("nozomi")
    assert not reg.has_umts_support("usbserial")


def test_paper_module_list_is_covered():
    # The exact list from §2.3 of the paper.
    for module in [
        "ppp_generic",
        "ppp_filter",
        "ppp_async",
        "ppp_sync_tty",
        "ppp_deflate",
        "ppp_bsdcomp",
        "pl2303",
        "usbserial",
        "nozomi",
    ]:
        reg = KernelModuleRegistry()
        reg.load(module)
        assert reg.is_loaded(module)


def test_card_module_sets_match_cards():
    from repro.modem.cards import GlobetrotterGT3G, HuaweiE620

    assert GlobetrotterGT3G.required_module in CARD_MODULE_SETS
    assert HuaweiE620.required_module in CARD_MODULE_SETS
