"""Tests for the Internet core and many-node scale."""

import pytest

from repro.core.frontend import UmtsCommand
from repro.net.icmp import Pinger
from repro.net.interface import EthernetInterface
from repro.net.stack import IPStack
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams, UniformVariate
from repro.testbed.internet import Internet
from repro.testbed.scenarios import OneLabScenario


def test_attach_creates_router_interface():
    sim = Simulator()
    internet = Internet(sim)
    host = IPStack(sim, "host")
    eth = host.add_interface(EthernetInterface("eth0"))
    host.configure_interface(eth, "10.5.0.100", 24)
    internet.attach(eth, "10.5.0.1", 24)
    host.ip.route_add("default", "eth0", via="10.5.0.1")
    assert internet.router.is_local_address("10.5.0.1")


def test_attach_names_are_unique():
    sim = Simulator()
    internet = Internet(sim)
    for i in range(3):
        host = IPStack(sim, f"h{i}")
        eth = host.add_interface(EthernetInterface("eth0"))
        host.configure_interface(eth, f"10.{i}.0.100", 24)
        internet.attach(eth, f"10.{i}.0.1", 24)
    assert len(internet.router.interfaces) == 4  # lo + 3


def test_attach_with_jitter_needs_rng():
    sim = Simulator()
    internet = Internet(sim)
    host = IPStack(sim, "host")
    eth = host.add_interface(EthernetInterface("eth0"))
    host.configure_interface(eth, "10.5.0.100", 24)
    with pytest.raises(ValueError):
        internet.attach(eth, "10.5.0.1", 24, jitter=UniformVariate(0, 0.001))
    internet2 = Internet(sim, "core2")
    internet2.attach(
        eth,
        "10.5.0.1",
        24,
        jitter=UniformVariate(0, 0.001),
        rng=RandomStreams(0).stream("j"),
    )


def test_three_hosts_full_mesh_reachability():
    sim = Simulator()
    internet = Internet(sim)
    hosts = []
    for i in range(3):
        host = IPStack(sim, f"h{i}")
        eth = host.add_interface(EthernetInterface("eth0"))
        host.configure_interface(eth, f"10.{i}.0.100", 24)
        internet.attach(eth, f"10.{i}.0.1", 24)
        host.ip.route_add("default", "eth0", via=f"10.{i}.0.1")
        hosts.append(host)
    results = []
    for i, src in enumerate(hosts):
        for j, dst in enumerate(hosts):
            if i == j:
                continue
            pinger = Pinger(src)
            pinger.send(f"10.{j}.0.100")
            results.append(pinger)
    sim.run(until=5.0)
    assert all(len(p.results) == 1 for p in results)


def test_five_umts_nodes_dial_concurrently():
    """Scale: the operator serves several PlanetLab sites at once."""
    scenario = OneLabScenario(seed=60)
    nodes = [scenario.napoli]
    for i in range(4):
        nodes.append(
            scenario.add_umts_node(
                f"planetlab{i}.example.org", f"10.{60 + i}.0.100", f"10.{60 + i}.0.1"
            )
        )
    commands = [
        UmtsCommand(node.slivers[scenario.slice.name]) for node in nodes
    ]
    results = [command.start_blocking() for command in commands]
    assert all(result.ok for result in results)
    assert scenario.operator.ggsn.pool.in_use == 5
    addresses = {node.connection.address() for node in nodes}
    assert len(addresses) == 5
    # Each can reach INRIA over its own UMTS path.
    got = []
    server = scenario.inria_sliver.socket()
    server.bind(port=9000)
    server.on_receive = lambda payload, src, sport, pkt: got.append(str(src))
    for node, command in zip(nodes, commands):
        command.add_destination_blocking(scenario.inria_addr)
        node.slivers[scenario.slice.name].socket().sendto(
            "x", 40, scenario.inria_addr, 9000
        )
    scenario.sim.run(until=scenario.sim.now + 15.0)
    assert sorted(got) == sorted(addresses)
    for command in commands:
        assert command.stop_blocking().ok
    assert scenario.operator.ggsn.pool.in_use == 0
