"""Tests for PlanetLab node assembly and the OneLab scenario."""

import pytest

from repro.core.errors import HardwareMissingError
from repro.modem.cards import GlobetrotterGT3G, HuaweiE620
from repro.net.icmp import Pinger
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.testbed.internet import Internet
from repro.testbed.planetlab import PlanetLabNode
from repro.testbed.scenarios import OneLabScenario
from repro.umts.operator import commercial_operator, private_microcell
from repro.vserver.slice import Slice


def make_node(sim=None, name="node-a"):
    sim = sim or Simulator()
    return sim, PlanetLabNode(sim, name, RandomStreams(0))


def test_attach_lan_sets_address_and_route():
    sim = Simulator()
    internet = Internet(sim)
    _, node = make_node(sim)
    node.attach_lan(internet, "143.225.229.100", "143.225.229.1")
    assert node.address == "143.225.229.100"
    assert node.stack.rpdb.lookup("8.8.8.8").dev == "eth0"


def test_two_nodes_ping_through_internet():
    sim = Simulator()
    internet = Internet(sim)
    _, a = make_node(sim, "a")
    _, b = make_node(sim, "b")
    a.attach_lan(internet, "10.1.0.100", "10.1.0.1")
    b.attach_lan(internet, "10.2.0.100", "10.2.0.1")
    pinger = Pinger(a.stack)
    pinger.send("10.2.0.100")
    sim.run(until=5.0)
    assert len(pinger.results) == 1


def test_create_sliver_and_resolve_xid():
    _, node = make_node()
    sl = Slice("unina_umts", 510)
    node.create_sliver(sl)
    assert node.resolve_xid("unina_umts") == 510
    with pytest.raises(ValueError):
        node.create_sliver(sl)


def test_install_umts_card_loads_modules():
    sim = Simulator()
    streams = RandomStreams(0)
    node = PlanetLabNode(sim, "n", streams)
    operator = commercial_operator(sim, streams)
    cell = operator.new_cell()
    node.install_umts_card(GlobetrotterGT3G, cell, apn=operator.apn)
    assert node.kernel.is_loaded("nozomi")
    assert node.kernel.is_loaded("ppp_generic")
    assert node.modem is not None
    assert "umts" in node.vsys.scripts()


def test_install_without_modules_fails():
    sim = Simulator()
    streams = RandomStreams(0)
    node = PlanetLabNode(sim, "n", streams)
    operator = commercial_operator(sim, streams)
    cell = operator.new_cell()
    with pytest.raises(HardwareMissingError):
        node.install_umts_card(
            GlobetrotterGT3G, cell, apn=operator.apn, load_modules=False
        )


def test_install_twice_fails():
    sim = Simulator()
    streams = RandomStreams(0)
    node = PlanetLabNode(sim, "n", streams)
    operator = commercial_operator(sim, streams)
    cell = operator.new_cell()
    node.install_umts_card(GlobetrotterGT3G, cell, apn=operator.apn)
    with pytest.raises(HardwareMissingError):
        node.install_umts_card(HuaweiE620, cell, apn=operator.apn)


def test_authorize_requires_card():
    _, node = make_node()
    with pytest.raises(HardwareMissingError):
        node.authorize_umts("unina_umts")


def test_scenario_builds_consistently():
    scenario = OneLabScenario(seed=0)
    assert scenario.napoli.address == "143.225.229.100"
    assert scenario.inria.address == "138.96.250.100"
    assert scenario.napoli_sliver.xid == 510
    assert scenario.inria_sliver.xid == 510
    assert scenario.napoli.umts_backend is not None
    assert scenario.inria.umts_backend is None


def test_scenario_ethernet_path_works():
    scenario = OneLabScenario(seed=0)
    got = []
    server = scenario.inria_sliver.socket()
    server.bind(port=7777)
    server.on_receive = lambda payload, *a: got.append(payload)
    scenario.napoli_sliver.socket().sendto("wired", 10, scenario.inria_addr, 7777)
    scenario.sim.run(until=2.0)
    assert got == ["wired"]


def test_scenario_ethernet_rtt_about_20ms():
    scenario = OneLabScenario(seed=0)
    pinger = Pinger(scenario.napoli.stack)
    pinger.send(scenario.inria_addr)
    scenario.sim.run(until=2.0)
    _, rtt = pinger.results[0]
    assert 0.015 < rtt < 0.030


def test_scenario_with_huawei_card():
    scenario = OneLabScenario(seed=0, card_cls=HuaweiE620)
    assert scenario.napoli.kernel.is_loaded("pl2303")
    umts = scenario.umts_command()
    assert umts.start_blocking().ok


def test_scenario_private_microcell():
    scenario = OneLabScenario(seed=0, operator_factory=private_microcell)
    assert not scenario.operator.ggsn.block_inbound
    umts = scenario.umts_command()
    assert umts.start_blocking().ok


def test_scenario_seed_determinism():
    a = OneLabScenario(seed=42)
    b = OneLabScenario(seed=42)
    ua, ub = a.umts_command(), b.umts_command()
    ra, rb = ua.start_blocking(), ub.start_blocking()
    assert ra.lines == rb.lines
    assert a.sim.now == b.sim.now


def test_nodes_have_planetlab_bwlimit():
    scenario = OneLabScenario(seed=0)
    assert scenario.napoli.bwlimiter is not None
    assert scenario.napoli.bwlimiter.limit_of(510)[0] == 10_000_000.0


def test_bwlimit_caps_slice_on_eth0():
    scenario = OneLabScenario(seed=0)
    scenario.napoli.bwlimiter.set_limit(510, rate_bps=80_000.0, burst_bytes=2000)
    got = []
    server = scenario.inria_sliver.socket()
    server.bind(port=9)
    server.on_receive = lambda payload, src, sport, pkt: got.append(1)
    sock = scenario.napoli_sliver.socket()
    sim = scenario.sim

    def tick(remaining=[300]):
        if remaining[0] <= 0:
            return
        remaining[0] -= 1
        sock.sendto("x", 1000, scenario.inria_addr, 9)
        sim.schedule(0.002, tick)

    sim.schedule(0.0, tick)
    sim.run(until=1.0)
    # 10 kB/s + 2 kB burst: far fewer than the 300 offered.
    assert len(got) < 20


def test_umts_path_bypasses_eth0_bwlimit():
    scenario = OneLabScenario(seed=1)
    scenario.napoli.bwlimiter.set_limit(510, rate_bps=8_000.0, burst_bytes=1000)
    umts = scenario.umts_command()
    assert umts.start_blocking().ok
    assert umts.add_destination_blocking(scenario.inria_addr).ok
    got = []
    server = scenario.inria_sliver.socket()
    server.bind(port=9)
    server.on_receive = lambda payload, src, sport, pkt: got.append(1)
    sock = scenario.napoli_sliver.socket()
    for _ in range(20):
        sock.sendto("x", 500, scenario.inria_addr, 9)
    scenario.sim.run(until=scenario.sim.now + 10.0)
    # All 20 arrive over ppp0 despite the draconian eth0 cap.
    assert len(got) == 20
