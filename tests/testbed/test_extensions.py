"""Tests for the extensions: multi-node UMTS and downlink direction."""

import pytest

from repro.core.frontend import UmtsCommand
from repro.net.addressing import ip
from repro.testbed.experiment import (
    DIRECTION_DOWNLINK,
    PATH_ETHERNET,
    PATH_UMTS,
    ExperimentError,
    run_characterization,
)
from repro.testbed.scenarios import OneLabScenario
from repro.traffic.flows import cbr, voip_g711


def test_add_umts_node_builds_complete_site():
    scenario = OneLabScenario(seed=50)
    berlin = scenario.add_umts_node(
        "planetlab1.tu-berlin.de", "141.23.15.100", "141.23.15.1"
    )
    assert berlin.address == "141.23.15.100"
    assert berlin.umts_backend is not None
    assert scenario.slice.name in berlin.slivers
    assert len(scenario.operator.cells) == 2


def test_two_umts_nodes_dial_concurrently():
    scenario = OneLabScenario(seed=51)
    berlin = scenario.add_umts_node(
        "planetlab1.tu-berlin.de", "141.23.15.100", "141.23.15.1"
    )
    napoli_umts = scenario.umts_command()
    berlin_umts = UmtsCommand(berlin.slivers[scenario.slice.name])
    assert napoli_umts.start_blocking().ok
    assert berlin_umts.start_blocking().ok
    # Two sessions, two distinct pool addresses.
    assert scenario.operator.ggsn.pool.in_use == 2
    addr_a = scenario.napoli.connection.address()
    addr_b = berlin.connection.address()
    assert addr_a != addr_b
    assert ip(addr_a) in scenario.operator.ggsn.pool.prefix
    assert ip(addr_b) in scenario.operator.ggsn.pool.prefix
    # Locks are per node: each slice sliver holds its own interface.
    assert scenario.napoli.umts_backend.lock.holder == scenario.slice.name
    assert berlin.umts_backend.lock.holder == scenario.slice.name
    assert berlin_umts.stop_blocking().ok
    assert scenario.operator.ggsn.pool.in_use == 1
    assert napoli_umts.stop_blocking().ok
    assert scenario.operator.ggsn.pool.in_use == 0


def test_two_mobile_nodes_exchange_traffic():
    """UMTS-to-UMTS: both endpoints behind the operator."""
    scenario = OneLabScenario(seed=52)
    berlin = scenario.add_umts_node(
        "planetlab1.tu-berlin.de", "141.23.15.100", "141.23.15.1"
    )
    UmtsCommand(scenario.napoli_sliver).start_blocking()
    UmtsCommand(berlin.slivers[scenario.slice.name]).start_blocking()
    napoli_mobile = scenario.napoli.connection.address()
    berlin_mobile = berlin.connection.address()
    got = []
    # Berlin listens on its mobile address.
    server = berlin.slivers[scenario.slice.name].socket()
    server.bind(address=ip(berlin_mobile), port=9000)
    server.on_receive = lambda payload, src, sport, pkt: got.append(
        (payload, str(src))
    )
    # Napoli sends from its mobile address (bound), mobile-to-mobile.
    client = scenario.napoli_sliver.socket()
    client.bind(address=ip(napoli_mobile))
    client.sendto("mobile-to-mobile", 50, berlin_mobile, 9000)
    scenario.sim.run(until=scenario.sim.now + 10.0)
    assert got == [("mobile-to-mobile", napoli_mobile)]


def test_downlink_umts_voip():
    result = run_characterization(
        voip_g711(duration=5.0, meter="owd"),
        path=PATH_UMTS,
        seed=53,
        direction=DIRECTION_DOWNLINK,
    )
    s = result.summary
    assert s.packets_lost == 0
    assert s.mean_bitrate_kbps == pytest.approx(72.0, rel=0.1)
    # Downlink OWD reflects the radio path (tens of ms), not queueing.
    assert 0.05 < s.mean_owd < 0.3


def test_downlink_umts_capacity_exceeds_uplink():
    """The asymmetry: 1 Mbit/s flows downlink where uplink chokes."""
    down = run_characterization(
        cbr(duration=15.0, meter="owd"),
        path=PATH_UMTS,
        seed=54,
        direction=DIRECTION_DOWNLINK,
    )
    up = run_characterization(
        cbr(duration=15.0, meter="owd"), path=PATH_UMTS, seed=54
    )
    assert down.summary.loss_fraction < 0.01
    assert down.summary.mean_bitrate_kbps > 900.0
    assert up.summary.loss_fraction > 0.5


def test_downlink_ethernet():
    result = run_characterization(
        voip_g711(duration=3.0),
        path=PATH_ETHERNET,
        seed=55,
        direction=DIRECTION_DOWNLINK,
    )
    assert result.summary.packets_lost == 0
    assert result.summary.mean_rtt < 0.05


def test_unknown_direction_rejected():
    with pytest.raises(ExperimentError):
        run_characterization(voip_g711(duration=1.0), direction="sideways")
