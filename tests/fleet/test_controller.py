"""Lease arbitration: FIFO order, priorities, preemption, node death."""

import pytest

from repro.fleet.controller import FleetController, FleetLeaseError, jain_index
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator


def make_controller(preemption=True, metrics=False):
    sim = Simulator()
    if metrics:
        sim.metrics = MetricsRegistry()
    controller = FleetController(sim, preemption=preemption)
    controller.register_node("node-a")
    return sim, controller


def watch(ticket):
    """Record the ticket's outcome and revocations as they fire."""
    events = []
    ticket.outcome.wait(lambda value: events.append(value))
    ticket.revoked.wait(lambda reason: events.append(("revoked", reason)))
    return events


def test_fifo_within_a_priority():
    sim, controller = make_controller()
    first = controller.request("node-a", "alpha")
    second = controller.request("node-a", "beta")
    sim.run(until=1.0)
    assert first.granted and not second.granted
    controller.release(first)
    sim.run(until=2.0)
    assert second.granted
    controller.release(second)
    assert second.state == "released"


def test_priority_wins_among_queued():
    # Preemption off isolates pure queue ordering: the high-priority
    # ticket arrives last but is granted first once the holder leaves.
    sim, controller = make_controller(preemption=False)
    holder = controller.request("node-a", "alpha")
    low = controller.request("node-a", "low", priority=0)
    sim.run(until=1.0)
    high = controller.request("node-a", "high", priority=5)
    sim.run(until=2.0)
    controller.release(holder)
    sim.run(until=3.0)
    assert high.granted
    assert not low.granted


def test_preemption_fires_revoked_and_counts():
    sim, controller = make_controller(metrics=True)
    holder = controller.request("node-a", "best", priority=0)
    sim.run(until=1.0)
    assert holder.granted
    events = watch(holder)
    gold = controller.request("node-a", "gold", priority=10)
    sim.run(until=2.0)
    assert ("revoked", "preempted by gold") in events
    assert not gold.granted  # graceful: waits for the holder's release
    controller.release(holder)
    sim.run(until=3.0)
    assert gold.granted
    assert controller.fairness()["slices"]["best"]["preemptions"] == 1
    assert sim.metrics.counter("fleet.lease.preemptions").value == 1


def test_no_preemption_when_disabled():
    sim, controller = make_controller(preemption=False)
    holder = controller.request("node-a", "best", priority=0)
    sim.run(until=1.0)
    events = watch(holder)
    gold = controller.request("node-a", "gold", priority=10)
    sim.run(until=2.0)
    assert events == []
    assert not gold.granted
    controller.release(holder)
    sim.run(until=3.0)
    assert gold.granted


def test_equal_priority_never_preempts():
    sim, controller = make_controller()
    holder = controller.request("node-a", "one", priority=3)
    sim.run(until=1.0)
    events = watch(holder)
    controller.request("node-a", "two", priority=3)
    sim.run(until=2.0)
    assert events == []


def test_node_kill_revokes_holder_and_fails_queue_immediately():
    sim, controller = make_controller(metrics=True)
    killed = []
    controller.register_node("node-b", on_kill=killed.append)
    holder = controller.request("node-b", "best")
    sim.run(until=1.0)
    assert holder.granted
    waiter = controller.request("node-b", "gold", priority=0)
    sim.run(until=1.5)
    holder_events = watch(holder)
    waiter_events = watch(waiter)
    controller.kill_node("node-b", reason="chaos node_kill")
    sim.run(until=2.0)
    # The holder is revoked (not a preemption) and every queued ticket
    # resolves failed at once: death never starves the queue.
    assert ("revoked", "chaos node_kill") in holder_events
    assert ("failed", "chaos node_kill") in waiter_events
    assert killed == ["chaos node_kill"]
    assert controller.dead_nodes() == ["node-b"]
    assert sim.metrics.counter("fleet.node.killed").value == 1
    assert sim.metrics.counter("fleet.lease.preemptions").value == 0
    # Requests after death fail asynchronously, also without waiting.
    late = controller.request("node-b", "late")
    late_events = watch(late)
    sim.run(until=3.0)
    assert late_events == [("failed", "node dead")]
    # Killing twice is a no-op.
    controller.kill_node("node-b")
    assert controller.dead_nodes() == ["node-b"]


def test_release_is_idempotent_and_unknown_node_raises():
    sim, controller = make_controller(metrics=True)
    ticket = controller.request("node-a", "alpha")
    sim.run(until=1.0)
    controller.release(ticket)
    controller.release(ticket)  # second release: no double counting
    assert sim.metrics.counter("fleet.lease.releases").value == 1
    with pytest.raises(FleetLeaseError):
        controller.request("ghost", "alpha")
    with pytest.raises(FleetLeaseError):
        controller.kill_node("ghost")
    with pytest.raises(FleetLeaseError):
        controller.register_node("node-a")


def test_wait_and_hold_accounting():
    sim, controller = make_controller(metrics=True)
    first = controller.request("node-a", "alpha")
    second = controller.request("node-a", "beta")
    sim.run(until=1.0)
    sim.schedule(4.0, controller.release, first)
    sim.run(until=10.0)
    assert second.granted
    assert first.wait_time() == 0.0
    assert second.wait_time() == pytest.approx(5.0)
    fairness = controller.fairness()
    assert fairness["slices"]["alpha"]["hold_s"] == pytest.approx(5.0)
    assert fairness["slices"]["beta"]["mean_wait_s"] == pytest.approx(5.0)
    assert 0.0 < fairness["jain_grants"] <= 1.0


def test_jain_index_bounds():
    assert jain_index([]) == 1.0
    assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)
    assert jain_index([1.0, 0.0]) == pytest.approx(0.5)
    assert jain_index([0.0, 0.0]) == 1.0


def test_metric_families_exist_even_when_uneventful():
    sim = Simulator()
    sim.metrics = MetricsRegistry()
    FleetController(sim)
    for name in (
        "fleet.lease.requests",
        "fleet.lease.grants",
        "fleet.lease.preemptions",
        "fleet.lease.starved",
        "fleet.node.killed",
    ):
        assert name in sim.metrics
