"""The fleet spec grammar: validation, sharding, payload round-trip."""

import pytest

from repro.fleet.spec import (
    DEFAULT_SLICES,
    FleetSpec,
    FleetSpecError,
    SliceSpec,
)


def test_group_partitioning():
    spec = FleetSpec(nodes=20, group_size=8)
    assert spec.group_sizes() == [8, 8, 4]
    assert spec.group_count() == 3
    assert FleetSpec(nodes=8, group_size=8).group_sizes() == [8]
    assert FleetSpec(nodes=9, group_size=8).group_sizes() == [8, 1]


def test_node_specs_are_deterministic_and_disjoint_from_mobile_pools():
    spec = FleetSpec(nodes=130, group_size=64)
    specs = spec.node_specs(0)
    assert len(specs) == 64
    assert specs[0].name == "fleet0000-n00.onelab.eu"
    assert specs[0].address == "10.64.0.100"
    assert specs[-1].address == "10.127.0.100"
    # Same node index -> same addressing in every group (groups are
    # independent simulations), never inside 10.199/16 or 10.201/16.
    assert spec.node_specs(1)[0].address == "10.64.0.100"
    for node in specs:
        octet = int(node.address.split(".")[1])
        assert 64 <= octet <= 127
    # Distinct subnets within a group.
    assert len({n.address for n in specs}) == len(specs)


def test_fleet_scale_group_addressing_is_disjoint_and_stable():
    """A full 512-node shared-kernel group: unique subnets, pools clear."""
    spec = FleetSpec(nodes=512, group_size=512)
    specs = spec.node_specs(0)
    assert len(specs) == 512
    # The historic second-octet layout is unchanged for i < 128 (the
    # 64-node pins 10.64.0.100 / 10.127.0.100 still hold).
    assert specs[0].address == "10.64.0.100"
    assert specs[63].address == "10.127.0.100"
    assert specs[127].address == "10.191.0.100"
    # The fleet-scale tail fills 10.202/16 then 10.203/16.
    assert specs[128].address == "10.202.0.100"
    assert specs[383].address == "10.202.255.100"
    assert specs[384].address == "10.203.0.100"
    assert specs[511].address == "10.203.127.100"
    assert specs[511].gateway == "10.203.127.1"
    # Every /24 is distinct and clear of both operator mobile pools.
    subnets = {tuple(n.address.split(".")[:3]) for n in specs}
    assert len(subnets) == 512
    for octets in subnets:
        assert octets[:2] not in {("10", "199"), ("10", "201")}
    assert len({n.name for n in specs}) == 512


def test_pair_count_leftover_node_idles():
    spec = FleetSpec(nodes=5, group_size=8)
    assert spec.pair_count(0) == 2


def test_payload_round_trip():
    spec = FleetSpec(
        nodes=17,
        group_size=4,
        kind="cbr",
        duration=2.5,
        stagger=7.0,
        seed=42,
        faults=("fleet:node_kill@t=12,node=1",),
        preemption=False,
        slices=(SliceSpec("alpha", 700, 1), SliceSpec("beta", 701, 5)),
    )
    assert FleetSpec.from_payload(spec.to_payload()) == spec


def test_validation_errors():
    with pytest.raises(FleetSpecError):
        FleetSpec(nodes=0)
    with pytest.raises(FleetSpecError):
        FleetSpec(nodes=4, group_size=1)
    with pytest.raises(FleetSpecError):
        FleetSpec(nodes=4, group_size=513)
    with pytest.raises(FleetSpecError):
        FleetSpec(nodes=4, kind="ftp")
    with pytest.raises(FleetSpecError):
        FleetSpec(nodes=4, duration=0.0)
    with pytest.raises(FleetSpecError):
        FleetSpec(nodes=4, slices=())
    with pytest.raises(FleetSpecError):
        FleetSpec(nodes=4, slices=(SliceSpec("a", 1), SliceSpec("a", 2)))
    with pytest.raises(FleetSpecError):
        FleetSpec(nodes=4, slices=(SliceSpec("a", 1), SliceSpec("b", 1)))
    with pytest.raises(FleetSpecError):
        FleetSpec(nodes=4, faults=("fleet:reboot@t=1",))
    with pytest.raises(FleetSpecError):
        FleetSpec(nodes=4, group_size=4, retry_preempted=-1)
    with pytest.raises(FleetSpecError):
        SliceSpec("ok", 0)


def test_group_index_bounds():
    spec = FleetSpec(nodes=8, group_size=4)
    with pytest.raises(FleetSpecError):
        spec.node_specs(2)
    with pytest.raises(FleetSpecError):
        spec.node_specs(-1)


def test_default_slices_encode_the_preemption_pair():
    assert len(DEFAULT_SLICES) == 2
    assert DEFAULT_SLICES[0].priority < DEFAULT_SLICES[1].priority


def test_effective_deadline_scales_with_slices_and_retries():
    small = FleetSpec(nodes=4, group_size=4, retry_preempted=0)
    big = FleetSpec(nodes=4, group_size=4, retry_preempted=2)
    assert big.effective_deadline() > small.effective_deadline()
    pinned = FleetSpec(nodes=4, group_size=4, deadline=500.0)
    assert pinned.effective_deadline() == 500.0
