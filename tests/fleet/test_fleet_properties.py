"""Fleet-wide property: arbitrary arbitration never hangs or leaks.

The PR-4 invariant lifted to the fleet: for any small spec — random
slice priorities, preemption on or off, retries, and an optional
``fleet:node_kill`` landing at a random time on a random node — every
group run must

- **finish** before its deadline (no experiment resolves ``timeout``;
  a dead node fails its waiters instead of starving them), and
- **leak nothing**: after the run every node's interface lock,
  netfilter isolation, ``ppp0`` and UMTS routing table are all live or
  all released, killed nodes included.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.campaign import GroupRun, node_clean
from repro.fleet.spec import FleetSpec, SliceSpec


@st.composite
def fleet_specs(draw):
    priorities = draw(
        st.lists(
            st.integers(min_value=0, max_value=10),
            min_size=1,
            max_size=2,
            unique=True,
        )
    )
    slices = tuple(
        SliceSpec(f"prop_s{i}", 700 + i, priority)
        for i, priority in enumerate(priorities)
    )
    faults = []
    if draw(st.booleans()):
        at = draw(st.integers(min_value=0, max_value=40))
        node = draw(st.integers(min_value=0, max_value=3))
        faults.append(f"fleet:node_kill@t={at},node={node}")
    return FleetSpec(
        nodes=4,
        group_size=4,
        slices=slices,
        duration=float(draw(st.integers(min_value=1, max_value=4))),
        stagger=float(draw(st.integers(min_value=2, max_value=10))),
        drain=1.0,
        seed=draw(st.integers(min_value=0, max_value=100)),
        faults=tuple(faults),
        preemption=draw(st.booleans()),
        retry_preempted=draw(st.integers(min_value=0, max_value=1)),
    )


@given(spec=fleet_specs())
@settings(max_examples=12, deadline=None)
def test_any_fleet_run_finishes_and_leaks_nothing(spec):
    run = GroupRun(spec, 0)
    run.execute()
    report = run.report()
    assert report["finished"], "an experiment outlived the group deadline"
    outcomes = [r["outcome"] for r in report["experiments"]]
    assert "timeout" not in outcomes and "pending" not in outcomes
    assert report["clean"], "a node leaked lock/isolation/route state"
    for node in run.group.nodes:
        assert node_clean(node), f"{node.name} dirty after the run"
    # Death only ever comes from the injected fault (which may also
    # land after the last experiment finished and the sim went idle).
    assert len(report["dead_nodes"]) <= (1 if spec.faults else 0)
