"""The ``repro fleet`` subcommand, driven in-process."""

import json

from repro.__main__ import main


def run_fleet(capsys, *extra):
    argv = [
        "fleet", "--nodes", "4", "--group-size", "4",
        "--duration", "1", "--stagger", "6", "-j", "1", "--no-cache",
        *extra,
    ]
    code = main(argv)
    return code, capsys.readouterr().out


def test_fleet_runs_and_reports(capsys, tmp_path):
    jsonl = tmp_path / "fleet.jsonl"
    om = tmp_path / "fleet.om"
    code, out = run_fleet(
        capsys, "--jsonl", str(jsonl), "--openmetrics", str(om)
    )
    assert code == 0
    assert "ok   g0000" in out
    assert "completed=4" in out
    assert "campaign: digest=" in out
    (line,) = jsonl.read_text().splitlines()
    report = json.loads(line)
    assert report["clean"] and report["finished"]
    assert report["digest"]
    text = om.read_text()
    assert "repro_fleet_lease_starved_total" in text
    assert "repro_fleet_fairness_jain" in text


def test_fleet_check_verifies_determinism(capsys):
    code, out = run_fleet(capsys, "--check")
    assert code == 0
    assert "NON-DETERMINISTIC" not in out


def test_fleet_rejects_bad_spec(capsys):
    assert main(["fleet", "--nodes", "0"]) == 2
    assert main(["fleet", "--nodes", "4", "--fault", "fleet:reboot@t=1"]) == 2


def test_fleet_chaos_kill_reports_dead_nodes(capsys):
    code, out = run_fleet(capsys, "--fault", "fleet:node_kill@t=12,node=0")
    assert code == 0
    assert "dead=1" in out
