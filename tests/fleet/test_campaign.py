"""Group runs end-to-end: clean teardown, determinism, chaos kills."""

from repro.fleet.campaign import GroupRun, node_clean, run_group
from repro.fleet.spec import FleetSpec, SliceSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs import render_openmetrics

QUICK = dict(nodes=4, group_size=4, duration=1.0, stagger=6.0, drain=1.0)


def test_small_group_completes_clean():
    metrics = MetricsRegistry()
    report = run_group(FleetSpec(**QUICK), 0, metrics=metrics)
    assert report["finished"] and report["clean"]
    assert report["dead_nodes"] == []
    # 2 pairs x 2 default slices.
    assert len(report["experiments"]) == 4
    assert all(r["outcome"] == "completed" for r in report["experiments"])
    for record in report["experiments"]:
        assert record["summary"]["packets_received"] > 0
    assert metrics.counter("fleet.experiment.completed").value == 4
    assert metrics.counter("fleet.lease.grants").value >= 4


def test_preemption_shows_up_in_fairness_and_retries_succeed():
    # stagger=6 lands the gold slice inside best's data call window.
    report = run_group(FleetSpec(**QUICK), 0)
    best = report["fairness"]["slices"]["fleet_best"]
    assert best["preemptions"] >= 1
    # The preempted attempts retried and completed on attempt 2.
    retried = [r for r in report["experiments"] if r["attempts"] > 1]
    assert retried
    assert all(r["outcome"] == "completed" for r in retried)


def test_group_digest_is_deterministic():
    spec = FleetSpec(**QUICK)
    assert run_group(spec, 0)["digest"] == run_group(spec, 0)["digest"]


def test_groups_diverge_by_index_and_seed():
    spec = FleetSpec(nodes=8, group_size=4, duration=1.0, stagger=6.0, drain=1.0)
    assert run_group(spec, 0)["digest"] != run_group(spec, 1)["digest"]
    reseeded = FleetSpec(
        nodes=8, group_size=4, duration=1.0, stagger=6.0, drain=1.0, seed=99
    )
    assert run_group(spec, 0)["digest"] != run_group(reseeded, 0)["digest"]


def test_node_kill_mid_lease_is_clean_and_never_starves():
    spec = FleetSpec(faults=("fleet:node_kill@t=12,node=0",), **QUICK)
    run = GroupRun(spec, 0)
    run.execute()
    report = run.report()
    # The killed node's lock/isolation were cleaned by the went_down
    # path, every experiment resolved (no timeout = no starvation).
    assert report["finished"] and report["clean"]
    assert report["dead_nodes"] == ["fleet0000-n00.onelab.eu"]
    outcomes = {r["experiment"]: r["outcome"] for r in report["experiments"]}
    assert "timeout" not in outcomes.values()
    killed = [r for r in report["experiments"] if r["node"].endswith("n00.onelab.eu")]
    assert killed
    assert all(r["outcome"] in ("killed", "unleased") for r in killed)
    for node in run.group.nodes:
        assert node_clean(node)


def test_preemption_mid_datacall_releases_isolation_cleanly():
    # Single pair, no retry: the best slice is preempted mid-call and
    # must leave the node with no lock, no netfilter, no ppp0.
    spec = FleetSpec(
        nodes=2,
        group_size=2,
        duration=30.0,  # long call: gold arrives mid-flow
        stagger=12.0,
        drain=1.0,
        retry_preempted=0,
    )
    run = GroupRun(spec, 0)
    run.execute()
    report = run.report()
    assert report["finished"] and report["clean"]
    outcomes = {r["slice"]: r["outcome"] for r in report["experiments"]}
    assert outcomes["fleet_best"] == "preempted"
    assert outcomes["fleet_gold"] == "completed"
    for node in run.group.nodes:
        assert node_clean(node)


def test_cbr_kind_and_custom_slices():
    spec = FleetSpec(
        nodes=2,
        group_size=2,
        kind="cbr",
        duration=1.0,
        stagger=2.0,
        drain=1.0,
        slices=(SliceSpec("solo", 700),),
    )
    report = run_group(spec, 0)
    assert report["finished"] and report["clean"]
    (record,) = report["experiments"]
    assert record["outcome"] == "completed"
    assert record["summary"]["bitrate_kbps"] > 0


def test_starvation_and_fairness_metrics_reach_openmetrics():
    metrics = MetricsRegistry()
    run_group(FleetSpec(**QUICK), 0, metrics=metrics)
    text = render_openmetrics(metrics)
    assert "repro_fleet_lease_starved_total" in text
    assert "repro_fleet_fairness_jain" in text
    assert "repro_fleet_lease_wait_seconds" in text
