"""Phase-tree reconstruction, critical path, retry/fault attribution."""

from repro import OneLabScenario
from repro.obs import (
    KIND_ERROR,
    KIND_EVENT,
    KIND_SPAN_END,
    KIND_SPAN_START,
    Observability,
    Timeline,
)
from repro.obs.timeline import FAULT_EVENT, RETRY_EVENT

_SEQ = iter(range(1, 10000))


def _start(t, name, span, parent=None):
    return {"seq": next(_SEQ), "t": t, "kind": KIND_SPAN_START, "name": name,
            "span": span, "parent": parent}


def _end(t, name, span, status="ok"):
    return {"seq": next(_SEQ), "t": t, "kind": KIND_SPAN_END, "name": name,
            "span": span, "status": status}


def _event(t, name, kind=KIND_EVENT):
    return {"seq": next(_SEQ), "t": t, "kind": kind, "name": name}


class TestReconstruction:
    def test_temporal_nesting_builds_the_tree(self):
        timeline = Timeline.from_events([
            _start(0.0, "connect", 1),
            _start(1.0, "register", 2),
            _end(4.0, "register", 2),
            _start(4.0, "dial", 3),
            _end(6.0, "dial", 3),
            _end(6.5, "connect", 1),
        ])
        (root,) = timeline.roots
        assert root.name == "connect"
        assert [child.name for child in root.children] == ["register", "dial"]
        assert root.duration == 6.5
        assert root.children[0].duration == 3.0
        assert root.self_time == 6.5 - 3.0 - 2.0

    def test_explicit_parent_beats_the_open_stack(self):
        timeline = Timeline.from_events([
            _start(0.0, "outer", 1),
            _start(1.0, "sibling", 2),
            _start(2.0, "adopted", 3, parent=1),
            _end(3.0, "adopted", 3),
            _end(4.0, "sibling", 2),
            _end(5.0, "outer", 1),
        ])
        (root,) = timeline.roots
        assert {child.name for child in root.children} == {"sibling", "adopted"}
        (sibling,) = [c for c in root.children if c.name == "sibling"]
        assert sibling.children == []

    def test_end_without_start_is_tolerated(self):
        # A truncated ring (flight recorder) can drop the start event.
        timeline = Timeline.from_events([
            _end(2.0, "lost", 9),
            _start(3.0, "kept", 10),
            _end(4.0, "kept", 10),
        ])
        assert [root.name for root in timeline.roots] == ["kept"]
        assert timeline.events_seen == 3

    def test_open_span_has_no_duration(self):
        timeline = Timeline.from_events([_start(1.0, "hung", 1)])
        (root,) = timeline.roots
        assert root.duration is None
        assert root.self_time is None

    def test_phase_totals_aggregate_instances(self):
        timeline = Timeline.from_events([
            _start(0.0, "nego", 1), _end(1.0, "nego", 1),
            _start(2.0, "nego", 2), _end(5.0, "nego", 2),
        ])
        assert timeline.phase_totals() == {"nego": (2, 4.0)}
        assert len(timeline.find("nego")) == 2


class TestAttribution:
    def test_retries_faults_errors_charge_the_innermost_open_span(self):
        timeline = Timeline.from_events([
            _start(0.0, "connect", 1),
            _start(1.0, "dial", 2),
            _event(1.5, RETRY_EVENT),
            _event(1.6, FAULT_EVENT),
            _event(1.7, "dial.failed", kind=KIND_ERROR),
            _end(2.0, "dial", 2, status="error"),
            _event(2.5, RETRY_EVENT),
            _end(3.0, "connect", 1),
        ])
        (connect,) = timeline.roots
        (dial,) = connect.children
        assert (dial.retries, dial.faults, dial.errors) == (1, 1, 1)
        assert connect.retries == 1  # fired after dial closed
        assert timeline.attribution() == {
            "connect": {"retries": 1, "faults": 0, "errors": 0},
            "dial": {"retries": 1, "faults": 1, "errors": 1},
        }

    def test_events_outside_any_span_are_dropped(self):
        timeline = Timeline.from_events([_event(0.5, RETRY_EVENT)])
        assert timeline.roots == []
        assert timeline.events_seen == 1


class TestCriticalPath:
    def _tree(self):
        return Timeline.from_events([
            _start(0.0, "root", 1),
            _start(0.0, "short", 2), _end(1.0, "short", 2),
            _start(1.0, "long", 3),
            _start(1.0, "inner", 4), _end(4.5, "inner", 4),
            _end(5.0, "long", 3),
            _end(5.0, "root", 1),
        ])

    def test_follows_the_longest_child_chain(self):
        path = self._tree().critical_path()
        assert [node.name for node in path] == ["root", "long", "inner"]

    def test_ties_break_toward_the_earlier_span(self):
        timeline = Timeline.from_events([
            _start(0.0, "root", 1),
            _start(0.0, "first", 2), _end(2.0, "first", 2),
            _start(2.0, "second", 3), _end(4.0, "second", 3),
            _end(4.0, "root", 1),
        ])
        assert [n.name for n in timeline.critical_path()] == ["root", "first"]

    def test_empty_and_open_only_timelines_have_no_path(self):
        assert Timeline.from_events([]).critical_path() == []
        assert Timeline.from_events([_start(0.0, "open", 1)]).critical_path() == []

    def test_records_flag_the_critical_chain(self):
        records = self._tree().records()
        critical = [r["phase"] for r in records if r["critical"]]
        assert critical == ["root", "long", "inner"]
        for record in records:
            assert {"record", "phase", "start", "duration", "status",
                    "depth", "retries", "faults", "errors"} <= set(record)

    def test_report_lines_name_the_path(self):
        lines = self._tree().report_lines()
        assert any(line.startswith("critical path: root > long > inner")
                   for line in lines)


class TestRealRun:
    def test_demo_bring_up_reconstructs_the_paper_phases(self):
        scenario = OneLabScenario(seed=3)
        obs = Observability(scenario.sim)
        obs.bind_node(scenario.napoli)
        events = obs.record_events()
        umts = scenario.umts_command()
        assert umts.start_blocking().ok
        umts.stop_blocking()
        timeline = obs.timeline(events)
        totals = timeline.phase_totals()
        for phase in ("vsys.request", "umts.cmd", "umts.connect",
                      "dial.register", "dial.dial", "ppp.lcp.negotiation",
                      "ppp.ipcp.negotiation"):
            assert phase in totals, f"missing phase {phase}"
        path = [node.name for node in timeline.critical_path()]
        assert path[:3] == ["vsys.request", "umts.cmd", "umts.connect"]
        # TraceEvent objects and their to_dict() forms build equal trees.
        from_dicts = Timeline.from_events([e.to_dict() for e in events.events])
        assert from_dicts.phase_totals() == totals
