"""Unit tests for the flight recorder: bounded ring, dump-on-error."""

import pytest

from repro.obs import FlightRecorder, TraceBus
from repro.sim.engine import Simulator


def make_recorder(capacity=4):
    sim = Simulator()
    bus = TraceBus(sim)
    recorder = bus.attach(FlightRecorder(capacity=capacity))
    return bus, recorder


def test_ring_is_bounded():
    bus, recorder = make_recorder(capacity=4)
    for i in range(10):
        bus.emit(f"event-{i}")
    assert len(recorder) == 4
    assert [e.name for e in recorder.recent()] == [
        "event-6", "event-7", "event-8", "event-9",
    ]
    assert recorder.dumps == []
    assert recorder.last_dump() is None


def test_error_freezes_a_dump():
    bus, recorder = make_recorder(capacity=4)
    for i in range(6):
        bus.emit(f"event-{i}")
    bus.error("stack.died", reason="carrier lost")
    assert len(recorder.dumps) == 1
    dump = recorder.last_dump()
    # The dump holds the last `capacity` events, trigger included,
    # oldest first.
    assert [e.name for e in dump] == ["event-3", "event-4", "event-5", "stack.died"]
    # The ring keeps rolling after the dump; the frozen copy does not.
    bus.emit("afterwards")
    assert [e.name for e in dump][-1] == "stack.died"


def test_each_error_dumps_again():
    bus, recorder = make_recorder()
    bus.error("first")
    bus.emit("between")
    bus.error("second")
    assert len(recorder.dumps) == 2
    assert recorder.last_dump()[-1].name == "second"


def test_on_dump_callback_fires():
    seen = []
    sim = Simulator()
    bus = TraceBus(sim)
    bus.attach(FlightRecorder(capacity=8, on_dump=seen.append))
    bus.emit("context")
    bus.error("boom")
    assert len(seen) == 1
    assert [e.name for e in seen[0]] == ["context", "boom"]


def test_dump_lines_formatting():
    bus, recorder = make_recorder()
    assert recorder.dump_lines() == ["flight recorder: no dump captured"]
    bus.emit("context")
    bus.error("boom")
    lines = recorder.dump_lines()
    assert lines[0] == "flight recorder dump: last 2 events (trigger: boom)"
    assert "context" in lines[1]
    assert "boom" in lines[2]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)
