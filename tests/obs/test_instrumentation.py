"""Integration tests: the instrumented stack under the Observability facade.

Covers the PR's acceptance bar: spans for every dial-up phase and vsys
command, a flight-recorder dump on a forced dial failure, and — most
importantly — that attaching the instrumentation does not change what
the scenario does (sink-attached and bare runs agree event for event).
"""

from repro import OneLabScenario
from repro.obs import KIND_SPAN_END, KIND_SPAN_START, KIND_TRANSITION, Observability


def run_demo(scenario):
    """The demo walk-through; returns the ``umts start`` result."""
    umts = scenario.umts_command()
    result = umts.start_blocking()
    if result.ok:
        umts.add_destination_blocking(scenario.inria_addr)
        # One marked packet down the UMTS path, so the netfilter
        # counters have something to count.
        scenario.napoli_sliver.socket().sendto(
            "probe", 10, scenario.inria_addr, 7777
        )
        scenario.sim.run(until=scenario.sim.now + 2.0)
        umts.status_blocking()
        umts.stop_blocking()
    return result


def run_instrumented(seed=3, fail=False):
    scenario = OneLabScenario(seed=seed)
    obs = Observability(scenario.sim)
    obs.bind_node(scenario.napoli)
    events = obs.record_events()
    if fail:
        def refuse(modem, apn=None):
            raise RuntimeError("no radio bearer available")

        scenario.napoli.modem.network.open_data_call = refuse
    result = run_demo(scenario)
    return scenario, obs, events.events, result


def span_names(events, kind=KIND_SPAN_START):
    return [e.name for e in events if e.kind == kind]


def test_all_dial_phases_emit_spans():
    _, _, events, result = run_instrumented()
    assert result.ok
    starts = span_names(events)
    for phase in (
        "vsys.request",
        "umts.cmd",
        "umts.connect",
        "dial.register",
        "dial.dial",
        "ppp.lcp.negotiation",
        "ppp.ipcp.negotiation",
        "umts.disconnect",
    ):
        assert phase in starts, f"missing span for phase {phase}"
    # Every opened span is closed.
    assert sorted(starts) == sorted(span_names(events, KIND_SPAN_END))
    assert "dial.addr_assigned" in [e.name for e in events]


def test_connection_state_transitions_are_traced():
    _, _, events, _ = run_instrumented()
    transitions = [
        (e.fields["old"], e.fields["new"])
        for e in events
        if e.kind == KIND_TRANSITION and e.name == "umts.connection.state"
    ]
    assert ("down", "registering") in transitions
    assert ("registering", "dialing") in transitions
    assert ("negotiating", "up") in transitions


def test_metrics_cover_the_demo_run():
    _, obs, _, _ = run_instrumented()
    metrics = obs.metrics
    assert metrics.counter("vsys.requests").value == 4
    assert metrics.counter("umts.connects").value == 1
    assert metrics.histogram("vsys.latency_seconds").count == 4
    assert metrics.counter("engine.events_dispatched").value > 0
    assert metrics.counter("netfilter.marked").value > 0


def test_forced_dial_failure_dumps_the_flight_recorder():
    _, obs, events, result = run_instrumented(fail=True)
    assert not result.ok
    assert obs.flight.dumps, "no flight-recorder dump on dial failure"
    dump = obs.flight.last_dump()
    assert dump[-1].name == "dial.dial.failed"
    failed_ends = [
        e for e in events if e.kind == KIND_SPAN_END and e.status == "error"
    ]
    assert any(e.name == "dial.dial" for e in failed_ends)


def test_attached_sink_does_not_change_scenario_results():
    # Determinism: the instrumented run must reproduce the bare run
    # exactly — same output lines, same simulated clock at every step.
    bare = OneLabScenario(seed=3)
    bare_result = run_demo(bare)

    instrumented, _, events, inst_result = run_instrumented(seed=3)
    assert inst_result.lines == bare_result.lines
    assert inst_result.code == bare_result.code
    assert instrumented.sim.now == bare.sim.now
    assert events, "the instrumented run should have recorded events"


def test_no_sink_leaves_no_footprint():
    # Hooks are present but cold: nothing attached, identical results.
    bare = OneLabScenario(seed=7)
    bare_result = run_demo(bare)

    cold = OneLabScenario(seed=7)
    assert cold.sim.trace is None
    assert cold.sim.metrics is None
    cold_result = run_demo(cold)
    assert cold_result.lines == bare_result.lines
    assert cold.sim.now == bare.sim.now
