"""Unit tests for the TraceBus: events, spans, zero-cost behaviour."""

import io
import json

from repro.obs import (
    KIND_ERROR,
    KIND_EVENT,
    KIND_SPAN_END,
    KIND_SPAN_START,
    NULL_SPAN,
    JsonlSink,
    ListSink,
    TraceBus,
    format_event,
)
from repro.sim.engine import Simulator


def make_bus():
    sim = Simulator()
    bus = TraceBus(sim)
    sink = bus.attach(ListSink())
    return sim, bus, sink


def test_events_are_stamped_with_sim_time():
    sim, bus, sink = make_bus()
    sim.schedule(1.5, bus.emit, "first")
    sim.schedule(4.0, bus.emit, "second")
    sim.run()
    assert [e.name for e in sink.events] == ["first", "second"]
    assert [e.sim_time for e in sink.events] == [1.5, 4.0]


def test_trace_ordering_matches_sim_time():
    # Events scheduled out of order arrive in sim-time order, with
    # strictly increasing sequence numbers.
    sim, bus, sink = make_bus()
    for t in (3.0, 1.0, 2.0, 1.0):
        sim.schedule(t, bus.emit, f"at-{t}")
    sim.run()
    times = [e.sim_time for e in sink.events]
    assert times == sorted(times)
    seqs = [e.seq for e in sink.events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_emit_without_sink_is_a_noop():
    sim = Simulator()
    bus = TraceBus(sim)
    assert not bus.enabled
    assert bus.emit("nobody-listening") is None
    assert bus.span("nobody-listening") is NULL_SPAN
    # The shared null span swallows everything silently.
    span = bus.span("x")
    span.annotate(key="value")
    span.fail("ignored")
    with bus.span("y"):
        pass


def test_sequence_not_consumed_while_disabled():
    sim, bus, sink = make_bus()
    bus.emit("a")
    bus.detach(sink)
    bus.emit("dropped")
    bus.attach(sink)
    bus.emit("b")
    assert [e.seq for e in sink.events] == [0, 1]


def test_span_start_end_pair_share_span_id():
    sim, bus, sink = make_bus()

    def body():
        span = bus.span("phase", attempt=1)
        yield 2.5
        span.end(code=0)

    from repro.sim.process import spawn

    spawn(sim, body())
    sim.run()
    start, end = sink.events
    assert start.kind == KIND_SPAN_START
    assert end.kind == KIND_SPAN_END
    assert start.span_id == end.span_id
    assert start.fields == {"attempt": 1}
    assert end.status == "ok"
    assert end.fields["duration"] == 2.5
    assert end.fields["code"] == 0
    assert end.fields["wall"] >= 0.0


def test_span_end_is_idempotent():
    sim, bus, sink = make_bus()
    span = bus.span("once")
    span.end()
    span.end()
    span.fail("too late")
    assert [e.kind for e in sink.events] == [KIND_SPAN_START, KIND_SPAN_END]


def test_span_fail_and_error_kinds():
    sim, bus, sink = make_bus()
    span = bus.span("doomed")
    span.fail("it broke")
    bus.error("stack.crashed", detail="boom")
    end, error = sink.events[1:]
    assert end.status == "error"
    assert end.fields["reason"] == "it broke"
    assert error.kind == KIND_ERROR
    assert error.fields["detail"] == "boom"


def test_span_context_manager_marks_exceptions():
    sim, bus, sink = make_bus()
    try:
        with bus.span("guarded"):
            raise RuntimeError("inner failure")
    except RuntimeError:
        pass
    end = sink.events[-1]
    assert end.status == "error"
    assert "inner failure" in end.fields["reason"]


def test_child_span_records_parent():
    sim, bus, sink = make_bus()
    parent = bus.span("outer")
    child = bus.span("inner", parent=parent)
    child.end()
    parent.end()
    child_start = sink.events[1]
    assert child_start.parent_id == parent.span_id


def test_annotate_attaches_to_span():
    sim, bus, sink = make_bus()
    span = bus.span("phase")
    span.annotate(progress="half")
    event = sink.events[-1]
    assert event.kind == KIND_EVENT
    assert event.span_id == span.span_id
    assert event.fields == {"progress": "half"}


def test_jsonl_sink_round_trips_events():
    sim = Simulator()
    bus = TraceBus(sim)
    buffer = io.StringIO()
    sink = bus.attach(JsonlSink(buffer))
    bus.emit("hello", answer=42)
    bus.error("goodbye")
    sink.close()
    lines = buffer.getvalue().splitlines()
    assert sink.written == 2
    first, second = (json.loads(line) for line in lines)
    assert first["name"] == "hello"
    assert first["fields"] == {"answer": 42}
    assert second["kind"] == KIND_ERROR
    assert second["status"] == "error"


def test_format_event_is_readable():
    sim, bus, sink = make_bus()
    bus.emit("dial.register", kind=KIND_SPAN_START, attempt=3)
    line = format_event(sink.events[0])
    assert "span_start" in line
    assert "dial.register" in line
    assert "attempt=3" in line
