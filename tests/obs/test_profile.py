"""Sim-time profiling: exact decomposition, zero footprint when off."""

import pytest

from repro import OneLabScenario
from repro.obs import Observability, SimProfiler
from repro.sim.engine import Simulator
from repro.sim.process import spawn


def _ticker(order, label, delays):
    def body():
        for delay in delays:
            order.append((label, delay))
            yield delay
    return body


def _run_tickers(profiler):
    sim = Simulator()
    sim.profile = profiler
    order = []
    spawn(sim, _ticker(order, "a", [1.0, 2.0, 1.5])(), name="proc-a")
    spawn(sim, _ticker(order, "b", [0.5, 4.0])(), name="proc-b")
    sim.run()
    return sim, order


class TestEngineContract:
    def test_profiler_does_not_change_dispatch_order(self):
        _, with_profile = _run_tickers(SimProfiler())
        _, without = _run_tickers(None)
        assert with_profile == without

    def test_sim_time_decomposes_the_clock_exactly(self):
        profiler = SimProfiler()
        sim, _ = _run_tickers(profiler)
        assert profiler.total_sim_time == sim.now
        assert profiler.total_sim_time == sum(
            entry.sim_time for entry in profiler.subsystems.values()
        )

    def test_per_process_attribution(self):
        profiler = SimProfiler()
        _run_tickers(profiler)
        assert set(profiler.processes) == {"proc-a", "proc-b"}
        # proc-b's last resume is at t=4.5 having waited through 4.0s;
        # each advance is charged to the process being resumed.
        assert profiler.processes["proc-b"].events == 3
        assert profiler.processes["proc-a"].events == 4


class TestSnapshot:
    def test_snapshot_is_sorted_and_wall_free_by_default(self):
        profiler = SimProfiler()
        _run_tickers(profiler)
        snapshot = profiler.snapshot()
        assert list(snapshot["subsystems"]) == sorted(snapshot["subsystems"])
        assert list(snapshot["processes"]) == ["proc-a", "proc-b"]
        for table in (snapshot["subsystems"], snapshot["processes"]):
            for row in table.values():
                assert set(row) == {"events", "sim_time"}

    def test_include_volatile_adds_wall_time(self):
        profiler = SimProfiler()
        _run_tickers(profiler)
        snapshot = profiler.snapshot(include_volatile=True)
        for row in snapshot["subsystems"].values():
            assert "wall_time" in row

    def test_identical_runs_snapshot_identically(self):
        a, b = SimProfiler(), SimProfiler()
        _run_tickers(a)
        _run_tickers(b)
        assert a.snapshot() == b.snapshot()

    def test_report_lines_lead_with_the_totals(self):
        profiler = SimProfiler()
        _run_tickers(profiler)
        lines = profiler.report_lines()
        assert lines[0].startswith("profiled ")
        assert any("by subsystem" in line for line in lines)
        assert any("proc-a" in line for line in lines)


class TestScenarioProfile:
    def test_demo_bring_up_attributes_to_real_subsystems(self):
        scenario = OneLabScenario(seed=3)
        obs = Observability(scenario.sim)
        profiler = obs.enable_profiling()
        assert obs.enable_profiling() is profiler  # idempotent
        umts = scenario.umts_command()
        assert umts.start_blocking().ok
        umts.stop_blocking()
        assert profiler.total_events == int(
            obs.metrics.counter("engine.events_dispatched").value
        )
        assert profiler.total_sim_time == pytest.approx(scenario.sim.now)
        assert "sim.process" in profiler.subsystems
        assert any(name.startswith("modem") for name in profiler.processes)

    def test_detach_goes_fully_cold(self):
        scenario = OneLabScenario(seed=3)
        obs = Observability(scenario.sim)
        obs.enable_profiling()
        obs.detach()
        assert scenario.sim.trace is None
        assert scenario.sim.metrics is None
        assert scenario.sim.profile is None
