"""Unit tests for the metrics registry: counters, gauges, histograms."""

import json
import math

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsMergeError, MetricsRegistry


def test_counter_increments():
    c = Counter("hits")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert c.as_dict() == {"type": "counter", "value": 5}


def test_counter_rejects_negative_amounts():
    c = Counter("hits")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_tracks_extremes():
    g = Gauge("depth")
    g.set(3.0)
    g.set(7.0)
    g.set(1.0)
    assert g.value == 1.0
    assert g.max_value == 7.0
    assert g.min_value == 1.0
    assert g.updates == 3
    g.inc(2.0)
    g.dec(0.5)
    assert g.value == 2.5


def test_gauge_export_before_first_set():
    snapshot = Gauge("idle").as_dict()
    assert snapshot["max"] is None
    assert snapshot["min"] is None
    assert snapshot["updates"] == 0


def test_histogram_bucket_edges_are_inclusive():
    # A sample lands in the first bucket whose (inclusive) upper edge
    # is >= the value; past the last edge it is overflow.
    h = Histogram("latency", buckets=(0.1, 1.0, 10.0))
    h.observe(0.1)   # exactly on the first edge -> first bucket
    h.observe(0.05)  # below the first edge -> first bucket
    h.observe(0.2)   # between edges -> second bucket
    h.observe(1.0)   # exactly on the second edge -> second bucket
    h.observe(10.0)  # exactly on the last edge -> last bucket
    h.observe(10.1)  # past the last edge -> overflow
    assert h.counts == [2, 2, 1]
    assert h.overflow == 1
    assert h.count == 6
    assert h.max_value == 10.1
    assert h.min_value == 0.05
    assert h.mean == pytest.approx((0.1 + 0.05 + 0.2 + 1.0 + 10.0 + 10.1) / 6)


def test_histogram_rejects_bad_edges():
    with pytest.raises(ValueError):
        Histogram("empty", buckets=())
    with pytest.raises(ValueError):
        Histogram("unsorted", buckets=(1.0, 0.5))


def test_histogram_mean_of_empty_is_nan():
    assert math.isnan(Histogram("empty-ish", buckets=(1.0,)).mean)


def test_histogram_export_keys_buckets_by_edge():
    h = Histogram("h", buckets=(0.5, 2.0))
    h.observe(0.4)
    snapshot = h.as_dict()
    assert snapshot["buckets"] == {"le_0.5": 1, "le_2": 0}
    assert snapshot["overflow"] == 0


def test_registry_get_or_create_is_stable():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")
    assert registry.names() == ["a", "b", "c"]
    assert "a" in registry
    assert len(registry) == 3


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")


def test_registry_export_round_trips_through_json():
    registry = MetricsRegistry()
    registry.counter("reqs").inc(2)
    registry.gauge("depth").set(4.0)
    registry.histogram("lat", buckets=(1.0,)).observe(0.5)
    decoded = json.loads(registry.to_json())
    assert decoded["reqs"]["value"] == 2
    assert decoded["depth"]["max"] == 4.0
    assert decoded["lat"]["count"] == 1
    assert len(registry.summary_lines()) == 3


class TestSnapshotMerge:
    """snapshot()/merge() power the campaign runner's per-worker fold."""

    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("jobs").inc(3)
        registry.gauge("depth").set(2.0)
        registry.gauge("depth").set(5.0)
        hist = registry.histogram("latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(7.0)
        return registry

    def test_snapshot_merge_round_trips_exactly(self):
        original = self._populated()
        restored = MetricsRegistry().merge(original.snapshot())
        assert restored.snapshot() == original.snapshot()
        assert restored.as_dict() == original.as_dict()

    def test_snapshot_survives_json(self):
        snap = self._populated().snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_merge_adds_without_double_counting(self):
        a, b = self._populated(), self._populated()
        merged = MetricsRegistry()
        merged.merge(a.snapshot())
        merged.merge(b.snapshot())
        assert merged.counter("jobs").value == 6
        hist = merged.histogram("latency")
        assert hist.count == 6
        assert hist.overflow == 2
        assert hist.total == a.histogram("latency").total * 2
        gauge = merged.gauge("depth")
        assert gauge.updates == 4
        assert gauge.max_value == 5.0
        assert gauge.min_value == 2.0

    def test_merge_is_disjoint_union_for_distinct_names(self):
        left = MetricsRegistry()
        left.counter("left.only").inc()
        right = MetricsRegistry()
        right.counter("right.only").inc(2)
        merged = MetricsRegistry().merge(left.snapshot()).merge(right.snapshot())
        assert merged.names() == ["left.only", "right.only"]
        assert merged.counter("right.only").value == 2

    def test_merge_ignores_untouched_gauge(self):
        src = MetricsRegistry()
        src.gauge("idle")  # created, never set
        merged = MetricsRegistry().merge(src.snapshot())
        assert merged.gauge("idle").updates == 0
        assert merged.snapshot() == src.snapshot()

    def test_merge_empty_snapshot_is_a_noop(self):
        registry = self._populated()
        before = registry.snapshot()
        registry.merge({})
        assert registry.snapshot() == before

    def test_merge_into_empty_registry_equals_the_donor(self):
        donor = self._populated()
        assert MetricsRegistry().merge(donor.snapshot()).snapshot() == donor.snapshot()

    def test_merge_rejects_histogram_edge_mismatch(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1.0, 5.0)).observe(1.5)
        with pytest.raises(MetricsMergeError, match="bucket mismatch"):
            b.merge(a.snapshot())

    def test_merge_rejects_unknown_type(self):
        with pytest.raises(MetricsMergeError, match="unknown type"):
            MetricsRegistry().merge({"x": {"type": "summary"}})

    def test_merge_error_is_a_value_error(self):
        # Callers that predate the typed error still catch it.
        assert issubclass(MetricsMergeError, ValueError)

    def test_gauge_merge_guards_none_extremes_both_ways(self):
        touched = MetricsRegistry()
        touched.gauge("depth").set(4.0)
        untouched = MetricsRegistry()
        untouched.gauge("depth")  # created, never set: extremes are None
        forward = MetricsRegistry().merge(touched.snapshot())
        forward.merge(untouched.snapshot())
        assert forward.gauge("depth").max_value == 4.0
        assert forward.gauge("depth").min_value == 4.0
        backward = MetricsRegistry().merge(untouched.snapshot())
        backward.merge(touched.snapshot())
        assert backward.gauge("depth").max_value == 4.0
        assert backward.gauge("depth").updates == 1

    def test_histogram_merge_guards_none_extremes(self):
        empty = MetricsRegistry()
        empty.histogram("lat", buckets=(1.0,))
        full = MetricsRegistry()
        full.histogram("lat", buckets=(1.0,)).observe(0.5)
        merged = MetricsRegistry().merge(full.snapshot()).merge(empty.snapshot())
        assert merged.histogram("lat").max_value == 0.5
        assert merged.histogram("lat").count == 1

    def test_merge_rejects_kind_mismatch(self):
        registry = MetricsRegistry()
        registry.counter("m")
        donor = MetricsRegistry()
        donor.gauge("m").set(1.0)
        with pytest.raises(TypeError):
            registry.merge(donor.snapshot())
