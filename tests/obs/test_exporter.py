"""OpenMetrics export: deterministic bytes, volatile exclusion."""

import math

import pytest

from repro.obs import MetricsRegistry, render_openmetrics, write_openmetrics
from repro.obs.exporter import format_value, is_volatile, openmetrics_name


def _populated() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("umts.cmd.start").inc(3)
    registry.gauge("engine.queue_depth").set(2.0)
    registry.gauge("engine.queue_depth").set(7.0)
    hist = registry.histogram("vsys.latency", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(9.0)
    registry.histogram("engine.dispatch_wall_seconds", buckets=(1.0,)).observe(0.5)
    return registry


def test_exposition_shape_and_content():
    text = render_openmetrics(_populated())
    assert text == (
        "# TYPE repro_engine_queue_depth gauge\n"
        "repro_engine_queue_depth 7\n"
        "repro_engine_queue_depth_max 7\n"
        "repro_engine_queue_depth_min 2\n"
        "# TYPE repro_umts_cmd_start counter\n"
        "repro_umts_cmd_start_total 3\n"
        "# TYPE repro_vsys_latency histogram\n"
        'repro_vsys_latency_bucket{le="0.1"} 1\n'
        'repro_vsys_latency_bucket{le="1"} 2\n'
        'repro_vsys_latency_bucket{le="+Inf"} 3\n'
        "repro_vsys_latency_count 3\n"
        "repro_vsys_latency_sum 9.55\n"
        "# EOF\n"
    )


def test_wall_clock_families_are_dropped_by_default():
    registry = _populated()
    assert "dispatch_wall" not in render_openmetrics(registry)
    assert "repro_engine_dispatch_wall_seconds" in render_openmetrics(
        registry, include_volatile=True
    )


def test_snapshot_dict_renders_identically_to_the_registry():
    registry = _populated()
    assert render_openmetrics(registry.snapshot()) == render_openmetrics(registry)


def test_double_render_is_byte_identical():
    registry = _populated()
    assert render_openmetrics(registry) == render_openmetrics(registry)


def test_merged_registries_render_like_one_big_registry():
    # The campaign path: per-worker snapshots folded, then exported.
    merged = MetricsRegistry()
    merged.merge(_populated().snapshot())
    merged.merge(_populated().snapshot())
    direct = MetricsRegistry()
    direct.counter("umts.cmd.start").inc(6)
    direct.gauge("engine.queue_depth").set(2.0)
    direct.gauge("engine.queue_depth").set(7.0)
    hist = direct.histogram("vsys.latency", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 9.0) * 2:
        hist.observe(value)
    text = render_openmetrics(merged)
    assert "repro_umts_cmd_start_total 6" in text
    assert 'repro_vsys_latency_bucket{le="+Inf"} 6' in text
    assert text == render_openmetrics(direct)


def test_unknown_family_type_is_an_error():
    with pytest.raises(ValueError, match="unknown type"):
        render_openmetrics({"x": {"type": "summary"}})


def test_empty_registry_is_just_eof():
    assert render_openmetrics(MetricsRegistry()) == "# EOF\n"


def test_write_openmetrics_returns_the_byte_count(tmp_path):
    path = tmp_path / "metrics.om"
    written = write_openmetrics(_populated(), str(path))
    data = path.read_bytes()
    assert written == len(data)
    assert data.endswith(b"# EOF\n")


class TestNameMapping:
    def test_dots_become_underscores_with_namespace(self):
        assert openmetrics_name("umts.cmd.start") == "repro_umts_cmd_start"

    def test_hostile_characters_are_flattened(self):
        name = openmetrics_name("weird-name with spaces")
        assert name.startswith("repro_")
        assert " " not in name and "-" not in name

    def test_volatility_is_segment_aware(self):
        assert is_volatile("engine.dispatch_wall_seconds")
        assert is_volatile("vsys.rpc_wall_seconds")
        assert is_volatile("wall.clock")
        assert not is_volatile("netfilter.firewall_rules")


class TestFormatValue:
    def test_integers_and_integral_floats_have_no_point(self):
        assert format_value(3) == "3"
        assert format_value(3.0) == "3"

    def test_floats_round_trip(self):
        assert format_value(0.1) == "0.1"
        assert float(format_value(1 / 3)) == 1 / 3

    def test_specials(self):
        assert format_value(math.nan) == "NaN"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(True) == "1"
