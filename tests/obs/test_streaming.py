"""Streaming aggregators: parity with the buffered implementations.

The whole point of :mod:`repro.obs.streaming` is that swapping it in
under the analysis layer moves no golden digest — so these tests prove
*bit-for-bit* float equality against ``TimeSeries.window_aggregate``,
not approximate agreement.
"""

import math
import random
import statistics
from array import array

import pytest

from repro.obs.streaming import (
    QOS_WINDOW,
    WINDOW_MODES,
    P2Quantile,
    QuantileSketch,
    StreamingStats,
    StreamingWindows,
    stream_windowed,
)
from repro.sim.monitor import TimeSeries


def _series(seed: int, n: int = 400, max_dt: float = 0.07) -> TimeSeries:
    rng = random.Random(seed)
    series = TimeSeries("s")
    t = 0.0
    for _ in range(n):
        t += rng.uniform(0.0, max_dt)
        series.add(t, rng.uniform(-5.0, 50.0))
    return series


def _values_equal(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        if math.isnan(x) or math.isnan(y):
            assert math.isnan(x) and math.isnan(y)
        else:
            assert x == y  # exact: same left-to-right accumulation


BUFFERED_FUNCS = {
    "mean": lambda vs: sum(vs) / len(vs),
    "sum": sum,
    "count": lambda vs: float(len(vs)),
    "max": max,
    "min": min,
}


class TestStreamingWindows:
    @pytest.mark.parametrize("mode", WINDOW_MODES)
    def test_bitwise_parity_with_window_aggregate(self, mode):
        series = _series(seed=11)
        empty = 0.0 if mode in ("sum", "count") else math.nan
        buffered = series.window_aggregate(
            QOS_WINDOW, BUFFERED_FUNCS[mode], empty_value=empty
        )
        times, values = stream_windowed(
            series.as_pairs(), QOS_WINDOW, mode, empty_value=empty,
            end=series.times[-1] + QOS_WINDOW,
        )
        assert times == buffered.times
        _values_equal(values, buffered.values)

    def test_parity_with_explicit_start_and_end(self):
        series = _series(seed=7)
        start, end = 1.0, 12.5
        buffered = series.window_aggregate(
            0.5, BUFFERED_FUNCS["mean"], start=start, end=end
        )
        times, values = stream_windowed(
            series.as_pairs(), 0.5, "mean", start=start, end=end
        )
        assert times == buffered.times
        _values_equal(values, buffered.values)

    def test_sample_at_end_is_dropped_and_edge_overflow_clamps(self):
        agg = StreamingWindows(1.0, mode="count", start=0.0, end=3.0)
        agg.add(0.5, 1.0)
        agg.add(2.9999999, 1.0)  # float division may round to index 3
        agg.add(3.0, 1.0)        # exactly at end: dropped
        times, values = agg.finish()
        assert times == [0.0, 1.0, 2.0]
        assert values == [1.0, 0.0, 1.0]

    def test_gap_windows_get_the_empty_value(self):
        times, values = stream_windowed(
            [(0.1, 2.0), (2.1, 4.0)], 1.0, "mean", end=3.0
        )
        assert times == [0.0, 1.0, 2.0]
        assert values[0] == 2.0
        assert math.isnan(values[1])
        assert values[2] == 4.0

    def test_time_must_not_regress_across_windows(self):
        agg = StreamingWindows(1.0, mode="sum")
        agg.add(2.5, 1.0)
        with pytest.raises(ValueError, match="already closed"):
            agg.add(0.5, 1.0)

    def test_add_after_finish_raises(self):
        agg = StreamingWindows(1.0)
        agg.add(0.5, 1.0)
        agg.finish()
        with pytest.raises(ValueError, match="finished"):
            agg.add(1.5, 1.0)

    def test_finish_is_idempotent(self):
        agg = StreamingWindows(1.0, mode="sum", end=2.0)
        agg.add(0.5, 3.0)
        first = agg.finish()
        assert agg.finish() == first
        assert len(agg) == 2

    def test_rejects_bad_window_and_mode(self):
        with pytest.raises(ValueError):
            StreamingWindows(0.0)
        with pytest.raises(ValueError, match="unknown mode"):
            StreamingWindows(1.0, mode="median")

    def test_empty_stream_with_end_pads_everything(self):
        times, values = StreamingWindows(1.0, mode="count", end=2.5).finish()
        assert times == [0.0, 1.0, 2.0]
        assert values == [0.0, 0.0, 0.0]

    def test_empty_stream_without_end_is_empty(self):
        assert StreamingWindows(1.0).finish() == ([], [])


class TestStreamingStats:
    def test_matches_buffered_mean_exactly(self):
        rng = random.Random(5)
        samples = [rng.uniform(-3.0, 9.0) for _ in range(1000)]
        stats = StreamingStats()
        for value in samples:
            stats.observe(value)
        assert stats.count == 1000
        assert stats.total == sum(samples)
        assert stats.mean == sum(samples) / len(samples)
        assert stats.minimum == min(samples)
        assert stats.maximum == max(samples)
        assert stats.stdev == pytest.approx(statistics.pstdev(samples))

    def test_nan_samples_are_skipped(self):
        stats = StreamingStats()
        stats.observe(2.0)
        stats.observe(math.nan)
        stats.observe(4.0)
        assert stats.count == 2
        assert stats.mean == 3.0

    def test_empty_stats_export_nan(self):
        snapshot = StreamingStats().as_dict()
        assert snapshot["count"] == 0
        assert math.isnan(snapshot["mean"])
        assert math.isnan(snapshot["min"])


class TestBulkIngest:
    """``add_many``/``observe_many`` are bit-identical to the unit calls."""

    @pytest.mark.parametrize("mode", WINDOW_MODES)
    def test_add_many_matches_add_bitwise(self, mode):
        series = _series(seed=31)
        end = series.times[-1] + QOS_WINDOW
        one = StreamingWindows(QOS_WINDOW, mode=mode, end=end)
        for t, v in series.as_pairs():
            one.add(t, v)
        bulk = StreamingWindows(QOS_WINDOW, mode=mode, end=end)
        bulk.add_many(array("d", series.times), array("d", series.values))
        one_times, one_values = one.finish()
        bulk_times, bulk_values = bulk.finish()
        assert bulk_times == one_times
        _values_equal(bulk_values, one_values)

    def test_chunk_boundaries_do_not_matter(self):
        series = _series(seed=13)
        end = series.times[-1] + QOS_WINDOW
        whole = StreamingWindows(QOS_WINDOW, end=end)
        whole.add_many(series.times, series.values)
        chunked = StreamingWindows(QOS_WINDOW, end=end)
        for lo in range(0, len(series), 7):
            hi = lo + 7
            chunked.add_many(series.times[lo:hi], series.values[lo:hi])
        assert whole.finish()[0] == chunked.finish()[0]
        _values_equal(whole.finish()[1], chunked.finish()[1])

    def test_out_of_order_batch_fails_like_add_and_leaves_same_state(self):
        def build():
            agg = StreamingWindows(1.0, mode="sum", end=5.0)
            agg.add(2.5, 1.0)
            return agg

        bulk = build()
        with pytest.raises(ValueError, match="already closed"):
            bulk.add_many([3.1, 0.5], [1.0, 1.0])
        unit = build()
        unit.add(3.1, 1.0)
        with pytest.raises(ValueError, match="already closed"):
            unit.add(0.5, 1.0)
        # Both paths folded the in-order prefix and then refused; the
        # aggregators stay usable and agree from here on.
        bulk.add(4.5, 2.0)
        unit.add(4.5, 2.0)
        assert bulk.finish() == unit.finish()

    def test_add_many_after_finish_raises(self):
        agg = StreamingWindows(1.0)
        agg.finish()
        with pytest.raises(ValueError, match="finished"):
            agg.add_many([0.5], [1.0])

    def test_observe_many_matches_observe_bitwise(self):
        rng = random.Random(29)
        samples = [rng.uniform(-3.0, 9.0) for _ in range(1000)]
        samples[100] = math.nan  # skipped in both paths
        one = StreamingStats()
        for value in samples:
            one.observe(value)
        bulk = StreamingStats()
        bulk.observe_many(array("d", samples[:400]))
        bulk.observe_many(samples[400:])
        assert bulk.count == one.count
        assert bulk.total == one.total
        assert bulk.mean == one.mean
        assert bulk.stdev == one.stdev
        assert bulk.minimum == one.minimum
        assert bulk.maximum == one.maximum

    def test_sketch_observe_many_matches_observe(self):
        rng = random.Random(41)
        samples = [rng.uniform(0.0, 1.0) for _ in range(2000)]
        one = QuantileSketch(quantiles=(0.5, 0.9))
        for value in samples:
            one.observe(value)
        bulk = QuantileSketch(quantiles=(0.5, 0.9))
        bulk.observe_many(samples)
        assert bulk.as_dict() == one.as_dict()


class TestP2Quantile:
    def test_exact_order_statistics_below_five_samples(self):
        estimator = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            estimator.observe(value)
        assert estimator.value == 3.0

    def test_tracks_the_median_of_a_uniform_stream(self):
        rng = random.Random(17)
        estimator = P2Quantile(0.5)
        for _ in range(5000):
            estimator.observe(rng.uniform(0.0, 1.0))
        assert estimator.value == pytest.approx(0.5, abs=0.05)

    def test_tracks_the_tail_of_a_uniform_stream(self):
        rng = random.Random(23)
        estimator = P2Quantile(0.9)
        for _ in range(5000):
            estimator.observe(rng.uniform(0.0, 1.0))
        assert estimator.value == pytest.approx(0.9, abs=0.05)

    def test_deterministic_for_a_given_sequence(self):
        samples = [math.sin(i * 0.7) * 10.0 for i in range(500)]
        a, b = P2Quantile(0.9), P2Quantile(0.9)
        for value in samples:
            a.observe(value)
            b.observe(value)
        assert a.value == b.value

    def test_nan_has_no_rank(self):
        estimator = P2Quantile(0.5)
        for value in (1.0, math.nan, 3.0):
            estimator.observe(value)
        assert estimator.count == 2
        assert estimator.value == 2.0

    def test_rejects_degenerate_quantiles(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_estimate_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)


class TestQuantileSketch:
    def test_exports_every_configured_quantile(self):
        sketch = QuantileSketch("rtt")
        rng = random.Random(3)
        for _ in range(2000):
            sketch.observe(rng.uniform(0.0, 1.0))
        snapshot = sketch.as_dict()
        assert {"count", "mean", "p50", "p90", "p99"} <= set(snapshot)
        assert snapshot["count"] == 2000
        assert snapshot["p50"] <= snapshot["p90"] <= snapshot["p99"]

    def test_quantile_lookup_matches_estimator(self):
        sketch = QuantileSketch(quantiles=(0.5,))
        for value in (1.0, 2.0, 3.0):
            sketch.observe(value)
        assert sketch.quantile(0.5) == 2.0
        with pytest.raises(KeyError):
            sketch.quantile(0.25)

    def test_needs_at_least_one_quantile(self):
        with pytest.raises(ValueError):
            QuantileSketch(quantiles=())
