"""resource-lifecycle rule: fixtures, pragmas, and real-source proofs."""

from pathlib import Path

from repro.lint import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parents[2] / "src" / "repro"


def findings_for(fixture: str, rule: str = "resource-lifecycle"):
    return lint_paths([FIXTURES / fixture], rule_ids=[rule])


class TestPerFunctionChecks:
    def test_fixture_defects(self):
        findings = findings_for("lifecycle_leak.py")
        assert [(f.line, f.rule) for f in findings] == [
            (6, "resource-lifecycle"),
            (13, "resource-lifecycle"),
            (19, "resource-lifecycle"),
            (22, "resource-lifecycle"),
        ]
        assert "can reach a normal exit without end/fail" in findings[0].message
        assert "can leak on an exception path" in findings[1].message
        assert "can be skipped by an exception path" in findings[2].message
        assert "acquired and discarded" in findings[3].message

    def test_with_statement_and_guarded_cleanup_are_exempt(self):
        lines = [f.line for f in findings_for("lifecycle_leak.py")]
        assert all(line <= 22 for line in lines), lines

    def test_pragma_suppresses(self, tmp_path):
        source = (FIXTURES / "lifecycle_leak.py").read_text()
        allowed = tmp_path / "allowed.py"
        allowed.write_text(
            source.replace(
                'span = trace.span("umts.cmd")  # line 6',
                'span = trace.span("umts.cmd")  # lint: allow(resource-lifecycle)',
            )
        )
        lines = [f.line for f in lint_paths([allowed], rule_ids=["resource-lifecycle"])]
        assert 6 not in lines
        assert 13 in lines  # the others still fire


class TestClassPairing:
    def test_fixture_defects(self):
        findings = findings_for("lifecycle_class_pair.py")
        assert [(f.line, f.rule) for f in findings] == [
            (11, "resource-lifecycle"),
            (16, "resource-lifecycle"),
            (17, "resource-lifecycle"),
        ]
        assert "no matching release" in findings[0].message
        assert "class KeepsPppd" in findings[0].message
        assert "'rule add fwmark 0x1 lookup 75 pref 32764'" in findings[1].message
        assert "'-t mangle -A umts-mark -j MARK'" in findings[2].message

    def test_fstring_holes_pair_across_spellings(self):
        # `route add ... table {table}` pairs with `route flush table
        # {table}` even though install and removal render differently.
        messages = [f.message for f in findings_for("lifecycle_class_pair.py")]
        assert not any("route" in m for m in messages)

    def test_span_stored_and_released_across_methods_is_clean(self):
        lines = [f.line for f in findings_for("lifecycle_class_pair.py")]
        assert all(line <= 17 for line in lines), lines  # PairsEverything clean


class TestRealSources:
    """The acceptance proof: deleting one release from the shipped tree
    makes the rule report exactly that leak."""

    def test_shipped_modules_are_clean(self, tmp_path):
        # Copies (outside the package root) lose the home exemption,
        # so this also proves the modules pass the full-strength rule.
        for name in ("core/backend.py", "core/isolation.py"):
            copy = tmp_path / Path(name).name
            copy.write_text((SRC / name).read_text())
            assert lint_paths([copy], rule_ids=["resource-lifecycle"]) == [], name

    def test_deleting_the_stop_finally_reports_the_lock_leak(self, tmp_path):
        source = (SRC / "core" / "backend.py").read_text()
        protected = (
            "        try:\n"
            "            code, lines = yield from self.connection.disconnect()\n"
            "        finally:\n"
            "            # Rules are already gone; the lock must follow even if the\n"
            "            # hangup is interrupted, or the interface wedges forever.\n"
            "            self.lock.release(slice_name)\n"
            '            self._log(f"stop: connection down, lock released by '
            '{slice_name}")\n'
        )
        assert protected in source, "backend._stop moved; update the test"
        unprotected = (
            "        code, lines = yield from self.connection.disconnect()\n"
            "        self.lock.release(slice_name)\n"
            '        self._log(f"stop: connection down, lock released by '
            '{slice_name}")\n'
        )
        mutated = tmp_path / "backend_mutated.py"
        mutated.write_text(source.replace(protected, unprotected))
        findings = lint_paths([mutated], rule_ids=["resource-lifecycle"])
        assert len(findings) == 1
        assert "release of interface-lock 'self.lock' can be skipped" in (
            findings[0].message
        )

    def test_deleting_the_rpdb_rule_del_reports_the_install(self, tmp_path):
        source = (SRC / "core" / "isolation.py").read_text()
        removal = '        self.stack.ip.run(f"rule del pref {PREF_SRC_RULE}")\n'
        assert removal in source, "isolation teardown moved; update the test"
        mutated = tmp_path / "isolation_mutated.py"
        mutated.write_text(source.replace(removal, ""))
        findings = lint_paths([mutated], rule_ids=["resource-lifecycle"])
        assert len(findings) == 1
        assert "installs kernel state with no matching removal" in findings[0].message
        assert "pref {PREF_SRC_RULE}" in findings[0].message
        assert "class IsolationManager" in findings[0].message
