"""Runner plumbing: discovery dedupe, pragmas, parse errors, rule lookup."""

from pathlib import Path

import pytest

from repro.lint import UnknownRuleError, iter_python_files, lint_paths
from repro.lint.core import parse_pragmas, select_rules


class TestIterPythonFiles:
    def test_overlapping_directories_dedupe(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("A = 1\n")
        (pkg / "b.py").write_text("B = 2\n")
        files = list(iter_python_files([tmp_path, pkg]))
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_file_listed_twice_yields_once(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("A = 1\n")
        assert len(list(iter_python_files([target, target, tmp_path]))) == 1

    def test_order_stays_sorted(self, tmp_path):
        for name in ("c.py", "a.py", "b.py"):
            (tmp_path / name).write_text("X = 1\n")
        files = list(iter_python_files([tmp_path]))
        assert [f.name for f in files] == ["a.py", "b.py", "c.py"]


class TestPragmas:
    def test_comma_list_allows_both_rules(self):
        allows = parse_pragmas("x = 1  # lint: allow(wall-clock, retry-policy)\n")
        assert allows[1] == frozenset({"wall-clock", "retry-policy"})

    def test_inline_pragma_covers_only_its_line(self):
        allows = parse_pragmas("x = 1  # lint: allow(wall-clock)\ny = 2\n")
        assert 2 not in allows

    def test_comment_pragma_chains_through_the_block(self):
        source = (
            "# lint: allow(wall-clock) -- provenance only; the stamp\n"
            "# never feeds back into simulated time, so determinism\n"
            "# is not at risk here.\n"
            "stamp = time.time()\n"
            "after = time.time()\n"
        )
        allows = parse_pragmas(source)
        for line in (1, 2, 3, 4):
            assert "wall-clock" in allows[line], line
        assert 5 not in allows  # the chain stops at the first code line

    def test_comment_pragma_on_the_last_line_is_harmless(self):
        allows = parse_pragmas("x = 1\n# lint: allow(wall-clock)")
        assert "wall-clock" in allows[2]

    def test_chained_pragma_suppresses_a_finding(self, tmp_path):
        target = tmp_path / "stamped.py"
        target.write_text(
            "import time\n"
            "\n"
            "\n"
            "def stamp() -> float:\n"
            "    # lint: allow(wall-clock) -- provenance only: the value\n"
            "    # is written to the report header, never used as input.\n"
            "    return time.time()\n"
        )
        assert lint_paths([target], rule_ids=["wall-clock"]) == []


class TestParseErrors:
    def test_bad_file_becomes_a_synthetic_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n    pass\n")
        findings = lint_paths([bad])
        assert len(findings) == 1
        assert findings[0].rule == "parse-error"
        assert findings[0].severity.value == "error"
        assert findings[0].line == 1
        assert "cannot parse" in findings[0].message

    def test_one_bad_file_does_not_hide_the_rest(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        (tmp_path / "hot.py").write_text(
            "import time\n\n\ndef stamp() -> float:\n    return time.time()\n"
        )
        findings = lint_paths([tmp_path], rule_ids=["wall-clock"])
        assert sorted(f.rule for f in findings) == ["parse-error", "wall-clock"]


class TestRuleSelection:
    def test_unknown_rule_raises_a_friendly_error(self):
        with pytest.raises(UnknownRuleError) as info:
            select_rules(["no-such-rule"])
        assert info.value.rule_id == "no-such-rule"
        assert "resource-lifecycle" in info.value.known
        assert "lease-protocol" in info.value.known
        message = str(info.value)
        assert "unknown rule 'no-such-rule'" in message
        assert "known:" in message

    def test_unknown_rule_is_still_a_key_error(self):
        with pytest.raises(KeyError):
            lint_paths([Path(__file__)], rule_ids=["no-such-rule"])
