"""The tree itself must satisfy its own linter (all rules, zero findings)."""

from pathlib import Path

from repro.lint import human_report, lint_paths

SRC = Path(__file__).parents[2] / "src" / "repro"


def test_src_repro_is_lint_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n".join(human_report(findings))


def test_linter_actually_scanned_the_tree():
    # Guard against a silent no-op: the discovery pass must see the
    # package's modules, including the strict packages and the linter.
    from repro.lint import iter_python_files

    files = {path.name for path in iter_python_files([SRC])}
    for expected in ("engine.py", "fsm.py", "daemon.py", "scenarios.py", "core.py"):
        assert expected in files
