"""Fixture: an FSM table with three defects the rule must catch.

- the (BUSY, STOP) entry is missing (coverage hole);
- (IDLE, GO) targets the undeclared member ``State.GONE``;
- ``State.ORPHAN`` is declared but no transition reaches it.
"""

import enum
from typing import Dict, NamedTuple, Tuple


class State(enum.Enum):
    IDLE = "idle"
    BUSY = "busy"
    ORPHAN = "orphan"


class Event(enum.Enum):
    GO = "go"
    STOP = "stop"


class Transition(NamedTuple):
    action: str
    targets: Tuple[State, ...]


INITIAL_STATE = State.IDLE

TRANSITIONS: Dict[Tuple[State, Event], Transition] = {
    (State.IDLE, Event.GO): Transition("start", (State.GONE,)),  # undeclared target
    (State.IDLE, Event.STOP): Transition("ignore", (State.IDLE,)),
    (State.BUSY, Event.GO): Transition("ignore", (State.BUSY,)),
    (State.ORPHAN, Event.GO): Transition("ignore", (State.ORPHAN,)),
    (State.ORPHAN, Event.STOP): Transition("ignore", (State.ORPHAN,)),
}
