"""Fixture: per-function lifecycle leaks (and one clean teardown)."""


class Backend:
    def early_return_skips_span(self, trace, fast):
        span = trace.span("umts.cmd")  # line 6: leak-on-return
        if fast:
            return 1
        span.end()
        return 0

    def lock_leaks_on_raise(self):
        self.lock.acquire("slice")  # line 13: leak-on-raise
        yield from self.connect()
        self.lock.release("slice")

    def unprotected_teardown(self):
        yield from self.disconnect()
        self.lock.release("slice")  # line 19: unprotected-teardown

    def discarded_span(self, trace):
        trace.span("umts.cmd")  # line 22: acquired and discarded

    def with_statement_is_exempt(self, trace):
        with trace.span("umts.cmd"):
            return self.status()

    def clean_guarded_finally(self, trace, ok):
        span = trace.span("umts.cmd")
        try:
            yield from self.connect()
        finally:
            if span is not None:
                span.end()
        return ok

    def clean_event_handler(self, reason):
        # Conditional cleanup is not teardown: stays quiet.
        if self.lock.locked:
            self.lock.force_release()
        return reason
