"""Fixture: hash-order-dependent set iteration."""

from typing import List


def loop() -> None:
    for item in {1, 2, 3}:  # line 7: set-iteration
        print(item)


def comprehension() -> List[int]:
    return [v for v in set([1, 2])]  # line 12: set-iteration


def materialize() -> List[int]:
    return list({4, 5})  # line 16: set-iteration


def ordered() -> List[int]:
    return sorted({4, 5})  # allowed: sorted() output is deterministic
