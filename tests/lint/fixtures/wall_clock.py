"""Fixture: wall-clock reads (every call below must be flagged)."""

import os
import time
from datetime import datetime


def stamp() -> float:
    return time.time()  # line 9: wall-clock


def today() -> object:
    return datetime.now()  # line 13: wall-clock


def entropy() -> bytes:
    return os.urandom(8)  # line 17: wall-clock


def measured() -> float:
    return time.perf_counter()  # allowed: measurement, not simulation input


def excused() -> float:
    return time.time()  # lint: allow(wall-clock) -- fixture pragma check
