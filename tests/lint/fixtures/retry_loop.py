"""Fixture: hand-rolled retry loops (each attempt-named range() loop flags)."""


def redial() -> int:
    for attempt in range(3):  # line 5: retry-policy
        if attempt:
            return attempt
    return -1


def drain() -> int:
    for retry in range(5):  # line 12: retry-policy
        if retry > 3:
            return retry
    return -1


def honest_iteration() -> int:
    total = 0
    for index in range(4):  # allowed: not an attempt counter
        total += index
    return total


def over_data() -> int:
    count = 0
    for attempt in (1, 2, 3):  # allowed: not a range() loop
        count += attempt
    return count
