"""Fixture: ordering by allocation address."""

from typing import Any, List


def by_identity(items: List[Any]) -> List[Any]:
    return sorted(items, key=id)  # line 7: id-ordering (key=id)


def identity_value(obj: Any) -> int:
    return id(obj)  # line 11: id-ordering (id call)
