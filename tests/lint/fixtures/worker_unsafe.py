"""Fixture: module-level state mutated from functions (worker-safety)."""

RESULTS = {}
SEEN = []
TOTAL = 0
NAMES = ("a", "b")  # immutable: never flagged


def bad_global() -> None:
    global TOTAL  # line 10: worker-safety (global rebinding)
    TOTAL = TOTAL + 1


def bad_subscript(key: str, value: int) -> None:
    RESULTS[key] = value  # line 15: worker-safety (subscript assign)


def bad_augmented(key: str) -> None:
    RESULTS[key] += 1  # line 19: worker-safety (augmented subscript)


def bad_delete(key: str) -> None:
    del RESULTS[key]  # line 23: worker-safety (del)


def bad_mutator(value: int) -> None:
    SEEN.append(value)  # line 27: worker-safety (mutator method)


def local_shadow_is_fine() -> dict:
    RESULTS = {}  # rebinding a *local* named like the global: clean
    RESULTS["x"] = 1
    SEEN = list(range(3))
    SEEN.append(4)
    return RESULTS


def parameter_is_fine(SEEN: list) -> None:
    SEEN.append(1)  # mutates the caller's argument, not module state


def excused(value: int) -> None:
    SEEN.append(value)  # lint: allow(worker-safety) -- fixture pragma check
