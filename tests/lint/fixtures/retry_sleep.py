"""Fixture: wall-clock retry pacing (both sleep calls must be flagged)."""

import time
from time import sleep


def pace() -> None:
    time.sleep(0.5)  # line 8: retry-policy


def pace_aliased() -> None:
    sleep(1.0)  # line 12: retry-policy (from-import still resolves)


def excused() -> None:
    time.sleep(2.0)  # lint: allow(retry-policy) -- fixture pragma check
