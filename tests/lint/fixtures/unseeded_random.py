"""Fixture: module-level and unseeded randomness."""

import random


def module_level() -> float:
    return random.random()  # line 7: unseeded-random


def no_seed() -> random.Random:
    return random.Random()  # line 11: unseeded-random


def os_entropy() -> random.Random:
    return random.SystemRandom()  # line 15: unseeded-random
