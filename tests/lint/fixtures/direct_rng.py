"""Fixture: direct seeded-RNG construction outside sim/rng.py."""

import random as _random


def seeded() -> _random.Random:
    return _random.Random(42)  # line 7: direct-rng
