"""Fixture: class-wide pairing — stored resources and ip/iptables commands."""


class Pppd:
    def __init__(self, sim):
        self.sim = sim


class KeepsPppd:
    def start(self, sim):
        self.pppd = Pppd(sim)  # line 11: stored, never released in the class


class InstallsOnly:
    def install(self, table):
        self.stack.ip.run("rule add fwmark 0x1 lookup 75 pref 32764")  # line 16
        self.stack.iptables.run("-t mangle -A umts-mark -j MARK")  # line 17
        self.stack.ip.run(f"route add default dev ppp0 table {table}")

    def remove(self, table):
        self.stack.ip.run(f"route flush table {table}")


class PairsEverything:
    def up(self, trace):
        self._span = trace.span("fleet.lease")
        self.stack.ip.run("rule add pref 100")

    def down(self):
        if self._span is not None:
            self._span.end()
        self.stack.ip.run("rule del pref 100")
