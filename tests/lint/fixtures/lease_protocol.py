"""Fixture: every way to get the FleetController lease protocol wrong."""


class Campaign:
    def discards_ticket(self):
        self.controller.request("node", "slice", 1)  # line 6: discarded

    def never_awaits(self):
        ticket = self.controller.request("node", "slice", 1)  # line 9
        if ticket is None:
            return None
        return 0

    def ignores_outcome(self):
        t = self.controller.request("node", "slice", 1)
        yield t.outcome  # line 16: outcome ignored

    def unknown_literal(self):
        t = self.controller.request("node", "slice", 1)
        status, detail = yield t.outcome  # line 20: 'denied' + no 'failed'
        if status == "denied":
            return 1
        return 0

    def never_checks(self):
        t = self.controller.request("node", "slice", 1)
        status, detail = yield t.outcome  # line 27: status never compared
        return status

    def lost_wakeup(self):
        t = self.controller.request("node", "slice", 1)
        status, detail = yield t.outcome
        if status == "failed":
            return "unleased"
        started = yield self.umts.start()  # line 35: yields before wait()
        t.revoked.wait(self._on_revoke)
        return started

    def never_subscribes(self):
        t = self.controller.request("node", "slice", 1)
        status, detail = yield t.outcome  # line 41: revoked never subscribed
        if status == "failed":
            return "unleased"
        yield self.umts.start()
        self.controller.release(t)
        return "ok"

    def unprotected_release(self, t):
        yield self.umts.stop()
        self.controller.release(t)  # line 50: release skippable on raise

    def clean(self):
        t = self.controller.request("node", "slice", 1)
        status, detail = yield t.outcome
        if status == "failed":
            return "unleased"
        t.revoked.wait(self._on_revoke)
        try:
            yield self.umts.start()
        finally:
            self.controller.release(t)
        return "ok"
