"""Fixture: annotation gaps the untyped-def rule must flag."""


def missing_param(x) -> int:  # line 4: unannotated parameter x
    return x


def missing_return(x: int):  # line 8: no return annotation
    return x


class Widget:
    def __init__(self, size: int):  # allowed: mypy's __init__ exception
        self.size = size

    def method(self, other) -> int:  # line 16: unannotated parameter other
        return self.size + other


def fully_typed(x: int, *args: int, **kwargs: int) -> int:
    return x + sum(args) + sum(kwargs.values())
