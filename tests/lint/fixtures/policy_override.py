"""Fixture: a protocol subclass reaching into the FSM machinery."""

from typing import Any, Dict


class BaseFsm:
    def receive(self, packet: Any) -> None:
        pass

    def initial_options(self) -> Dict[str, Any]:
        return {}


class GoodProtocol(BaseFsm):
    def initial_options(self) -> Dict[str, Any]:  # allowed: policy hook
        return {"mru": 1500}


class BadProtocol(BaseFsm):
    def receive(self, packet: Any) -> None:  # line 20: fsm-policy-override
        pass

    def _act_open(self) -> None:  # line 23: fsm-policy-override
        pass
