"""Fixture: runtime-built and malformed telemetry names."""

PRECOMPUTED = "umts.cmd.start"


class FakeMetrics:
    def counter(self, name):
        return self

    def gauge(self, name):
        return self

    def histogram(self, name, buckets):
        return self

    def inc(self):
        pass


def fstring_name(metrics, command):
    metrics.counter(f"umts.cmd.{command}").inc()  # line 21: metric-name


def concatenated_name(metrics, xid):
    metrics.counter("netfilter.dropped.xid." + str(xid)).inc()  # line 25


def inline_str_builder(metrics, xid):
    metrics.gauge(str(xid)).inc()  # line 29: metric-name


def format_builder(metrics, proto):
    metrics.counter("ppp.{}.transitions".format(proto)).inc()  # line 33


def bad_literal(metrics):
    metrics.counter("UMTS-Commands").inc()  # line 37: not [a-z][a-z0-9_.]*


def fstring_span(trace, phase):
    with trace.span(f"dial.{phase}"):  # line 41: metric-name
        pass


def good_literal(metrics):
    metrics.counter("umts.cmd.start").inc()  # allowed: static literal


def good_variable(metrics):
    metrics.counter(PRECOMPUTED).inc()  # allowed: precomputed name


def good_accessor(metrics, names, xid):
    metrics.counter(names.get(xid)).inc()  # allowed: amortized lookup


def excused(metrics, command):
    metrics.counter(f"umts.cmd.{command}").inc()  # lint: allow(metric-name) -- fixture pragma check
