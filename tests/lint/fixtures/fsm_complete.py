"""Fixture: a complete miniature FSM table (must lint clean)."""

import enum
from typing import Dict, NamedTuple, Tuple


class State(enum.Enum):
    IDLE = "idle"
    BUSY = "busy"


class Event(enum.Enum):
    GO = "go"
    STOP = "stop"


class Transition(NamedTuple):
    action: str
    targets: Tuple[State, ...]


INITIAL_STATE = State.IDLE

TRANSITIONS: Dict[Tuple[State, Event], Transition] = {
    (State.IDLE, Event.GO): Transition("start", (State.BUSY,)),
    (State.IDLE, Event.STOP): Transition("ignore", (State.IDLE,)),
    (State.BUSY, Event.GO): Transition("ignore", (State.BUSY,)),
    (State.BUSY, Event.STOP): Transition("finish", (State.IDLE,)),
}
