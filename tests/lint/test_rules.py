"""Per-rule fixture tests: each fixture trips exactly its own rule."""

from pathlib import Path

import pytest

from repro.lint import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"


def findings_for(fixture: str, rule: str):
    return lint_paths([FIXTURES / fixture], rule_ids=[rule])


def locations(findings):
    return [(f.line, f.rule) for f in findings]


class TestWallClock:
    def test_flags_every_ambient_read(self):
        findings = findings_for("wall_clock.py", "wall-clock")
        assert locations(findings) == [(9, "wall-clock"), (13, "wall-clock"), (17, "wall-clock")]
        assert all(f.path.endswith("wall_clock.py") for f in findings)
        assert "time.time()" in findings[0].message
        assert "datetime.datetime.now()" in findings[1].message
        assert "os.urandom()" in findings[2].message

    def test_perf_counter_and_pragma_are_exempt(self):
        lines = [f.line for f in findings_for("wall_clock.py", "wall-clock")]
        assert 21 not in lines  # perf_counter is measurement, not input
        assert 25 not in lines  # suppressed by # lint: allow(wall-clock)


class TestUnseededRandom:
    def test_flags_module_level_and_unseeded(self):
        findings = findings_for("unseeded_random.py", "unseeded-random")
        assert locations(findings) == [
            (7, "unseeded-random"),
            (11, "unseeded-random"),
            (15, "unseeded-random"),
        ]
        assert "module-level RNG" in findings[0].message
        assert "without a seed" in findings[1].message
        assert "SystemRandom" in findings[2].message


class TestDirectRng:
    def test_flags_seeded_construction(self):
        findings = findings_for("direct_rng.py", "direct-rng")
        assert locations(findings) == [(7, "direct-rng")]
        assert "RandomStreams.stream" in findings[0].message

    def test_rng_home_is_exempt(self):
        rng_home = Path(__file__).parents[2] / "src" / "repro" / "sim" / "rng.py"
        assert lint_paths([rng_home], rule_ids=["direct-rng", "unseeded-random"]) == []


class TestSetIteration:
    def test_flags_for_comprehension_and_materialization(self):
        findings = findings_for("set_iteration.py", "set-iteration")
        assert locations(findings) == [
            (7, "set-iteration"),
            (12, "set-iteration"),
            (16, "set-iteration"),
        ]

    def test_sorted_copy_is_exempt(self):
        assert 20 not in [f.line for f in findings_for("set_iteration.py", "set-iteration")]


class TestIdOrdering:
    def test_flags_key_id_and_id_calls(self):
        findings = findings_for("id_ordering.py", "id-ordering")
        assert [(f.line, "key=id" in f.message) for f in findings] == [
            (7, True),
            (11, False),
        ]


class TestUntypedDef:
    def test_flags_annotation_gaps(self):
        findings = findings_for("untyped.py", "untyped-def")
        messages = {(f.line, f.message) for f in findings}
        assert (4, "def missing_param has unannotated parameters: x") in messages
        assert (8, "def missing_return has no return annotation") in messages
        assert (16, "def method has unannotated parameters: other") in messages

    def test_init_exception_and_full_annotations_pass(self):
        lines = [f.line for f in findings_for("untyped.py", "untyped-def")]
        assert 13 not in lines  # __init__ with an annotated param
        assert 20 not in lines  # fully annotated def


class TestRetryPolicy:
    def test_flags_sleep_calls_including_from_import(self):
        findings = findings_for("retry_sleep.py", "retry-policy")
        assert locations(findings) == [(8, "retry-policy"), (12, "retry-policy")]
        assert all("time.sleep()" in f.message for f in findings)

    def test_sleep_pragma_is_exempt(self):
        lines = [f.line for f in findings_for("retry_sleep.py", "retry-policy")]
        assert 16 not in lines  # suppressed by # lint: allow(retry-policy)

    def test_flags_attempt_named_range_loops(self):
        findings = findings_for("retry_loop.py", "retry-policy")
        assert locations(findings) == [(5, "retry-policy"), (12, "retry-policy")]
        assert "'attempt'" in findings[0].message
        assert "'retry'" in findings[1].message
        assert all("RetryPolicy.attempts()" in f.message for f in findings)

    def test_honest_loops_are_exempt(self):
        lines = [f.line for f in findings_for("retry_loop.py", "retry-policy")]
        assert 20 not in lines  # loop variable is not an attempt counter
        assert 27 not in lines  # attempt-named, but not a range() loop

    def test_retry_home_is_exempt(self):
        retry_home = Path(__file__).parents[2] / "src" / "repro" / "core" / "retry.py"
        assert lint_paths([retry_home], rule_ids=["retry-policy"]) == []


class TestFsmExhaustive:
    def test_complete_table_is_clean(self):
        assert findings_for("fsm_complete.py", "fsm-exhaustive") == []

    def test_broken_table_defects(self):
        findings = findings_for("fsm_broken.py", "fsm-exhaustive")
        messages = [f.message for f in findings]
        assert "missing transition for (State.BUSY, Event.STOP)" in messages
        assert "undeclared target state State.GONE" in messages
        assert any("State.BUSY is unreachable" in m for m in messages)
        assert any("State.ORPHAN is unreachable" in m for m in messages)


class TestFsmPolicyOverride:
    def test_flags_machinery_overrides_only(self):
        findings = findings_for("policy_override.py", "fsm-policy-override")
        assert locations(findings) == [
            (20, "fsm-policy-override"),
            (23, "fsm-policy-override"),
        ]
        assert "'receive'" in findings[0].message
        assert "'_act_open'" in findings[1].message


class TestWorkerSafety:
    def test_flags_every_runtime_mutation(self):
        findings = findings_for("worker_unsafe.py", "worker-safety")
        assert locations(findings) == [
            (10, "worker-safety"),
            (15, "worker-safety"),
            (19, "worker-safety"),
            (23, "worker-safety"),
            (27, "worker-safety"),
        ]
        assert "'global TOTAL'" in findings[0].message
        assert "SEEN.append()" in findings[4].message

    def test_local_shadows_parameters_and_pragma_are_exempt(self):
        lines = [f.line for f in findings_for("worker_unsafe.py", "worker-safety")]
        assert all(line <= 27 for line in lines)  # nothing after bad_mutator

    def test_scope_is_the_parallel_package(self):
        src = Path(__file__).parents[2] / "src" / "repro"
        # The rule is silent outside repro.parallel: the testbed module
        # mutates module state legitimately (it is not job code).
        assert lint_paths([src / "faults"], rule_ids=["worker-safety"]) == []
        # ... and the parallel package itself must stay clean.
        assert lint_paths([src / "parallel"], rule_ids=["worker-safety"]) == []

    def test_entry_point_registry_needs_its_pragma(self, tmp_path):
        jobs = Path(__file__).parents[2] / "src" / "repro" / "parallel" / "jobs.py"
        source = jobs.read_text()
        assert "# lint: allow(worker-safety)" in source
        stripped = tmp_path / "jobs_stripped.py"
        stripped.write_text(
            source.replace("# lint: allow(worker-safety)", "# (pragma removed)")
        )
        findings = lint_paths([stripped], rule_ids=["worker-safety"])
        assert len(findings) == 1
        assert "ENTRY_POINTS" in findings[0].message


class TestRealTransitionTable:
    """The acceptance proof: deleting any one entry from the shipped
    RFC 1661 table makes fsm-exhaustive fail, so the rule genuinely
    covers the full matrix LCP and IPCP inherit."""

    FSM_PATH = Path(__file__).parents[2] / "src" / "repro" / "ppp" / "fsm.py"

    def test_shipped_table_is_complete(self):
        assert lint_paths([self.FSM_PATH], rule_ids=["fsm-exhaustive"]) == []

    @pytest.mark.parametrize(
        "entry",
        [
            '    (FsmState.OPENED, FsmEvent.RCV_ECHO_REQ): '
            'Transition("_act_echo_reply", (FsmState.OPENED,)),\n',
            '    (FsmState.CLOSING, FsmEvent.RCV_TERM_ACK): '
            'Transition("_act_term_ack", (FsmState.CLOSED,)),\n',
        ],
    )
    def test_deleting_one_transition_fails(self, entry, tmp_path):
        source = self.FSM_PATH.read_text()
        assert entry in source, "table entry moved; update the test"
        mutated = tmp_path / "fsm_mutated.py"
        mutated.write_text(source.replace(entry, ""))
        findings = lint_paths([mutated], rule_ids=["fsm-exhaustive"])
        assert len(findings) == 1
        assert "missing transition for" in findings[0].message

    def test_lcp_ipcp_only_override_policy(self):
        ppp = Path(__file__).parents[2] / "src" / "repro" / "ppp"
        assert lint_paths(
            [ppp / "lcp.py", ppp / "ipcp.py"], rule_ids=["fsm-policy-override"]
        ) == []


class TestMetricName:
    def test_flags_every_runtime_built_name(self):
        findings = findings_for("metric_name.py", "metric-name")
        assert locations(findings) == [
            (21, "metric-name"),
            (25, "metric-name"),
            (29, "metric-name"),
            (33, "metric-name"),
            (37, "metric-name"),
            (41, "metric-name"),
        ]
        assert "f-string" in findings[0].message
        assert "concatenation" in findings[1].message
        assert "str()" in findings[2].message
        assert ".format()" in findings[3].message
        assert "not a valid metric name" in findings[4].message
        assert ".span()" in findings[5].message

    def test_static_and_precomputed_names_pass(self):
        lines = [f.line for f in findings_for("metric_name.py", "metric-name")]
        assert 46 not in lines  # static literal
        assert 50 not in lines  # precomputed variable
        assert 54 not in lines  # amortized accessor call
        assert 58 not in lines  # suppressed by pragma

    def test_hot_paths_in_tree_are_clean(self):
        src = Path(__file__).parents[2] / "src" / "repro"
        targets = [
            src / "core" / "backend.py",
            src / "core" / "connection.py",
            src / "netfilter" / "chains.py",
            src / "ppp" / "fsm.py",
        ]
        assert lint_paths(targets, rule_ids=["metric-name"]) == []
