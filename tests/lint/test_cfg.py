"""CFG builder unit tests: raise edges, virtual exits, finally fan-join."""

import ast

from repro.lint.cfg import (
    EXIT_NORMAL,
    EXIT_RAISE,
    build_cfg,
    function_defs,
    is_switch_point,
    teardown_skippable,
)


def cfg_for(source: str):
    func = next(iter(function_defs(ast.parse(source))))
    return build_cfg(func)


def node_at(cfg, line: int) -> int:
    for node in cfg.nodes:
        if node.stmt.lineno == line:
            return node.index
    raise AssertionError(f"no CFG node at line {line}")


class TestRaiseEdges:
    def test_plain_calls_never_raise(self):
        cfg = cfg_for("def f(self):\n    self.do()\n    return 1\n")
        exits = cfg.reachable([cfg.entry])
        assert EXIT_NORMAL in exits
        assert EXIT_RAISE not in exits

    def test_yield_is_a_raise_point(self):
        cfg = cfg_for("def f(self):\n    yield self.do()\n    return 1\n")
        exits = cfg.reachable([cfg.entry])
        assert EXIT_NORMAL in exits
        assert EXIT_RAISE in exits

    def test_explicit_raise_is_a_raise_point(self):
        cfg = cfg_for("def f(self):\n    raise ValueError('no')\n")
        exits = cfg.reachable([cfg.entry])
        assert exits == {cfg.entry, EXIT_RAISE}

    def test_nested_def_is_opaque(self):
        cfg = cfg_for(
            "def f(self):\n"
            "    def on_lost(reason):\n"
            "        yield reason\n"
            "    self.subscribe(on_lost)\n"
        )
        assert EXIT_RAISE not in cfg.reachable([cfg.entry])
        nested = next(iter(function_defs(ast.parse("def g():\n    yield 1\n"))))
        assert not is_switch_point(nested)


class TestLoops:
    def test_while_true_has_no_fall_through(self):
        cfg = cfg_for("def f(self):\n    while True:\n        self.tick()\n")
        assert EXIT_NORMAL not in cfg.reachable([cfg.entry])

    def test_break_leaves_an_infinite_loop(self):
        cfg = cfg_for(
            "def f(self):\n"
            "    while True:\n"
            "        if self.done:\n"
            "            break\n"
        )
        assert EXIT_NORMAL in cfg.reachable([cfg.entry])

    def test_ordinary_while_falls_through(self):
        cfg = cfg_for("def f(self):\n    while self.busy:\n        self.tick()\n")
        assert EXIT_NORMAL in cfg.reachable([cfg.entry])


class TestTryExcept:
    def test_catch_all_absorbs_the_raise_edge(self):
        cfg = cfg_for(
            "def f(self):\n"
            "    try:\n"
            "        yield self.dial()\n"
            "    except Exception:\n"
            "        return None\n"
            "    return 1\n"
        )
        assert EXIT_RAISE not in cfg.reachable([cfg.entry])

    def test_specific_handler_lets_the_raise_escape(self):
        cfg = cfg_for(
            "def f(self):\n"
            "    try:\n"
            "        yield self.dial()\n"
            "    except ValueError:\n"
            "        return None\n"
            "    return 1\n"
        )
        exits = cfg.reachable([cfg.entry])
        assert EXIT_RAISE in exits  # the raised type may match no handler
        assert EXIT_NORMAL in exits


class TestFinallyFanJoin:
    SOURCE = (
        "def f(self):\n"
        "    try:\n"
        "        yield self.dial()\n"
        "    finally:\n"
        "        self.lock.release()\n"
        "    return 1\n"
    )

    def test_every_exit_routes_through_finally(self):
        cfg = cfg_for(self.SOURCE)
        release = node_at(cfg, 5)
        # Blocking the finally body blocks both the normal and the
        # exceptional exit: no path escapes around it.
        survivors = cfg.reachable([cfg.entry], stop=[release])
        assert EXIT_NORMAL not in survivors
        assert EXIT_RAISE not in survivors

    def test_without_finally_the_raise_escapes(self):
        cfg = cfg_for(
            "def f(self):\n"
            "    yield self.dial()\n"
            "    self.lock.release()\n"
            "    return 1\n"
        )
        survivors = cfg.reachable([cfg.entry], stop=[node_at(cfg, 3)])
        assert EXIT_NORMAL not in survivors
        assert EXIT_RAISE in survivors


class TestTeardownSkippable:
    def test_unconditional_release_after_yield_is_skippable(self):
        cfg = cfg_for("def f(self):\n    yield self.stop()\n    self.lock.release()\n")
        assert teardown_skippable(cfg, [node_at(cfg, 3)])

    def test_finally_protected_release_is_not(self):
        cfg = cfg_for(TestFinallyFanJoin.SOURCE)
        assert not teardown_skippable(cfg, [node_at(cfg, 5)])

    def test_conditional_release_is_not_teardown(self):
        cfg = cfg_for(
            "def f(self):\n"
            "    yield self.stop()\n"
            "    if self.lock.locked:\n"
            "        self.lock.release()\n"
        )
        assert not teardown_skippable(cfg, [node_at(cfg, 4)])

    def test_no_release_nodes_is_never_skippable(self):
        cfg = cfg_for("def f(self):\n    yield self.stop()\n")
        assert not teardown_skippable(cfg, [])
