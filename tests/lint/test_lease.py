"""lease-protocol rule: fixtures and the fleet campaign's own teardown."""

from pathlib import Path

from repro.lint import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parents[2] / "src" / "repro"


def fixture_findings():
    return lint_paths([FIXTURES / "lease_protocol.py"], rule_ids=["lease-protocol"])


class TestLeaseFixture:
    def test_every_protocol_violation_fires(self):
        findings = fixture_findings()
        assert [f.line for f in findings] == [6, 9, 16, 20, 20, 27, 35, 41, 50]

    def test_messages_name_the_obligation(self):
        by_line = {}
        for finding in fixture_findings():
            by_line.setdefault(finding.line, []).append(finding.message)
        assert "lease ticket discarded" in by_line[6][0]
        assert "outcome is never awaited" in by_line[9][0]
        assert "lease outcome ignored" in by_line[16][0]
        assert "unknown lease status literal 'denied'" in by_line[20][0]
        assert "'failed' lease outcome unhandled" in by_line[20][1]
        assert "never checked" in by_line[27][0]
        assert "lost-wakeup window" in by_line[35][0]
        assert "wait(...) on line 36" in by_line[35][0]
        assert "revoked is never subscribed" in by_line[41][0]
        assert "controller.release(...) can be skipped" in by_line[50][0]

    def test_the_correct_protocol_is_clean(self):
        # `clean` follows every obligation; nothing fires after line 50.
        assert all(f.line <= 50 for f in fixture_findings())

    def test_early_bailout_release_is_not_teardown(self):
        # never_subscribes releases on line 45 behind an early return;
        # conditional release is not flagged as skippable teardown.
        assert 45 not in [f.line for f in fixture_findings()]


class TestRealCampaign:
    """PR 7's driver must satisfy its own protocol — and deleting the
    teardown's finally makes the rule catch the leaked lease."""

    CAMPAIGN = SRC / "fleet" / "campaign.py"

    def test_shipped_campaign_is_clean(self, tmp_path):
        copy = tmp_path / "campaign_copy.py"
        copy.write_text(self.CAMPAIGN.read_text())
        assert lint_paths([copy], rule_ids=["lease-protocol"]) == []

    def test_deleting_the_teardown_finally_reports_the_leak(self, tmp_path):
        source = self.CAMPAIGN.read_text()
        protected = (
            "        try:\n"
            "            yield umts.stop()\n"
            "        finally:\n"
            "            # Even a fault thrown into the stop must free the lease:\n"
            "            # a leaked ticket starves every later waiter on the node.\n"
            "            umts.close()\n"
            "            self.controller.release(ticket)\n"
        )
        assert protected in source, "campaign._teardown moved; update the test"
        unprotected = (
            "        yield umts.stop()\n"
            "        umts.close()\n"
            "        self.controller.release(ticket)\n"
        )
        mutated = tmp_path / "campaign_mutated.py"
        mutated.write_text(source.replace(protected, unprotected))
        findings = lint_paths([mutated], rule_ids=["lease-protocol"])
        assert len(findings) == 1
        assert "controller.release(...) can be skipped" in findings[0].message

    def test_controller_home_is_exempt(self):
        controller = SRC / "fleet" / "controller.py"
        assert lint_paths([controller], rule_ids=["lease-protocol"]) == []
