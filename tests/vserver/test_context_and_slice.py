"""Unit tests for security contexts, slices, slivers and VNET+."""

import pytest

from repro.net.errors import PermissionDeniedError
from repro.net.interface import EthernetInterface
from repro.net.link import Link
from repro.net.stack import IPStack
from repro.sim.engine import Simulator
from repro.vserver.context import ROOT_CONTEXT, SecurityContext
from repro.vserver.slice import Slice, Sliver
from repro.vserver.vnet import VnetPlus
from repro.vsys.daemon import VsysDaemon


def test_root_context_is_root():
    assert ROOT_CONTEXT.is_root
    assert ROOT_CONTEXT.xid == 0
    ROOT_CONTEXT.require_root("anything")  # no raise


def test_slice_context_not_root():
    ctx = SecurityContext(510, "unina_umts")
    assert not ctx.is_root
    with pytest.raises(PermissionDeniedError):
        ctx.require_root("iptables")


def test_negative_xid_rejected():
    with pytest.raises(ValueError):
        SecurityContext(-1)


def test_slice_requires_positive_xid():
    with pytest.raises(ValueError):
        Slice("bad", 0)


def test_slice_holds_slivers():
    sim = Simulator()
    stack = IPStack(sim, "node")
    vsys = VsysDaemon(sim, "node")
    sl = Slice("unina_umts", 510)
    sliver = Sliver(sl, "node", stack, vsys)
    assert sl.sliver_on("node") is sliver
    assert sliver.xid == 510
    assert sliver.name == "unina_umts"


def test_sliver_sockets_are_tagged():
    sim = Simulator()
    stack = IPStack(sim, "node")
    vsys = VsysDaemon(sim, "node")
    sliver = Sliver(Slice("unina_umts", 510), "node", stack, vsys)
    sock = sliver.socket()
    assert sock.xid == 510


def test_sliver_privileged_calls_raise():
    sim = Simulator()
    stack = IPStack(sim, "node")
    sliver = Sliver(Slice("s", 5), "node", stack, VsysDaemon(sim))
    with pytest.raises(PermissionDeniedError):
        sliver.iptables("-A", "OUTPUT")
    with pytest.raises(PermissionDeniedError):
        sliver.ip_route("add")
    with pytest.raises(PermissionDeniedError):
        sliver.pppd()


def test_sliver_packets_carry_xid_on_the_wire():
    sim = Simulator()
    node = IPStack(sim, "node")
    peer = IPStack(sim, "peer")
    n_eth = node.add_interface(EthernetInterface("eth0"))
    p_eth = peer.add_interface(EthernetInterface("eth0"))
    node.configure_interface(n_eth, "10.0.0.1", 24)
    peer.configure_interface(p_eth, "10.0.0.2", 24)
    Link(sim, n_eth, p_eth)
    sliver = Sliver(Slice("unina_umts", 510), "node", node, VsysDaemon(sim))
    seen = []
    server = peer.socket()
    server.bind(port=9)
    server.on_receive = lambda payload, src, sport, pkt: seen.append(pkt.xid)
    sliver.socket().sendto("x", 1, "10.0.0.2", 9)
    sim.run()
    assert seen == [510]


def test_vnetplus_factory_tags_and_finds():
    sim = Simulator()
    stack = IPStack(sim, "node")
    vnet = VnetPlus(stack)
    ctx = SecurityContext(7, "a")
    sock = vnet.socket(ctx)
    sock.bind(port=1234)
    assert sock.xid == 7
    assert vnet.sockets_of(7) == [sock]
    assert vnet.sockets_of(8) == []
    assert vnet.sockets_created == 1
