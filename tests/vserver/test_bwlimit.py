"""Tests for PlanetLab-style per-slice bandwidth limiting."""

import pytest

from repro.net.interface import EthernetInterface
from repro.net.link import Link
from repro.net.stack import IPStack
from repro.sim.engine import Simulator
from repro.vserver.bwlimit import TokenBucket


def make_pair(sim):
    a = IPStack(sim, "node")
    b = IPStack(sim, "peer")
    a_eth = a.add_interface(EthernetInterface("eth0"))
    b_eth = b.add_interface(EthernetInterface("eth0"))
    a.configure_interface(a_eth, "10.0.0.1", 24)
    b.configure_interface(b_eth, "10.0.0.2", 24)
    Link(sim, a_eth, b_eth, rate_bps=1e9, delay=0.0001)
    return a, b


def blast(sim, stack, xid, port, packets=200, size=1000, interval=0.001):
    sock = stack.socket(xid=xid)

    def tick(remaining=[packets]):
        if remaining[0] <= 0:
            return
        remaining[0] -= 1
        try:
            sock.sendto("x", size, "10.0.0.2", port)
        except Exception:
            pass
        sim.schedule(interval, tick)

    sim.schedule(0.0, tick)
    return sock


def count_received(stack, port):
    got = []
    server = stack.socket()
    server.bind(port=port)
    server.on_receive = lambda payload, src, sport, pkt: got.append(sim_now(pkt))
    return got


def sim_now(pkt):
    return pkt.sent_at


# -- token bucket unit tests -------------------------------------------------


def test_bucket_starts_full():
    sim = Simulator()
    bucket = TokenBucket(sim, rate_bps=8000.0, burst_bytes=1000)
    assert bucket.try_consume(1000)
    assert not bucket.try_consume(1)


def test_bucket_refills_at_rate():
    sim = Simulator()
    bucket = TokenBucket(sim, rate_bps=8000.0, burst_bytes=1000)
    bucket.try_consume(1000)
    sim.run(until=0.5)  # 0.5 s * 1000 B/s = 500 B of tokens
    assert bucket.try_consume(500)
    assert not bucket.try_consume(1)


def test_bucket_caps_at_burst():
    sim = Simulator()
    bucket = TokenBucket(sim, rate_bps=8_000_000.0, burst_bytes=1000)
    sim.run(until=10.0)
    assert bucket.try_consume(1000)
    assert not bucket.try_consume(500)


def test_time_until():
    sim = Simulator()
    bucket = TokenBucket(sim, rate_bps=8000.0, burst_bytes=1000)
    bucket.try_consume(1000)
    assert bucket.time_until(1000) == pytest.approx(1.0)
    assert bucket.time_until(0) == 0.0


def test_bucket_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        TokenBucket(sim, 0, 100)
    with pytest.raises(ValueError):
        TokenBucket(sim, 100, 0)


# -- limiter integration -----------------------------------------------------


def test_slice_rate_capped():
    sim = Simulator()
    a, b = make_pair(sim)
    limiter = a.install_bwlimiter("eth0", queue_bytes=10**6)
    limiter.set_limit(510, rate_bps=80_000.0, burst_bytes=2000)  # 10 kB/s
    got = []
    server = b.socket()
    server.bind(port=9)
    server.on_receive = lambda payload, src, sport, pkt: got.append(sim.now)
    # Offer ~1 MB/s for one second from xid 510.
    blast(sim, a, 510, 9, packets=1000, size=1000, interval=0.001)
    sim.run(until=1.0)
    # 10 kB/s + 2 kB burst => at most ~13 packets of 1028 B in 1 s.
    assert len(got) <= 14
    assert len(got) >= 8


def test_root_traffic_bypasses_limiter():
    sim = Simulator()
    a, b = make_pair(sim)
    limiter = a.install_bwlimiter("eth0")
    limiter.set_limit(0, rate_bps=1.0)  # would be absurd if applied
    got = []
    server = b.socket()
    server.bind(port=9)
    server.on_receive = lambda payload, src, sport, pkt: got.append(1)
    blast(sim, a, 0, 9, packets=100, size=1000, interval=0.001)
    sim.run(until=1.0)
    assert len(got) == 100


def test_slices_do_not_share_buckets():
    sim = Simulator()
    a, b = make_pair(sim)
    limiter = a.install_bwlimiter("eth0", queue_bytes=10**6)
    limiter.set_limit(510, rate_bps=80_000.0, burst_bytes=2000)
    limiter.set_limit(600, rate_bps=800_000.0, burst_bytes=20000)
    counts = {510: 0, 600: 0}
    server = b.socket()
    server.bind(port=9)
    server.on_receive = lambda payload, src, sport, pkt: counts.__setitem__(
        pkt.xid, counts[pkt.xid] + 1
    )
    blast(sim, a, 510, 9, packets=500, size=1000, interval=0.002)
    blast(sim, a, 600, 9, packets=500, size=1000, interval=0.002)
    sim.run(until=1.0)
    assert counts[600] > 5 * counts[510]


def test_overflow_drops_counted():
    sim = Simulator()
    a, b = make_pair(sim)
    limiter = a.install_bwlimiter("eth0", queue_bytes=5000)
    limiter.set_limit(510, rate_bps=8_000.0, burst_bytes=1000)
    server = b.socket()
    server.bind(port=9)
    blast(sim, a, 510, 9, packets=300, size=1000, interval=0.001)
    sim.run(until=2.0)
    assert limiter.dropped_packets > 200
    assert limiter.shaped_packets > 0


def test_shaped_packets_eventually_released():
    sim = Simulator()
    a, b = make_pair(sim)
    limiter = a.install_bwlimiter("eth0", queue_bytes=10**6)
    limiter.set_limit(510, rate_bps=80_000.0, burst_bytes=1100)
    got = []
    server = b.socket()
    server.bind(port=9)
    server.on_receive = lambda payload, src, sport, pkt: got.append(sim.now)
    sock = a.socket(xid=510)
    for _ in range(5):
        sock.sendto("x", 1000, "10.0.0.2", 9)
    sim.run(until=10.0)
    assert len(got) == 5
    assert limiter.backlog_bytes(510) == 0
    # Releases paced at ~10 kB/s after the 1.1 kB burst.
    assert got[-1] - got[0] > 0.3


def test_default_limit_applies_to_unknown_slice():
    sim = Simulator()
    a, b = make_pair(sim)
    limiter = a.install_bwlimiter(
        "eth0", default_rate_bps=80_000.0, default_burst_bytes=2000
    )
    assert limiter.limit_of(999) == (80_000.0, 2000)
    got = []
    server = b.socket()
    server.bind(port=9)
    server.on_receive = lambda payload, src, sport, pkt: got.append(1)
    blast(sim, a, 999, 9, packets=1000, size=1000, interval=0.0005)
    sim.run(until=1.0)
    assert len(got) <= 14


def test_remove_bwlimiter_restores_line_rate():
    sim = Simulator()
    a, b = make_pair(sim)
    limiter = a.install_bwlimiter("eth0")
    limiter.set_limit(510, rate_bps=8_000.0)
    a.remove_bwlimiter("eth0")
    got = []
    server = b.socket()
    server.bind(port=9)
    server.on_receive = lambda payload, src, sport, pkt: got.append(1)
    blast(sim, a, 510, 9, packets=100, size=1000, interval=0.001)
    sim.run(until=1.0)
    assert len(got) == 100
