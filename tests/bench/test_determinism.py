"""Bit-identical results: the optimization pass changed no simulated output.

The golden digests below were produced by the *pre-optimization* code
(commit 58e56cb — original per-byte HDLC loops, peek/step dispatch
loop, uncached RNG lookups) over the paper's two 120 s workloads at
seed 3 on both paths.  The optimized code must reproduce every packet
log, figure series and summary statistic bit-for-bit, so the digests
must never change; if an intentional behaviour change ever lands,
regenerate them with
``repro.bench.determinism.characterization_digest`` and say why in the
commit.
"""

import pytest

from repro import PATH_ETHERNET, PATH_UMTS, run_characterization, voip_g711
from repro.bench.determinism import characterization_digest, run_digest
from repro.obs import MetricsRegistry

#: (workload, path) → sha256 of every observable run output, recorded
#: on the pre-optimization code.
GOLDEN_DIGESTS = {
    ("voip", PATH_UMTS): "8b69c67747142035cf9b025f6be2b09f69c8581fece97de8fcb8d12d77567891",
    ("voip", PATH_ETHERNET): "2e32d7ec0614e77a2e0ac3cf1af85a267e10f09139ee1a5682d1f0d7bb9d9dfe",
    ("cbr", PATH_UMTS): "4e897b0200b0a16de49598e2f47afb5bc4ce7779d45142422cf3c57aab622a88",
    ("cbr", PATH_ETHERNET): "56b0b8261651a0e2102c7d43d8669eb087a2742e24ae1cef13f11a5cda587b35",
}


@pytest.mark.parametrize("kind,path", sorted(GOLDEN_DIGESTS))
def test_run_outputs_bit_identical_to_pre_optimization_code(kind, path):
    assert characterization_digest(kind, path, seed=3, duration=120.0) == (
        GOLDEN_DIGESTS[(kind, path)]
    )


def test_instrumented_run_matches_fast_path():
    """The engine's no-sink fast path and the metered loop agree bit-for-bit."""
    plain = run_characterization(voip_g711(duration=10.0), path=PATH_UMTS, seed=3)

    metered = run_characterization(
        voip_g711(duration=10.0),
        path=PATH_UMTS,
        seed=3,
        scenario=_metered_scenario(seed=3),
    )
    assert run_digest(plain) == run_digest(metered)


def _metered_scenario(seed):
    from repro import OneLabScenario

    scenario = OneLabScenario(seed=seed)
    scenario.sim.metrics = MetricsRegistry()
    return scenario
