"""Unit tests for the repro.bench runner, baselines and comparator."""

import json

import pytest

from repro.bench import (
    REGISTRY,
    BenchResult,
    Scenario,
    baseline_path,
    compare_result,
    load_baseline,
    machine_metadata,
    result_payload,
    run_scenario,
    save_baseline,
)


def _scenario(run_once, **kwargs):
    defaults = dict(repeats=3, warmup=1, tolerance=0.25)
    defaults.update(kwargs)
    return Scenario("toy", "a toy scenario", run_once, **defaults)


def test_runner_warmup_then_repeats():
    calls = []
    scenario = _scenario(lambda: calls.append(len(calls)) or 0.001, repeats=4, warmup=2)
    result = run_scenario(scenario)
    assert len(calls) == 6  # 2 warmup + 4 timed
    assert result.repeats == 4
    assert result.warmup == 2


def test_result_statistics():
    result = BenchResult("toy", [0.3, 0.1, 0.2], warmup=1)
    assert result.median_s == 0.2
    assert result.min_s == 0.1
    assert result.mean_s == pytest.approx(0.2)
    assert result.stdev_s == pytest.approx(0.1)
    assert BenchResult("one", [0.5], warmup=0).stdev_s == 0.0


def test_result_requires_times():
    with pytest.raises(ValueError):
        BenchResult("empty", [], warmup=0)
    scenario = _scenario(lambda: 0.0)
    with pytest.raises(ValueError):
        run_scenario(scenario, repeats=0)


def test_runner_overrides():
    calls = []
    scenario = _scenario(lambda: calls.append(1) or 0.001)
    result = run_scenario(scenario, repeats=1, warmup=0)
    assert len(calls) == 1
    assert result.repeats == 1


def test_baseline_roundtrip(tmp_path):
    scenario = _scenario(lambda: 0.01, reference_median_s=0.03)
    result = BenchResult("toy", [0.01, 0.02, 0.015], warmup=1)
    payload = result_payload(result, scenario)
    assert payload["reference"]["speedup"] == pytest.approx(0.03 / 0.015)
    path = save_baseline(payload, baseline_path("toy", tmp_path))
    assert path.name == "BENCH_toy.json"
    loaded = load_baseline(path)
    assert loaded["result"]["median_s"] == pytest.approx(0.015)
    assert loaded["scenario"] == "toy"
    assert loaded["machine"]["python"] == machine_metadata()["python"]


def test_load_baseline_missing_and_bad_schema(tmp_path):
    assert load_baseline(tmp_path / "BENCH_nope.json") is None
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps({"schema": 999}))
    with pytest.raises(ValueError):
        load_baseline(bad)


def _baseline_doc(median):
    return {"schema": 1, "scenario": "toy", "result": {"median_s": median}}


def test_comparator_pass_and_regress():
    fresh = BenchResult("toy", [0.012], warmup=0)
    ok = compare_result(_baseline_doc(0.010), fresh, tolerance=0.25)
    assert not ok.regressed
    assert ok.ratio == pytest.approx(1.2)
    bad = compare_result(_baseline_doc(0.010), fresh, tolerance=0.10)
    assert bad.regressed
    assert "REGRESS" in bad.verdict_line()
    assert "PASS" in ok.verdict_line()


def test_comparator_tolerance_scale():
    fresh = BenchResult("toy", [0.020], warmup=0)
    # 2x slower: fails at tolerance 0.25, passes once CI scales it 5x.
    assert compare_result(_baseline_doc(0.010), fresh, 0.25).regressed
    assert not compare_result(_baseline_doc(0.010), fresh, 0.25, scale=5.0).regressed
    with pytest.raises(ValueError):
        compare_result(_baseline_doc(0.010), fresh, 0.25, scale=0.0)


def test_comparator_faster_always_passes():
    fresh = BenchResult("toy", [0.001], warmup=0)
    assert not compare_result(_baseline_doc(0.010), fresh, tolerance=0.0).regressed


def test_registry_contents():
    assert set(REGISTRY) == {
        "engine",
        "hdlc_encode",
        "hdlc_decode",
        "voip_characterization",
        "cbr_characterization",
        "vsys_rpc",
    }
    for scenario in REGISTRY.values():
        assert scenario.repeats >= 1
        assert scenario.tolerance > 0
    # The engine scenario records the pre-optimization reference the
    # acceptance criterion is measured against.
    assert REGISTRY["engine"].reference_median_s is not None


def test_fast_scenarios_produce_positive_times():
    for name in ("engine", "hdlc_encode", "hdlc_decode", "vsys_rpc"):
        result = run_scenario(REGISTRY[name], repeats=1, warmup=0)
        assert result.median_s > 0
