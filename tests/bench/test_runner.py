"""Unit tests for the repro.bench runner, baselines and comparator."""

import json

import pytest

from repro.bench import (
    FLEET_SCENARIOS,
    FLEET_SPEEDUP_TARGET,
    REGISTRY,
    BenchResult,
    Scenario,
    baseline_path,
    compare_result,
    fleet_summary_payload,
    load_baseline,
    machine_metadata,
    result_payload,
    run_scenario,
    save_baseline,
)


def _scenario(run_once, **kwargs):
    defaults = dict(repeats=3, warmup=1, tolerance=0.25)
    defaults.update(kwargs)
    return Scenario("toy", "a toy scenario", run_once, **defaults)


def test_runner_warmup_then_repeats():
    calls = []
    scenario = _scenario(lambda: calls.append(len(calls)) or 0.001, repeats=4, warmup=2)
    result = run_scenario(scenario)
    assert len(calls) == 6  # 2 warmup + 4 timed
    assert result.repeats == 4
    assert result.warmup == 2


def test_result_statistics():
    result = BenchResult("toy", [0.3, 0.1, 0.2], warmup=1)
    assert result.median_s == 0.2
    assert result.min_s == 0.1
    assert result.mean_s == pytest.approx(0.2)
    assert result.stdev_s == pytest.approx(0.1)
    assert BenchResult("one", [0.5], warmup=0).stdev_s == 0.0


def test_result_requires_times():
    with pytest.raises(ValueError):
        BenchResult("empty", [], warmup=0)
    scenario = _scenario(lambda: 0.0)
    with pytest.raises(ValueError):
        run_scenario(scenario, repeats=0)


def test_runner_overrides():
    calls = []
    scenario = _scenario(lambda: calls.append(1) or 0.001)
    result = run_scenario(scenario, repeats=1, warmup=0)
    assert len(calls) == 1
    assert result.repeats == 1


def test_baseline_roundtrip(tmp_path):
    scenario = _scenario(lambda: 0.01, reference_median_s=0.03)
    result = BenchResult("toy", [0.01, 0.02, 0.015], warmup=1)
    payload = result_payload(result, scenario)
    assert payload["reference"]["speedup"] == pytest.approx(0.03 / 0.015)
    path = save_baseline(payload, baseline_path("toy", tmp_path))
    assert path.name == "BENCH_toy.json"
    loaded = load_baseline(path)
    assert loaded["result"]["median_s"] == pytest.approx(0.015)
    assert loaded["scenario"] == "toy"
    assert loaded["machine"]["python"] == machine_metadata()["python"]


def _fleet_doc(name, unit, count, median, reference):
    scenario = Scenario(
        name, f"{name} scenario", lambda: median,
        tolerance=0.35, reference_median_s=reference, units=(unit, count),
    )
    return result_payload(BenchResult(name, [median], warmup=1), scenario)


def test_fleet_summary_payload_carries_rates_and_gate():
    payloads = {
        "fleet_events": _fleet_doc("fleet_events", "events", 134400, 0.08, 0.264),
        "fleet_datacalls": _fleet_doc("fleet_datacalls", "datacalls", 16, 0.33, 0.34),
    }
    summary = fleet_summary_payload(payloads)
    assert summary["scenario"] == "fleet"
    events = summary["scenarios"]["fleet_events"]
    assert events["unit"] == "events"
    assert events["rate_per_s"] == pytest.approx(134400 / 0.08)
    assert events["speedup"] == pytest.approx(0.264 / 0.08)
    assert summary["scenarios"]["fleet_datacalls"]["unit"] == "datacalls"
    gate = summary["gate"]
    assert gate["target_speedup"] == FLEET_SPEEDUP_TARGET
    assert gate["events_target_met"] is True
    # A fresh measurement below the target flips the verdict.
    slow = dict(payloads)
    slow["fleet_events"] = _fleet_doc("fleet_events", "events", 134400, 0.2, 0.264)
    assert fleet_summary_payload(slow)["gate"]["events_target_met"] is False


def test_fleet_summary_requires_every_fleet_scenario():
    docs = {"fleet_events": _fleet_doc("fleet_events", "events", 10, 0.1, 0.3)}
    with pytest.raises(ValueError, match="fleet_datacalls"):
        fleet_summary_payload(docs)
    assert set(FLEET_SCENARIOS) == {"fleet_events", "fleet_datacalls"}


def test_fleet_gate_delta_flags_events_regression(tmp_path):
    from repro.bench.fleet_gate import fleet_delta, main

    committed = fleet_summary_payload({
        "fleet_events": _fleet_doc("fleet_events", "events", 134400, 0.08, 0.264),
        "fleet_datacalls": _fleet_doc("fleet_datacalls", "datacalls", 16, 0.33, 0.34),
    })
    fresh = fleet_summary_payload({
        "fleet_events": _fleet_doc("fleet_events", "events", 134400, 0.2, 0.264),
        "fleet_datacalls": _fleet_doc("fleet_datacalls", "datacalls", 16, 0.33, 0.34),
    })
    delta = fleet_delta(committed, fresh)
    assert delta["deltas"]["fleet_events"]["regressed"] is True  # 2.5x slower
    assert delta["deltas"]["fleet_datacalls"]["regressed"] is False
    with pytest.raises(ValueError):
        fleet_delta(committed, fresh, tolerance_scale=0.0)
    # End-to-end through main(): exit 1 plus the delta artifact.
    root = tmp_path / "root"
    out = tmp_path / "fresh"
    root.mkdir()
    out.mkdir()
    save_baseline(committed, baseline_path("fleet", root))
    save_baseline(fresh, baseline_path("fleet", out))
    assert main(["--fresh", str(out), "--root", str(root)]) == 1
    artifact = json.loads((out / "BENCH_fleet_delta.json").read_text())
    assert artifact["deltas"]["fleet_events"]["regressed"] is True
    # Identical documents pass, and a missing baseline is exit 2.
    save_baseline(committed, baseline_path("fleet", out))
    assert main(["--fresh", str(out), "--root", str(root)]) == 0
    assert main(["--fresh", str(tmp_path), "--root", str(root)]) == 2


def test_committed_fleet_gate_document_is_green():
    """The repo's own BENCH_fleet.json must show the 3x gate met."""
    import pathlib

    doc = json.loads(
        (pathlib.Path(__file__).resolve().parents[2] / "BENCH_fleet.json").read_text()
    )
    assert doc["gate"]["target_speedup"] == FLEET_SPEEDUP_TARGET
    assert doc["gate"]["events_target_met"] is True
    assert doc["scenarios"]["fleet_events"]["unit"] == "events"
    assert doc["scenarios"]["fleet_datacalls"]["unit"] == "datacalls"


def test_load_baseline_missing_and_bad_schema(tmp_path):
    assert load_baseline(tmp_path / "BENCH_nope.json") is None
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps({"schema": 999}))
    with pytest.raises(ValueError):
        load_baseline(bad)


def _baseline_doc(median):
    return {"schema": 1, "scenario": "toy", "result": {"median_s": median}}


def test_comparator_pass_and_regress():
    fresh = BenchResult("toy", [0.012], warmup=0)
    ok = compare_result(_baseline_doc(0.010), fresh, tolerance=0.25)
    assert not ok.regressed
    assert ok.ratio == pytest.approx(1.2)
    bad = compare_result(_baseline_doc(0.010), fresh, tolerance=0.10)
    assert bad.regressed
    assert "REGRESS" in bad.verdict_line()
    assert "PASS" in ok.verdict_line()


def test_comparator_tolerance_scale():
    fresh = BenchResult("toy", [0.020], warmup=0)
    # 2x slower: fails at tolerance 0.25, passes once CI scales it 5x.
    assert compare_result(_baseline_doc(0.010), fresh, 0.25).regressed
    assert not compare_result(_baseline_doc(0.010), fresh, 0.25, scale=5.0).regressed
    with pytest.raises(ValueError):
        compare_result(_baseline_doc(0.010), fresh, 0.25, scale=0.0)


def test_comparator_faster_always_passes():
    fresh = BenchResult("toy", [0.001], warmup=0)
    assert not compare_result(_baseline_doc(0.010), fresh, tolerance=0.0).regressed


def test_registry_contents():
    assert set(REGISTRY) == {
        "engine",
        "engine_cancel",
        "engine_burst",
        "fleet_events",
        "fleet_datacalls",
        "hdlc_encode",
        "hdlc_decode",
        "voip_characterization",
        "cbr_characterization",
        "vsys_rpc",
    }
    for scenario in REGISTRY.values():
        assert scenario.repeats >= 1
        assert scenario.tolerance > 0
    # The engine scenarios record the pre-optimization references the
    # acceptance criteria are measured against.
    assert REGISTRY["engine"].reference_median_s is not None
    assert REGISTRY["fleet_events"].reference_median_s is not None
    # The fleet scenarios are unitful so baselines carry throughput.
    assert REGISTRY["fleet_events"].units[0] == "events"
    assert REGISTRY["fleet_datacalls"].units[0] == "datacalls"


def test_fast_scenarios_produce_positive_times():
    for name in ("engine", "hdlc_encode", "hdlc_decode", "vsys_rpc"):
        result = run_scenario(REGISTRY[name], repeats=1, warmup=0)
        assert result.median_s > 0
