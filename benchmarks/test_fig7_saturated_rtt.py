"""Figure 7 — RTT of the 1 Mbit/s flow.

Paper: "this is even more confirmed by the values of the RTT which can
be as large as 3 seconds"; like the other parameters, the RTT improves
after the first ~50 seconds when the bearer upgrade drains the RLC
queue faster.
"""

from benchmarks.conftest import print_figure


def test_fig7_saturated_rtt(benchmark, saturation_runs):
    umts, ethernet = saturation_runs["umts"], saturation_runs["ethernet"]
    umts_series = benchmark(umts.rtt_series)
    eth_series = ethernet.rtt_series()
    print_figure(
        "Figure 7: 1 Mbit/s flow RTT", "ms", 1000.0, umts_series, eth_series
    )

    # RTT driven by RLC queueing: seconds, peaking toward ~3 s.
    assert 2.0 < umts.summary.max_rtt < 4.0
    early = umts_series.between(5.0, 45.0).mean()
    late = umts_series.between(60.0, 115.0).mean()
    # The early phase rides near the buffer's worst case...
    assert early > 2.0
    # ...and the upgrade more than halves the queueing delay.
    assert late < 0.6 * early
    # The wired path is unaffected by the offered load.
    assert eth_series.mean() < 0.030
    print(
        f"\nshape: UMTS RTT early {early:.2f}s, late {late:.2f}s, "
        f"max {umts.summary.max_rtt:.2f}s (paper: up to ~3 s); "
        f"eth {eth_series.mean() * 1000:.1f} ms"
    )
