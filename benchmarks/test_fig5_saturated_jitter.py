"""Figure 5 — Jitter of the 1 Mbit/s flow.

Paper: "the jitter, packet loss, and round-trip delay plots show the
very low performance achieved by the UMTS connection [...] the jitter
reaches values larger than 200 milliseconds, which makes a real time
communication nearly impossible."  The windowed averages sit lower but
far above anything a real-time service tolerates, and improve after
the bearer upgrade.
"""

from benchmarks.conftest import print_figure


def test_fig5_saturated_jitter(benchmark, saturation_runs):
    umts, ethernet = saturation_runs["umts"], saturation_runs["ethernet"]
    umts_series = benchmark(umts.jitter_series)
    eth_series = ethernet.jitter_series()
    print_figure(
        "Figure 5: 1 Mbit/s flow jitter", "ms", 1000.0, umts_series, eth_series
    )

    # Individual delay variations exceed 200 ms (the paper's claim is
    # about the spikes; check the raw per-packet maximum).
    assert umts.summary.max_jitter > 0.2
    # Orders of magnitude above the wired path.
    assert umts_series.mean() > 20.0 * eth_series.mean()
    assert eth_series.maximum() < 0.002
    print(
        f"\nshape: UMTS jitter mean {umts_series.mean() * 1000:.1f} ms, "
        f"raw spike {umts.summary.max_jitter * 1000:.0f} ms (paper: >200 ms); "
        f"eth mean {eth_series.mean() * 1000:.2f} ms"
    )
