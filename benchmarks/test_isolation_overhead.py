"""Cost of the §2.3 isolation machinery.

Not a paper figure, but the design section's implied question: what do
the extra netfilter rules and RPDB lookups cost per packet, and does
isolation actually hold under adversarial load?  The bench measures
the node's local-output path with the full UMTS rule set installed and
a sweep of registered destinations, and asserts the drop rule catches
every intruder packet.
"""

import pytest

from repro.core.isolation import IsolationManager
from repro.net.interface import EthernetInterface, PPPInterface
from repro.net.packet import Packet
from repro.net.stack import IPStack
from repro.netfilter.chains import HOOK_OUTPUT
from repro.sim.engine import Simulator


def build_stack(destinations):
    sim = Simulator()
    stack = IPStack(sim, "node")
    eth = stack.add_interface(EthernetInterface("eth0"))
    stack.configure_interface(eth, "143.225.229.100", 24)
    stack.ip.route_add("default", "eth0", via="143.225.229.1")
    ppp = stack.add_interface(PPPInterface("ppp0"))
    ppp.configure_p2p("10.199.3.7", "10.199.0.1")
    iso = IsolationManager(stack)
    iso.install(510, "10.199.3.7")
    for i in range(destinations):
        iso.add_destination(f"138.96.{i // 250}.{i % 250 + 1}")
    return stack


@pytest.mark.parametrize("destinations", [1, 10, 100])
def test_output_path_with_rules(benchmark, destinations):
    stack = build_stack(destinations)

    def classify_one_packet():
        packet = Packet("138.96.0.1", xid=510, size=90)
        stack.netfilter.run_chain("mangle", HOOK_OUTPUT, packet, now=0.0)
        route = stack.rpdb.lookup(packet.dst, mark=packet.mark)
        return route

    route = benchmark(classify_one_packet)
    assert route.dev == "ppp0"
    print(f"\nmangle/OUTPUT traversal + RPDB lookup with "
          f"{destinations} destination rules")


def test_drop_rule_catches_all_intruders(benchmark):
    stack = build_stack(1)
    drop_rule = stack.netfilter.table("filter").chain("OUTPUT").rules[0]

    def adversarial_burst():
        caught = 0
        for xid in (0, 100, 600, 666):
            packet = Packet("10.199.0.1", xid=xid, size=100)
            ok = stack.netfilter.run_chain(
                "filter", HOOK_OUTPUT, packet, out_iface="ppp0", now=0.0
            )
            if not ok:
                caught += 1
        return caught

    caught = benchmark(adversarial_burst)
    assert caught == 4  # every non-510 context is dropped
    assert drop_rule.packets >= 4
