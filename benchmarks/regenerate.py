#!/usr/bin/env python3
"""Regenerate every figure's data as CSV, outside pytest.

Runs the paper's two experiments on both paths and writes the series
behind Figures 1-7 (plus the RAB grade timeline) into an output
directory, one CSV per series per path, together with a summary file
recording the shape checkpoints from EXPERIMENTS.md.

Usage::

    python benchmarks/regenerate.py --out results [--duration 120] [--seed 3]

The CSVs are two columns (time_s, value) and plot directly with
gnuplot, matplotlib or a spreadsheet.
"""

import argparse
import pathlib
import sys

from repro import (
    PATH_ETHERNET,
    PATH_UMTS,
    cbr,
    run_characterization,
    voip_g711,
)
from repro.analysis.export import export_experiment


def regenerate(out_dir: pathlib.Path, duration: float, seed: int) -> int:
    out_dir.mkdir(parents=True, exist_ok=True)
    lines = [f"regeneration run: duration={duration}s seed={seed}", ""]
    runs = {}
    for workload, factory in (("voip", voip_g711), ("sat", cbr)):
        for path in (PATH_UMTS, PATH_ETHERNET):
            print(f"running {workload} over {path} ({duration:.0f}s)...")
            result = run_characterization(
                factory(duration=duration), path=path, seed=seed
            )
            runs[(workload, path)] = result
            written = export_experiment(
                result, out_dir, prefix=f"{workload}_{path}_"
            )
            print(f"  wrote {len(written)} series")

    figure_map = [
        ("Figure 1 (VoIP bitrate)", "voip", "bitrate_kbps"),
        ("Figure 2 (VoIP jitter)", "voip", "jitter_s"),
        ("Figure 3 (VoIP RTT)", "voip", "rtt_s"),
        ("Figure 4 (1Mbps bitrate)", "sat", "bitrate_kbps"),
        ("Figure 5 (1Mbps jitter)", "sat", "jitter_s"),
        ("Figure 6 (1Mbps loss)", "sat", "loss_pkt"),
        ("Figure 7 (1Mbps RTT)", "sat", "rtt_s"),
    ]
    lines.append("figure -> files")
    for title, workload, series in figure_map:
        lines.append(
            f"{title}: {workload}_umts_{series}.csv vs {workload}_ethernet_{series}.csv"
        )
    lines.append("")

    voip_umts = runs[("voip", PATH_UMTS)].summary
    voip_eth = runs[("voip", PATH_ETHERNET)].summary
    sat_umts = runs[("sat", PATH_UMTS)]
    lines.append("shape checkpoints (see EXPERIMENTS.md):")
    lines.append(
        f"  VoIP bitrate: UMTS {voip_umts.mean_bitrate_kbps:.1f} / "
        f"eth {voip_eth.mean_bitrate_kbps:.1f} kbit/s (paper: both ~72)"
    )
    lines.append(
        f"  VoIP loss: UMTS {voip_umts.packets_lost} / eth {voip_eth.packets_lost} "
        "(paper: 0 and 0)"
    )
    lines.append(
        f"  VoIP max RTT: {voip_umts.max_rtt * 1000:.0f} ms (paper: up to ~700 ms)"
    )
    bitrate = sat_umts.bitrate_kbps()
    early = bitrate.between(5.0, min(45.0, duration * 0.4)).mean()
    late = bitrate.between(duration * 0.6, duration - 2.0).mean()
    lines.append(
        f"  saturation bitrate: early {early:.0f} -> late {late:.0f} kbit/s "
        "(paper: ~150 -> ~400)"
    )
    lines.append(
        f"  saturation max RTT: {sat_umts.summary.max_rtt:.2f} s (paper: ~3 s)"
    )
    summary_path = out_dir / "summary.txt"
    summary_path.write_text("\n".join(lines) + "\n")
    print(f"\nsummary written to {summary_path}")
    for line in lines:
        print(line)
    return 0


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=pathlib.Path("results"))
    parser.add_argument("--duration", type=float, default=120.0)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args(argv)
    return regenerate(args.out, args.duration, args.seed)


if __name__ == "__main__":
    sys.exit(main())
