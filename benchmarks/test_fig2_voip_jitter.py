"""Figure 2 — Jitter of the VoIP-like flow.

Paper: "the UMTS connection introduces a higher jitter, which is also
more fluctuating.  It reaches values up to 30 milliseconds which,
however, still allows a VoIP communication to be satisfying."
"""

from benchmarks.conftest import print_figure


def test_fig2_voip_jitter(benchmark, voip_runs):
    umts, ethernet = voip_runs["umts"], voip_runs["ethernet"]
    umts_series = benchmark(umts.jitter_series)
    eth_series = ethernet.jitter_series()
    print_figure("Figure 2: VoIP jitter", "ms", 1000.0, umts_series, eth_series)

    # UMTS jitter well above Ethernet's.
    assert umts_series.mean() > 10.0 * eth_series.mean()
    # Windowed peaks in the tens of milliseconds, not seconds
    # (the paper: spikes up to ~30 ms, VoIP still usable).
    assert 0.010 < umts_series.maximum() < 0.120
    # Ethernet jitter is sub-millisecond.
    assert eth_series.maximum() < 0.002
    print(
        f"\nshape: UMTS jitter mean {umts_series.mean() * 1000:.2f} ms, "
        f"max {umts_series.maximum() * 1000:.1f} ms (paper: spikes toward ~30 ms); "
        f"eth max {eth_series.maximum() * 1000:.2f} ms"
    )
