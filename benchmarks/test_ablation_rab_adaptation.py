"""Ablation — the RAB adaptation behind Figure 4.

DESIGN.md calls the demand-driven bearer upgrade the load-bearing
model for the saturation experiment.  This bench re-runs the 1 Mbit/s
flow with adaptation disabled (the bearer stays at the initial
144 kbit/s grade) and shows that the paper's "more than doubled after
~50 s" effect disappears: the plateau persists for the whole run.
"""

from repro import PATH_UMTS, cbr, run_characterization
from repro.umts.operator import commercial_operator
from repro.umts.rab import RabConfig


def frozen_operator(sim, streams):
    return commercial_operator(
        sim, streams, rab_config=RabConfig(adaptation_enabled=False)
    )


def test_ablation_rab_adaptation(benchmark):
    frozen = benchmark.pedantic(
        lambda: run_characterization(
            cbr(duration=120.0),
            path=PATH_UMTS,
            seed=3,
            operator_factory=frozen_operator,
        ),
        rounds=1,
        iterations=1,
    )
    adaptive = run_characterization(cbr(duration=120.0), path=PATH_UMTS, seed=3)

    frozen_series = frozen.bitrate_kbps()
    adaptive_series = adaptive.bitrate_kbps()
    rows = [
        ("adaptation ON ", adaptive_series),
        ("adaptation OFF", frozen_series),
    ]
    print("\n=== Ablation: RAB adaptation (bitrate, kbit/s) ===")
    for label, series in rows:
        early = series.between(5.0, 45.0).mean()
        late = series.between(60.0, 115.0).mean()
        print(f"  {label}: early {early:6.1f} -> late {late:6.1f}")

    # Without adaptation the plateau persists: no doubling.
    frozen_early = frozen_series.between(5.0, 45.0).mean()
    frozen_late = frozen_series.between(60.0, 115.0).mean()
    assert abs(frozen_late - frozen_early) < 0.2 * frozen_early
    assert len(frozen.rab_history.as_pairs()) == 1  # no grade changes
    # With adaptation the paper's effect is present.
    adaptive_late = adaptive_series.between(60.0, 115.0).mean()
    assert adaptive_late > 2.0 * frozen_late
    # And the frozen run loses correspondingly more packets.
    assert frozen.summary.loss_fraction > adaptive.summary.loss_fraction
