"""Micro-benchmarks of the simulation core.

The experiments schedule hundreds of thousands of events (every packet
is a handful); these benches track the engine's raw event throughput
and the cost of the per-packet fast path (socket → hooks → RPDB →
channel), so performance regressions in the substrate show up here
before they make the figure benches crawl.
"""


from repro.net.interface import EthernetInterface
from repro.net.link import Link
from repro.net.stack import IPStack
from repro.sim.engine import Simulator
from repro.sim.process import spawn


def test_event_throughput(benchmark):
    def schedule_and_drain():
        sim = Simulator()
        count = [0]

        def bump():
            count[0] += 1

        for i in range(20_000):
            sim.schedule(i * 1e-6, bump)
        sim.run()
        return count[0]

    dispatched = benchmark(schedule_and_drain)
    assert dispatched == 20_000


def test_process_switch_throughput(benchmark):
    def ping_pong():
        sim = Simulator()
        hops = [0]

        def runner():
            for _ in range(5_000):
                hops[0] += 1
                yield 0.001

        spawn(sim, runner())
        sim.run()
        return hops[0]

    hops = benchmark(ping_pong)
    assert hops == 5_000


def test_packet_fast_path(benchmark):
    sim = Simulator()
    a = IPStack(sim, "a")
    b = IPStack(sim, "b")
    a_eth = a.add_interface(EthernetInterface("eth0"))
    b_eth = b.add_interface(EthernetInterface("eth0"))
    a.configure_interface(a_eth, "10.0.0.1", 24)
    b.configure_interface(b_eth, "10.0.0.2", 24)
    Link(sim, a_eth, b_eth, rate_bps=1e9, delay=0.0001)
    server = b.socket()
    server.bind(port=9)
    received = [0]
    server.on_receive = lambda *args: received.__setitem__(0, received[0] + 1)
    client = a.socket()

    def send_batch():
        before = received[0]
        for _ in range(100):
            client.sendto("x", 100, "10.0.0.2", 9)
        sim.run(until=sim.now + 1.0)
        return received[0] - before

    delivered = benchmark(send_batch)
    assert delivered == 100
