"""Extension experiment — downlink characterization.

The paper measures the uplink ("clearly saturates the up-link of the
UMTS connection"); its introduction cites HSDPA rates of up to
14 Mbit/s downstream vs 5.8 upstream.  This extension bench runs the
same 1 Mbit/s flow *toward* the mobile node: on the downlink the flow
fits (HSDPA-class bearer), confirming the asymmetry the paper leaves
implicit — and exercising the reproduction's other steering rule (the
mobile's receiver binds to the UMTS interface, so its traffic matches
the source-address RPDB rule rather than the fwmark rule).
"""

from repro import PATH_UMTS, cbr, run_characterization
from repro.testbed.experiment import DIRECTION_DOWNLINK


def test_ext_downlink_asymmetry(benchmark):
    downlink = benchmark.pedantic(
        lambda: run_characterization(
            cbr(duration=60.0, meter="owd"),
            path=PATH_UMTS,
            seed=3,
            direction=DIRECTION_DOWNLINK,
        ),
        rounds=1,
        iterations=1,
    )
    uplink = run_characterization(
        cbr(duration=60.0, meter="owd"), path=PATH_UMTS, seed=3
    )
    d, u = downlink.summary, uplink.summary
    print("\n=== Extension: 1 Mbit/s downlink vs uplink over UMTS ===")
    print(f"  downlink: bitrate {d.mean_bitrate_kbps:7.1f} kbit/s, "
          f"loss {d.loss_fraction * 100:5.1f}%, OWD mean {d.mean_owd * 1000:6.1f} ms")
    print(f"  uplink  : bitrate {u.mean_bitrate_kbps:7.1f} kbit/s, "
          f"loss {u.loss_fraction * 100:5.1f}%, OWD mean {u.mean_owd * 1000:6.1f} ms")

    # The downlink carries the megabit; the uplink cannot.
    assert d.mean_bitrate_kbps > 900.0
    assert d.loss_fraction < 0.01
    assert u.loss_fraction > 0.5
    assert u.mean_bitrate_kbps < 450.0
    # Downlink delay stays radio-dominated (no seconds-deep queue).
    assert d.mean_owd < 0.5 * u.mean_owd
