"""Figure 3 — RTT of the VoIP-like flow.

Paper: "the average value is higher for the UMTS connection with
respect to the Ethernet one.  Moreover [...] the RTT is more
fluctuating on the wireless connection and it reaches values up to
700 milliseconds."
"""

from benchmarks.conftest import print_figure


def test_fig3_voip_rtt(benchmark, voip_runs):
    umts, ethernet = voip_runs["umts"], voip_runs["ethernet"]
    umts_series = benchmark(umts.rtt_series)
    eth_series = ethernet.rtt_series()
    print_figure("Figure 3: VoIP RTT", "ms", 1000.0, umts_series, eth_series)

    # UMTS RTT far above the wired path's ~20 ms.
    assert umts_series.mean() > 0.120
    assert eth_series.mean() < 0.030
    # Spikes in the hundreds of milliseconds, toward ~700 ms.
    assert 0.3 < umts.summary.max_rtt < 1.2
    # More fluctuating than the wired path.
    assert umts_series.stdev() > 10.0 * eth_series.stdev()
    print(
        f"\nshape: UMTS RTT mean {umts_series.mean() * 1000:.0f} ms, "
        f"max {umts.summary.max_rtt * 1000:.0f} ms (paper: up to ~700 ms); "
        f"eth mean {eth_series.mean() * 1000:.1f} ms"
    )
