"""Ablation — operator profiles (§2.1's two networks).

The paper used two UMTS networks: a commercial operator and the
Alcatel-Lucent private micro-cell.  The reproduction gives each a
profile; this bench runs both workloads on both and checks the
differences the profiles encode: the micro-cell upgrades the bearer
within seconds, has a quieter radio path, and does not firewall
inbound traffic.
"""

from repro import (
    PATH_UMTS,
    cbr,
    commercial_operator,
    private_microcell,
    run_characterization,
    voip_g711,
)


def run_pair(factory, seed=9):
    voip = run_characterization(
        voip_g711(duration=60.0), path=PATH_UMTS, seed=seed, operator_factory=factory
    )
    sat = run_characterization(
        cbr(duration=120.0), path=PATH_UMTS, seed=seed, operator_factory=factory
    )
    return voip, sat


def test_ablation_operator_profiles(benchmark):
    commercial_voip, commercial_sat = benchmark.pedantic(
        lambda: run_pair(commercial_operator), rounds=1, iterations=1
    )
    microcell_voip, microcell_sat = run_pair(private_microcell)

    def upgrade_time(result):
        origin = result.decoder.origin
        changes = result.rab_history.as_pairs()[1:]
        return changes[0][0] - origin if changes else None

    commercial_upgrade = upgrade_time(commercial_sat)
    microcell_upgrade = upgrade_time(microcell_sat)
    print("\n=== Ablation: operator profiles ===")
    print(f"  commercial : VoIP jitter {commercial_voip.summary.mean_jitter * 1000:6.2f} ms, "
          f"upgrade at {commercial_upgrade:5.1f}s, "
          f"inbound blocked={commercial_sat.scenario.operator.ggsn.block_inbound}")
    print(f"  micro-cell : VoIP jitter {microcell_voip.summary.mean_jitter * 1000:6.2f} ms, "
          f"upgrade at {microcell_upgrade:5.1f}s, "
          f"inbound blocked={microcell_sat.scenario.operator.ggsn.block_inbound}")

    # The commercial network is the lazy one (the ~50 s plateau).
    assert commercial_upgrade is not None and 35.0 < commercial_upgrade < 65.0
    # The micro-cell grants the upgrade within seconds.
    assert microcell_upgrade is not None and microcell_upgrade < 15.0
    # Quieter radio on the micro-cell.
    assert microcell_voip.summary.mean_jitter < commercial_voip.summary.mean_jitter
    assert microcell_voip.summary.mean_rtt < commercial_voip.summary.mean_rtt
    # Firewalling differs as §2.2 implies (ssh unreachable commercially).
    assert commercial_sat.scenario.operator.ggsn.block_inbound
    assert not microcell_sat.scenario.operator.ggsn.block_inbound
