"""Operational benches: dial-up latency and simulator throughput.

Not paper figures, but the numbers a testbed operator asks first: how
long does ``umts start`` take (registration + PDP activation + PPP),
and how fast does the whole simulation run relative to simulated time.
"""

from repro import OneLabScenario, PATH_UMTS, run_characterization, voip_g711


def test_umts_start_latency(benchmark):
    """Simulated seconds from `umts start` to ppp0 up, over seeds."""

    def dial_once(seed=[100]):
        seed[0] += 1
        scenario = OneLabScenario(seed=seed[0])
        umts = scenario.umts_command()
        began = scenario.sim.now
        result = umts.start_blocking()
        assert result.ok
        return scenario.sim.now - began

    latency = benchmark(dial_once)
    print(f"\nlast observed dial-up latency: {latency:.1f} simulated s "
          "(registration search + PDP activation + LCP/IPCP)")
    assert 3.0 < latency < 30.0


def test_full_experiment_wall_time(benchmark):
    """Wall-clock cost of one complete 120 s-simulated VoIP experiment."""
    result = benchmark.pedantic(
        lambda: run_characterization(
            voip_g711(duration=120.0), path=PATH_UMTS, seed=77
        ),
        rounds=1,
        iterations=1,
    )
    assert result.summary.packets_received > 11000
    print(f"\nsimulated {result.spec.duration:.0f} s of experiment "
          f"({result.summary.packets_sent} probes + echoes) in the time above")
