"""The campaign runner's wall-clock proof: sharding actually pays.

The 17-scenario chaos suite alone finishes in ~70 ms — too small for
pool startup to amortize — so each job batches ``REPEATS`` identical
runs (which doubles as a per-repeat digest-identity check inside every
worker).  The serial and sharded campaigns must produce the same
digest, the digest must match the committed ``BENCH_campaign.json``
baseline, and with four real cores the sharded run must be at least
2x faster.  Set ``REPRO_UPDATE_BASELINES=1`` to rewrite the baseline.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.bench.baseline import machine_metadata
from repro.parallel import chaos_jobs, run_campaign

BASELINE = Path(__file__).parents[1] / "BENCH_campaign.json"

#: Batched repeats per scenario: ~20 x 70 ms = a campaign worth sharding.
REPEATS = 20
TARGET_JOBS = 4
TARGET_SPEEDUP = 2.0


def test_sharded_campaign_is_faster_and_identical(repro_jobs):
    jobs = chaos_jobs(repeats=REPEATS)
    assert len(jobs) == 17
    serial = run_campaign(jobs, workers=1)
    sharded = run_campaign(jobs, workers=repro_jobs)
    speedup = serial.wall_s / sharded.wall_s
    print(f"\n[bench] chaos campaign x{REPEATS}: "
          f"-j1 {serial.wall_s:.2f}s, -j{repro_jobs} {sharded.wall_s:.2f}s "
          f"({speedup:.2f}x), digest {serial.digest[:16]}")

    assert sharded.digest == serial.digest
    assert all(result.stable["ok"] for result in serial.results)

    payload = {
        "schema": 1,
        "workload": f"chaos campaign, {len(jobs)} scenarios x {REPEATS} repeats",
        "jobs": repro_jobs,
        "cpus": multiprocessing.cpu_count(),
        "digest": serial.digest,
        "serial_wall_s": round(serial.wall_s, 3),
        "sharded_wall_s": round(sharded.wall_s, 3),
        "speedup": round(speedup, 2),
        "target_speedup": TARGET_SPEEDUP,
        "machine": machine_metadata(),
    }
    if os.environ.get("REPRO_UPDATE_BASELINES"):
        BASELINE.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[bench] wrote {BASELINE}")
        return

    baseline = json.loads(BASELINE.read_text())
    # The digest is a pure function of the scenario payloads: any
    # machine, any -j, any day must reproduce the committed value.
    assert serial.digest == baseline["digest"]

    if repro_jobs < TARGET_JOBS or multiprocessing.cpu_count() < TARGET_JOBS:
        pytest.skip(f"speedup target needs -j{TARGET_JOBS} and "
                    f">={TARGET_JOBS} cores")
    assert speedup >= TARGET_SPEEDUP, (
        f"chaos campaign at -j{repro_jobs} only {speedup:.2f}x faster than "
        f"-j1 (target {TARGET_SPEEDUP}x; baseline recorded "
        f"{baseline['speedup']}x)"
    )
