"""Shared fixtures for the figure benches.

The paper's two workloads are simulated once per pytest session at
full length (120 s, as in §3.1) on both paths; the per-figure benches
time the decode/regeneration step against those cached runs and check
the figure's shape, printing paper-vs-measured rows.  One bench times
the full end-to-end simulation itself.

The session runs go through :mod:`repro.bench` — the same
:func:`~repro.bench.scenarios.characterization_pair` helper and
:func:`~repro.bench.runner.time_once` timer the ``repro bench``
CLI uses — so pytest benches and the CI bench harness measure and
report through one code path.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import BENCH_DURATION, BENCH_SEED, characterization_pair, time_once

#: One seed for the headline runs (repeatability is its own bench).
SEED = BENCH_SEED
DURATION = BENCH_DURATION


def pytest_addoption(parser):
    parser.addoption(
        "--repro-jobs",
        type=int,
        default=int(os.environ.get("REPRO_JOBS", "4")),
        help="worker processes for campaign benches (env REPRO_JOBS)",
    )


@pytest.fixture(scope="session")
def repro_jobs(pytestconfig):
    """The -j the campaign benches shard across."""
    return pytestconfig.getoption("--repro-jobs")


def _session_pair(kind: str):
    elapsed, runs = time_once(lambda: characterization_pair(kind, seed=SEED,
                                                            duration=DURATION))
    print(f"\n[bench] {kind}_characterization pair: {elapsed * 1000:.1f} ms "
          f"(seed {SEED}, {DURATION:.0f}s per path)")
    return runs


@pytest.fixture(scope="session")
def voip_runs():
    """Figures 1-3: the 72 kbit/s VoIP-like flow on both paths."""
    return _session_pair("voip")


@pytest.fixture(scope="session")
def saturation_runs():
    """Figures 4-7: the 1 Mbit/s CBR flow on both paths."""
    return _session_pair("cbr")


def print_figure(title: str, unit: str, scale: float, umts_series, eth_series) -> None:
    """Print a figure's data as 10-second rows for both paths."""
    print(f"\n=== {title} ===")
    print(f"{'time':>6} {'UMTS-to-Ethernet':>18} {'Ethernet-to-Ethernet':>22}   [{unit}]")
    t = 0.0
    while t < DURATION:
        u = umts_series.between(t, t + 10.0).mean() * scale
        e = eth_series.between(t, t + 10.0).mean() * scale
        print(f"{t:5.0f}s {u:18.2f} {e:22.2f}")
        t += 10.0
