"""Shared fixtures for the figure benches.

The paper's two workloads are simulated once per pytest session at
full length (120 s, as in §3.1) on both paths; the per-figure benches
time the decode/regeneration step against those cached runs and check
the figure's shape, printing paper-vs-measured rows.  One bench times
the full end-to-end simulation itself.
"""

from __future__ import annotations

import pytest

from repro import (
    PATH_ETHERNET,
    PATH_UMTS,
    cbr,
    run_characterization,
    voip_g711,
)

#: One seed for the headline runs (repeatability is its own bench).
SEED = 3
DURATION = 120.0


@pytest.fixture(scope="session")
def voip_runs():
    """Figures 1-3: the 72 kbit/s VoIP-like flow on both paths."""
    return {
        "umts": run_characterization(
            voip_g711(duration=DURATION), path=PATH_UMTS, seed=SEED
        ),
        "ethernet": run_characterization(
            voip_g711(duration=DURATION), path=PATH_ETHERNET, seed=SEED
        ),
    }


@pytest.fixture(scope="session")
def saturation_runs():
    """Figures 4-7: the 1 Mbit/s CBR flow on both paths."""
    return {
        "umts": run_characterization(
            cbr(duration=DURATION), path=PATH_UMTS, seed=SEED
        ),
        "ethernet": run_characterization(
            cbr(duration=DURATION), path=PATH_ETHERNET, seed=SEED
        ),
    }


def print_figure(title: str, unit: str, scale: float, umts_series, eth_series) -> None:
    """Print a figure's data as 10-second rows for both paths."""
    print(f"\n=== {title} ===")
    print(f"{'time':>6} {'UMTS-to-Ethernet':>18} {'Ethernet-to-Ethernet':>22}   [{unit}]")
    t = 0.0
    while t < DURATION:
        u = umts_series.between(t, t + 10.0).mean() * scale
        e = eth_series.between(t, t + 10.0).mean() * scale
        print(f"{t:5.0f}s {u:18.2f} {e:22.2f}")
        t += 10.0
