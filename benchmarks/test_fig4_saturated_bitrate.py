"""Figure 4 — Bitrate of the 1 Mbit/s flow.

Paper: "the bitrate of the UMTS reaches a maximum value of around
400 Kbps [...] representative of the maximum capacity of the up-link";
and "in the first 50 seconds the achieved bitrate is about 150 Kbps.
After that time, instead, the bitrate is more than doubled.  This is
due to some sort of adaptation algorithm happening inside the UMTS
network."
"""

from benchmarks.conftest import print_figure


def test_fig4_saturated_bitrate(benchmark, saturation_runs):
    umts, ethernet = saturation_runs["umts"], saturation_runs["ethernet"]
    umts_series = benchmark(umts.bitrate_kbps)
    eth_series = ethernet.bitrate_kbps()
    print_figure(
        "Figure 4: 1 Mbit/s flow bitrate", "kbit/s", 1.0, umts_series, eth_series
    )

    early = umts_series.between(5.0, 45.0).mean()
    late = umts_series.between(60.0, 115.0).mean()
    # ~150 kbit/s plateau for the first ~50 s...
    assert 120.0 < early < 180.0
    # ...then "more than doubled", toward the ~400 kbit/s ceiling.
    assert late > 2.0 * early
    assert 320.0 < late < 450.0
    # The adaptation event lands around t = 50 s.
    origin = umts.decoder.origin
    upgrade_times = [t - origin for t, _ in umts.rab_history.as_pairs()[1:]]
    assert len(upgrade_times) == 1
    assert 35.0 < upgrade_times[0] < 65.0
    # The wired path carries the full offered megabit.
    assert abs(eth_series.mean() - 1000.0) < 20.0
    print(
        f"\nshape: early {early:.0f} kbit/s (paper ~150), late {late:.0f} kbit/s "
        f"(paper ~400), upgrade at t={upgrade_times[0]:.0f}s (paper ~50s)"
    )
