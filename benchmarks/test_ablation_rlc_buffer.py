"""Ablation — the RLC buffer depth behind Figure 7's 3-second RTT.

The saturated RTT ceiling is queueing delay in the radio network's
buffer: ceiling ≈ buffer_bytes × 8 / bearer_rate.  DESIGN.md calibrates
the buffer (48 kB) so the early-phase ceiling lands at the paper's
"as large as 3 seconds".  This bench sweeps the buffer and checks the
measured ceiling tracks the prediction — evidence the model's knob does
what the design says, and a map for recalibrating against other
operators.
"""


from repro import PATH_UMTS, cbr, run_characterization
from repro.umts.operator import RadioProfile, commercial_operator
from repro.umts.rab import RabConfig

BUFFER_SIZES = [24_000, 48_000, 96_000]


def operator_with_buffer(buffer_bytes):
    def factory(sim, streams):
        operator = commercial_operator(
            sim,
            streams,
            # Freeze adaptation so the ceiling is set by one rate.
            rab_config=RabConfig(adaptation_enabled=False),
        )
        operator.uplink_profile = RadioProfile(
            base_delay=operator.uplink_profile.base_delay,
            jitter=operator.uplink_profile.jitter,
            queue_bytes=buffer_bytes,
        )
        return operator

    return factory


def test_ablation_rlc_buffer(benchmark):
    def sweep():
        results = {}
        for buffer_bytes in BUFFER_SIZES:
            result = run_characterization(
                cbr(duration=45.0),
                path=PATH_UMTS,
                seed=3,
                operator_factory=operator_with_buffer(buffer_bytes),
            )
            results[buffer_bytes] = result.summary.max_rtt
        return results

    ceilings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n=== Ablation: RLC buffer depth vs saturated RTT ceiling ===")
    print(f"{'buffer':>9} {'predicted':>11} {'measured':>10}")
    for buffer_bytes, measured in ceilings.items():
        predicted = buffer_bytes * 8 / 144_000.0
        print(f"{buffer_bytes / 1000:6.0f} kB {predicted:9.2f} s {measured:9.2f} s")
        # The measured ceiling is the queueing prediction plus bounded
        # overheads: two-way propagation (~0.17 s), worst-case radio
        # jitter (clamped at 0.5 s up + 0.3 s down) and serialization.
        assert predicted < measured < predicted + 1.1
    # And it is monotone in the buffer size.
    values = list(ceilings.values())
    assert values == sorted(values)
    # The paper's 3 s ceiling corresponds to the calibrated 48 kB.
    assert 2.2 < ceilings[48_000] < 3.5
