"""Figure 6 — Loss of the 1 Mbit/s flow.

Paper: the UMTS connection "is operating in very congested conditions
in this case, and therefore all the QoS parameters are heavily
affected" — the loss plot shows tens of packets lost per 200 ms window
throughout, while the Ethernet path loses nothing.  After the bearer
upgrade the per-window loss drops (more packets get through) but stays
heavy: the offered load is still ~2.6x the upgraded uplink.
"""

from benchmarks.conftest import print_figure


def test_fig6_saturated_loss(benchmark, saturation_runs):
    umts, ethernet = saturation_runs["umts"], saturation_runs["ethernet"]
    umts_series = benchmark(umts.loss_series)
    eth_series = ethernet.loss_series()
    print_figure(
        "Figure 6: 1 Mbit/s flow loss", "pkt/200ms", 1.0, umts_series, eth_series
    )

    offered_per_window = 122 * 0.2  # ≈ 24.4 pkt / 200 ms
    early = umts_series.between(5.0, 45.0).mean()
    late = umts_series.between(60.0, 115.0).mean()
    # Early phase: ~20 of ~24 offered packets lost per window.
    assert 18.0 < early < offered_per_window
    # After the upgrade, loss decreases but stays heavy.
    assert 10.0 < late < early
    # The Ethernet path loses nothing.
    assert sum(eth_series.values) == 0
    assert umts.summary.loss_fraction > 0.6
    print(
        f"\nshape: loss/window early {early:.1f}, late {late:.1f} "
        f"of {offered_per_window:.1f} offered (paper: heavy loss throughout); "
        f"eth total {sum(eth_series.values):.0f}"
    )
