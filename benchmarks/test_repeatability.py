"""§3.1's repeatability protocol.

Paper: "each measurement experiment was executed 20 times and very
similar results were obtained."  We run 20 independent repetitions of
the VoIP experiment (and 8 of the heavier saturation experiment) with
fresh seeds and check the dispersion of the summary statistics: the
means must cluster tightly while the stochastic radio still varies
between runs.
"""

import math


from repro import PATH_UMTS, cbr, run_repetitions, voip_g711


def relative_spread(values):
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(var) / mean if mean else math.inf


def test_voip_20_repetitions(benchmark):
    summaries = benchmark.pedantic(
        lambda: run_repetitions(
            lambda: voip_g711(duration=30.0),
            path=PATH_UMTS,
            repetitions=20,
            base_seed=1000,
        ),
        rounds=1,
        iterations=1,
    )
    assert len(summaries) == 20
    bitrates = [s.mean_bitrate_kbps for s in summaries]
    rtts = [s.mean_rtt for s in summaries]
    print("\n=== VoIP over UMTS, 20 repetitions ===")
    from repro.analysis.aggregate import aggregate_report

    for line in aggregate_report(summaries):
        print(line)
    # "Very similar results": tight dispersion of the run means.
    assert relative_spread(bitrates) < 0.02
    assert relative_spread(rtts) < 0.15
    assert all(s.packets_lost == 0 for s in summaries)
    # But not byte-identical: different seeds explore different noise.
    assert len(set(rtts)) > 1


def test_saturation_repetitions(benchmark):
    summaries = benchmark.pedantic(
        lambda: run_repetitions(
            lambda: cbr(duration=120.0),
            path=PATH_UMTS,
            repetitions=8,
            base_seed=2000,
        ),
        rounds=1,
        iterations=1,
    )
    losses = [s.loss_fraction for s in summaries]
    bitrates = [s.mean_bitrate_kbps for s in summaries]
    print("\n=== 1 Mbit/s over UMTS, 8 repetitions ===")
    print(f"loss:    {min(losses) * 100:.1f}% .. {max(losses) * 100:.1f}%")
    print(f"bitrate: {min(bitrates):.0f} .. {max(bitrates):.0f} kbit/s")
    assert relative_spread(losses) < 0.05
    assert relative_spread(bitrates) < 0.10
    # Every repetition shows the adaptation: heavy loss, ceiling bitrate.
    assert all(s.loss_fraction > 0.6 for s in summaries)
    assert all(2.0 < s.max_rtt < 4.0 for s in summaries)
