"""Figure 1 — Bitrate of the VoIP-like flow.

Paper: "the bitrate of the UMTS connection is more fluctuating than in
the Ethernet case even though, in both cases, the required value is
achieved in average" (72 kbit/s); packet loss "was always equal to 0"
for this experiment on both paths.
"""

from benchmarks.conftest import print_figure


def test_fig1_voip_bitrate(benchmark, voip_runs):
    umts, ethernet = voip_runs["umts"], voip_runs["ethernet"]
    umts_series = benchmark(umts.bitrate_kbps)
    eth_series = ethernet.bitrate_kbps()
    print_figure("Figure 1: VoIP bitrate", "kbit/s", 1.0, umts_series, eth_series)

    # Required value achieved in average on both paths.
    assert abs(umts_series.mean() - 72.0) < 5.0
    assert abs(eth_series.mean() - 72.0) < 2.0
    # The UMTS series fluctuates visibly more.
    assert umts_series.stdev() > 3.0 * eth_series.stdev()
    # Zero loss on both paths (stated in §3.2.1).
    assert umts.summary.packets_lost == 0
    assert ethernet.summary.packets_lost == 0
    print(
        f"\nshape: mean UMTS {umts_series.mean():.1f} vs eth "
        f"{eth_series.mean():.1f} kbit/s (paper: both ~72); "
        f"stdev ratio {umts_series.stdev() / eth_series.stdev():.1f}x (paper: UMTS wiggles)"
    )
