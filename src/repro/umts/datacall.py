"""One active PDP context / PPP data call.

A :class:`DataCall` glues four things together:

- the **uplink radio channel** (RLC queue + serialization at the
  current RAB grade + transport-network delay/jitter);
- the **downlink radio channel**;
- the **RAB controller** adjusting the uplink grade on demand;
- the **GGSN-side pppd** terminating the session and injecting the
  mobile's packets into the operator's core network.

The modem holds the call and relays PPP frames to/from the serial
port; the GGSN routes downlink IP to the session interface, whose
transmit path is the downlink channel here.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.link import Channel
from repro.ppp.frame import PPP_IP, PPPFrame


class _SessionTransport:
    """The GGSN pppd's frame transport: downlink out, uplink in."""

    def __init__(self, call: "DataCall"):
        self._call = call
        self.receiver: Optional[Callable[[PPPFrame], None]] = None

    def set_receiver(self, callback: Callable[[PPPFrame], None]) -> None:
        self.receiver = callback

    def send_frame(self, frame: PPPFrame) -> None:
        self._call.downlink.send(frame)


class DataCall:
    """An active data session between one modem and the GGSN."""

    def __init__(
        self,
        sim,
        uplink: Channel,
        downlink: Channel,
        rab_controller,
        operator,
        assigned_address,
    ):
        self.sim = sim
        self.uplink = uplink
        self.downlink = downlink
        self.rab = rab_controller
        self.operator = operator
        self.assigned_address = assigned_address
        self.server_pppd = None  # set by the operator right after creation
        self.transport = _SessionTransport(self)
        self._modem_downlink: Optional[Callable[[PPPFrame], None]] = None
        self._on_drop: Optional[Callable[[str], None]] = None
        self.active = True
        self.started_at = sim.now
        self.uplink_frames = 0
        self.downlink_frames = 0
        uplink._deliver = self._uplink_deliver
        downlink._deliver = self._downlink_deliver

    # -- modem-facing API ------------------------------------------------

    @property
    def advertised_rate_bps(self) -> float:
        """The rate the CONNECT message announces (downlink rate)."""
        return self.downlink.rate_bps

    def send_uplink(self, frame: PPPFrame) -> None:
        """Modem → network.  Drops count against the RLC queue."""
        if not self.active:
            return
        self.uplink.send(frame)

    def set_downlink(self, callback: Callable[[PPPFrame], None]) -> None:
        """Register the modem's downlink frame handler."""
        self._modem_downlink = callback

    def set_on_drop(self, callback: Callable[[str], None]) -> None:
        """Register the modem's network-hangup notification."""
        self._on_drop = callback

    def hangup(self, reason: str = "mobile hangup") -> None:
        """Terminate the session from the mobile side."""
        self.operator.close_data_call(self, reason)

    # -- network-internal ---------------------------------------------------

    def _uplink_deliver(self, frame: PPPFrame) -> None:
        if not self.active:
            return
        self.uplink_frames += 1
        if frame.protocol == PPP_IP:
            self.operator.ggsn.record_flow(
                frame.payload.src, frame.payload.dst, self.sim.now
            )
        if self.transport.receiver is not None:
            self.transport.receiver(frame)

    def _downlink_deliver(self, frame: PPPFrame) -> None:
        if not self.active:
            return
        self.downlink_frames += 1
        if self._modem_downlink is not None:
            self._modem_downlink(frame)

    def network_drop(self, reason: str) -> None:
        """Called by the operator when the network ends the session."""
        if self._on_drop is not None:
            self._on_drop(reason)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else "closed"
        return f"<DataCall {self.assigned_address} {state}>"
