"""Address and operator pools.

Two resource pools live here:

- :class:`AddressPool` — the GGSN's PDP address pool, handing out
  mobile addresses in deterministic host order with FIFO reuse and a
  typed :class:`PoolExhaustedError` when it drains;
- :class:`OperatorPool` — the set of operators a card can see, with
  deterministic PLMN selection: the home operator is always preferred
  and roaming candidates are tried in registration order (the SIM's
  preferred-PLMN list).  The scenario grammar's roaming dimension
  draws its visited network from here.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Set

from repro.net.addressing import IPv4Address, IPv4Network, NetworkLike, network


class PoolExhaustedError(Exception):
    """No free addresses remain in the pool."""


class NoOperatorError(Exception):
    """No registered operator matches the requested selection."""


class AddressPool:
    """Allocates mobile addresses from one prefix.

    The network and broadcast addresses and any reserved addresses
    (the GGSN's own) are never handed out.  Released addresses are
    reused FIFO, like a real GGSN's round-robin pool.
    """

    def __init__(self, prefix: NetworkLike, reserved: List[str] = ()):
        self.prefix: IPv4Network = network(prefix)
        self._reserved: Set[IPv4Address] = {
            self.prefix.network_address,
            self.prefix.broadcast_address,
        }
        for addr in reserved:
            self._reserved.add(IPv4Address(addr))
        self._in_use: Set[IPv4Address] = set()
        self._released: List[IPv4Address] = []
        self._cursor = iter(self.prefix.hosts())

    @property
    def in_use(self) -> int:
        """How many addresses are currently allocated."""
        return len(self._in_use)

    def allocate(self) -> IPv4Address:
        """Hand out a free address; raises :class:`PoolExhaustedError`."""
        while self._released:
            addr = self._released.pop(0)
            if addr not in self._in_use:
                self._in_use.add(addr)
                return addr
        for addr in self._cursor:
            if addr in self._reserved or addr in self._in_use:
                continue
            self._in_use.add(addr)
            return addr
        raise PoolExhaustedError(f"pool {self.prefix} exhausted")

    def release(self, addr: IPv4Address) -> None:
        """Return an address to the pool."""
        if addr not in self._in_use:
            raise ValueError(f"{addr} was not allocated from this pool")
        self._in_use.remove(addr)
        self._released.append(addr)

    def __contains__(self, addr) -> bool:
        return IPv4Address(str(addr)) in self.prefix


class OperatorPool:
    """The operators visible to one card, in deterministic order.

    Selection never depends on hashing, insertion races, or RNG draws:
    scenario runs that roam must stay byte-identical per seed, so the
    pool is a plain ordered list with the home network pinned first.
    """

    def __init__(self) -> None:
        self._home: Optional[Any] = None
        self._visited: List[Any] = []

    @property
    def home(self) -> Optional[Any]:
        """The home operator, if one was registered."""
        return self._home

    def register(self, operator: Any, home: bool = False) -> Any:
        """Add an operator to the pool; at most one may be home."""
        if home:
            if self._home is not None:
                raise ValueError(
                    f"home operator already registered ({self._home!r})"
                )
            self._home = operator
        elif operator not in self._visited:
            self._visited.append(operator)
        return operator

    def operators(self) -> List[Any]:
        """Every registered operator, home first then visit order."""
        ordered: List[Any] = []
        if self._home is not None:
            ordered.append(self._home)
        ordered.extend(self._visited)
        return ordered

    def select(self, apn: Optional[str] = None, exclude: Sequence[Any] = ()) -> Any:
        """The first operator serving ``apn`` (any APN when ``None``).

        Raises :class:`NoOperatorError` when nothing matches — the
        typed signal scenario validation and the roaming driver rely
        on, mirroring :class:`PoolExhaustedError` for addresses.
        """
        for operator in self.operators():
            if operator in exclude:
                continue
            if apn is not None and operator.apn != apn:
                continue
            return operator
        raise NoOperatorError(
            f"no operator serves apn={apn!r} "
            f"(registered: {len(self.operators())}, excluded: {len(tuple(exclude))})"
        )

    def roaming_partner(self, apn: Optional[str] = None) -> Any:
        """The preferred *visited* network for ``apn`` (home excluded)."""
        exclude = (self._home,) if self._home is not None else ()
        return self.select(apn=apn, exclude=exclude)

    def __len__(self) -> int:
        return len(self.operators())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<OperatorPool home={self._home!r} visited={len(self._visited)}>"
