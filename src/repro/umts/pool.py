"""The operator's PDP address pool."""

from __future__ import annotations

from typing import List, Set

from repro.net.addressing import IPv4Address, IPv4Network, NetworkLike, network


class PoolExhaustedError(Exception):
    """No free addresses remain in the pool."""


class AddressPool:
    """Allocates mobile addresses from one prefix.

    The network and broadcast addresses and any reserved addresses
    (the GGSN's own) are never handed out.  Released addresses are
    reused FIFO, like a real GGSN's round-robin pool.
    """

    def __init__(self, prefix: NetworkLike, reserved: List[str] = ()):
        self.prefix: IPv4Network = network(prefix)
        self._reserved: Set[IPv4Address] = {
            self.prefix.network_address,
            self.prefix.broadcast_address,
        }
        for addr in reserved:
            self._reserved.add(IPv4Address(addr))
        self._in_use: Set[IPv4Address] = set()
        self._released: List[IPv4Address] = []
        self._cursor = iter(self.prefix.hosts())

    @property
    def in_use(self) -> int:
        """How many addresses are currently allocated."""
        return len(self._in_use)

    def allocate(self) -> IPv4Address:
        """Hand out a free address; raises :class:`PoolExhaustedError`."""
        while self._released:
            addr = self._released.pop(0)
            if addr not in self._in_use:
                self._in_use.add(addr)
                return addr
        for addr in self._cursor:
            if addr in self._reserved or addr in self._in_use:
                continue
            self._in_use.add(addr)
            return addr
        raise PoolExhaustedError(f"pool {self.prefix} exhausted")

    def release(self, addr: IPv4Address) -> None:
        """Return an address to the pool."""
        if addr not in self._in_use:
            raise ValueError(f"{addr} was not allocated from this pool")
        self._in_use.remove(addr)
        self._released.append(addr)

    def __contains__(self, addr) -> bool:
        return IPv4Address(str(addr)) in self.prefix
