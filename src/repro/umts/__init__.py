"""The UMTS network: radio bearers, cells, GGSN, operators.

The paper's experiments ran over real 3G networks; this package is the
synthetic equivalent calibrated to their measurements.  The pieces:

- :mod:`repro.umts.rab` — discrete bearer grades and the demand-driven
  adaptation that produces Figure 4's 50-second effect;
- :mod:`repro.umts.cell` — registration and signal quality (what the
  modem's AT commands observe);
- :mod:`repro.umts.datacall` — one PDP context: radio channels + the
  GGSN-side pppd;
- :mod:`repro.umts.ggsn` — the gateway, address pool and the ingress
  firewall that makes mobiles unreachable from outside;
- :mod:`repro.umts.pool` — the GGSN address pool and the operator pool
  (deterministic PLMN selection for the roaming scenarios);
- :mod:`repro.umts.operator` — the bundle, with profiles for the
  paper's two networks (commercial, Alcatel-Lucent private micro-cell).
"""

from repro.umts.cell import UmtsCell
from repro.umts.datacall import DataCall
from repro.umts.ggsn import EstablishedFlowMatch, Ggsn
from repro.umts.operator import (
    RadioProfile,
    UmtsError,
    UmtsOperator,
    commercial_operator,
    private_microcell,
)
from repro.umts.pool import (
    AddressPool,
    NoOperatorError,
    OperatorPool,
    PoolExhaustedError,
)
from repro.umts.rab import (
    DEFAULT_UPLINK_GRADES,
    RENEG_IDLE,
    RENEG_PENDING,
    RabConfig,
    RabController,
)

__all__ = [
    "AddressPool",
    "DEFAULT_UPLINK_GRADES",
    "DataCall",
    "EstablishedFlowMatch",
    "Ggsn",
    "NoOperatorError",
    "OperatorPool",
    "PoolExhaustedError",
    "RENEG_IDLE",
    "RENEG_PENDING",
    "RabConfig",
    "RabController",
    "RadioProfile",
    "UmtsCell",
    "UmtsError",
    "UmtsOperator",
    "commercial_operator",
    "private_microcell",
]
