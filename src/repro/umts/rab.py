"""Radio Access Bearers and demand-driven rate adaptation.

UMTS dedicated channels come in discrete rate *grades* (64/128/144/256/
384 kbit/s uplink in Release 99).  The paper's saturation experiment
surfaces exactly this machinery: for the first ~50 seconds the uplink
delivers ~150 kbit/s, then "some sort of adaptation algorithm happening
inside the UMTS network" more than doubles it to ~400 kbit/s — the RNC
observed sustained demand and upgraded the bearer.

:class:`RabController` reproduces that behaviour over a
:class:`~repro.net.link.Channel`: it samples the RLC backlog every
``eval_period``; once the backlog has stayed above
``upgrade_threshold_bytes`` for ``sustain_time`` seconds, it requests
the next grade, which takes effect ``grant_delay`` seconds later.  An
idle bearer is downgraded back to the initial grade.  Disabling
``adaptation_enabled`` freezes the initial grade (the ablation bench).

Beyond the demand loop, :meth:`RabController.renegotiate` models an
explicit mid-call RAB renegotiation (3GPP "RAB modify"): the scenario
grammar drives it for RAT ladder climbs (GPRS→EDGE→UMTS→HSDPA) and for
signal-strength-driven adaptation after a handover.  A renegotiation is
a two-phase request/grant exchange, and it has a *defined failure
path*: preemption (or bearer release) while the grant is outstanding
aborts the renegotiation — the bearer settles at the preempted grade
and the abort is counted in ``renegotiations_failed`` — instead of
silently keeping the old rate with a stale grant in flight.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.link import Channel
from repro.sim.engine import Simulator
from repro.sim.monitor import TimeSeries

#: Release-99 style uplink grades in bit/s.
DEFAULT_UPLINK_GRADES = [64_000.0, 144_000.0, 384_000.0]

#: Renegotiation states (:attr:`RabController.renegotiation`).
RENEG_IDLE = "idle"
RENEG_PENDING = "pending"


class RabConfig:
    """Tunable parameters of the bearer adaptation.

    The defaults are calibrated so the saturation experiment reproduces
    the paper's timeline: initial grade 144 kbit/s (~150 kbit/s
    app-layer plateau), upgrade to 384 kbit/s taking effect around
    t = 50 s under sustained load.
    """

    def __init__(
        self,
        grades: Optional[List[float]] = None,
        initial_grade_index: int = 1,
        eval_period: float = 2.0,
        upgrade_threshold_bytes: int = 4000,
        sustain_time: float = 44.0,
        grant_delay: float = 4.0,
        idle_time: float = 30.0,
        adaptation_enabled: bool = True,
    ):
        self.grades = list(grades) if grades is not None else list(DEFAULT_UPLINK_GRADES)
        if not self.grades:
            raise ValueError("at least one grade is required")
        if sorted(self.grades) != self.grades:
            raise ValueError("grades must be sorted ascending")
        if not 0 <= initial_grade_index < len(self.grades):
            raise ValueError(
                f"initial grade index {initial_grade_index} outside "
                f"0..{len(self.grades) - 1}"
            )
        if eval_period <= 0:
            raise ValueError("eval_period must be positive")
        self.initial_grade_index = initial_grade_index
        self.eval_period = eval_period
        self.upgrade_threshold_bytes = upgrade_threshold_bytes
        self.sustain_time = sustain_time
        self.grant_delay = grant_delay
        self.idle_time = idle_time
        self.adaptation_enabled = adaptation_enabled

    def copy(self, **overrides) -> "RabConfig":
        """A copy with some fields replaced (bench parameter sweeps)."""
        fields = dict(
            grades=self.grades,
            initial_grade_index=self.initial_grade_index,
            eval_period=self.eval_period,
            upgrade_threshold_bytes=self.upgrade_threshold_bytes,
            sustain_time=self.sustain_time,
            grant_delay=self.grant_delay,
            idle_time=self.idle_time,
            adaptation_enabled=self.adaptation_enabled,
        )
        fields.update(overrides)
        return RabConfig(**fields)


class RabController:
    """The RNC-side logic assigning a grade to one uplink channel."""

    def __init__(self, sim: Simulator, channel: Channel, config: RabConfig):
        self.sim = sim
        self.channel = channel
        self.config = config
        self.grade_index = config.initial_grade_index
        self.channel.rate_bps = config.grades[self.grade_index]
        self._sustained = 0.0
        self._idle = 0.0
        self._pending_grant = None
        self._pending_reneg = None
        self._reneg_target: Optional[int] = None
        self.renegotiation = RENEG_IDLE
        self.renegotiations = 0
        self.renegotiations_failed = 0
        self.upgrades = 0
        self.downgrades = 0
        #: (time, rate) series of every grade change, for the benches.
        self.grade_history = TimeSeries("rab-grade")
        self.grade_history.add(sim.now, self.current_rate)
        self._timer = None
        self._stopped = False
        if config.adaptation_enabled:
            self._timer = sim.schedule(config.eval_period, self._evaluate)

    @property
    def current_rate(self) -> float:
        """The grade currently in effect, in bit/s."""
        return self.config.grades[self.grade_index]

    def stop(self) -> None:
        """Halt evaluation (the bearer was released)."""
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._pending_grant is not None:
            self._pending_grant.cancel()
            self._pending_grant = None
        if self._pending_reneg is not None:
            # Bearer released with a renegotiation grant outstanding:
            # the request can never be honoured, so it fails cleanly.
            self._abort_renegotiation("released")

    def _evaluate(self) -> None:
        self._timer = None
        if self._stopped:
            return
        config = self.config
        backlog = self.channel.backlog_bytes
        if backlog > config.upgrade_threshold_bytes:
            self._idle = 0.0
            self._sustained += config.eval_period
            if (
                self._sustained >= config.sustain_time
                and self.grade_index < len(config.grades) - 1
                and self._pending_grant is None
                and self._pending_reneg is None
            ):
                self._pending_grant = self.sim.schedule(
                    config.grant_delay, self._apply_upgrade
                )
        elif backlog == 0 and self.channel.backlog_packets == 0:
            self._sustained = 0.0
            self._idle += config.eval_period
            if (
                self._idle >= config.idle_time
                and self.grade_index > config.initial_grade_index
            ):
                self._apply_downgrade()
        else:
            # Light load: neither sustained demand nor idle.
            self._sustained = 0.0
            self._idle = 0.0
        self._timer = self.sim.schedule(config.eval_period, self._evaluate)

    def _apply_upgrade(self) -> None:
        self._pending_grant = None
        if self._stopped or self.grade_index >= len(self.config.grades) - 1:
            return
        self.grade_index += 1
        self.channel.rate_bps = self.current_rate
        self.upgrades += 1
        self._sustained = 0.0
        self.grade_history.add(self.sim.now, self.current_rate)

    def _apply_downgrade(self) -> None:
        self.grade_index = self.config.initial_grade_index
        self.channel.rate_bps = self.current_rate
        self.downgrades += 1
        self._idle = 0.0
        self.grade_history.add(self.sim.now, self.current_rate)

    # -- explicit renegotiation (the scenario grammar's RAB-modify path) --

    def renegotiate(self, target_index: int) -> bool:
        """Request a mid-call renegotiation to an explicit grade.

        Models the RNC accepting a RAB-modify request: the new grade
        takes effect ``grant_delay`` seconds later (the request/grant
        exchange), superseding any demand-driven upgrade grant and any
        earlier renegotiation still in flight.  Returns ``True`` when
        the request was accepted, ``False`` when the bearer is already
        released (a late request against a dead bearer is not an
        error — the scenario driver may race a teardown).
        """
        if not 0 <= target_index < len(self.config.grades):
            raise ValueError(
                f"target grade index {target_index} outside "
                f"0..{len(self.config.grades) - 1}"
            )
        if self._stopped:
            self.renegotiations_failed += 1
            return False
        if self._pending_grant is not None:
            # The explicit request supersedes the demand loop's grant.
            self._pending_grant.cancel()
            self._pending_grant = None
        if self._pending_reneg is not None:
            self._pending_reneg.cancel()
            self._pending_reneg = None
        self._reneg_target = target_index
        self.renegotiation = RENEG_PENDING
        self._pending_reneg = self.sim.schedule(
            self.config.grant_delay, self._apply_renegotiation
        )
        self._emit(
            "rab.renegotiate",
            target_rate=self.config.grades[target_index],
            from_rate=self.current_rate,
        )
        return True

    def _apply_renegotiation(self) -> None:
        self._pending_reneg = None
        target, self._reneg_target = self._reneg_target, None
        self.renegotiation = RENEG_IDLE
        if self._stopped or target is None:
            return
        if target != self.grade_index:
            if target > self.grade_index:
                self.upgrades += 1
            else:
                self.downgrades += 1
            self.grade_index = target
            self.channel.rate_bps = self.current_rate
            self.grade_history.add(self.sim.now, self.current_rate)
        self.renegotiations += 1
        self._sustained = 0.0
        self._idle = 0.0
        self._emit("rab.grade", rate=self.current_rate, cause="renegotiation")
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter("umts.rab.renegotiations").inc()

    def _abort_renegotiation(self, cause: str) -> None:
        """The defined failure path: an in-flight renegotiation dies.

        The pending grant is revoked, the target is forgotten, and the
        bearer settles at whatever grade the aborting event (preemption
        or release) decides — never the stale pre-renegotiation state.
        """
        if self._pending_reneg is not None:
            self._pending_reneg.cancel()
            self._pending_reneg = None
        self._reneg_target = None
        self.renegotiation = RENEG_IDLE
        self.renegotiations_failed += 1
        self._emit("rab.renegotiation_failed", cause=cause)
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter("umts.rab.renegotiations_failed").inc()

    def _emit(self, kind: str, **fields) -> None:
        trace = self.sim.trace
        if trace is not None:
            trace.emit(kind, channel=self.channel.name, **fields)

    def preempt(self) -> None:
        """RNC-initiated preemption: drop to the *lowest* grade.

        Models higher-priority traffic (voice) claiming the cell's
        dedicated-channel budget.  Any pending upgrade grant is revoked
        and demand accounting restarts from scratch; the adaptation
        loop may climb back up later if the load persists.  A
        renegotiation caught mid-grant is aborted through the failure
        path: the bearer settles at the lowest grade, not the stale
        pre-renegotiation rate.
        """
        if self._stopped:
            return
        if self._pending_grant is not None:
            self._pending_grant.cancel()
            self._pending_grant = None
        if self._pending_reneg is not None:
            self._abort_renegotiation("preempted")
        self.grade_index = 0
        self.channel.rate_bps = self.current_rate
        self.downgrades += 1
        self._sustained = 0.0
        self._idle = 0.0
        self.grade_history.add(self.sim.now, self.current_rate)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RabController grade={self.current_rate:.0f}bps>"
