"""The radio cell (NodeB) a modem camps on."""

from __future__ import annotations

import random as _random
from typing import TYPE_CHECKING, Optional

from repro.modem.device import RegistrationStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.umts.operator import UmtsOperator
    from repro.umts.rab import RabConfig


class UmtsCell:
    """One cell: registration behaviour and signal quality.

    This is the object a :class:`~repro.modem.device.Modem3G` is
    plugged into; it satisfies the modem's NetworkAttachment duck-type
    and forwards data-call setup to the operator's core network.
    """

    def __init__(
        self,
        operator: "UmtsOperator",
        name: str = "cell-0",
        base_csq: int = 18,
        csq_spread: int = 4,
        search_time_min: float = 2.0,
        search_time_max: float = 8.0,
        roaming: bool = False,
        deny_registration: bool = False,
        rab_config: Optional["RabConfig"] = None,
    ):
        self.operator = operator
        self.name = name
        self.base_csq = base_csq
        self.csq_spread = csq_spread
        self.search_time_min = search_time_min
        self.search_time_max = search_time_max
        self.roaming = roaming
        self.deny_registration = deny_registration
        #: Per-cell bearer parameters; ``None`` inherits the operator's.
        #: The scenario grammar uses this to model RAT capability per
        #: cell (a GPRS-only cell next to an HSDPA cell).
        self.rab_config = rab_config
        self.attached_modems = 0

    @property
    def operator_name(self) -> str:
        """Operator display name (for ``AT+COPS?``)."""
        return self.operator.name

    def registration_delay(self, rng: _random.Random) -> float:
        """How long the network search takes for this attach."""
        return rng.uniform(self.search_time_min, self.search_time_max)

    def registration_result(self, modem) -> RegistrationStatus:
        """Outcome of the registration attempt."""
        if self.deny_registration:
            return RegistrationStatus.DENIED
        self.attached_modems += 1
        if self.roaming:
            return RegistrationStatus.REGISTERED_ROAMING
        return RegistrationStatus.REGISTERED_HOME

    def detach(self, modem) -> None:
        """The modem left this cell (handover or shutdown)."""
        if self.attached_modems > 0:
            self.attached_modems -= 1

    def signal_quality(self, rng: _random.Random) -> int:
        """``AT+CSQ`` RSSI indicator, 0..31."""
        value = self.base_csq + rng.randint(-self.csq_spread, self.csq_spread)
        return max(0, min(31, value))

    def open_data_call(self, modem, apn: Optional[str] = None):
        """PDP context activation: delegate to the operator core."""
        return self.operator.open_data_call(modem, apn=apn, cell=self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<UmtsCell {self.name} of {self.operator.name!r}>"
