"""The GGSN — the operator's gateway into the Internet.

A forwarding :class:`~repro.net.stack.IPStack` with one public
interface (``gi``, wired to the Internet by the scenario builder) and
one point-to-point interface per active session (created by the
session's server pppd).

The paper notes that "the UMTS connectivity provided by the operators
often employs firewalls or filters that do not allow to reach the
UMTS-equipped host" from outside — which is why the node keeps Ethernet
for control traffic.  :class:`Ggsn` reproduces that with a stateful
ingress rule: traffic toward a pool address is forwarded only when the
mobile talked to that remote endpoint recently (a conntrack-style flow
table), unless the operator runs the GGSN open.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.net.addressing import IPv4Address, ip
from repro.net.stack import IPStack
from repro.netfilter.chains import HOOK_FORWARD, PacketContext, Rule
from repro.netfilter.matches import DestinationMatch, InInterfaceMatch, Match
from repro.netfilter.targets import DropTarget
from repro.sim.engine import Simulator
from repro.umts.pool import AddressPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


class EstablishedFlowMatch(Match):
    """Matches inbound packets belonging to a mobile-initiated flow."""

    def __init__(self, ggsn: "Ggsn", invert: bool = False):
        super().__init__(invert)
        self.ggsn = ggsn

    def _test(self, ctx: PacketContext) -> bool:
        now = ctx.now if ctx.now is not None else 0.0
        return self.ggsn.is_established(ctx.packet.src, ctx.packet.dst, now)

    def __repr__(self) -> str:
        return f"-m conntrack {self._bang()}--ctstate ESTABLISHED"


class Ggsn:
    """The gateway node of one operator."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        pool_prefix: str,
        internal_address: str,
        block_inbound: bool = True,
        conntrack_ttl: float = 300.0,
    ):
        self.sim = sim
        self.stack = IPStack(sim, name)
        self.stack.forwarding = True
        self.internal_address: IPv4Address = ip(internal_address)
        self.pool = AddressPool(pool_prefix, reserved=[internal_address])
        self.block_inbound = block_inbound
        self.conntrack_ttl = conntrack_ttl
        self._flows: Dict[Tuple[IPv4Address, IPv4Address], float] = {}
        self._drop_rule = None
        if block_inbound:
            # The filter sits on the Gi (Internet-facing) interface:
            # traffic arriving from outside toward a pool address is
            # dropped unless the mobile initiated the flow.  Sessions
            # between two mobiles never cross Gi and are unaffected.
            self._drop_rule = Rule(
                [
                    InInterfaceMatch("gi"),
                    DestinationMatch(pool_prefix),
                    EstablishedFlowMatch(self, invert=True),
                ],
                DropTarget(),
                comment="operator ingress filter: mobiles unreachable from outside",
            )
            self.stack.netfilter.table("filter").chain(HOOK_FORWARD).append(
                self._drop_rule
            )

    @property
    def inbound_blocked(self) -> int:
        """Packets the ingress filter has dropped so far."""
        if self._drop_rule is None:
            return 0
        return self._drop_rule.packets

    # -- conntrack-style flow table ------------------------------------

    def record_flow(self, mobile: IPv4Address, remote: IPv4Address, now: float) -> None:
        """Note that the mobile sent to ``remote`` (refreshes the entry)."""
        self._flows[(mobile, remote)] = now

    def is_established(self, remote: IPv4Address, mobile: IPv4Address, now: float) -> bool:
        """Whether inbound remote→mobile matches a recent outbound flow."""
        last = self._flows.get((mobile, remote))
        if last is None:
            return False
        if now - last > self.conntrack_ttl:
            del self._flows[(mobile, remote)]
            return False
        return True

    def expire_flows(self, now: float) -> int:
        """Drop expired entries; returns how many were removed."""
        stale = [k for k, t in self._flows.items() if now - t > self.conntrack_ttl]
        for key in stale:
            del self._flows[key]
        return len(stale)

    @property
    def active_flows(self) -> int:
        """Entries currently in the flow table (may include expired)."""
        return len(self._flows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Ggsn {self.stack.name} pool={self.pool.prefix}>"
