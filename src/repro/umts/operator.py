"""UMTS operators: the RAN + core network bundle, with the two profiles
the paper used.

The OneLab work ran over (i) a **private micro-cell** at the
Alcatel-Lucent 3G Reality Center in Vimercate and (ii) a **commercial
network** of "one of the principal European telecom operators".  The
profile factories at the bottom encode the differences that matter for
the experiments: the commercial network firewalls inbound traffic and
adapts the uplink bearer lazily (the ~50 s effect in Figure 4); the
micro-cell is open, quieter, and grants upgrades quickly.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Optional

from repro.net.interface import EthernetInterface
from repro.net.link import Channel, Link
from repro.net.stack import IPStack
from repro.ppp.daemon import Pppd
from repro.sim.engine import Simulator
from repro.sim.rng import Distribution, LogNormalVariate, RandomStreams
from repro.umts.cell import UmtsCell
from repro.umts.datacall import DataCall
from repro.umts.ggsn import Ggsn
from repro.umts.rab import RabConfig, RabController


class UmtsError(Exception):
    """Attach/session errors raised by the operator."""


class RadioProfile:
    """Per-direction radio-path parameters."""

    def __init__(
        self,
        base_delay: float,
        jitter: Optional[Distribution],
        queue_bytes: int,
        loss_rate: float = 0.0,
    ):
        self.base_delay = base_delay
        self.jitter = jitter
        self.queue_bytes = queue_bytes
        self.loss_rate = loss_rate


class UmtsOperator:
    """One operator: cells, GGSN, address pool, session management."""

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        name: str,
        apn: str,
        pool_prefix: str = "10.199.0.0/16",
        ggsn_internal: str = "10.199.0.1",
        uplink_profile: Optional[RadioProfile] = None,
        downlink_profile: Optional[RadioProfile] = None,
        downlink_rate_bps: float = 1_800_000.0,
        rab_config: Optional[RabConfig] = None,
        block_inbound: bool = True,
        max_sessions: int = 64,
        dns_zone: Optional[dict] = None,
        ggsn_name: Optional[str] = None,
    ):
        self.sim = sim
        self.streams = streams
        self.name = name
        self.apn = apn
        self.downlink_rate_bps = downlink_rate_bps
        self.rab_config = rab_config if rab_config is not None else RabConfig()
        self.uplink_profile = uplink_profile or RadioProfile(
            base_delay=0.09,
            jitter=LogNormalVariate(math.log(0.006), 1.1, high=0.5),
            queue_bytes=48_000,
        )
        self.downlink_profile = downlink_profile or RadioProfile(
            base_delay=0.07,
            jitter=LogNormalVariate(math.log(0.004), 1.0, high=0.3),
            queue_bytes=200_000,
        )
        self.max_sessions = max_sessions
        # ggsn_name must be unique per Internet router: the Gi peer
        # interface is derived from it, so two operators serving the
        # same APN (home + roaming partner) need distinct names.
        self.ggsn = Ggsn(
            sim,
            ggsn_name if ggsn_name is not None else f"ggsn.{apn}",
            pool_prefix,
            ggsn_internal,
            block_inbound=block_inbound,
        )
        # The GGSN answers DNS for the mobiles on its internal address
        # (what IPCP's dns1 option points at).
        from repro.net.dns import DnsServer

        self.dns = DnsServer(
            self.ggsn.stack.socket(), zone=dict(dns_zone or {})
        )
        self.cells: List[UmtsCell] = []
        self.calls: List[DataCall] = []
        self._session_ids = itertools.count()
        self.sessions_opened = 0
        self.sessions_closed = 0

    # -- topology -------------------------------------------------------

    def new_cell(self, **kwargs) -> UmtsCell:
        """Deploy a cell on this operator's RAN."""
        kwargs.setdefault("name", f"cell-{len(self.cells)}")
        cell = UmtsCell(self, **kwargs)
        self.cells.append(cell)
        return cell

    def connect_to_internet(
        self,
        router: IPStack,
        ggsn_address: str,
        router_address: str,
        prefix_len: int = 30,
        rate_bps: float = 155_000_000.0,
        delay: float = 0.002,
    ) -> Link:
        """Wire the GGSN's Gi interface to an Internet router.

        Adds the default route on the GGSN and the pool route on the
        router, so mobiles are reachable end-to-end.
        """
        gi = self.ggsn.stack.add_interface(EthernetInterface("gi"))
        self.ggsn.stack.configure_interface(gi, ggsn_address, prefix_len)
        peer_name = f"to-{self.ggsn.stack.name}"
        peer = router.add_interface(EthernetInterface(peer_name))
        router.configure_interface(peer, router_address, prefix_len)
        link = Link(self.sim, gi, peer, rate_bps=rate_bps, delay=delay)
        self.ggsn.stack.ip.route_add("default", "gi", via=router_address)
        router.ip.route_add(
            str(self.ggsn.pool.prefix), peer_name, via=ggsn_address
        )
        return link

    # -- session management -----------------------------------------------

    def open_data_call(self, modem, apn: Optional[str] = None, cell=None) -> DataCall:
        """PDP context activation: allocate an address, build the radio
        bearer, start the GGSN-side pppd.  Raises :class:`UmtsError`
        when the APN is wrong or the operator is at capacity."""
        if apn is not None and apn != self.apn:
            raise UmtsError(f"unknown APN {apn!r} (operator serves {self.apn!r})")
        if len(self.calls) >= self.max_sessions:
            raise UmtsError("operator session capacity reached")
        faults = self.sim.faults
        if faults is not None:
            # Triggered session faults (GGSN drop, RAB preemption) are
            # delivered to us whenever they activate; refusal happens
            # right here, before any bearer resources are committed.
            faults.subscribe("session", self._session_fault)
            if faults.fire("session", "refuse"):
                raise UmtsError("PDP context activation refused by network")
        address = self.ggsn.pool.allocate()
        session = next(self._session_ids)
        # The serving cell may cap or extend the bearer ladder (a
        # GPRS-only cell next to an HSDPA one); otherwise the
        # operator-wide config applies.
        rab_config = self.rab_config
        if cell is not None and getattr(cell, "rab_config", None) is not None:
            rab_config = cell.rab_config
        rng_up = self.streams.stream(f"{self.name}.uplink.{session}")
        rng_down = self.streams.stream(f"{self.name}.downlink.{session}")
        uplink = Channel(
            self.sim,
            lambda frame: None,  # rebound by DataCall
            rate_bps=rab_config.grades[rab_config.initial_grade_index],
            delay=self.uplink_profile.base_delay,
            queue_bytes=self.uplink_profile.queue_bytes,
            loss_rate=self.uplink_profile.loss_rate,
            jitter=self.uplink_profile.jitter,
            rng=rng_up,
            name=f"{self.name}:ul:{session}",
            length_of=lambda frame: frame.wire_length,
        )
        downlink = Channel(
            self.sim,
            lambda frame: None,  # rebound by DataCall
            rate_bps=self.downlink_rate_bps,
            delay=self.downlink_profile.base_delay,
            queue_bytes=self.downlink_profile.queue_bytes,
            loss_rate=self.downlink_profile.loss_rate,
            jitter=self.downlink_profile.jitter,
            rng=rng_down,
            name=f"{self.name}:dl:{session}",
            length_of=lambda frame: frame.wire_length,
        )
        rab = RabController(self.sim, uplink, rab_config)
        call = DataCall(self.sim, uplink, downlink, rab, self, address)
        server = Pppd(
            self.sim,
            self.ggsn.stack,
            call.transport,
            role="server",
            ifname=f"ppp-s{session}",
            local_address=str(self.ggsn.internal_address),
            assign_address=str(address),
            dns1=str(self.ggsn.internal_address),
            rng=self.streams.stream(f"{self.name}.magic.{session}"),
        )
        call.server_pppd = server
        server.start()
        self.calls.append(call)
        self.sessions_opened += 1
        return call

    def close_data_call(self, call: DataCall, reason: str = "closed") -> None:
        """Release one session's resources (mobile- or network-initiated)."""
        if not call.active:
            return
        call.active = False
        call.rab.stop()
        if call.server_pppd is not None:
            call.server_pppd.carrier_lost(reason)
        self.ggsn.pool.release(call.assigned_address)
        if call in self.calls:
            self.calls.remove(call)
        self.sessions_closed += 1

    def drop_call(self, call: DataCall, reason: str = "network drop") -> None:
        """Network-initiated teardown (failure injection in tests)."""
        call.network_drop(reason)
        self.close_data_call(call, reason)

    def _session_fault(self, spec) -> bool:
        """Apply one triggered ``session`` fault to the oldest live call.

        Returns False (leaving the trigger pending) when no call is up
        yet — a mid-call fault scheduled before the dial completed waits
        for the session it is meant to kill.
        """
        if not self.calls:
            return False
        call = self.calls[0]
        if spec.mode == "drop":
            self.drop_call(call, spec.params.get("reason", "GGSN dropped session"))
            return True
        if spec.mode == "rab_preempt":
            call.rab.preempt()
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<UmtsOperator {self.name!r} sessions={len(self.calls)}>"


# -- the two profiles the paper used ---------------------------------------


def commercial_operator(
    sim: Simulator,
    streams: RandomStreams,
    name: str = "IT Mobile (commercial)",
    apn: str = "internet.operator.it",
    rab_config: Optional[RabConfig] = None,
) -> UmtsOperator:
    """A principal European operator's public UMTS network.

    Defaults reproduce the paper's measurements: 144 kbit/s initial
    uplink bearer upgraded to 384 kbit/s only after ~50 s of sustained
    demand, inbound connections firewalled.
    """
    return UmtsOperator(
        sim,
        streams,
        name=name,
        apn=apn,
        rab_config=rab_config if rab_config is not None else RabConfig(),
        block_inbound=True,
    )


def private_microcell(
    sim: Simulator,
    streams: RandomStreams,
    name: str = "Alcatel-Lucent 3G Reality Center",
    apn: str = "onelab.vimercate.it",
) -> UmtsOperator:
    """The private micro-cell at the 3G Reality Center.

    Lightly loaded and administered by the experimenters: no ingress
    firewall, quieter radio path, and bearer upgrades granted within a
    few seconds instead of ~50.
    """
    quick_rab = RabConfig(
        initial_grade_index=1,
        sustain_time=6.0,
        grant_delay=2.0,
    )
    return UmtsOperator(
        sim,
        streams,
        name=name,
        apn=apn,
        pool_prefix="10.201.0.0/16",
        ggsn_internal="10.201.0.1",
        uplink_profile=RadioProfile(
            base_delay=0.07,
            jitter=LogNormalVariate(math.log(0.003), 0.9, high=0.2),
            queue_bytes=48_000,
        ),
        downlink_profile=RadioProfile(
            base_delay=0.06,
            jitter=LogNormalVariate(math.log(0.002), 0.8, high=0.15),
            queue_bytes=200_000,
        ),
        rab_config=quick_rab,
        block_inbound=False,
    )
