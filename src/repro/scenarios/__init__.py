"""The scenario grammar: declarative workload shapes for every harness.

One validated spec layer (:mod:`repro.scenarios.spec`), one enumerable
grammar over it (:mod:`repro.scenarios.grammar`), one instantiation
path onto the OneLab testbed (:mod:`repro.scenarios.instantiate`).
The chaos campaign (``repro chaos --scenario-grammar``), the sweep
runner, the fleet node specs, and the hypothesis property tests all
draw scenarios from here, so "never hangs, never leaks" is proven over
the whole space instead of hand-picked cases.
"""

from repro.scenarios.grammar import (
    DIMENSIONS,
    HANDOVERS,
    LADDERS,
    REMOTE_SIM,
    ROAMING,
    enumerate_grammar,
    grammar_point,
    point_name,
    point_names,
)
from repro.scenarios.instantiate import (
    GrammarHarness,
    run_grammar_scenario,
    signal_grade_cap,
)
from repro.scenarios.spec import (
    RAT_ORDER,
    RAT_RATES,
    HandoverSpec,
    RateLadderSpec,
    RemoteSimSpec,
    RoamingSpec,
    ScenarioSpec,
    ScenarioSpecError,
)

__all__ = [
    "DIMENSIONS",
    "GrammarHarness",
    "HANDOVERS",
    "HandoverSpec",
    "LADDERS",
    "RAT_ORDER",
    "RAT_RATES",
    "REMOTE_SIM",
    "ROAMING",
    "RateLadderSpec",
    "RemoteSimSpec",
    "RoamingSpec",
    "ScenarioSpec",
    "ScenarioSpecError",
    "enumerate_grammar",
    "grammar_point",
    "point_name",
    "point_names",
    "run_grammar_scenario",
    "signal_grade_cap",
]
