"""The enumerable scenario grammar: four dimensions, every combination.

A *grammar point* is named ``ladder/handover/roaming/sim`` — one value
per dimension, slash-joined in that fixed order, e.g.
``climb/fade/visit/tunnel``.  :func:`enumerate_grammar` yields the full
cross product (every harness — chaos, sweep, fleet — draws from the
same registry), :func:`grammar_point` resolves one name to a validated
:class:`~repro.scenarios.spec.ScenarioSpec`, and the hypothesis
strategy in ``tests/scenarios`` samples *arbitrary* valid specs beyond
these named points.

The catalogs are ordinary dicts in declaration order, so enumeration
order — and therefore every digest derived from it — is frozen.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.spec import (
    HandoverSpec,
    RateLadderSpec,
    RemoteSimSpec,
    RoamingSpec,
    ScenarioSpec,
    ScenarioSpecError,
)

#: Rate-ladder dimension: which RATs the bearer spans and how the
#: scenario walks them mid-call.
LADDERS: Dict[str, RateLadderSpec] = {
    # Single Release-99 bearer, no renegotiation: the paper's testbed.
    "r99": RateLadderSpec(rats=("umts",)),
    # Full GPRS→EDGE→UMTS→HSDPA climb: renegotiate one rung at a time.
    "climb": RateLadderSpec(
        rats=("gprs", "edge", "umts", "hsdpa"),
        initial=0,
        moves=((20.0, 1), (30.0, 2), (40.0, 3)),
    ),
    # Start fast, collapse to EDGE mid-call, then recover to HSDPA.
    "collapse": RateLadderSpec(
        rats=("edge", "umts", "hsdpa"),
        initial=2,
        moves=((25.0, 0), (45.0, 2)),
    ),
}

#: Handover dimension: when the card changes cells and how strong the
#: target cell's signal is (the harness renegotiates to match).
HANDOVERS: Dict[str, HandoverSpec] = {
    "none": HandoverSpec(),
    # Hand over to a fringe cell (CSQ 7) and stay there.
    "fade": HandoverSpec(events=((35.0, 7),)),
    # Fade at 30 s, then recover onto a strong cell at 50 s.
    "recover": HandoverSpec(events=((30.0, 6), (50.0, 24))),
}

#: Roaming dimension: home PLMN or a visited operator from the pool.
ROAMING: Dict[str, RoamingSpec] = {
    "home": RoamingSpec(visit=False),
    "visit": RoamingSpec(visit=True),
}

#: Remote-SIM dimension: local SIM, or a MobileAtlas-style tunnel
#: adding AT-line latency and losing the first line.
REMOTE_SIM: Dict[str, RemoteSimSpec] = {
    "local": RemoteSimSpec(),
    "tunnel": RemoteSimSpec(tunnel=True, latency=0.35, loss_count=1),
}

#: The dimensions in point-name order.
DIMENSIONS = ("ladder", "handover", "roaming", "sim")

_CATALOGS = {
    "ladder": LADDERS,
    "handover": HANDOVERS,
    "roaming": ROAMING,
    "sim": REMOTE_SIM,
}


def point_name(ladder: str, handover: str, roaming: str, sim: str) -> str:
    """The canonical ``ladder/handover/roaming/sim`` name."""
    return f"{ladder}/{handover}/{roaming}/{sim}"


def grammar_point(name: str) -> ScenarioSpec:
    """Resolve one grammar point name to its validated spec.

    Raises :class:`~repro.scenarios.spec.ScenarioSpecError` on unknown
    names so fleet specs and CLI flags fail eagerly, before any
    simulation runs.
    """
    parts = name.split("/")
    if len(parts) != len(DIMENSIONS):
        raise ScenarioSpecError(
            f"grammar point {name!r} must be "
            f"'{'/'.join(DIMENSIONS)}' (e.g. 'climb/fade/visit/tunnel')"
        )
    values = {}
    for dimension, value in zip(DIMENSIONS, parts):
        catalog = _CATALOGS[dimension]
        if value not in catalog:
            raise ScenarioSpecError(
                f"unknown {dimension} value {value!r} in grammar point "
                f"{name!r} (known: {', '.join(catalog)})"
            )
        values[dimension] = catalog[value]
    return ScenarioSpec(
        name=name,
        ladder=values["ladder"],
        handover=values["handover"],
        roaming=values["roaming"],
        remote_sim=values["sim"],
    )


def point_names() -> List[str]:
    """Every grammar point name, enumeration order."""
    return [
        point_name(ladder, handover, roaming, sim)
        for ladder in LADDERS
        for handover in HANDOVERS
        for roaming in ROAMING
        for sim in REMOTE_SIM
    ]


def enumerate_grammar() -> List[ScenarioSpec]:
    """The full cross product as validated specs, enumeration order."""
    return [grammar_point(name) for name in point_names()]
