"""Instantiating a scenario spec over the OneLab testbed.

:class:`GrammarHarness` turns one validated
:class:`~repro.scenarios.spec.ScenarioSpec` into a live testbed: the
ladder becomes the operator's :class:`~repro.umts.rab.RabConfig`, the
roaming dimension builds a second operator and draws the visited
network from an :class:`~repro.umts.pool.OperatorPool`, handover
targets become extra cells on the serving operator, and the remote-SIM
tunnel becomes a :class:`~repro.faults.plan.FaultPlan` at the serial
layer.  :meth:`GrammarHarness.run` drives the same
start/hold/status/stop contract as the chaos campaign and reuses its
trace digest, so scenario digests and chaos digests mean the same
thing; :meth:`GrammarHarness.arm` schedules only the mid-call events,
for runners (the sweep) that drive their own workload.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.faults.chaos import (
    DEGRADED,
    DIRTY,
    HUNG,
    RECOVERED,
    _Collector,
    clean_state,
    trace_digest,
)
from repro.faults.plan import FaultPlan
from repro.obs.trace import TraceBus
from repro.scenarios.spec import ScenarioSpec
from repro.sim.process import spawn
from repro.testbed.scenarios import OneLabScenario
from repro.umts.operator import UmtsOperator, commercial_operator
from repro.umts.pool import OperatorPool

#: Gi-side addressing for the visited operator (the home GGSN uses
#: 85.37.17.0/30; the visited one gets its own /30 on the router).
VISITED_GGSN_ADDR = "85.37.19.2"
VISITED_ROUTER_ADDR = "85.37.19.1"
VISITED_POOL_PREFIX = "10.203.0.0/16"
VISITED_GGSN_INTERNAL = "10.203.0.1"
VISITED_OPERATOR_NAME = "FR Mobile (visited)"


def signal_grade_cap(csq: int, grade_count: int) -> int:
    """The highest ladder index a given signal strength supports.

    Maps the ``AT+CSQ`` 0..31 scale onto ladder indices: roughly one
    rung per 7 CSQ points above the noise floor, clamped to the ladder.
    Deterministic and monotone in ``csq``, so signal-driven adaptation
    preserves the QoS-monotone-with-ladder invariant.
    """
    return min(grade_count - 1, max(0, (csq - 2) // 7))


class GrammarHarness:
    """One scenario spec, instantiated and ready to run."""

    def __init__(
        self,
        spec: ScenarioSpec,
        seed: Optional[int] = None,
        metrics: Any = None,
    ):
        self.spec = spec
        self.seed = spec.seed if seed is None else seed
        ladder_config = spec.ladder.rab_config()

        def factory(sim, streams):
            return commercial_operator(sim, streams, rab_config=ladder_config)

        self.testbed = OneLabScenario(seed=self.seed, operator_factory=factory)
        sim = self.testbed.sim
        self.bus = TraceBus(sim)
        self.collector = _Collector()
        self.bus.attach(self.collector)
        sim.trace = self.bus
        if metrics is not None:
            sim.metrics = metrics

        # Operator selection: the pool always knows home; the roaming
        # dimension adds a visited operator serving the same APN and
        # re-camps the card on its cell before anything dials.
        home = self.testbed.operator
        self.pool = OperatorPool()
        self.pool.register(home, home=True)
        self.roamed = False
        if spec.roaming.visit:
            visited = UmtsOperator(
                sim,
                self.testbed.streams,
                name=VISITED_OPERATOR_NAME,
                apn=home.apn,
                pool_prefix=VISITED_POOL_PREFIX,
                ggsn_internal=VISITED_GGSN_INTERNAL,
                rab_config=ladder_config,
                block_inbound=True,
                ggsn_name="ggsn.visited",
            )
            visited.connect_to_internet(
                self.testbed.internet.router, VISITED_GGSN_ADDR, VISITED_ROUTER_ADDR
            )
            visited.dns.add_record(
                self.testbed.napoli.name, self.testbed.napoli_addr
            )
            visited.dns.add_record(
                self.testbed.inria.name, self.testbed.inria_addr
            )
            self.pool.register(visited)
            partner = self.pool.roaming_partner(apn=home.apn)
            roam_cell = partner.new_cell(roaming=True)
            self.testbed.napoli.modem.plug_into(roam_cell)
            self.serving = partner
            self.roamed = True
        else:
            self.serving = home

        # Handover targets: one fresh cell per event, created up front
        # so cell names (cell-1, cell-2, ...) are deterministic.
        self._handover_cells = [
            (at, csq, self.serving.new_cell(base_csq=csq, roaming=self.roamed))
            for at, csq in spec.handover.events
        ]

        # The remote-SIM tunnel (and nothing else) as a fault plan.
        self.plan = FaultPlan.from_spec(*spec.remote_sim.fault_specs())
        self.registry = self.plan.install(
            sim, rng=self.testbed.streams.stream("faults")
        )

        self.handovers = 0
        self.moves_applied = 0
        self.moves_missed = 0
        self._armed = False

    # -- mid-call event appliers ----------------------------------------

    def arm(self) -> None:
        """Schedule the spec's mid-call events (idempotent).

        Ladder moves renegotiate the live bearer; handovers re-camp the
        card and renegotiate to the grade the new signal supports.
        Events that fire before any call is up are counted as missed,
        not errors — a grammar point may put its first move inside the
        dial window.
        """
        if self._armed:
            return
        self._armed = True
        sim = self.testbed.sim
        for at, target in self.spec.ladder.moves:
            sim.post(max(0.0, at - sim.now), self._apply_move, target)
        for at, csq, cell in self._handover_cells:
            sim.post(max(0.0, at - sim.now), self._apply_handover, cell, csq)

    def _live_rab(self):
        calls = self.serving.calls
        return calls[0].rab if calls else None

    def _apply_move(self, target: int) -> None:
        rab = self._live_rab()
        if rab is None:
            self.moves_missed += 1
            return
        rab.renegotiate(target)
        self.moves_applied += 1

    def _apply_handover(self, cell, csq: int) -> None:
        self.testbed.napoli.modem.handover_to(cell)
        self.handovers += 1
        rab = self._live_rab()
        if rab is not None:
            rab.renegotiate(
                signal_grade_cap(csq, len(self.spec.ladder.rats))
            )

    # -- the driver (same contract as the chaos campaign) ----------------

    def run(self) -> Dict[str, Any]:
        """Drive start/hold/status/stop to completion and report."""
        self.arm()
        testbed = self.testbed
        sim = testbed.sim
        spec = self.spec
        umts = testbed.umts_command()
        state: Dict[str, Any] = {
            "start": None,
            "status": None,
            "stop": None,
            "finished": False,
        }

        def driver():
            state["start"] = yield umts.start()
            yield spec.hold
            state["status"] = yield umts.status()
            if testbed.napoli.connection.is_up:
                state["stop"] = yield umts.stop()
            state["finished"] = True

        spawn(sim, driver(), name=f"scenario:{spec.name}")
        sim.run(until=spec.deadline)

        hung = not state["finished"]
        clean = not hung and clean_state(testbed)
        start = state["start"]
        status = state["status"]
        stop = state["stop"]
        start_ok = start is not None and start.code == 0
        status_up = (
            status is not None
            and bool(status.lines)
            and status.lines[0] == "state: up"
        )
        stop_ok = stop is not None and stop.code == 0
        if hung:
            outcome = HUNG
        elif start_ok and status_up and stop_ok and clean:
            outcome = RECOVERED
        elif clean:
            outcome = DEGRADED
        else:
            outcome = DIRTY
        events = self.collector.events
        rab_rates: List[float] = [
            event.fields["rate"]
            for event in events
            if event.name == "rab.grade" and event.fields
        ]
        renegotiations = sum(
            1 for event in events if event.name == "rab.renegotiate"
        )
        renegotiations_failed = sum(
            1 for event in events if event.name == "rab.renegotiation_failed"
        )
        return {
            "scenario": spec.name,
            "seed": self.seed,
            "outcome": outcome,
            # The grammar-wide contract: never hang, never leak.  A
            # degraded-but-clean run is a legal grammar point.
            "ok": not hung and clean,
            "hung": hung,
            "clean": clean,
            "start_code": None if start is None else start.code,
            "status_lines": None if status is None else list(status.lines),
            "stop_code": None if stop is None else stop.code,
            "roamed": self.roamed,
            "operator": self.serving.name,
            "handovers": self.handovers,
            "moves_applied": self.moves_applied,
            "moves_missed": self.moves_missed,
            "renegotiations": renegotiations,
            "renegotiations_failed": renegotiations_failed,
            "rab_rates": rab_rates,
            "ladder_rates": list(spec.ladder.rates),
            "fired": dict(self.registry.fired),
            "events": len(events),
            "sim_time": round(sim.now, 6),
            "digest": trace_digest(events),
        }


def run_grammar_scenario(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    metrics: Any = None,
) -> Dict[str, Any]:
    """Instantiate and run one grammar point; returns the report."""
    return GrammarHarness(spec, seed=seed, metrics=metrics).run()
