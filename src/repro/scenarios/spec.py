"""The scenario grammar's validated spec layer.

A :class:`ScenarioSpec` is a frozen, declarative description of one
workload shape over the OneLab testbed, composed from four independent
dimensions (SimuLTE's scenario catalogue and open5Gcube's modular lab
configs are the models):

- :class:`RateLadderSpec` — which RATs the bearer ladder spans
  (GPRS/EDGE/UMTS/HSDPA) and the explicit mid-call RAB renegotiations
  that walk it;
- :class:`HandoverSpec` — inter-cell handovers, each landing on a cell
  of a given signal strength (the driver renegotiates the bearer to
  the grade the new signal supports);
- :class:`RoamingSpec` — whether the card camps on a visited operator
  drawn from :class:`~repro.umts.pool.OperatorPool` instead of home;
- :class:`RemoteSimSpec` — MobileAtlas-style remote-SIM tunnelling:
  AT-command latency and loss injected at the modem serial layer.

Specs validate eagerly on construction (a typo can never produce a
scenario that silently does nothing) and round-trip through JSON-safe
payloads exactly like :mod:`repro.fleet.spec`, so fleet node specs and
campaign caches can carry them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

#: Uplink rate each radio access technology sustains, in bit/s,
#: ascending.  The ladder a spec names must be a subsequence of this
#: order, so every ladder satisfies RabConfig's ascending-grades rule
#: and "QoS monotone with the rate ladder" is well defined.
RAT_RATES: Dict[str, float] = {
    "gprs": 21_400.0,
    "edge": 118_400.0,
    "umts": 384_000.0,
    "hsdpa": 1_460_000.0,
}

#: Canonical RAT order (the keys above, slowest first).
RAT_ORDER: Tuple[str, ...] = tuple(RAT_RATES)


class ScenarioSpecError(ValueError):
    """A scenario spec is malformed or names unknown grammar values."""


def _check_schedule(times: Tuple[float, ...], what: str) -> None:
    """Event times must be positive and strictly increasing."""
    last = 0.0
    for at in times:
        if at <= last:
            raise ScenarioSpecError(
                f"{what} times must be positive and strictly increasing, "
                f"got {list(times)}"
            )
        last = at


@dataclass(frozen=True)
class RateLadderSpec:
    """The bearer ladder and the renegotiations that walk it.

    ``rats`` is an ordered subset of :data:`RAT_ORDER`; ``moves`` is a
    schedule of ``(at, target_index)`` explicit renegotiations driven
    through :meth:`~repro.umts.rab.RabController.renegotiate`.  Demand
    adaptation is disabled for ladder scenarios: the ladder is walked
    by the spec, not the backlog, so the QoS timeline is a pure
    function of the grammar point.
    """

    rats: Tuple[str, ...] = ("umts",)
    initial: int = 0
    moves: Tuple[Tuple[float, int], ...] = ()

    def __post_init__(self) -> None:
        if not self.rats:
            raise ScenarioSpecError("ladder needs at least one RAT")
        unknown = [rat for rat in self.rats if rat not in RAT_RATES]
        if unknown:
            raise ScenarioSpecError(
                f"unknown RAT(s) {unknown} (known: {', '.join(RAT_ORDER)})"
            )
        order = [RAT_ORDER.index(rat) for rat in self.rats]
        if order != sorted(set(order)):
            raise ScenarioSpecError(
                f"ladder must list distinct RATs slowest-first, got {list(self.rats)}"
            )
        if not 0 <= self.initial < len(self.rats):
            raise ScenarioSpecError(
                f"initial ladder index {self.initial} outside 0..{len(self.rats) - 1}"
            )
        _check_schedule(tuple(at for at, _ in self.moves), "ladder move")
        for at, target in self.moves:
            if not 0 <= target < len(self.rats):
                raise ScenarioSpecError(
                    f"ladder move at t={at:g} targets index {target}, "
                    f"outside 0..{len(self.rats) - 1}"
                )

    @property
    def rates(self) -> Tuple[float, ...]:
        """The ladder in bit/s, ascending."""
        return tuple(RAT_RATES[rat] for rat in self.rats)

    def rab_config(self):
        """The :class:`~repro.umts.rab.RabConfig` realizing this ladder."""
        from repro.umts.rab import RabConfig

        return RabConfig(
            grades=list(self.rates),
            initial_grade_index=self.initial,
            adaptation_enabled=False,
        )


@dataclass(frozen=True)
class HandoverSpec:
    """Inter-cell handovers: ``(at, target_cell_csq)`` events.

    Each event re-camps the card on a fresh cell of the serving
    operator whose signal strength is ``csq`` (the ``AT+CSQ`` 0..31
    scale); the harness then renegotiates the bearer to the grade that
    signal supports (:func:`~repro.scenarios.instantiate.signal_grade_cap`).
    """

    events: Tuple[Tuple[float, int], ...] = ()

    def __post_init__(self) -> None:
        _check_schedule(tuple(at for at, _ in self.events), "handover")
        for at, csq in self.events:
            if not 0 <= csq <= 31:
                raise ScenarioSpecError(
                    f"handover at t={at:g} has CSQ {csq}, outside 0..31"
                )


@dataclass(frozen=True)
class RoamingSpec:
    """Whether the card roams onto a visited operator before dialing."""

    visit: bool = False


@dataclass(frozen=True)
class RemoteSimSpec:
    """MobileAtlas-style remote-SIM tunnel degradation.

    When ``tunnel`` is set, every AT line crosses a wide-area tunnel:
    ``latency`` seconds are added per line and the first ``loss_count``
    lines are lost outright.  The user plane stays local (PPP frames
    are unaffected), matching the MobileAtlas split.
    """

    tunnel: bool = False
    latency: float = 0.0
    loss_count: int = 0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ScenarioSpecError(f"latency must be >= 0, got {self.latency}")
        if self.loss_count < 0:
            raise ScenarioSpecError(
                f"loss_count must be >= 0, got {self.loss_count}"
            )
        if not self.tunnel and (self.latency or self.loss_count):
            raise ScenarioSpecError(
                "latency/loss_count given without tunnel=True"
            )

    def fault_specs(self) -> Tuple[str, ...]:
        """The :mod:`repro.faults` plan entries realizing the tunnel."""
        specs = []
        if self.tunnel and self.loss_count:
            specs.append(f"serial:at_drop@t=0,count={self.loss_count}")
        if self.tunnel and self.latency:
            specs.append(f"serial:latency@t=0,delay={self.latency:g}")
        return tuple(specs)


@dataclass(frozen=True)
class ScenarioSpec:
    """One point of the scenario grammar, fully validated."""

    name: str
    ladder: RateLadderSpec = field(default_factory=RateLadderSpec)
    handover: HandoverSpec = field(default_factory=HandoverSpec)
    roaming: RoamingSpec = field(default_factory=RoamingSpec)
    remote_sim: RemoteSimSpec = field(default_factory=RemoteSimSpec)
    hold: float = 60.0
    deadline: float = 600.0
    seed: int = 3

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioSpecError("scenario needs a name")
        if self.hold <= 0:
            raise ScenarioSpecError(f"hold must be positive, got {self.hold}")
        if self.deadline <= self.hold:
            raise ScenarioSpecError(
                f"deadline {self.deadline:g} must exceed hold {self.hold:g}"
            )
        # Eager fault validation, like fleet specs: a bad tunnel spec
        # fails here, not mid-campaign inside a worker.
        from repro.faults.plan import FaultPlan, FaultSpecError

        try:
            FaultPlan.from_spec(*self.remote_sim.fault_specs())
        except FaultSpecError as exc:  # pragma: no cover - defensive
            raise ScenarioSpecError(f"remote-SIM faults invalid: {exc}") from exc

    # -- JSON round-trip (the fleet/cache carrier format) ---------------

    def to_payload(self) -> Dict[str, Any]:
        """A JSON-safe dict describing this spec exactly."""
        return {
            "name": self.name,
            "ladder": {
                "rats": list(self.ladder.rats),
                "initial": self.ladder.initial,
                "moves": [[at, target] for at, target in self.ladder.moves],
            },
            "handover": {
                "events": [[at, csq] for at, csq in self.handover.events],
            },
            "roaming": {"visit": self.roaming.visit},
            "remote_sim": {
                "tunnel": self.remote_sim.tunnel,
                "latency": self.remote_sim.latency,
                "loss_count": self.remote_sim.loss_count,
            },
            "hold": self.hold,
            "deadline": self.deadline,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_payload` output (validates)."""
        try:
            ladder = payload.get("ladder", {})
            handover = payload.get("handover", {})
            roaming = payload.get("roaming", {})
            remote = payload.get("remote_sim", {})
            return cls(
                name=payload["name"],
                ladder=RateLadderSpec(
                    rats=tuple(ladder.get("rats", ("umts",))),
                    initial=int(ladder.get("initial", 0)),
                    moves=tuple(
                        (float(at), int(target))
                        for at, target in ladder.get("moves", ())
                    ),
                ),
                handover=HandoverSpec(
                    events=tuple(
                        (float(at), int(csq))
                        for at, csq in handover.get("events", ())
                    ),
                ),
                roaming=RoamingSpec(visit=bool(roaming.get("visit", False))),
                remote_sim=RemoteSimSpec(
                    tunnel=bool(remote.get("tunnel", False)),
                    latency=float(remote.get("latency", 0.0)),
                    loss_count=int(remote.get("loss_count", 0)),
                ),
                hold=float(payload.get("hold", 60.0)),
                deadline=float(payload.get("deadline", 600.0)),
                seed=int(payload.get("seed", 3)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, ScenarioSpecError):
                raise
            raise ScenarioSpecError(f"malformed scenario payload: {exc}") from exc
