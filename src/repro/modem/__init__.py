"""3G modem devices and the user-space dial tools.

The paper supports two UMTS NICs — the Option Globetrotter GT 3G+
(kernel driver ``nozomi``) and the Huawei E620 (``usbserial``) — and
drives them with ``comgt`` (network registration via AT commands) and
``wvdial`` (dialing ``*99#`` to start the PPP data call).

Here a :class:`Modem3G` is an AT-command state machine on a
:class:`SerialPort`; the two card classes differ in identification and
timing quirks.  :class:`Comgt` and :class:`Wvdial` are generator-based
reimplementations of the tools' control flow, run as simulation
processes by the privileged back-end.
"""

from repro.modem.cards import GlobetrotterGT3G, HuaweiE620
from repro.modem.comgt import Comgt
from repro.modem.device import Modem3G, ModemError, RegistrationStatus
from repro.modem.serial import SerialPort
from repro.modem.wvdial import SerialPppTransport, Wvdial

__all__ = [
    "Comgt",
    "GlobetrotterGT3G",
    "HuaweiE620",
    "Modem3G",
    "ModemError",
    "RegistrationStatus",
    "SerialPort",
    "SerialPppTransport",
    "Wvdial",
]
