"""The 3G modem: an AT-command state machine with a PPP data mode.

The modem is plugged into a UMTS network (anything implementing the
small :class:`NetworkAttachment` duck-type: registration delay, signal
quality, data-call setup).  After power-on it registers automatically,
exactly like a real card with a ready SIM; ``AT+CREG?`` polls the
progress (what comgt does), ``ATD*99#`` activates the PDP context and
switches the serial line to data mode, relaying PPP frames between the
host and the radio bearer.
"""

from __future__ import annotations

import enum
import random as _random
from typing import Any, Optional

from repro.modem.serial import SerialPort
from repro.ppp.frame import PPPFrame
from repro.sim.engine import Simulator
from repro.sim.process import spawn
from repro.sim.rng import RandomStreams


class ModemError(Exception):
    """Configuration or attachment error."""


class RegistrationStatus(enum.IntEnum):
    """``AT+CREG?`` status codes (3GPP TS 27.007)."""

    NOT_REGISTERED = 0
    REGISTERED_HOME = 1
    SEARCHING = 2
    DENIED = 3
    REGISTERED_ROAMING = 5


#: Time the firmware takes to answer a plain AT command.
AT_RESPONSE_DELAY = 0.05
#: PDP context activation adds a couple of seconds before CONNECT.
DEFAULT_DIAL_DELAY = 2.0
#: Guard time around "+++" before the escape is honoured.
ESCAPE_GUARD_TIME = 1.0


class Modem3G:
    """Base class for the two supported cards."""

    #: card model string reported by ATI (subclasses override).
    model = "Generic 3G modem"
    #: manufacturer string reported by ATI.
    manufacturer = "Generic"
    #: kernel module the PlanetLab node must load for the card.
    required_module = "usbserial"

    def __init__(
        self,
        sim: Simulator,
        port: Optional[SerialPort] = None,
        sim_pin: Optional[str] = None,
        rng: Optional[_random.Random] = None,
    ):
        self.sim = sim
        self.port = port if port is not None else SerialPort(sim)
        self.sim_pin = sim_pin
        self._pin_ok = sim_pin is None
        if rng is None:
            # Derive the fallback from the seed-0 named-stream family so
            # an un-wired modem still draws deterministically.
            rng = RandomStreams(0).stream(f"modem.{self.port.name}")
        self._rng = rng
        self.network = None
        self.registration = RegistrationStatus.NOT_REGISTERED
        self.apn: Optional[str] = None
        self.echo_commands = False
        self.data_mode = False
        self._data_call = None
        self.dial_delay = DEFAULT_DIAL_DELAY
        self.at_log: list = []
        self._process = spawn(sim, self._serial_loop(), name=f"modem:{self.port.name}")

    # -- attachment ----------------------------------------------------

    def plug_into(self, network) -> None:
        """Attach to a UMTS network and start auto-registration.

        ``network`` provides ``registration_delay(rng)``,
        ``registration_result(modem)``, ``signal_quality(rng)`` and
        ``open_data_call(modem)``.
        """
        self.network = network
        self.registration = RegistrationStatus.SEARCHING
        spawn(self.sim, self._register(), name="modem-register")

    def handover_to(self, network) -> None:
        """Inter-cell handover: re-camp on ``network`` without a re-dial.

        Models the make-before-break hard handover UTRAN performs for
        a moving terminal: the old cell is told we left, the new cell
        answers the registration immediately (no fresh network search —
        the RNC prepared the target), and an active data call survives;
        only the bearer grade may change afterwards, which the scenario
        driver renegotiates explicitly.
        """
        old = self.network
        if old is not None and hasattr(old, "detach"):
            old.detach(self)
        self.network = network
        self.registration = network.registration_result(self)
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                "modem.handover",
                port=self.port.name,
                cell=getattr(network, "name", "?"),
                operator=getattr(network, "operator_name", "?"),
                in_call=self._data_call is not None,
            )

    def _register(self):
        if self.network is None:
            # Coverage vanished before the search even started.
            self.registration = RegistrationStatus.NOT_REGISTERED
            return
        delay = self.network.registration_delay(self._rng)
        yield delay
        if self.network is None:
            self.registration = RegistrationStatus.NOT_REGISTERED
            return
        self.registration = self.network.registration_result(self)

    # -- serial processing ----------------------------------------------

    def _serial_loop(self):
        while True:
            item = yield self.port._modem_read()
            if self.data_mode:
                handled = yield from self._handle_data_mode_item(item)
                if handled:
                    continue
            if isinstance(item, str):
                yield AT_RESPONSE_DELAY
                yield from self._handle_command(item.strip())

    def _handle_data_mode_item(self, item: Any):
        """Returns True when the item was consumed by data mode."""
        if isinstance(item, PPPFrame):
            if self._data_call is not None:
                self._data_call.send_uplink(item)
            return True
        if isinstance(item, str) and item.strip() == "+++":
            yield ESCAPE_GUARD_TIME
            self.data_mode = False
            self._respond("OK")
            return True
        return False

    def _respond(self, *lines: str) -> None:
        for line in lines:
            self.port._modem_write(line)

    # -- AT command dispatch ------------------------------------------------

    def _handle_command(self, line: str):
        self.at_log.append(line)
        upper = line.upper()
        if self.echo_commands:
            self._respond(line)
        if upper in ("AT", "ATZ", "AT&F"):
            if upper != "AT":
                yield from self._reset()
            self._respond("OK")
        elif upper in ("ATE0", "ATE1"):
            self.echo_commands = upper.endswith("1")
            self._respond("OK")
        elif upper == "ATI":
            self._respond(self.manufacturer, self.model, "OK")
        elif upper == "AT+CPIN?":
            if self._pin_ok:
                self._respond("+CPIN: READY", "OK")
            else:
                self._respond("+CPIN: SIM PIN", "OK")
        elif upper.startswith("AT+CPIN="):
            yield from self._enter_pin(line)
        elif upper == "AT+CREG?":
            self._respond(*self._registration_response())
        elif upper == "AT+CSQ":
            yield from self._signal_quality()
        elif upper == "AT+COPS?":
            yield from self._operator_query()
        elif upper.startswith("AT+CGDCONT="):
            yield from self._define_pdp_context(line)
        elif upper.startswith("ATD"):
            yield from self._dial(line)
        elif upper == "ATH":
            self._hangup("local")
            self._respond("OK")
        else:
            self._respond("ERROR")

    def _registration_response(self):
        """Response lines for ``AT+CREG?``, honouring any active fault."""
        faults = self.sim.faults
        if faults is not None:
            spec = faults.fire("registration", "cme_error", "denied", "searching")
            if spec is not None:
                if spec.mode == "cme_error":
                    return ("+CME ERROR: no network service",)
                if spec.mode == "denied":
                    return (f"+CREG: 0,{int(RegistrationStatus.DENIED)}", "OK")
                return (f"+CREG: 0,{int(RegistrationStatus.SEARCHING)}", "OK")
        return (f"+CREG: 0,{int(self.registration)}", "OK")

    def _reset(self):
        self._hangup("reset")
        self.echo_commands = False
        self.apn = None
        yield 0.1

    def _enter_pin(self, line: str):
        if self._pin_ok:
            self._respond("OK")
            return
        supplied = line.split("=", 1)[1].strip().strip('"')
        yield 0.2
        if supplied == self.sim_pin:
            self._pin_ok = True
            self._respond("OK")
        else:
            self._respond("+CME ERROR: incorrect password")

    def _signal_quality(self):
        if self.network is None:
            self._respond("+CSQ: 99,99", "OK")
            return
        yield 0.0
        rssi = self.network.signal_quality(self._rng)
        self._respond(f"+CSQ: {rssi},0", "OK")

    def _operator_query(self):
        yield 0.0
        if self.network is None or not self._registered():
            self._respond("+COPS: 0", "OK")
        else:
            self._respond(f'+COPS: 0,0,"{self.network.operator_name}"', "OK")

    def _define_pdp_context(self, line: str):
        # AT+CGDCONT=1,"IP","apn.operator.it"
        yield 0.0
        try:
            args = line.split("=", 1)[1]
            fields = [f.strip().strip('"') for f in args.split(",")]
            self.apn = fields[2]
        except (IndexError, ValueError):
            self._respond("ERROR")
            return
        self._respond("OK")

    def _registered(self) -> bool:
        return self.registration in (
            RegistrationStatus.REGISTERED_HOME,
            RegistrationStatus.REGISTERED_ROAMING,
        )

    def _dial(self, line: str):
        if not self._pin_ok:
            self._respond("+CME ERROR: SIM PIN required")
            return
        if self.network is None or not self._registered():
            yield 0.5
            self._respond("NO CARRIER")
            return
        faults = self.sim.faults
        if faults is not None and faults.fire("dial", "no_carrier"):
            # PDP activation rejected before any bearer came up.
            yield 0.5
            self._respond("NO CARRIER")
            return
        yield self.dial_delay
        try:
            call = self.network.open_data_call(self, apn=self.apn)
        except Exception:
            self._respond("NO CARRIER")
            return
        self._data_call = call
        call.set_downlink(self._downlink_frame)
        call.set_on_drop(self._network_hangup)
        self.data_mode = True
        self._respond(f"CONNECT {int(call.advertised_rate_bps)}")

    # -- data path -----------------------------------------------------------

    def _downlink_frame(self, frame: PPPFrame) -> None:
        if self.data_mode:
            self.port._modem_write(frame)

    def _network_hangup(self, reason: str) -> None:
        if self._data_call is not None:
            self._data_call = None
            self.data_mode = False
            self.port._modem_write("NO CARRIER")

    def _hangup(self, reason: str) -> None:
        if self._data_call is not None:
            call, self._data_call = self._data_call, None
            self.data_mode = False
            call.hangup(reason)

    @property
    def connected(self) -> bool:
        """True while a data call is active."""
        return self._data_call is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} on {self.port.name} creg={self.registration}>"
