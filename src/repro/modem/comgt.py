"""comgt — GPRS/UMTS network registration.

The paper uses comgt "to register into the operator network".  The
tool's default script checks the modem is alive, deals with the SIM
PIN, then polls ``AT+CREG?`` until the card reports registered (home
or roaming), finally reading signal quality.  :meth:`Comgt.run` is
that script as a simulation process returning a (exit code, output
lines) pair — the same contract vsys back-ends use.
"""

from __future__ import annotations

from typing import List, Optional

from repro.modem.chat import chat
from repro.modem.device import RegistrationStatus
from repro.modem.serial import SerialPort

_REGISTERED = (
    int(RegistrationStatus.REGISTERED_HOME),
    int(RegistrationStatus.REGISTERED_ROAMING),
)


class Comgt:
    """The registration tool bound to one serial port."""

    def __init__(
        self,
        port: SerialPort,
        pin: Optional[str] = None,
        poll_interval: float = 2.0,
        max_attempts: int = 30,
    ):
        self.port = port
        self.pin = pin
        self.poll_interval = poll_interval
        self.max_attempts = max_attempts

    def run(self):
        """The default comgt script.  Generator returning (code, lines).

        The whole registration is one ``dial.register`` span; a nonzero
        exit also emits an error event (the flight-recorder trigger).
        """
        trace = self.port.sim.trace
        span = trace.span("dial.register") if trace is not None else None
        code, lines = yield from self._script(trace)
        if span is not None:
            if code == 0:
                span.end(code=code)
            else:
                span.fail(lines[-1] if lines else "", code=code)
        if code != 0 and trace is not None:
            trace.error("dial.register.failed", detail=lines[-1] if lines else "")
        return code, lines

    def _script(self, trace):
        terminal, _ = yield from chat(self.port, "AT")
        if terminal != "OK":
            return 1, [f"comgt: modem not responding ({terminal})"]
        terminal, info = yield from chat(self.port, "AT+CPIN?")
        if terminal != "OK":
            return 1, [f"comgt: SIM query failed ({terminal})"]
        if info and "SIM PIN" in info[0]:
            if self.pin is None:
                return 1, ["comgt: SIM PIN required but none configured"]
            terminal, _ = yield from chat(self.port, f'AT+CPIN="{self.pin}"')
            if terminal != "OK":
                return 1, [f"comgt: PIN rejected ({terminal})"]
        for _attempt in range(self.max_attempts):
            terminal, info = yield from chat(self.port, "AT+CREG?")
            status = _parse_creg(info)
            if trace is not None:
                trace.emit("comgt.creg", attempt=_attempt, creg=status)
            if status in _REGISTERED:
                lines = [f"comgt: registered on network (CREG {status})"]
                terminal, info = yield from chat(self.port, "AT+CSQ")
                if terminal == "OK" and info:
                    lines.append(f"comgt: signal {info[0].replace('+CSQ: ', '')}")
                terminal, info = yield from chat(self.port, "AT+COPS?")
                if terminal == "OK" and info:
                    lines.append(f"comgt: operator {info[0]}")
                return 0, lines
            if status == int(RegistrationStatus.DENIED):
                return 1, ["comgt: registration denied by network"]
            yield self.poll_interval
        return 1, ["comgt: registration timed out"]


def _parse_creg(info: List[str]) -> int:
    """Extract the status digit from a ``+CREG: 0,<stat>`` line."""
    for line in info:
        if line.startswith("+CREG:"):
            try:
                return int(line.split(",")[1])
            except (IndexError, ValueError):
                return int(RegistrationStatus.NOT_REGISTERED)
    return int(RegistrationStatus.NOT_REGISTERED)
