"""comgt — GPRS/UMTS network registration.

The paper uses comgt "to register into the operator network".  The
tool's default script checks the modem is alive, deals with the SIM
PIN, then polls ``AT+CREG?`` until the card reports registered (home
or roaming), finally reading signal quality.  :meth:`Comgt.run` is
that script as a simulation process returning a (exit code, output
lines) pair — the same contract vsys back-ends use.

Every AT exchange runs under a per-command deadline, and the CREG poll
is driven by a constant-interval :class:`~repro.core.retry.RetryPolicy`
budget — a modem that stops answering (fault injection, dead line)
surfaces as a clean exit-1 the connection manager can classify and
retry, never a hung process.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.retry import RetryPolicy
from repro.modem.chat import DEFAULT_CHAT_TIMEOUT, chat
from repro.modem.device import RegistrationStatus
from repro.modem.serial import SerialPort

_REGISTERED = (
    int(RegistrationStatus.REGISTERED_HOME),
    int(RegistrationStatus.REGISTERED_ROAMING),
)


class Comgt:
    """The registration tool bound to one serial port."""

    def __init__(
        self,
        port: SerialPort,
        pin: Optional[str] = None,
        poll_interval: float = 2.0,
        max_attempts: int = 30,
        command_timeout: float = DEFAULT_CHAT_TIMEOUT,
    ):
        self.port = port
        self.pin = pin
        self.poll_interval = poll_interval
        self.max_attempts = max_attempts
        self.command_timeout = command_timeout
        self.poll_policy = RetryPolicy(
            max_attempts=max_attempts,
            base_delay=poll_interval,
            multiplier=1.0,
            max_delay=poll_interval,
        )

    def run(self):
        """The default comgt script.  Generator returning (code, lines).

        The whole registration is one ``dial.register`` span; a nonzero
        exit also emits an error event (the flight-recorder trigger).
        """
        trace = self.port.sim.trace
        span = trace.span("dial.register") if trace is not None else None
        code, lines = yield from self._script(trace)
        if span is not None:
            if code == 0:
                span.end(code=code)
            else:
                span.fail(lines[-1] if lines else "", code=code)
        if code != 0 and trace is not None:
            trace.error("dial.register.failed", detail=lines[-1] if lines else "")
        return code, lines

    def _chat(self, command: str):
        return (yield from chat(self.port, command, timeout=self.command_timeout))

    def _script(self, trace):
        terminal, _ = yield from self._chat("AT")
        if terminal != "OK":
            return 1, [f"comgt: modem not responding ({terminal})"]
        terminal, info = yield from self._chat("AT+CPIN?")
        if terminal != "OK":
            return 1, [f"comgt: SIM query failed ({terminal})"]
        if info and "SIM PIN" in info[0]:
            if self.pin is None:
                return 1, ["comgt: SIM PIN required but none configured"]
            terminal, _ = yield from self._chat(f'AT+CPIN="{self.pin}"')
            if terminal != "OK":
                return 1, [f"comgt: PIN rejected ({terminal})"]
        for attempt in self.poll_policy.attempts():
            terminal, info = yield from self._chat("AT+CREG?")
            if terminal != "OK":
                return 1, [f"comgt: CREG query failed ({terminal})"]
            status = _parse_creg(info)
            if trace is not None:
                trace.emit("comgt.creg", attempt=attempt, creg=status)
            if status in _REGISTERED:
                lines = [f"comgt: registered on network (CREG {status})"]
                terminal, info = yield from self._chat("AT+CSQ")
                if terminal == "OK" and info:
                    lines.append(f"comgt: signal {info[0].replace('+CSQ: ', '')}")
                terminal, info = yield from self._chat("AT+COPS?")
                if terminal == "OK" and info:
                    lines.append(f"comgt: operator {info[0]}")
                return 0, lines
            if status == int(RegistrationStatus.DENIED):
                return 1, ["comgt: registration denied by network"]
            yield self.poll_policy.delay(attempt)
        return 1, ["comgt: registration timed out"]


def _parse_creg(info: List[str]) -> int:
    """Extract the status digit from a ``+CREG: 0,<stat>`` line."""
    for line in info:
        if line.startswith("+CREG:"):
            try:
                return int(line.split(",")[1])
            except (IndexError, ValueError):
                return int(RegistrationStatus.NOT_REGISTERED)
    return int(RegistrationStatus.NOT_REGISTERED)
