"""Expect-style chat over a serial port.

Both comgt and wvdial are, at heart, chat scripts: write an AT command,
collect response lines until a terminal result code.  :func:`chat` is
that primitive as a simulation generator (``yield from chat(...)``).
"""

from __future__ import annotations

from typing import List

from repro.modem.serial import SerialPort

#: Result codes that end one command's response.
_TERMINAL_PREFIXES = (
    "OK",
    "ERROR",
    "NO CARRIER",
    "BUSY",
    "NO DIALTONE",
    "CONNECT",
    "+CME ERROR",
)


def is_terminal(line: str) -> bool:
    """Whether a response line ends the command."""
    return line.startswith(_TERMINAL_PREFIXES)


def chat(port: SerialPort, command: str):
    """Send ``command``; gather lines until a result code.

    A generator for use inside simulation processes::

        terminal, info = yield from chat(port, "AT+CREG?")

    Returns ``(terminal_line, info_lines)``.  Command echo (if the
    modem has ATE1 set) is skipped; non-string items (stray data-mode
    frames) are ignored.
    """
    port.write(command)
    info: List[str] = []
    while True:
        item = yield port.read()
        if not isinstance(item, str):
            continue
        line = item.strip()
        if not line or line == command:
            continue
        if is_terminal(line):
            return line, info
        info.append(line)
