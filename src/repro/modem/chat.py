"""Expect-style chat over a serial port.

Both comgt and wvdial are, at heart, chat scripts: write an AT command,
collect response lines until a terminal result code.  :func:`chat` is
that primitive as a simulation generator (``yield from chat(...)``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.modem.serial import SerialPort
from repro.sim.process import TIMEOUT

#: Result codes that end one command's response.
_TERMINAL_PREFIXES = (
    "OK",
    "ERROR",
    "NO CARRIER",
    "BUSY",
    "NO DIALTONE",
    "CONNECT",
    "+CME ERROR",
)

#: Synthetic terminal when the modem stays silent past the deadline
#: (never on the wire; produced by :func:`chat` itself).
CHAT_TIMEOUT = "TIMEOUT"

#: Per-read deadline the dial-up tools use.  Generous: the slowest
#: legitimate response (dial delay + escape guard) is well under it.
DEFAULT_CHAT_TIMEOUT = 10.0


def is_terminal(line: str) -> bool:
    """Whether a response line ends the command."""
    return line.startswith(_TERMINAL_PREFIXES)


def chat(port: SerialPort, command: str, timeout: Optional[float] = None):
    """Send ``command``; gather lines until a result code.

    A generator for use inside simulation processes::

        terminal, info = yield from chat(port, "AT+CREG?")

    Returns ``(terminal_line, info_lines)``.  Command echo (if the
    modem has ATE1 set) is skipped; non-string items (stray data-mode
    frames, fault-garbled lines) are ignored.  With ``timeout`` set,
    a read that stays silent that long ends the chat with the
    :data:`CHAT_TIMEOUT` terminal — what a real chat script's abort
    timer does when a response was lost on the line.
    """
    port.write(command)
    info: List[str] = []
    while True:
        item = yield port.read(timeout)
        if item is TIMEOUT:
            return CHAT_TIMEOUT, info
        if not isinstance(item, str):
            continue
        line = item.strip()
        if not line or line == command:
            continue
        if is_terminal(line):
            return line, info
        info.append(line)
