"""The two UMTS cards the paper supports."""

from __future__ import annotations

from repro.modem.device import Modem3G


class GlobetrotterGT3G(Modem3G):
    """Option Globetrotter GT 3G+ (PC-Card).

    Driven by the ``nozomi`` kernel module, which the paper had to
    patch for the PlanetLab 2.6.22 kernel.  A three-port card; the
    first port carries the AT/PPP dialogue.
    """

    model = "GlobeTrotter 3G+"
    manufacturer = "Option N.V."
    required_module = "nozomi"


class HuaweiE620(Modem3G):
    """Huawei E620 (USB).

    Appears as USB serial ports via ``pl2303``/``usbserial``.  Slightly
    slower to reach CONNECT than the Option card in our bench traces,
    which the dial delay reflects.
    """

    model = "E620"
    manufacturer = "huawei"
    required_module = "usbserial"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.dial_delay = 2.5
