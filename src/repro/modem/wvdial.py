"""wvdial — establishing the data call, and the serial PPP transport.

wvdial resets the modem, defines the PDP context for the operator's
APN, dials ``*99#`` and waits for CONNECT; at that point the serial
line is in data mode and pppd takes over.  :class:`SerialPppTransport`
is that takeover: it adapts the host side of the serial port to the
frame-transport interface :class:`~repro.ppp.daemon.Pppd` expects, and
surfaces "NO CARRIER" as a carrier-lost event.

Fault surface: outbound LCP/IPCP frames consult the ``ppp`` injection
point (Configure-Request loss, IPCP stall), and inbound
:class:`~repro.faults.plan.Garbled` items are counted and dropped —
the HDLC FCS would have rejected them on a real line.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.faults.plan import Garbled
from repro.modem.chat import DEFAULT_CHAT_TIMEOUT, chat
from repro.modem.serial import SerialPort
from repro.ppp.frame import PPP_IPCP, PPP_LCP, PPPFrame
from repro.sim.engine import Simulator
from repro.sim.process import TIMEOUT, Process, spawn


class Wvdial:
    """The dialer bound to one serial port."""

    def __init__(
        self,
        port: SerialPort,
        apn: str,
        phone: str = "*99#",
        init_commands: Optional[List[str]] = None,
        command_timeout: float = DEFAULT_CHAT_TIMEOUT,
    ):
        self.port = port
        self.apn = apn
        self.phone = phone
        self.init_commands = list(init_commands or [])
        self.command_timeout = command_timeout

    def run(self):
        """The dial sequence.  Generator returning (code, lines).

        On success (exit 0) the serial port is in data mode and the
        last output line is the CONNECT message.  The whole sequence is
        one ``dial.dial`` span; a failure also emits an error event.
        """
        trace = self.port.sim.trace
        span = trace.span("dial.dial", apn=self.apn) if trace is not None else None
        code, lines = yield from self._script()
        if span is not None:
            if code == 0:
                span.end(code=code)
            else:
                span.fail(lines[-1] if lines else "", code=code)
        if code != 0 and trace is not None:
            trace.error("dial.dial.failed", detail=lines[-1] if lines else "")
        return code, lines

    def _script(self):
        setup = ["ATZ", f'AT+CGDCONT=1,"IP","{self.apn}"'] + self.init_commands
        for command in setup:
            terminal, _ = yield from chat(
                self.port, command, timeout=self.command_timeout
            )
            if terminal != "OK":
                return 1, [f"wvdial: {command} failed ({terminal})"]
        terminal, _ = yield from chat(
            self.port, f"ATD{self.phone}", timeout=self.command_timeout
        )
        if terminal.startswith("CONNECT"):
            return 0, [f"wvdial: carrier acquired ({terminal})"]
        return 1, [f"wvdial: dial failed ({terminal})"]

    def hangup(self):
        """Escape to command mode and hang up.  Generator returning (code, lines).

        Robust to the modem already being in command mode (a failed
        negotiation, carrier already lost): "+++" then answers ERROR
        instead of OK, and a line that has gone completely silent runs
        into the per-read deadline rather than blocking forever.
        """
        self.port.write("+++")
        while True:
            item = yield self.port.read(self.command_timeout)
            if item is TIMEOUT:
                break
            if isinstance(item, str) and item.strip() in ("OK", "ERROR"):
                break
        terminal, _ = yield from chat(self.port, "ATH", timeout=self.command_timeout)
        if terminal == "OK":
            return 0, ["wvdial: disconnected"]
        return 1, [f"wvdial: hangup failed ({terminal})"]


class SerialPppTransport:
    """pppd's frame transport over a serial port in data mode."""

    def __init__(
        self,
        sim: Simulator,
        port: SerialPort,
        on_carrier_lost: Optional[Callable[[], None]] = None,
    ):
        self.sim = sim
        self.port = port
        self.on_carrier_lost = on_carrier_lost
        self._receiver: Optional[Callable[[PPPFrame], None]] = None
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_dropped = 0
        self.frames_garbled = 0
        self._reader: Process = spawn(sim, self._read_loop(), name=f"ppp-tty:{port.name}")

    def set_receiver(self, callback: Callable[[PPPFrame], None]) -> None:
        """Register pppd's inbound frame handler."""
        self._receiver = callback

    def send_frame(self, frame: PPPFrame) -> None:
        """pppd → modem."""
        faults = self.sim.faults
        if faults is not None:
            mode: Optional[str] = None
            if frame.protocol == PPP_LCP:
                mode = "lcp_drop"
            elif frame.protocol == PPP_IPCP:
                mode = "ipcp_stall"
            if mode is not None and faults.fire("ppp", mode):
                self.frames_dropped += 1
                return
        self.frames_sent += 1
        self.port.write(frame)

    def stop(self) -> None:
        """Detach from the port (pppd exited)."""
        self._reader.interrupt("transport stopped")

    def _read_loop(self):
        while True:
            item = yield self.port.read()
            if isinstance(item, PPPFrame):
                self.frames_received += 1
                if self._receiver is not None:
                    self._receiver(item)
            elif isinstance(item, Garbled):
                # Failed the HDLC frame check; count and discard.
                self.frames_garbled += 1
            elif isinstance(item, str) and item.strip() == "NO CARRIER":
                if self.on_carrier_lost is not None:
                    self.on_carrier_lost()
                return
