"""Serial ports between the host tools and the modem.

The port carries Python objects: strings are command/response lines
(the AT dialogue), :class:`~repro.ppp.frame.PPPFrame` objects are the
data-mode traffic.  Byte-level framing is modelled separately
(:mod:`repro.ppp.hdlc`); carrying parsed objects keeps the tools'
logic readable without changing any behaviour the experiments see.

Fault modes on the modem → host direction:

- ``drop`` / ``garble`` hit any item (line noise on the local cable);
- ``latency`` / ``at_drop`` hit *strings only* — they model a
  MobileAtlas-style remote SIM where the AT dialogue is tunnelled over
  the wide-area network while the user plane stays local, so only
  command/response lines see the tunnel's delay and loss.  Delayed
  lines stay FIFO: a later response is never delivered before an
  earlier delayed one.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.faults.plan import Garbled
from repro.sim.engine import Simulator
from repro.sim.process import Store, StoreGet


class SerialPort:
    """A bidirectional host↔modem serial line.

    The host side is what comgt/wvdial/pppd hold; the modem side is
    private to the device (``_modem_read``/``_modem_write``).
    """

    def __init__(self, sim: Simulator, name: str = "ttyUSB0"):
        self.sim = sim
        self.name = name
        self._to_modem = Store(sim, f"{name}.out")
        self._to_host = Store(sim, f"{name}.in")
        self.host_writes = 0
        self.modem_writes = 0
        self.dropped_items = 0
        self.garbled_items = 0
        self.delayed_items = 0
        # When a delayed line is in flight, everything behind it must
        # queue too (FIFO over the remote-SIM tunnel); this is the sim
        # time at which the line becomes free again.
        self._delivery_horizon = 0.0

    # -- host side ------------------------------------------------------

    def write(self, item: Any) -> None:
        """Host → modem (a command line or a PPP frame)."""
        self.host_writes += 1
        self._to_modem.put(item)

    def read(self, timeout: Optional[float] = None) -> StoreGet:
        """Yieldable token resolving to the next modem → host item.

        With ``timeout`` the yield resumes with the
        :data:`~repro.sim.process.TIMEOUT` sentinel when the line stays
        silent that long (how chat scripts survive a dead modem).
        """
        return self._to_host.get(timeout)

    def read_available(self) -> int:
        """Items waiting for the host."""
        return len(self._to_host)

    # -- modem side --------------------------------------------------------

    def _modem_write(self, item: Any) -> None:
        self.modem_writes += 1
        faults = self.sim.faults
        if faults is not None:
            spec = faults.fire("serial", "drop", "garble")
            if spec is not None:
                if spec.mode == "drop":
                    self.dropped_items += 1
                    return
                self.garbled_items += 1
                item = Garbled(item)
            elif isinstance(item, str):
                # Remote-SIM tunnel faults apply to AT lines only; the
                # user plane (PPP frames) never crosses the tunnel.
                spec = faults.fire("serial", "at_drop", "latency")
                if spec is not None:
                    if spec.mode == "at_drop":
                        self.dropped_items += 1
                        return
                    delay = float(spec.params.get("delay", 0.5))
                    self.delayed_items += 1
                    when = max(self.sim.now + delay, self._delivery_horizon)
                    self._delivery_horizon = when
                    self.sim.post(when - self.sim.now, self._to_host.put, item)
                    return
        if self._delivery_horizon > self.sim.now:
            # A delayed line is still in flight: keep FIFO order by
            # routing this item through the scheduler behind it (the
            # engine's seq tiebreak preserves submission order).
            self.sim.post(
                self._delivery_horizon - self.sim.now, self._to_host.put, item
            )
            return
        self._to_host.put(item)

    def _modem_read(self) -> StoreGet:
        return self._to_modem.get()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SerialPort {self.name}>"
