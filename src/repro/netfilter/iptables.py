"""The ``iptables`` command facade.

Like :class:`repro.routing.IpRoute2`, this accepts both a typed API and
the literal command strings the paper's back-end would run, e.g.::

    iptables -t mangle -A OUTPUT -m xid --xid 510 -d 138.96.250.100 -j MARK --set-mark 1
    iptables -t filter -A OUTPUT -o ppp0 -m xid ! --xid 510 -j DROP

Deletion by specification (``-D`` with the same clauses as the ``-A``)
is supported because that is how the back-end removes per-destination
marking rules on ``umts del <dest>``.
"""

from __future__ import annotations

import shlex
from typing import List, Optional

from repro.net.addressing import PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.netfilter.chains import Chain, Netfilter, Rule
from repro.netfilter.matches import (
    DestinationMatch,
    DportMatch,
    InInterfaceMatch,
    MarkMatch,
    Match,
    OutInterfaceMatch,
    ProtocolMatch,
    SourceMatch,
    SportMatch,
    XidMatch,
)
from repro.netfilter.targets import (
    AcceptTarget,
    DropTarget,
    LogTarget,
    MarkTarget,
    ReturnTarget,
    Target,
    Verdict,
)

_PROTO_NUMBERS = {"icmp": PROTO_ICMP, "tcp": PROTO_TCP, "udp": PROTO_UDP}


class IptablesError(Exception):
    """Raised for malformed or failing iptables commands."""


class Iptables:
    """iptables against one node's :class:`Netfilter` state."""

    def __init__(self, netfilter: Netfilter):
        self.netfilter = netfilter
        #: every command string executed through :meth:`run`.
        self.history: List[str] = []

    # -- typed API ---------------------------------------------------

    def append(self, table: str, chain: str, rule: Rule) -> Rule:
        """``-A``: add a rule at the end of a chain."""
        self._chain(table, chain).append(rule)
        return rule

    def insert(self, table: str, chain: str, rule: Rule, index: int = 0) -> Rule:
        """``-I``: add a rule at a position (0-based)."""
        self._chain(table, chain).insert(rule, index)
        return rule

    def delete(self, table: str, chain: str, rule: Rule) -> None:
        """``-D`` with a rule object previously returned by append/insert."""
        self._chain(table, chain).delete(rule)

    def delete_spec(self, table: str, chain: str, spec: Rule) -> None:
        """``-D`` by specification: remove the first rule whose clauses
        render identically to ``spec`` (how iptables matches them)."""
        target_chain = self._chain(table, chain)
        wanted = repr(spec)
        for rule in target_chain.rules:
            if repr(rule) == wanted:
                target_chain.delete(rule)
                return
        raise IptablesError(f"no rule matching spec in {table}/{chain}: {wanted}")

    def flush(self, table: str, chain: Optional[str] = None) -> None:
        """``-F``: flush one chain, or every chain of the table."""
        if chain is not None:
            self._chain(table, chain).flush()
            return
        for each in self.netfilter.table(table).chains.values():
            each.flush()

    def policy(self, table: str, chain: str, verdict: str) -> None:
        """``-P``: set a built-in chain's policy."""
        target_chain = self._chain(table, chain)
        if target_chain.policy is None:
            raise IptablesError(f"cannot set policy on user chain {chain!r}")
        target_chain.policy = Verdict(verdict)

    def list_rules(self, table: str, chain: str) -> List[Rule]:
        """``-L``: the rules of a chain, in order."""
        return list(self._chain(table, chain).rules)

    def rule_counters(self) -> dict:
        """``-L -v``-style snapshot: per-rule packet/byte counters.

        Keys are ``table/chain[index] <rule spec>``; the observability
        layer exports this alongside the metrics registry so per-slice
        marking and drop rules can be audited after a run.
        """
        out = {}
        for table_name in sorted(self.netfilter.tables):
            table = self.netfilter.tables[table_name]
            for chain_name in sorted(table.chains):
                chain = table.chains[chain_name]
                for index, rule in enumerate(chain.rules):
                    key = f"{table_name}/{chain_name}[{index}] {rule!r}"
                    out[key] = {"packets": rule.packets, "bytes": rule.bytes}
        return out

    def _chain(self, table: str, chain: str) -> Chain:
        try:
            return self.netfilter.table(table).chain(chain)
        except KeyError as exc:
            raise IptablesError(f"no such table/chain: {table}/{chain}") from exc

    # -- string-command front door ------------------------------------

    def run(self, command: str) -> Optional[Rule]:
        """Execute an iptables command string.

        Returns the created rule for ``-A``/``-I``, ``None`` otherwise.
        """
        self.history.append(command)
        argv = shlex.split(command)
        if argv and argv[0] == "iptables":
            argv = argv[1:]
        table = "filter"
        operation = None
        chain = None
        index = 0
        tokens = list(argv)
        # First pass: pull out -t and the operation.
        i = 0
        remaining: List[str] = []
        while i < len(tokens):
            token = tokens[i]
            if token == "-t":
                table = _take_value(tokens, i, command)
                i += 2
            elif token in ("-A", "-D", "-F", "-P"):
                operation = token
                if i + 1 < len(tokens) and not tokens[i + 1].startswith("-"):
                    chain = tokens[i + 1]
                    i += 2
                else:
                    i += 1
            elif token == "-I":
                operation = token
                chain = _take_value(tokens, i, command)
                i += 2
                if i < len(tokens) and tokens[i].isdigit():
                    index = int(tokens[i]) - 1  # iptables -I is 1-based
                    i += 1
            else:
                remaining.append(token)
                i += 1
        if operation is None:
            raise IptablesError(f"no operation in {command!r}")
        if operation == "-F":
            self.flush(table, chain)
            return None
        if operation == "-P":
            if chain is None or not remaining:
                raise IptablesError(f"-P needs chain and policy: {command!r}")
            self.policy(table, chain, remaining[0])
            return None
        if chain is None:
            raise IptablesError(f"missing chain in {command!r}")
        rule = self._parse_rule_spec(remaining, command)
        if operation == "-A":
            return self.append(table, chain, rule)
        if operation == "-I":
            return self.insert(table, chain, rule, index)
        self.delete_spec(table, chain, rule)
        return None

    def _parse_rule_spec(self, tokens: List[str], command: str) -> Rule:
        matches: List[Match] = []
        target: Optional[Target] = None
        invert = False
        i = 0
        while i < len(tokens):
            token = tokens[i]
            if token == "!":
                invert = True
                i += 1
                continue
            if token == "-m":
                # The module name itself (mark/xid/...) carries no state.
                _take_value(tokens, i, command)
                i += 2
                continue
            if token == "-p":
                name = _take_value(tokens, i, command)
                proto = _PROTO_NUMBERS.get(name)
                if proto is None:
                    raise IptablesError(f"unknown protocol {name!r}")
                matches.append(ProtocolMatch(proto, invert=invert))
            elif token == "-s":
                matches.append(SourceMatch(_take_value(tokens, i, command), invert=invert))
            elif token == "-d":
                matches.append(
                    DestinationMatch(_take_value(tokens, i, command), invert=invert)
                )
            elif token == "-i":
                matches.append(
                    InInterfaceMatch(_take_value(tokens, i, command), invert=invert)
                )
            elif token == "-o":
                matches.append(
                    OutInterfaceMatch(_take_value(tokens, i, command), invert=invert)
                )
            elif token == "--mark":
                value = _take_value(tokens, i, command)
                if "/" in value:
                    mark_text, mask_text = value.split("/", 1)
                    matches.append(
                        MarkMatch(int(mark_text, 0), int(mask_text, 0), invert=invert)
                    )
                else:
                    matches.append(MarkMatch(int(value, 0), invert=invert))
            elif token == "--xid":
                matches.append(
                    XidMatch(int(_take_value(tokens, i, command)), invert=invert)
                )
            elif token == "--sport":
                matches.append(
                    SportMatch(int(_take_value(tokens, i, command)), invert=invert)
                )
            elif token == "--dport":
                matches.append(
                    DportMatch(int(_take_value(tokens, i, command)), invert=invert)
                )
            elif token == "-j":
                name = _take_value(tokens, i, command)
                if name == "ACCEPT":
                    target = AcceptTarget()
                elif name == "DROP":
                    target = DropTarget()
                elif name == "RETURN":
                    target = ReturnTarget()
                elif name == "LOG":
                    target = LogTarget()
                elif name == "MARK":
                    if i + 3 < len(tokens) and tokens[i + 2] == "--set-mark":
                        target = MarkTarget(int(tokens[i + 3], 0))
                        i += 2
                    else:
                        raise IptablesError(f"MARK needs --set-mark: {command!r}")
                else:
                    raise IptablesError(f"unsupported target {name!r}")
            else:
                raise IptablesError(f"unsupported token {token!r} in {command!r}")
            if token != "!":
                invert = False
            i += 2
        if target is None:
            raise IptablesError(f"rule without -j target: {command!r}")
        return Rule(matches, target)


def _take_value(tokens: List[str], i: int, command: str) -> str:
    """The value following option ``tokens[i]``."""
    if i + 1 >= len(tokens):
        raise IptablesError(f"option {tokens[i]!r} missing value in {command!r}")
    return tokens[i + 1]
