"""Rule targets (the ``-j`` argument)."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netfilter.chains import Chain, PacketContext


class Verdict(enum.Enum):
    """Terminal outcomes of chain traversal."""

    ACCEPT = "ACCEPT"
    DROP = "DROP"


class Target:
    """Base class: applied when all of a rule's matches pass.

    :meth:`apply` returns a :class:`Verdict` to end traversal, the
    string ``"RETURN"`` to pop back to the calling chain, or ``None``
    to continue with the next rule (non-terminating targets like MARK
    and LOG).
    """

    def apply(self, ctx: "PacketContext"):
        """Execute the target against the packet; see class docs."""
        raise NotImplementedError


class AcceptTarget(Target):
    """``-j ACCEPT``."""

    def apply(self, ctx: "PacketContext") -> Verdict:
        """Terminate traversal, accepting the packet."""
        return Verdict.ACCEPT

    def __repr__(self) -> str:
        return "-j ACCEPT"


class DropTarget(Target):
    """``-j DROP``."""

    def apply(self, ctx: "PacketContext") -> Verdict:
        """Terminate traversal, dropping the packet."""
        return Verdict.DROP

    def __repr__(self) -> str:
        return "-j DROP"


class ReturnTarget(Target):
    """``-j RETURN``."""

    def apply(self, ctx: "PacketContext") -> str:
        """Pop back to the calling chain."""
        return "RETURN"

    def __repr__(self) -> str:
        return "-j RETURN"


class MarkTarget(Target):
    """``-j MARK --set-mark value`` (non-terminating, mangle table)."""

    def __init__(self, mark: int):
        self.mark = mark

    def apply(self, ctx: "PacketContext") -> None:
        """Set the packet's fwmark; traversal continues."""
        ctx.packet.mark = self.mark
        return None

    def __repr__(self) -> str:
        return f"-j MARK --set-mark {self.mark:#x}"


class LogTarget(Target):
    """``-j LOG`` — records (time, packet repr) into ``entries``."""

    def __init__(self, prefix: str = ""):
        self.prefix = prefix
        self.entries: List[Tuple[Optional[float], str]] = []

    def apply(self, ctx: "PacketContext") -> None:
        """Record the packet; traversal continues."""
        self.entries.append((ctx.now, f"{self.prefix}{ctx.packet!r}"))
        return None

    def __repr__(self) -> str:
        return f"-j LOG --log-prefix {self.prefix!r}"


class JumpTarget(Target):
    """``-j <user-chain>`` — traverse another chain, then continue."""

    def __init__(self, chain: "Chain"):
        self.chain = chain

    def apply(self, ctx: "PacketContext"):
        """Traverse the user chain; RETURN/fall-through continues here."""
        verdict = self.chain.traverse(ctx)
        if verdict == "RETURN" or verdict is None:
            return None
        return verdict

    def __repr__(self) -> str:
        return f"-j {self.chain.name}"
