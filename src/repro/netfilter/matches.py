"""Rule matches.

Every match supports inversion (iptables ``!``).  The
:class:`XidMatch` models the VNET+ extension PlanetLab added so
iptables can select packets by the VServer context (slice) that
generated them — the feature §2.3 of the paper builds on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.addressing import IPv4Network, NetworkLike, network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netfilter.chains import PacketContext


class Match:
    """Base class: a predicate over (packet, hook context)."""

    def __init__(self, invert: bool = False):
        self.invert = invert

    def _test(self, ctx: "PacketContext") -> bool:
        raise NotImplementedError

    def matches(self, ctx: "PacketContext") -> bool:
        """Apply the predicate, honouring inversion."""
        result = self._test(ctx)
        return not result if self.invert else result

    def _bang(self) -> str:
        return "! " if self.invert else ""


class ProtocolMatch(Match):
    """``-p udp`` etc. (by protocol number)."""

    def __init__(self, proto: int, invert: bool = False):
        super().__init__(invert)
        self.proto = proto

    def _test(self, ctx: "PacketContext") -> bool:
        return ctx.packet.proto == self.proto

    def __repr__(self) -> str:
        return f"{self._bang()}-p {self.proto}"


class SourceMatch(Match):
    """``-s <prefix>``."""

    def __init__(self, prefix: NetworkLike, invert: bool = False):
        super().__init__(invert)
        self.prefix: IPv4Network = network(prefix)

    def _test(self, ctx: "PacketContext") -> bool:
        return ctx.packet.src in self.prefix

    def __repr__(self) -> str:
        return f"{self._bang()}-s {self.prefix}"


class DestinationMatch(Match):
    """``-d <prefix>``."""

    def __init__(self, prefix: NetworkLike, invert: bool = False):
        super().__init__(invert)
        self.prefix: IPv4Network = network(prefix)

    def _test(self, ctx: "PacketContext") -> bool:
        return ctx.packet.dst in self.prefix

    def __repr__(self) -> str:
        return f"{self._bang()}-d {self.prefix}"


class InInterfaceMatch(Match):
    """``-i <iface>`` (valid in PREROUTING/INPUT/FORWARD)."""

    def __init__(self, name: str, invert: bool = False):
        super().__init__(invert)
        self.name = name

    def _test(self, ctx: "PacketContext") -> bool:
        return ctx.in_iface == self.name

    def __repr__(self) -> str:
        return f"{self._bang()}-i {self.name}"


class OutInterfaceMatch(Match):
    """``-o <iface>`` (valid in OUTPUT/FORWARD/POSTROUTING)."""

    def __init__(self, name: str, invert: bool = False):
        super().__init__(invert)
        self.name = name

    def _test(self, ctx: "PacketContext") -> bool:
        return ctx.out_iface == self.name

    def __repr__(self) -> str:
        return f"{self._bang()}-o {self.name}"


class MarkMatch(Match):
    """``-m mark --mark value[/mask]``."""

    def __init__(self, mark: int, mask: int = 0xFFFFFFFF, invert: bool = False):
        super().__init__(invert)
        self.mark = mark
        self.mask = mask

    def _test(self, ctx: "PacketContext") -> bool:
        return (ctx.packet.mark & self.mask) == (self.mark & self.mask)

    def __repr__(self) -> str:
        return f"-m mark {self._bang()}--mark {self.mark:#x}/{self.mask:#x}"


class XidMatch(Match):
    """``-m xid --xid N`` — the VNET+ slice-context match.

    Matches packets whose generating socket belonged to VServer context
    ``xid``.  Root-context packets have xid 0.
    """

    def __init__(self, xid: int, invert: bool = False):
        super().__init__(invert)
        self.xid = xid

    def _test(self, ctx: "PacketContext") -> bool:
        return ctx.packet.xid == self.xid

    def __repr__(self) -> str:
        return f"-m xid {self._bang()}--xid {self.xid}"


class SportMatch(Match):
    """``--sport N``."""

    def __init__(self, port: int, invert: bool = False):
        super().__init__(invert)
        self.port = port

    def _test(self, ctx: "PacketContext") -> bool:
        return ctx.packet.sport == self.port

    def __repr__(self) -> str:
        return f"{self._bang()}--sport {self.port}"


class DportMatch(Match):
    """``--dport N``."""

    def __init__(self, port: int, invert: bool = False):
        super().__init__(invert)
        self.port = port

    def _test(self, ctx: "PacketContext") -> bool:
        return ctx.packet.dport == self.port

    def __repr__(self) -> str:
        return f"{self._bang()}--dport {self.port}"
