"""Chains, tables and the hook dispatcher."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.packet import Packet
from repro.netfilter.matches import Match
from repro.netfilter.targets import Target, Verdict

#: Hook points in traversal order for locally generated traffic.
HOOK_PREROUTING = "PREROUTING"
HOOK_INPUT = "INPUT"
HOOK_FORWARD = "FORWARD"
HOOK_OUTPUT = "OUTPUT"
HOOK_POSTROUTING = "POSTROUTING"

#: Which built-in chains each table owns (as on Linux).
TABLE_CHAINS = {
    "mangle": [
        HOOK_PREROUTING,
        HOOK_INPUT,
        HOOK_FORWARD,
        HOOK_OUTPUT,
        HOOK_POSTROUTING,
    ],
    "filter": [HOOK_INPUT, HOOK_FORWARD, HOOK_OUTPUT],
}

#: Evaluation order of tables at each hook (mangle priority < filter).
HOOK_TABLE_ORDER = {
    HOOK_PREROUTING: ["mangle"],
    HOOK_INPUT: ["mangle", "filter"],
    HOOK_FORWARD: ["mangle", "filter"],
    HOOK_OUTPUT: ["mangle", "filter"],
    HOOK_POSTROUTING: ["mangle"],
}


class PacketContext:
    """Everything a match/target may look at during one hook traversal."""

    __slots__ = ("packet", "in_iface", "out_iface", "hook", "now")

    def __init__(
        self,
        packet: Packet,
        hook: str,
        in_iface: Optional[str] = None,
        out_iface: Optional[str] = None,
        now: Optional[float] = None,
    ):
        self.packet = packet
        self.hook = hook
        self.in_iface = in_iface
        self.out_iface = out_iface
        self.now = now


class Rule:
    """A list of matches plus a target, with iptables-style counters."""

    def __init__(self, matches: List[Match], target: Target, comment: str = ""):
        self.matches = list(matches)
        self.target = target
        self.comment = comment
        self.packets = 0
        self.bytes = 0

    def try_apply(self, ctx: PacketContext):
        """If every match passes, bump counters and apply the target.

        Returns the target's result, or the sentinel string
        ``"NOMATCH"`` when a match failed.
        """
        for match in self.matches:
            if not match.matches(ctx):
                return "NOMATCH"
        self.packets += 1
        self.bytes += ctx.packet.length
        return self.target.apply(ctx)

    def __repr__(self) -> str:
        clauses = " ".join(repr(m) for m in self.matches)
        text = f"{clauses} {self.target!r}".strip()
        if self.comment:
            text += f"  # {self.comment}"
        return text


class Chain:
    """An ordered rule list with an optional default policy.

    Built-in chains have an ACCEPT/DROP policy; user-defined chains
    have ``policy=None`` and fall back to the caller (implicit RETURN).
    """

    def __init__(self, name: str, policy: Optional[Verdict] = Verdict.ACCEPT):
        self.name = name
        self.policy = policy
        self.rules: List[Rule] = []
        self.policy_packets = 0

    def append(self, rule: Rule) -> None:
        """Add a rule at the end (``-A``)."""
        self.rules.append(rule)

    def insert(self, rule: Rule, index: int = 0) -> None:
        """Add a rule at ``index`` (``-I``; 0-based, default head)."""
        self.rules.insert(index, rule)

    def delete(self, rule: Rule) -> None:
        """Remove a specific rule object (``-D``)."""
        try:
            self.rules.remove(rule)
        except ValueError as exc:
            raise ValueError(f"rule not in chain {self.name}: {rule!r}") from exc

    def flush(self) -> None:
        """Drop all rules (``-F``)."""
        self.rules.clear()

    def traverse(self, ctx: PacketContext):
        """Run the packet down the chain.

        Returns a :class:`Verdict`, ``"RETURN"``, or ``None`` (end of a
        user chain without verdict).  Built-in chains convert
        end-of-chain into their policy.
        """
        for rule in self.rules:
            result = rule.try_apply(ctx)
            if result == "NOMATCH" or result is None:
                continue
            return result
        if self.policy is not None:
            self.policy_packets += 1
            return self.policy
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        policy = self.policy.value if self.policy else "-"
        return f"<Chain {self.name} policy={policy} rules={len(self.rules)}>"


class Table:
    """A named table owning its built-in chains plus user chains."""

    def __init__(self, name: str):
        self.name = name
        self.chains: Dict[str, Chain] = {
            chain_name: Chain(chain_name) for chain_name in TABLE_CHAINS[name]
        }

    def chain(self, name: str) -> Chain:
        """Look up a chain; raises ``KeyError`` if absent."""
        return self.chains[name]

    def new_chain(self, name: str) -> Chain:
        """Create a user-defined chain (``-N``)."""
        if name in self.chains:
            raise ValueError(f"chain {name!r} already exists in table {self.name!r}")
        chain = Chain(name, policy=None)
        self.chains[name] = chain
        return chain


class Netfilter:
    """One node's netfilter state and hook dispatcher."""

    def __init__(self) -> None:
        self.tables: Dict[str, Table] = {
            "mangle": Table("mangle"),
            "filter": Table("filter"),
        }
        self.dropped = 0
        #: optional :class:`~repro.obs.MetricsRegistry`; when bound, the
        #: dispatcher counts marked and dropped packets per slice xid.
        self.metrics = None
        # Per-xid counter names, built once per xid so the per-packet
        # hot path hands the registry a ready-made string (metric-name
        # lint rule: no runtime string building per event).
        self._drop_counter_names: Dict[int, str] = {}
        self._mark_counter_names: Dict[int, str] = {}

    def _drop_counter_name(self, xid: int) -> str:
        name = self._drop_counter_names.get(xid)
        if name is None:
            name = self._drop_counter_names[xid] = "netfilter.dropped.xid." + str(xid)
        return name

    def _mark_counter_name(self, xid: int) -> str:
        name = self._mark_counter_names.get(xid)
        if name is None:
            name = self._mark_counter_names[xid] = "netfilter.marked.xid." + str(xid)
        return name

    def _note_drop(self, packet: Packet, hook: str) -> None:
        self.dropped += 1
        if self.metrics is not None:
            self.metrics.counter("netfilter.dropped").inc()
            self.metrics.counter(self._drop_counter_name(packet.xid)).inc()

    def _note_mark(self, packet: Packet, mark_before: int) -> None:
        if self.metrics is not None and packet.mark != mark_before:
            self.metrics.counter("netfilter.marked").inc()
            self.metrics.counter(self._mark_counter_name(packet.xid)).inc()

    def table(self, name: str) -> Table:
        """Look up a table (``filter`` or ``mangle``)."""
        return self.tables[name]

    def run_hook(
        self,
        hook: str,
        packet: Packet,
        in_iface: Optional[str] = None,
        out_iface: Optional[str] = None,
        now: Optional[float] = None,
    ) -> bool:
        """Run every table registered at ``hook``; False means DROP."""
        ctx = PacketContext(packet, hook, in_iface=in_iface, out_iface=out_iface, now=now)
        mark_before = packet.mark
        for table_name in HOOK_TABLE_ORDER[hook]:
            chain = self.tables[table_name].chains.get(hook)
            if chain is None:
                continue
            verdict = chain.traverse(ctx)
            if verdict == Verdict.DROP:
                self._note_drop(packet, hook)
                return False
        self._note_mark(packet, mark_before)
        return True

    def run_chain(
        self,
        table: str,
        hook: str,
        packet: Packet,
        in_iface: Optional[str] = None,
        out_iface: Optional[str] = None,
        now: Optional[float] = None,
    ) -> bool:
        """Run a single table's built-in chain at ``hook``.

        The local-output path needs this split: ``mangle/OUTPUT`` runs
        *before* the routing decision (so a MARK there can steer it)
        while ``filter/OUTPUT`` runs after, once the output interface is
        known.
        """
        ctx = PacketContext(packet, hook, in_iface=in_iface, out_iface=out_iface, now=now)
        chain = self.tables[table].chains.get(hook)
        if chain is None:
            return True
        mark_before = packet.mark
        if chain.traverse(ctx) == Verdict.DROP:
            self._note_drop(packet, hook)
            return False
        self._note_mark(packet, mark_before)
        return True
