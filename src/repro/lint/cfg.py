"""Intra-function control-flow graphs for the lifecycle rules.

One :class:`Cfg` per function, one node per *statement*, with two
virtual exits: :data:`EXIT_NORMAL` (fall-off or ``return``) and
:data:`EXIT_RAISE` (an uncaught exception).  The graph is deliberately
tuned to this codebase's execution model rather than to worst-case
Python:

- **Exception edges come from process-switch points only.**  In the
  simulation, exceptions are *thrown into* generators at ``yield`` /
  ``yield from`` / ``await`` (the engine's fault injection, a kill, a
  ``GeneratorExit`` on close) or raised explicitly with ``raise``.
  Treating every call as a potential raiser would drown the lifecycle
  rules in noise; treating only switch points keeps the exception
  paths that actually occur under ``repro.faults``.
- **``try``/``finally`` uses a fan join.**  Every exit of the
  protected region — normal, exceptional, ``return``, ``break``,
  ``continue`` — routes through the ``finally`` body once, then a
  single join node fans out to the union of the continuations the
  region actually uses.  This over-approximates (a path entered
  normally may leave exceptionally) but never *under*-approximates,
  so a release inside ``finally`` always dominates the raise exit.
- **Type-specific handlers do not absorb the raise edge.**  A raise
  point inside ``try`` gets an edge to each handler *and*, unless a
  handler is a catch-all (bare, ``Exception`` or ``BaseException``),
  an escape edge past them — the raised type may match none.
- **``while True`` has no fall-through exit** (only ``break``,
  ``return`` or a raise leave it), mirroring CPython's compiler.

Known simplifications, all conservative for the rules built on top:
``assert`` is not a raise point (assertions state invariants), and
``match`` statements are opaque single nodes (none exist in-tree).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

#: Virtual successor: the function returned or fell off the end.
EXIT_NORMAL = -1
#: Virtual successor: an exception left the function.
EXIT_RAISE = -2

FunctionDefLike = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Child nodes that open a new scope; traversals never descend into them.
_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)

#: Exception-type names treated as catch-alls.
_CATCH_ALL_NAMES = frozenset({"Exception", "BaseException"})


def walk_same_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that stops at nested function/class scopes."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if not isinstance(child, _SCOPE_BARRIERS):
                stack.append(child)


def scope_statements(func: FunctionDefLike) -> Iterator[ast.stmt]:
    """Every statement belonging to ``func``'s own body (not nested defs)."""
    for node in walk_same_scope(func):
        if isinstance(node, ast.stmt) and node is not func:
            yield node


def function_defs(tree: ast.AST) -> Iterator[FunctionDefLike]:
    """All function definitions in ``tree``, in ``ast.walk`` order."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def is_switch_point(node: ast.AST) -> bool:
    """Whether ``node`` contains a yield/await in its own scope."""
    if isinstance(node, _SCOPE_BARRIERS):
        return False  # a def/class *statement* evaluates nothing inside it
    for child in walk_same_scope(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom, ast.Await)):
            return True
    return False


def stmt_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Expressions evaluated by ``stmt``'s own CFG node.

    Nested statements (an ``if`` body, a loop body) belong to their own
    nodes and are not included; neither are lambda bodies or nested
    function definitions, which merely *create* code here.
    """
    if isinstance(stmt, _SCOPE_BARRIERS):
        return
    for _field, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            yield from walk_same_scope(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    yield from walk_same_scope(item)


def _is_truthy_const(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    for node in ast.walk(handler.type):
        if isinstance(node, ast.Name) and node.id in _CATCH_ALL_NAMES:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _CATCH_ALL_NAMES:
            return True
    return False


def _dedup(items: Iterable[int]) -> List[int]:
    seen: Set[int] = set()
    out: List[int] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


@dataclass
class CfgNode:
    """One statement in the graph."""

    stmt: ast.stmt
    index: int
    succ: List[int]
    can_raise: bool


@dataclass(frozen=True)
class _Ctx:
    """Where the abnormal exits of the current region lead."""

    raise_to: Tuple[int, ...]
    return_to: int
    break_to: Optional[int]
    continue_to: Optional[int]


@dataclass
class _RegionScan:
    """What kinds of abnormal exits a protected region can take."""

    propagates: bool = False
    returns: bool = False
    breaks: bool = False
    continues: bool = False


def _scan_region(stmts: Sequence[ast.stmt], loop_depth: int = 0) -> _RegionScan:
    scan = _RegionScan()
    for stmt in stmts:
        if isinstance(stmt, ast.Return):
            scan.returns = True
        elif isinstance(stmt, ast.Break) and loop_depth == 0:
            scan.breaks = True
        elif isinstance(stmt, ast.Continue) and loop_depth == 0:
            scan.continues = True
        elif isinstance(stmt, ast.Raise) or is_switch_point(stmt):
            scan.propagates = True
        for body in _child_blocks(stmt):
            inner_depth = loop_depth + (1 if isinstance(stmt, (ast.For, ast.While)) else 0)
            inner = _scan_region(body, inner_depth)
            scan.propagates = scan.propagates or inner.propagates
            scan.returns = scan.returns or inner.returns
            scan.breaks = scan.breaks or inner.breaks
            scan.continues = scan.continues or inner.continues
    return scan


def _child_blocks(stmt: ast.stmt) -> List[List[ast.stmt]]:
    blocks: List[List[ast.stmt]] = []
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if block and not isinstance(stmt, _SCOPE_BARRIERS):
            blocks.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        blocks.append(handler.body)
    return blocks


class _Builder:
    def __init__(self) -> None:
        self.nodes: List[CfgNode] = []

    def _new(self, stmt: ast.stmt, can_raise: bool = False) -> int:
        node = CfgNode(stmt=stmt, index=len(self.nodes), succ=[], can_raise=can_raise)
        self.nodes.append(node)
        return node.index

    def block(self, stmts: Sequence[ast.stmt], follow: int, ctx: _Ctx) -> int:
        entry = follow
        for stmt in reversed(stmts):
            entry = self.statement(stmt, entry, ctx)
        return entry

    def statement(self, stmt: ast.stmt, follow: int, ctx: _Ctx) -> int:
        if isinstance(stmt, _SCOPE_BARRIERS):
            index = self._new(stmt)
            self.nodes[index].succ = [follow]
            return index
        if isinstance(stmt, ast.Return):
            index = self._new(stmt)
            self.nodes[index].succ = [ctx.return_to]
            return index
        if isinstance(stmt, ast.Raise):
            index = self._new(stmt)
            self.nodes[index].succ = _dedup(ctx.raise_to)
            return index
        if isinstance(stmt, ast.Break):
            index = self._new(stmt)
            target = ctx.break_to if ctx.break_to is not None else EXIT_NORMAL
            self.nodes[index].succ = [target]
            return index
        if isinstance(stmt, ast.Continue):
            index = self._new(stmt)
            target = ctx.continue_to if ctx.continue_to is not None else EXIT_NORMAL
            self.nodes[index].succ = [target]
            return index
        if isinstance(stmt, ast.If):
            raises = is_switch_point(stmt.test)
            index = self._new(stmt, raises)
            body_entry = self.block(stmt.body, follow, ctx)
            else_entry = self.block(stmt.orelse, follow, ctx)
            succ = [body_entry, else_entry]
            if raises:
                succ.extend(ctx.raise_to)
            self.nodes[index].succ = _dedup(succ)
            return index
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, follow, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            raises = any(is_switch_point(item.context_expr) for item in stmt.items)
            index = self._new(stmt, raises)
            body_entry = self.block(stmt.body, follow, ctx)
            succ = [body_entry]
            if raises:
                succ.extend(ctx.raise_to)
            self.nodes[index].succ = _dedup(succ)
            return index
        if isinstance(stmt, ast.Try):
            return self._try(stmt, follow, ctx)
        raises = is_switch_point(stmt)
        index = self._new(stmt, raises)
        succ = [follow]
        if raises:
            succ.extend(ctx.raise_to)
        self.nodes[index].succ = _dedup(succ)
        return index

    def _loop(
        self,
        stmt: Union[ast.While, ast.For, ast.AsyncFor],
        follow: int,
        ctx: _Ctx,
    ) -> int:
        if isinstance(stmt, ast.While):
            raises = is_switch_point(stmt.test)
            infinite = _is_truthy_const(stmt.test)
        else:
            raises = is_switch_point(stmt.iter)
            infinite = False
        index = self._new(stmt, raises)
        else_entry = self.block(stmt.orelse, follow, ctx) if stmt.orelse else follow
        body_ctx = _Ctx(
            raise_to=ctx.raise_to,
            return_to=ctx.return_to,
            break_to=follow,
            continue_to=index,
        )
        body_entry = self.block(stmt.body, index, body_ctx)
        succ = [body_entry]
        if not infinite:
            succ.append(else_entry)
        if raises:
            succ.extend(ctx.raise_to)
        self.nodes[index].succ = _dedup(succ)
        return index

    def _try(self, stmt: ast.Try, follow: int, ctx: _Ctx) -> int:
        if stmt.finalbody:
            join = self._new(stmt)
            protected: List[ast.stmt] = list(stmt.body) + list(stmt.orelse)
            for handler in stmt.handlers:
                protected.extend(handler.body)
            scan = _scan_region(protected)
            fan: List[int] = [follow]
            if scan.propagates:
                fan.extend(ctx.raise_to)
            if scan.returns:
                fan.append(ctx.return_to)
            if scan.breaks and ctx.break_to is not None:
                fan.append(ctx.break_to)
            if scan.continues and ctx.continue_to is not None:
                fan.append(ctx.continue_to)
            self.nodes[join].succ = _dedup(fan)
            # Raises *inside the finally body itself* use the outer targets.
            finally_entry = self.block(stmt.finalbody, join, ctx)
            exit_ctx = _Ctx(
                raise_to=(finally_entry,),
                return_to=finally_entry,
                break_to=finally_entry if ctx.break_to is not None else None,
                continue_to=finally_entry if ctx.continue_to is not None else None,
            )
            inner_follow = finally_entry
        else:
            exit_ctx = ctx
            inner_follow = follow
        handler_entries: List[int] = []
        catch_all = False
        for handler in stmt.handlers:
            handler_entries.append(self.block(handler.body, inner_follow, exit_ctx))
            catch_all = catch_all or _is_catch_all(handler)
        body_raise: List[int] = list(handler_entries)
        if not catch_all:
            body_raise.extend(exit_ctx.raise_to)
        body_ctx = _Ctx(
            raise_to=tuple(_dedup(body_raise)) or exit_ctx.raise_to,
            return_to=exit_ctx.return_to,
            break_to=exit_ctx.break_to,
            continue_to=exit_ctx.continue_to,
        )
        orelse_entry = (
            self.block(stmt.orelse, inner_follow, exit_ctx)
            if stmt.orelse
            else inner_follow
        )
        return self.block(stmt.body, orelse_entry, body_ctx)


class Cfg:
    """The control-flow graph of one function definition."""

    def __init__(self, func: FunctionDefLike) -> None:
        self.func = func
        builder = _Builder()
        ctx = _Ctx(
            raise_to=(EXIT_RAISE,),
            return_to=EXIT_NORMAL,
            break_to=None,
            continue_to=None,
        )
        self.entry = builder.block(func.body, EXIT_NORMAL, ctx)
        self.nodes = builder.nodes
        self._by_stmt: Dict[int, int] = {}
        for node in self.nodes:
            # lint: allow(id-ordering) -- identity map within one parse;
            # only looked up, never iterated, so order cannot leak out.
            self._by_stmt.setdefault(id(node.stmt), node.index)

    def node_for(self, stmt: ast.stmt) -> Optional[int]:
        """The node index built for ``stmt``, if any."""
        return self._by_stmt.get(id(stmt))  # lint: allow(id-ordering)

    def reachable(self, starts: Iterable[int], stop: Iterable[int] = ()) -> Set[int]:
        """Node indices (and exit sentinels) reachable from ``starts``.

        Nodes in ``stop`` absorb: they are never entered, so paths
        through them contribute nothing.  The virtual exits appear in
        the result when some surviving path ends there.
        """
        blocked = set(stop)
        seen: Set[int] = set()
        stack = [index for index in starts if index not in blocked]
        while stack:
            index = stack.pop()
            if index in seen or index in blocked:
                continue
            seen.add(index)
            if index >= 0:
                stack.extend(self.nodes[index].succ)
        return seen

    def reachable_after(self, index: int, stop: Iterable[int] = ()) -> Set[int]:
        """What the paths *leaving* node ``index`` can reach."""
        return self.reachable(self.nodes[index].succ, stop)


def build_cfg(func: FunctionDefLike) -> Cfg:
    """Build the statement-level CFG of ``func``."""
    return Cfg(func)


def teardown_skippable(cfg: Cfg, release_nodes: Iterable[int]) -> bool:
    """Whether an exception path can bypass a mandatory release.

    True when the function (a) can terminate normally, (b) every
    normal termination passes through one of ``release_nodes`` — the
    release is unconditional teardown, not a branch — and (c) some
    exception path escapes without passing one.  Conditional releases
    (cleanup guarded by an ``if``) never qualify, so event handlers
    that release only on certain events are not flagged.
    """
    stops = list(release_nodes)
    if not stops:
        return False
    everything = cfg.reachable([cfg.entry])
    if EXIT_NORMAL not in everything:
        return False
    surviving = cfg.reachable([cfg.entry], stops)
    return EXIT_NORMAL not in surviving and EXIT_RAISE in surviving
