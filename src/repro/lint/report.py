"""Finding reporters: human-readable lines and JSONL."""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.lint.core import Finding


def human_report(findings: Iterable[Finding]) -> List[str]:
    """``path:line:col: severity rule message`` rows, one per finding."""
    return [
        f"{f.path}:{f.line}:{f.col}: {f.severity.value} [{f.rule}] {f.message}"
        for f in findings
    ]


def jsonl_report(findings: Iterable[Finding]) -> List[str]:
    """One compact JSON object per finding (machine-readable)."""
    return [json.dumps(f.to_dict(), sort_keys=True) for f in findings]
