"""Lint framework core: findings, rules, pragmas, parsed modules.

A :class:`Rule` inspects one :class:`LintModule` (a parsed source
file) and yields :class:`Finding` objects.  Rules self-register into
:data:`RULES` via the :func:`register` decorator, so adding a rule is
one class in :mod:`repro.lint.rules` — the runner, the reporters and
the CLI pick it up by name automatically.

Suppression is per line and per rule::

    value = time.time()  # lint: allow(wall-clock) -- provenance only

A pragma on a line that is *only* a comment covers the following line
instead, so justifications can sit above long statements.  Pragmas
name specific rule ids; there is deliberately no blanket "allow all".
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple, Type, Union

PathLike = Union[str, Path]


class Severity(Enum):
    """How bad a finding is; ``error`` findings fail the CLI run."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable report ordering: path, then position, then rule."""
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        """JSON-facing representation (one JSONL record)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict`; used by the sharded runner."""
        return cls(
            rule=data["rule"],
            severity=Severity(data["severity"]),
            path=data["path"],
            line=data["line"],
            col=data["col"],
            message=data["message"],
        )


_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\(\s*([A-Za-z0-9_\s,-]+?)\s*\)")


def parse_pragmas(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line numbers to the rule ids allowed there.

    ``# lint: allow(rule)`` covers its own line; when the whole line is
    a comment, the allowance chains down through the rest of the
    comment block to the first non-comment line (the justification-
    above idiom, which may run to several comment lines).  Multiple
    rules separate with commas.
    """
    allows: Dict[int, set] = {}
    lines = source.splitlines()
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        allows.setdefault(lineno, set()).update(rules)
        if text.lstrip().startswith("#"):
            target = lineno + 1
            while target <= len(lines) and lines[target - 1].lstrip().startswith("#"):
                allows.setdefault(target, set()).update(rules)
                target += 1
            allows.setdefault(target, set()).update(rules)
    return {line: frozenset(rules) for line, rules in allows.items()}


class LintModule:
    """One parsed source file, ready for rule inspection."""

    def __init__(self, path: PathLike, source: str) -> None:
        self.path = Path(path)
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.allows = parse_pragmas(source)

    @classmethod
    def from_path(cls, path: PathLike) -> "LintModule":
        """Read and parse ``path`` (raises ``SyntaxError`` on bad source)."""
        return cls(path, Path(path).read_text())

    @property
    def repro_parts(self) -> Optional[Tuple[str, ...]]:
        """Path components after the ``repro`` package root, or ``None``.

        ``src/repro/ppp/fsm.py`` → ``("ppp", "fsm.py")``.  Files outside
        the package (test fixtures, ad-hoc targets) return ``None``;
        scope-limited rules treat those as in scope so fixtures exercise
        them.
        """
        parts = self.path.parts
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == "repro":
                return tuple(parts[index + 1 :])
        return None

    def allowed(self, rule_id: str, line: int) -> bool:
        """Whether a pragma suppresses ``rule_id`` on ``line``."""
        return rule_id in self.allows.get(line, frozenset())


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (kebab-case, used in pragmas and ``--rule``),
    ``severity`` and ``description``, and implement :meth:`check`.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, module: LintModule) -> Iterable[Finding]:
        """Yield findings for ``module``."""
        raise NotImplementedError

    def finding(self, module: LintModule, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``'s location."""
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )

    def summarize(self, module: LintModule) -> Optional[Any]:
        """Per-file contribution to the project phase, or ``None``.

        Must be JSON-able: contributions travel through campaign
        workers and the result cache as plain data.
        """
        return None

    def finish(self, contributions: List[Tuple[str, Any]]) -> Iterable[Finding]:
        """Project-wide findings from every file's contribution.

        ``contributions`` is path-sorted ``(path, payload)`` pairs for
        this rule; called once per run after all files are read.
        """
        return ()


#: Rule id → instance; populated by :func:`register` at import time.
RULES: Dict[str, Rule] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator installing a rule into :data:`RULES`."""
    rule = rule_class()
    if not rule.id:
        raise ValueError(f"rule {rule_class.__name__} has no id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return rule_class


class UnknownRuleError(KeyError):
    """``--rule`` named a rule id that is not registered."""

    def __init__(self, rule_id: str, known: List[str]) -> None:
        super().__init__(rule_id)
        self.rule_id = rule_id
        self.known = known

    def __str__(self) -> str:
        return f"unknown rule {self.rule_id!r} (known: {', '.join(self.known)})"


def select_rules(rule_ids: Optional[Iterable[str]] = None) -> List[Rule]:
    """Resolve ``--rule`` selections.

    Unknown ids raise :class:`UnknownRuleError` carrying the offending
    id and the sorted list of registered rules, so the CLI can print a
    helpful message and exit 2.
    """
    if rule_ids is None:
        return [RULES[name] for name in sorted(RULES)]
    selected = []
    for rule_id in rule_ids:
        if rule_id not in RULES:
            raise UnknownRuleError(rule_id, sorted(RULES))
        selected.append(RULES[rule_id])
    return selected
