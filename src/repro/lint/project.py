"""Whole-program index for project-phase lint rules.

Per-file rules see one module at a time; the lifecycle pairing checks
(an acquire in ``Isolation.install`` must find its release in
``Isolation.remove``) need the whole tree.  Rules participate through
two optional hooks on :class:`~repro.lint.core.Rule`:

- ``summarize(module)`` returns a JSON-able per-file contribution (or
  ``None``).  Because contributions are plain data, they shard through
  ``repro.parallel`` workers and land in the result cache unchanged.
- ``finish(contributions)`` receives every ``(path, payload)`` pair,
  sorted by path string, and yields project-wide findings.

The :class:`ProjectIndex` is the merge point: the sequential runner and
the sharded campaign both feed it the same path-sorted contributions,
which is what makes ``-j 1`` and ``-j N`` findings byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple


class ProjectIndex:
    """Accumulates per-file rule contributions and pragma allows."""

    def __init__(self) -> None:
        self._contributions: Dict[str, List[Tuple[str, Any]]] = {}
        self._allows: Dict[str, Dict[int, List[str]]] = {}

    def add_file(
        self,
        path: str,
        contrib: Dict[str, Any],
        allows: Dict[int, List[str]],
    ) -> None:
        """Record one file's contributions and its pragma table."""
        for rule_id, payload in contrib.items():
            self._contributions.setdefault(rule_id, []).append((path, payload))
        if allows:
            self._allows[path] = allows

    def contributions(self, rule_id: str) -> List[Tuple[str, Any]]:
        """All ``(path, payload)`` pairs for ``rule_id``, path-sorted."""
        pairs = self._contributions.get(rule_id, [])
        return sorted(pairs, key=lambda pair: pair[0])

    def allowed(self, path: str, rule_id: str, line: int) -> bool:
        """Whether a pragma in ``path`` suppresses ``rule_id`` at ``line``."""
        rules = self._allows.get(path, {}).get(line)
        return rules is not None and rule_id in rules
