"""Determinism rules: the simulation must be a pure function of seed.

The golden digests in :mod:`repro.bench.determinism` pin bit-identical
outputs per seed; anything that reads the wall clock, draws from an
unseeded RNG, or depends on allocation/iteration order silently breaks
that contract.  ``sim/rng.py`` is the one sanctioned construction site
for ``random.Random`` (the named-stream family) and is exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.lint.core import Finding, LintModule, Rule, Severity, register

#: Wall-clock / ambient-entropy calls that leak real time into a run.
#: ``time.perf_counter`` is deliberately absent: measuring how long a
#: computation took is fine, feeding the measurement back in is not.
_WALLCLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: Files allowed to construct ``random.Random`` directly.
_RNG_HOME = ("sim", "rng.py")


def _build_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local binding names to the dotted origin they import.

    ``import time`` → ``{"time": "time"}``; ``import random as _random``
    → ``{"_random": "random"}``; ``from datetime import datetime`` →
    ``{"datetime": "datetime.datetime"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _resolve(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to its imported dotted origin."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _resolved_calls(module: LintModule) -> Iterator[Tuple[ast.Call, str]]:
    aliases = _build_aliases(module.tree)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            origin = _resolve(node.func, aliases)
            if origin is not None:
                yield node, origin


def _in_rng_home(module: LintModule) -> bool:
    parts = module.repro_parts
    return parts is not None and parts == _RNG_HOME


@register
class WallClockRule(Rule):
    """No wall-clock or ambient-entropy reads in simulation code."""

    id = "wall-clock"
    severity = Severity.ERROR
    description = (
        "forbid time.time()/datetime.now()/os.urandom()-style reads; "
        "simulated time comes from the engine, entropy from the seed"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        for node, origin in _resolved_calls(module):
            if origin in _WALLCLOCK:
                yield self.finding(
                    module,
                    node,
                    f"{origin}() reads ambient time/entropy; derive it from "
                    f"the simulation clock or the experiment seed",
                )


@register
class UnseededRandomRule(Rule):
    """No module-level or OS-entropy randomness."""

    id = "unseeded-random"
    severity = Severity.ERROR
    description = (
        "forbid module-level random.* calls, random.Random() without a "
        "seed, and random.SystemRandom; use sim.rng named streams"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        if _in_rng_home(module):
            return
        for node, origin in _resolved_calls(module):
            if origin == "random.Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        "random.Random() without a seed draws from OS entropy; "
                        "seed it or use RandomStreams.stream(name)",
                    )
            elif origin == "random.SystemRandom":
                yield self.finding(
                    module, node, "random.SystemRandom is OS entropy by design"
                )
            elif origin.startswith("random.") and origin.count(".") == 1:
                yield self.finding(
                    module,
                    node,
                    f"{origin}() uses the shared module-level RNG; draw from a "
                    f"RandomStreams named stream instead",
                )


@register
class DirectRngRule(Rule):
    """``random.Random(seed)`` belongs in sim/rng.py only."""

    id = "direct-rng"
    severity = Severity.ERROR
    description = (
        "forbid direct random.Random(seed) construction outside "
        "sim/rng.py; named streams keep seeds independent and stable"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        if _in_rng_home(module):
            return
        for node, origin in _resolved_calls(module):
            if origin == "random.Random" and (node.args or node.keywords):
                yield self.finding(
                    module,
                    node,
                    "construct RNGs via RandomStreams.stream(name) so streams "
                    "stay independent per component",
                )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


@register
class SetIterationRule(Rule):
    """Iterating a set feeds hash-order into the event sequence."""

    id = "set-iteration"
    severity = Severity.ERROR
    description = (
        "forbid iterating directly over set expressions (for/comprehension/"
        "list()/tuple()/join); sort first or use a list/dict"
    )

    _MESSAGE = (
        "set iteration order is hash-dependent; iterate a sorted() copy "
        "or an ordered container"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield self.finding(module, node.iter, self._MESSAGE)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    if _is_set_expr(generator.iter):
                        yield self.finding(module, generator.iter, self._MESSAGE)
            elif isinstance(node, ast.Call):
                func = node.func
                seq_call = isinstance(func, ast.Name) and func.id in {"list", "tuple"}
                join_call = isinstance(func, ast.Attribute) and func.attr == "join"
                if (seq_call or join_call) and node.args and _is_set_expr(node.args[0]):
                    yield self.finding(module, node.args[0], self._MESSAGE)


@register
class IdOrderingRule(Rule):
    """``id()`` values are allocation addresses — never order by them."""

    id = "id-ordering"
    severity = Severity.ERROR
    description = (
        "forbid id()-derived values and key=id sorts; object identity "
        "varies run to run"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "id":
                yield self.finding(
                    module,
                    node,
                    "id() is an allocation address and differs across runs; "
                    "use a stable key (name, sequence number)",
                )
            for keyword in node.keywords:
                if (
                    keyword.arg == "key"
                    and isinstance(keyword.value, ast.Name)
                    and keyword.value.id == "id"
                ):
                    yield self.finding(
                        module, keyword.value, "key=id orders by allocation address"
                    )
