"""Metric-name rule: telemetry names are static, lowercase, dotted.

Every metric family and span name in the stack feeds three consumers
that all assume a **closed, static vocabulary**: the OpenMetrics
exporter (byte-identical expositions need a stable family set), the
campaign merge (``MetricsRegistry.merge`` folds by name), and the
timeline reconstruction (phases are matched by span name).  A name
built at runtime — an f-string keyed on user input, a concatenation
per packet — silently explodes the family set, defeats the exporter's
determinism gate, and burns string-building time on hot paths that the
fast-path contract promises are cheap.

The rule inspects the name argument of every
``.counter(…)`` / ``.gauge(…)`` / ``.histogram(…)`` /
``.span(…)`` / ``.emit(…)`` / ``.error(…)`` call:

- string literals must match ``[a-z][a-z0-9_.]*``;
- f-strings, concatenation/``%`` formatting, and inline builders
  (``str(…)``, ``….format(…)``, ``….join(…)``) are flagged;
- plain names and attributes pass — the sanctioned pattern for
  genuinely dynamic families (per-xid counters) is to precompute the
  string once, off the hot path, and pass the variable.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional

from repro.lint.core import Finding, LintModule, Rule, Severity, register

#: Telemetry-emitting methods whose first argument is a metric/span name.
_NAME_METHODS = frozenset(
    {"counter", "gauge", "histogram", "span", "emit", "error"}
)

#: The static-name vocabulary: lowercase dotted, like ``umts.cmd.start``.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_.]*$")

#: Inline name-builder callables (flagged even though calls in general
#: pass — these always build a fresh string at the call site).
_BUILDER_FUNCS = frozenset({"str", "format"})
_BUILDER_METHODS = frozenset({"format", "join"})


def _builder_call(node: ast.Call) -> Optional[str]:
    """A short description if ``node`` builds a string inline."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in _BUILDER_FUNCS:
        return f"{func.id}()"
    if isinstance(func, ast.Attribute) and func.attr in _BUILDER_METHODS:
        return f".{func.attr}()"
    return None


@register
class MetricNameRule(Rule):
    """Metric/span names must be static ``[a-z][a-z0-9_.]*`` strings."""

    id = "metric-name"
    severity = Severity.ERROR
    description = (
        "metric and span names must be static lowercase dotted string "
        "literals (or precomputed variables); no f-strings or inline "
        "string building in telemetry calls"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in _NAME_METHODS:
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Starred):
                continue
            finding = self._check_name(module, func.attr, name_arg)
            if finding is not None:
                yield finding

    def _check_name(
        self, module: LintModule, method: str, arg: ast.expr
    ) -> Optional[Finding]:
        if isinstance(arg, ast.Constant):
            if not isinstance(arg.value, str) or not _NAME_RE.match(arg.value):
                return self.finding(
                    module,
                    arg,
                    f".{method}() name {arg.value!r} is not a valid metric "
                    f"name; use lowercase dotted [a-z][a-z0-9_.]*",
                )
            return None
        if isinstance(arg, ast.JoinedStr):
            return self.finding(
                module,
                arg,
                f".{method}() name is an f-string; runtime-built metric "
                f"names explode the family set and cost allocations on "
                f"hot paths — precompute the name once and pass it",
            )
        if isinstance(arg, ast.BinOp):
            return self.finding(
                module,
                arg,
                f".{method}() name is built by concatenation/formatting "
                f"at the call site; precompute it once and pass a variable",
            )
        if isinstance(arg, ast.Call):
            builder = _builder_call(arg)
            if builder is not None:
                return self.finding(
                    module,
                    arg,
                    f".{method}() name is built inline with {builder}; "
                    f"precompute it once and pass a variable",
                )
        # Names, attributes, subscripts, and non-builder calls pass:
        # they are the precomputed-name idiom this rule pushes toward.
        return None
