"""FSM rules: the RFC 1661 transition table must be provably total.

``fsm-exhaustive`` statically extracts a ``TRANSITIONS`` dict literal
keyed by ``(StateEnum.MEMBER, EventEnum.MEMBER)`` tuples — the shape
:mod:`repro.ppp.fsm` declares — and verifies:

- every (state, event) pair of the declared enums has an entry
  (option-negotiation automata must answer *every* event in *every*
  state, per RFC 1661 §4.1);
- no duplicate or malformed keys;
- every transition target names a declared state;
- every state is reachable from ``INITIAL_STATE``.

``fsm-policy-override`` keeps the verified table authoritative for the
concrete protocols: subclasses of a ``*Fsm`` base (LCP, IPCP) may only
override *policy* hooks — options to request, how to answer a peer's
Configure-Request — never the dispatch machinery or action methods,
so LCP and IPCP inherit the proven matrix unmodified.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.core import Finding, LintModule, Rule, Severity, register

_Member = Tuple[str, str]  # (enum class name, member name)

#: Machinery a policy subclass must not override.
_MACHINERY = {
    "_dispatch",
    "receive",
    "_set_state",
    "open",
    "close",
    "abort",
    "_on_timeout",
    "send_packet",
}
_MACHINERY_PREFIXES = ("_act_", "_enter_", "_ack_")


def _enum_members(tree: ast.Module, class_name: str) -> Optional[List[str]]:
    """Member names of the class-level assignments in ``class_name``."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            members = []
            for stmt in node.body:
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if isinstance(target, ast.Name) and not target.id.startswith("_"):
                        members.append(target.id)
            return members
    return None


def _as_member(node: ast.expr) -> Optional[_Member]:
    """``FsmState.CLOSED`` → ``("FsmState", "CLOSED")``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return (node.value.id, node.attr)
    return None


def _find_transitions(tree: ast.Module) -> Optional[ast.Dict]:
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "TRANSITIONS":
                if isinstance(value, ast.Dict):
                    return value
    return None


def _find_initial_state(tree: ast.Module) -> Optional[_Member]:
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == "INITIAL_STATE":
                return _as_member(node.value)
    return None


def _transition_targets(value: ast.expr) -> Optional[List[ast.expr]]:
    """Target-state expressions of one table value.

    Accepts ``Transition("action", (S.A, S.B))`` or a bare tuple/single
    attribute; returns ``None`` when the shape is unrecognizable.
    """
    if isinstance(value, ast.Call) and len(value.args) >= 2:
        value = value.args[1]
    if isinstance(value, (ast.Tuple, ast.List)):
        return list(value.elts)
    if isinstance(value, ast.Attribute):
        return [value]
    return None


@register
class FsmExhaustiveRule(Rule):
    """The declared transition table must cover the full matrix."""

    id = "fsm-exhaustive"
    severity = Severity.ERROR
    description = (
        "TRANSITIONS must cover every (state, event) pair, target only "
        "declared states, and keep all states reachable from INITIAL_STATE"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        table = _find_transitions(module.tree)
        if table is None:
            return  # not an FSM module

        # Identify the two enums from the key tuples.
        state_enum: Optional[str] = None
        event_enum: Optional[str] = None
        entries: Dict[Tuple[str, str], ast.expr] = {}
        for key, value in zip(table.keys, table.values):
            if key is None:  # ``**other`` expansion defeats static checking
                yield self.finding(
                    module, table, "TRANSITIONS must be a literal dict (no ** merge)"
                )
                continue
            if not (isinstance(key, ast.Tuple) and len(key.elts) == 2):
                yield self.finding(
                    module, key, "transition key must be a (state, event) tuple"
                )
                continue
            state = _as_member(key.elts[0])
            event = _as_member(key.elts[1])
            if state is None or event is None:
                yield self.finding(
                    module, key, "transition key must use Enum.MEMBER attributes"
                )
                continue
            state_enum = state_enum or state[0]
            event_enum = event_enum or event[0]
            if state[0] != state_enum or event[0] != event_enum:
                yield self.finding(
                    module,
                    key,
                    f"mixed enums in key: expected ({state_enum}, {event_enum})",
                )
                continue
            pair = (state[1], event[1])
            if pair in entries:
                yield self.finding(
                    module, key, f"duplicate transition for {pair[0]} x {pair[1]}"
                )
                continue
            entries[pair] = value

        if state_enum is None or event_enum is None:
            yield self.finding(module, table, "TRANSITIONS has no parseable entries")
            return
        states = _enum_members(module.tree, state_enum)
        events = _enum_members(module.tree, event_enum)
        if states is None or events is None:
            missing = state_enum if states is None else event_enum
            yield self.finding(
                module, table, f"enum class {missing} not found in this module"
            )
            return

        # Coverage: the full state x event matrix.
        for state_name in states:
            for event_name in events:
                if (state_name, event_name) not in entries:
                    yield self.finding(
                        module,
                        table,
                        f"missing transition for ({state_enum}.{state_name}, "
                        f"{event_enum}.{event_name})",
                    )

        # Keys and targets must name declared members; collect edges.
        edges: Dict[str, Set[str]] = {name: set() for name in states}
        for (state_name, event_name), value in entries.items():
            if state_name not in states:
                yield self.finding(
                    module, value, f"undeclared state {state_enum}.{state_name} in key"
                )
                continue
            if event_name not in events:
                yield self.finding(
                    module, value, f"undeclared event {event_enum}.{event_name} in key"
                )
                continue
            targets = _transition_targets(value)
            if targets is None:
                yield self.finding(
                    module,
                    value,
                    f"unparseable targets for ({state_name}, {event_name}); use "
                    f"Transition(action, (states...))",
                )
                continue
            for target in targets:
                member = _as_member(target)
                if member is None or member[0] != state_enum:
                    yield self.finding(
                        module, target, f"target must be a {state_enum} member"
                    )
                elif member[1] not in states:
                    yield self.finding(
                        module, target, f"undeclared target state {state_enum}.{member[1]}"
                    )
                else:
                    edges[state_name].add(member[1])

        # Reachability from INITIAL_STATE (default: first declared state).
        initial = _find_initial_state(module.tree)
        start = initial[1] if initial is not None and initial[0] == state_enum else states[0]
        reached = {start}
        frontier = [start]
        while frontier:
            for target in sorted(edges.get(frontier.pop(), ())):
                if target not in reached:
                    reached.add(target)
                    frontier.append(target)
        for state_name in states:
            if state_name not in reached:
                yield self.finding(
                    module,
                    table,
                    f"state {state_enum}.{state_name} is unreachable from "
                    f"{state_enum}.{start}",
                )


@register
class FsmPolicyOverrideRule(Rule):
    """Protocol subclasses customize policy, never the machinery."""

    id = "fsm-policy-override"
    severity = Severity.ERROR
    description = (
        "subclasses of a *Fsm base may not override dispatch machinery "
        "or _act_* actions; the verified base table must stay total"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = []
            for base in node.bases:
                if isinstance(base, ast.Name):
                    base_names.append(base.id)
                elif isinstance(base, ast.Attribute):
                    base_names.append(base.attr)
            if not any(name.endswith("Fsm") for name in base_names):
                continue
            for stmt in node.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                name = stmt.name
                if name in _MACHINERY or name.startswith(_MACHINERY_PREFIXES):
                    yield self.finding(
                        module,
                        stmt,
                        f"{node.name} overrides FSM machinery {name!r}; subclasses "
                        f"may only override policy hooks (initial_options, "
                        f"check_peer_options, on_nak)",
                    )
