"""The retry-policy rule: one sanctioned way to try again.

Recovery behaviour must be auditable and seed-deterministic, so every
retry loop goes through :class:`repro.core.retry.RetryPolicy` — its
attempt budget bounds the work, its backoff schedule is explicit, and
its jitter draws come from named RNG streams.  This rule rejects the
two ad-hoc shapes that creep in instead:

- ``time.sleep(...)`` — wall-clock waiting has no place in simulation
  code at all (delays are ``yield``\\ ed to the engine), and in harness
  code it hides a backoff schedule nobody declared;
- ``for ... in range(...)`` loops whose target variable is named like
  an attempt counter (``attempt``, ``retry``, ``tries``, ``redial``,
  ``backoff``) — the hand-rolled retry loop.  Iterate
  ``policy.attempts()`` instead.

``core/retry.py`` itself is exempt: it is the one place the schedule
arithmetic lives.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Tuple

from repro.lint.core import Finding, LintModule, Rule, Severity, register
from repro.lint.rules.determinism import _resolved_calls

#: The one module allowed to spell out backoff arithmetic.
_RETRY_HOME: Tuple[str, ...] = ("core", "retry.py")

#: Loop-variable names that mark a ``range()`` loop as a retry loop.
_ATTEMPT_NAME = re.compile(r"^_*(attempt|retr[yi]\w*|tries|redial\w*|backoff\w*)s?$", re.IGNORECASE)


def _is_range_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
    )


def _loop_targets(target: ast.expr) -> Iterable[ast.Name]:
    if isinstance(target, ast.Name):
        yield target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _loop_targets(element)


@register
class RetryPolicyRule(Rule):
    """Retries go through ``repro.core.retry.RetryPolicy``."""

    id = "retry-policy"
    severity = Severity.ERROR
    description = (
        "forbid time.sleep() and hand-rolled range()-based retry loops; "
        "drive attempts through repro.core.retry.RetryPolicy"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        if module.repro_parts == _RETRY_HOME:
            return
        for node, origin in _resolved_calls(module):
            if origin == "time.sleep":
                yield self.finding(
                    module,
                    node,
                    "time.sleep() waits on the wall clock; yield a delay to "
                    "the simulator, paced by a RetryPolicy",
                )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.For) or not _is_range_call(node.iter):
                continue
            for name in _loop_targets(node.target):
                if _ATTEMPT_NAME.match(name.id):
                    yield self.finding(
                        module,
                        node,
                        f"range() loop over {name.id!r} is a hand-rolled retry "
                        f"loop; iterate RetryPolicy.attempts() so the budget "
                        f"and backoff are declared",
                    )
                    break
