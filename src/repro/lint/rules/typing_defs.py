"""Typing rule: the strict packages require fully annotated defs.

Mirrors the mypy ``disallow_untyped_defs`` escalation configured in
``pyproject.toml`` for ``repro.sim``, ``repro.ppp``, ``repro.vsys``
and ``repro.bench`` — including mypy's one exception: ``__init__`` may
omit ``-> None`` when at least one parameter is annotated.  Having the
check in-repo means it runs even where mypy is not installed, and the
two gates can never silently drift apart on which files are strict.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Tuple, Union

from repro.lint.core import Finding, LintModule, Rule, Severity, register

#: Packages under ``repro`` held to full annotation coverage.
STRICT_PACKAGES = ("sim", "ppp", "vsys", "bench", "parallel")

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _iter_functions(node: ast.AST, in_class: bool) -> Iterator[Tuple[_FunctionNode, bool]]:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child, in_class
            yield from _iter_functions(child, False)
        elif isinstance(child, ast.ClassDef):
            yield from _iter_functions(child, True)
        else:
            yield from _iter_functions(child, in_class)


def _is_static(func: _FunctionNode) -> bool:
    return any(
        isinstance(dec, ast.Name) and dec.id == "staticmethod"
        for dec in func.decorator_list
    )


@register
class UntypedDefRule(Rule):
    """Every def in a strict package must be fully annotated."""

    id = "untyped-def"
    severity = Severity.ERROR
    description = (
        "require parameter and return annotations on every def in "
        f"repro.{{{','.join(STRICT_PACKAGES)}}} (mypy disallow_untyped_defs)"
    )

    def _applies(self, module: LintModule) -> bool:
        parts = module.repro_parts
        if parts is None:
            return True  # fixtures / explicit targets outside the package
        return len(parts) > 0 and parts[0] in STRICT_PACKAGES

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not self._applies(module):
            return
        for func, is_method in _iter_functions(module.tree, False):
            args = func.args
            positional = list(args.posonlyargs) + list(args.args)
            skip_first = is_method and not _is_static(func) and positional
            unannotated = []
            for index, arg in enumerate(positional):
                if index == 0 and skip_first:
                    continue  # self / cls
                if arg.annotation is None:
                    unannotated.append(arg.arg)
            unannotated.extend(
                arg.arg for arg in args.kwonlyargs if arg.annotation is None
            )
            for star in (args.vararg, args.kwarg):
                if star is not None and star.annotation is None:
                    unannotated.append(f"*{star.arg}")
            if unannotated:
                yield self.finding(
                    module,
                    func,
                    f"def {func.name} has unannotated parameters: "
                    + ", ".join(unannotated),
                )
            if func.returns is None:
                annotated_params = any(
                    arg.annotation is not None
                    for arg in positional + list(args.kwonlyargs)
                )
                if func.name == "__init__" and annotated_params:
                    continue  # mypy's __init__ exception
                yield self.finding(
                    module, func, f"def {func.name} has no return annotation"
                )
