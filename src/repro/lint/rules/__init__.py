"""Rule modules; importing them registers the rules (see core.RULES)."""
