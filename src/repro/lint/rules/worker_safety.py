"""Worker-safety rule: campaign jobs must not lean on process state.

The campaign runner (:mod:`repro.parallel`) promises that ``-j 1`` and
``-j N`` produce identical results.  That holds only while job entry
points are pure functions of their payload: a function that *mutates*
module-level state smuggles information between jobs that share a
worker process — and loses it between jobs that don't — so results
start depending on the sharding.  This rule flags writes to
module-level mutable bindings from inside any function in the
``repro.parallel`` package (and in lint fixtures): ``global``
rebinding, augmented or subscript assignment, ``del``, and calls to
known mutator methods.

Import-time registration (populating a registry as a module loads) is
fine — every worker runs the same imports — and is the sanctioned
pragma use: ``# lint: allow(worker-safety)`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from repro.lint.core import Finding, LintModule, Rule, Severity, register

#: Methods that mutate their receiver (dict/list/set/deque vocabulary).
_MUTATORS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "extendleft",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
}

#: Constructors whose results are mutable containers.
_MUTABLE_CALLS = {"dict", "list", "set", "bytearray", "defaultdict", "deque",
                  "Counter", "OrderedDict"}


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
                         ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


def _module_mutables(tree: ast.Module) -> Set[str]:
    """Names bound at module level to mutable containers."""
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign) and _is_mutable_literal(node.value):
            targets = node.targets
        elif (isinstance(node, ast.AnnAssign) and node.value is not None
              and _is_mutable_literal(node.value)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _binding_names(target: ast.expr) -> Iterable[str]:
    """Names a target genuinely *binds* — ``x``, ``(a, b)``, ``*rest``.

    ``x[k] = …`` and ``x.attr = …`` mutate an existing object rather
    than binding a local, so their base names are deliberately not
    yielded (that is exactly what the rule must still see).
    """
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _binding_names(element)
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)


def _local_bindings(fn: ast.AST) -> Set[str]:
    """Names the function binds locally (which shadow module globals)."""
    bound: Set[str] = set()
    args = fn.args  # type: ignore[attr-defined]
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        bound.add(arg.arg)
    if args.vararg is not None:
        bound.add(args.vararg.arg)
    if args.kwarg is not None:
        bound.add(args.kwarg.arg)
    declared_global: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                bound.update(_binding_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.For, ast.AsyncFor)):
            bound.update(_binding_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bound.update(_binding_names(item.optional_vars))
    return bound - declared_global


def _receiver_name(node: ast.expr) -> Tuple[ast.expr, str]:
    """Peel ``x[...]`` / ``x.attr`` down to the base expression."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node, node.id if isinstance(node, ast.Name) else ""


def _own_nodes(root: ast.AST) -> Iterable[ast.AST]:
    """Descendants of ``root`` that belong to its scope.

    Like ``ast.walk`` but stops at function boundaries: a nested
    ``def`` is yielded (so callers can recurse with its own locals)
    without descending into its body.  Class bodies are descended —
    methods live in the enclosing module scope for our purposes.
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


@register
class WorkerSafetyRule(Rule):
    """Job code must not mutate module-level state at run time."""

    id = "worker-safety"
    severity = Severity.ERROR
    description = (
        "forbid mutating module-level state inside repro.parallel "
        "functions; job results must be pure functions of the payload"
    )

    def _in_scope(self, module: LintModule) -> bool:
        parts = module.repro_parts
        # None = outside the package (fixtures exercise the rule there).
        return parts is None or parts[0] == "parallel"

    def check(self, module: LintModule) -> Iterable[Finding]:
        if not self._in_scope(module):
            return
        assert isinstance(module.tree, ast.Module)
        mutables = _module_mutables(module.tree)
        for fn in _own_nodes(module.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, fn, mutables, frozenset())

    def _check_function(
        self,
        module: LintModule,
        fn: ast.AST,
        mutables: Set[str],
        inherited: frozenset,
    ) -> Iterable[Finding]:
        # A name bound in this function (or an enclosing one) shadows
        # the module-level binding; mutating it is scoped, not shared.
        locals_ = frozenset(_local_bindings(fn)) | inherited

        def global_mutable(name: str) -> bool:
            return name in mutables and name not in locals_

        for node in _own_nodes(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node, mutables, locals_)
            elif isinstance(node, ast.Global):
                yield self.finding(
                    module,
                    node,
                    f"'global {', '.join(node.names)}' rebinds module "
                    f"state from a function; pass state through the "
                    f"job payload instead",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, (ast.Subscript, ast.Attribute)):
                        continue
                    _, name = _receiver_name(target)
                    if global_mutable(name):
                        yield self.finding(
                            module,
                            node,
                            f"assignment into module-level {name!r} from a "
                            f"function; workers each see their own copy",
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if not isinstance(target, (ast.Subscript, ast.Attribute)):
                        continue
                    _, name = _receiver_name(target)
                    if global_mutable(name):
                        yield self.finding(
                            module,
                            node,
                            f"del into module-level {name!r} from a function",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
                    continue
                _, name = _receiver_name(func.value)
                if global_mutable(name):
                    yield self.finding(
                        module,
                        node,
                        f"{name}.{func.attr}() mutates module-level state "
                        f"from a function; job outputs must flow through "
                        f"the returned JobOutput",
                    )
