"""The lease-protocol rule: FleetController leases used correctly.

PR 7's ``FleetController`` arbitrates every node's UMTS interface with
an async protocol — ``request()`` returns a :class:`LeaseTicket`, its
``outcome`` signal fires ``("granted" | "failed", detail)``, and a
granted holder may be revoked at any time via ``ticket.revoked``.  Two
of the protocol's obligations were learned the hard way and are now
checked statically at every call site:

- **Outcomes are handled exhaustively.**  The ticket must be awaited
  (``yield ticket.outcome``), the status destructured and compared
  only against the real outcome literals, and the ``"failed"`` arm
  handled explicitly — a waiter that only looks for ``"granted"``
  wedges when a dead node fails its queue.
- **Subscribe before you yield** (PR 7's lost-wakeup fix).  Once
  granted, the holder must subscribe to ``ticket.revoked`` *before*
  its next switch point: a revocation arriving while the holder is off
  in ``umts start`` with no subscription is silently lost, and the
  controller then waits forever for a teardown that never comes.
- **Release survives exceptions.**  A teardown path whose every
  normal exit releases the lease, but whose exception path can skip
  ``controller.release(ticket)``, leaks the node for the rest of the
  campaign; the release belongs in a ``finally``.  (Conditional
  releases — an early-bailout arm — are not teardown and stay quiet.)

``fleet/controller.py`` itself — the protocol's implementation — is
exempt.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional, Set, Tuple

from repro.lint.cfg import (
    FunctionDefLike,
    build_cfg,
    function_defs,
    is_switch_point,
    scope_statements,
    stmt_exprs,
    teardown_skippable,
    walk_same_scope,
)
from repro.lint.core import Finding, LintModule, Rule, Severity, register
from repro.lint.rules.lifecycle import _local_escapes, expr_key

#: The protocol's own implementation, where the rule does not apply.
_LEASE_HOME: Tuple[str, ...] = ("fleet", "controller.py")

#: Receivers whose ``.request()`` / ``.release()`` are lease calls.
_CONTROLLER = re.compile(r"controller")

#: The only statuses a ticket outcome ever fires.
_OUTCOMES = frozenset({"granted", "failed"})


def _controller_call(call: ast.Call, method: str) -> bool:
    if not isinstance(call.func, ast.Attribute) or call.func.attr != method:
        return False
    receiver = expr_key(call.func.value)
    if receiver is None:
        return False
    return bool(_CONTROLLER.search(receiver.rsplit(".", 1)[-1]))


def _find_requests(
    func: FunctionDefLike,
) -> Tuple[List[Tuple[ast.stmt, ast.Call, Optional[str]]], List[ast.Call]]:
    """``(stmt, call, bound ticket name)`` requests, plus discarded ones."""
    bound: List[Tuple[ast.stmt, ast.Call, Optional[str]]] = []
    discarded: List[ast.Call] = []
    for stmt in scope_statements(func):
        for node in stmt_exprs(stmt):
            if isinstance(node, ast.Call) and _controller_call(node, "request"):
                if isinstance(stmt, ast.Expr) and stmt.value is node:
                    discarded.append(node)
                elif (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                ):
                    bound.append((stmt, node, stmt.targets[0].id))
                else:
                    bound.append((stmt, node, None))
    return bound, discarded


def _outcome_stmt(func: FunctionDefLike, ticket: str) -> Optional[ast.stmt]:
    """The statement performing ``yield <ticket>.outcome``."""
    for stmt in scope_statements(func):
        for node in stmt_exprs(stmt):
            if (
                isinstance(node, (ast.Yield, ast.Await))
                and node.value is not None
                and expr_key(node.value) == f"{ticket}.outcome"
            ):
                return stmt
    return None


def _status_variable(stmt: ast.stmt) -> Tuple[Optional[str], bool]:
    """``(status name, discarded)`` from the outcome-yield statement."""
    if isinstance(stmt, ast.Expr):
        return None, True
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Tuple) and target.elts:
            first = target.elts[0]
            if isinstance(first, ast.Name):
                return first.id, False
    return None, False


def _status_literals(func: FunctionDefLike, status: str) -> Set[str]:
    """String literals the status variable is compared against."""
    literals: Set[str] = set()
    for node in walk_same_scope(func):
        if not isinstance(node, ast.Compare):
            continue
        sides = [node.left, *node.comparators]
        if not any(
            isinstance(side, ast.Name) and side.id == status for side in sides
        ):
            continue
        for side in sides:
            if isinstance(side, ast.Constant) and isinstance(side.value, str):
                literals.add(side.value)
            elif isinstance(side, (ast.Tuple, ast.Set, ast.List)):
                for element in side.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        literals.add(element.value)
    return literals


def _first_wait_line(func: FunctionDefLike, ticket: str) -> Optional[int]:
    """Line of the first ``<ticket>.revoked.wait(...)`` call."""
    best: Optional[int] = None
    for stmt in scope_statements(func):
        for node in stmt_exprs(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "wait"
                and expr_key(node.func.value) == f"{ticket}.revoked"
            ):
                if best is None or stmt.lineno < best:
                    best = stmt.lineno
    return best


def _first_switch_after(func: FunctionDefLike, line: int) -> Optional[ast.stmt]:
    """The first switch-point statement strictly after ``line``."""
    best: Optional[ast.stmt] = None
    for stmt in scope_statements(func):
        if stmt.lineno <= line or not is_switch_point(stmt):
            continue
        if best is None or stmt.lineno < best.lineno:
            best = stmt
    return best


@register
class LeaseProtocolRule(Rule):
    """LeaseTicket outcomes handled exhaustively; subscribe before yield."""

    id = "lease-protocol"
    severity = Severity.ERROR
    description = (
        "check FleetController lease sites: outcome awaited and destructured, "
        "status literals exhaustive with 'failed' handled, ticket.revoked "
        "subscribed before the next yield (the lost-wakeup fix), and "
        "controller.release protected from exception paths"
    )

    def check(self, module: LintModule) -> Iterable[Finding]:
        parts = module.repro_parts
        if parts is not None and parts[: len(_LEASE_HOME)] == _LEASE_HOME:
            return
        for func in function_defs(module.tree):
            yield from self._check_function(module, func)

    def _check_function(
        self, module: LintModule, func: FunctionDefLike
    ) -> Iterable[Finding]:
        requests, discarded = _find_requests(func)
        for call in discarded:
            yield self.finding(
                module,
                call,
                "lease ticket discarded: bind the request() result so the "
                "outcome can be awaited and the lease released",
            )
        for stmt, call, ticket in requests:
            yield from self._check_request(module, func, stmt, call, ticket)
        yield from self._check_release_teardown(module, func)

    def _check_request(
        self,
        module: LintModule,
        func: FunctionDefLike,
        stmt: ast.stmt,
        call: ast.Call,
        ticket: Optional[str],
    ) -> Iterable[Finding]:
        if ticket is None:
            return  # bound to something we cannot track (attribute, tuple)
        outcome = _outcome_stmt(func, ticket)
        if outcome is None:
            if not _local_escapes(func, ticket):
                yield self.finding(
                    module,
                    call,
                    f"LeaseTicket '{ticket}' outcome is never awaited "
                    f"(yield {ticket}.outcome); the grant decision is lost",
                )
            return  # ticket handed to another owner: checked there
        status, ignored = _status_variable(outcome)
        if ignored:
            yield self.finding(
                module,
                outcome,
                f"lease outcome ignored: bind (status, detail) from "
                f"yield {ticket}.outcome and handle 'failed'",
            )
            return
        if status is not None:
            literals = _status_literals(func, status)
            for literal in sorted(literals - _OUTCOMES):
                yield self.finding(
                    module,
                    outcome,
                    f"unknown lease status literal {literal!r}: outcomes are "
                    f"'granted' and 'failed' only",
                )
            if not literals:
                yield self.finding(
                    module,
                    outcome,
                    f"lease status '{status}' is never checked; a failed "
                    f"grant must not be treated as granted",
                )
            elif "failed" not in literals:
                yield self.finding(
                    module,
                    outcome,
                    "'failed' lease outcome unhandled: a dead node fails its "
                    "queue and the waiter must cope",
                )
        wait_line = _first_wait_line(func, ticket)
        next_switch = _first_switch_after(func, outcome.lineno)
        if next_switch is None:
            return  # no further switch points: no window to lose a wakeup in
        if wait_line is None:
            yield self.finding(
                module,
                outcome,
                f"{ticket}.revoked is never subscribed: a revocation while "
                f"this holder is mid-operation is silently lost",
            )
        elif next_switch.lineno < wait_line:
            yield self.finding(
                module,
                next_switch,
                f"lost-wakeup window: this yields before "
                f"{ticket}.revoked.wait(...) on line {wait_line}; subscribe "
                f"before the first yield after the grant",
            )

    def _check_release_teardown(
        self, module: LintModule, func: FunctionDefLike
    ) -> Iterable[Finding]:
        release_stmts: List[ast.stmt] = []
        for stmt in scope_statements(func):
            for node in stmt_exprs(stmt):
                if isinstance(node, ast.Call) and _controller_call(node, "release"):
                    release_stmts.append(stmt)
                    break
        if not release_stmts:
            return
        cfg = build_cfg(func)
        stops = [
            index
            for index in (cfg.node_for(stmt) for stmt in release_stmts)
            if index is not None
        ]
        if teardown_skippable(cfg, stops):
            anchor = min(release_stmts, key=lambda s: s.lineno)
            yield self.finding(
                module,
                anchor,
                "controller.release(...) can be skipped by an exception "
                "path; move it into a finally so a revoked or killed "
                "attempt still frees the lease",
            )

