"""The resource-lifecycle rule: every acquire reaches its release.

The paper's node stack is a chain of paired side effects — take the
interface lock, install the netfilter/RPDB isolation, spawn pppd, open
a trace span — and three of the last four PRs fixed *dynamically*
discovered leaks of exactly those pairs.  This rule proves the pairing
statically, over the intra-function CFG (:mod:`repro.lint.cfg`) and a
whole-program class index (:mod:`repro.lint.project`):

Per function (CFG checks):

- **leak-on-return** — a resource bound to a local name that never
  leaves the function can reach a normal exit without its release
  (the early-return-skips-teardown bug).  Locals that escape — stored
  on an object, returned, passed along — transfer ownership and are
  checked by the class pairing instead.
- **leak-on-raise** — *hard* protocols (the interface lock, the
  isolation rule set: transactional kernel-ish state with no owner
  object to tear it down later) must also be released on exception
  edges; an acquire whose raise path skips every release is flagged.
- **unprotected-teardown** — a function whose *every* normal path
  releases a hard resource it did not acquire (a teardown method) but
  whose exception paths skip the release: the release belongs in a
  ``finally``.  Conditional cleanup (``if self.lock.locked: ...``)
  never matches, so event handlers stay quiet.

Per project (class index, via ``summarize``/``finish``):

- **class pairing** — an acquire stored on an object (``self.pppd =
  Pppd(...)``, ``best._span = trace.span(...)``) must have a matching
  release call somewhere in the same class.
- **command pairing** — ``ip``/``iptables`` commands that install
  kernel state (``route add ... table T``, ``rule add ... pref P``,
  ``-A CHAIN``) must have the matching removal (``route del/flush``,
  ``rule del``, ``-D``) in the same class.

Guards like ``if span is not None: span.end()`` count as the release
(the None-check collapse), matching the tracing idiom everywhere in
the tree.  Each protocol's *home* module — where the primitive itself
is implemented — is exempt, except command pairing, which is the whole
point of the isolation module.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.lint.cfg import (
    EXIT_NORMAL,
    EXIT_RAISE,
    Cfg,
    FunctionDefLike,
    build_cfg,
    function_defs,
    scope_statements,
    stmt_exprs,
    teardown_skippable,
    walk_same_scope,
)
from repro.lint.core import Finding, LintModule, Rule, Severity, register


@dataclass(frozen=True)
class _Protocol:
    """One acquire/release pairing the rule understands."""

    name: str
    #: "receiver": the resource is the call receiver (``self.lock.acquire()``);
    #: "result": the resource is the call result (``span = trace.span(...)``).
    style: str
    #: Regex the receiver's last dotted component must match.
    receiver: Optional["re.Pattern[str]"]
    acquire: FrozenSet[str]
    release: FrozenSet[str]
    #: Hard resources leak kernel-ish state: exception paths must release.
    hard: bool
    #: Constructor names that count as acquires (result-style).
    constructors: FrozenSet[str]
    #: repro-package path prefix of the implementing module (exempt).
    home: Tuple[str, ...]


PROTOCOLS: Tuple[_Protocol, ...] = (
    _Protocol(
        name="interface-lock",
        style="receiver",
        receiver=re.compile(r"(^|_)lock$"),
        acquire=frozenset({"acquire"}),
        release=frozenset({"release", "force_release"}),
        hard=True,
        constructors=frozenset(),
        home=("core", "lock.py"),
    ),
    _Protocol(
        name="isolation",
        style="receiver",
        receiver=re.compile(r"isolation"),
        acquire=frozenset({"install"}),
        release=frozenset({"remove"}),
        hard=True,
        constructors=frozenset(),
        home=("core", "isolation.py"),
    ),
    _Protocol(
        name="trace-span",
        style="result",
        receiver=re.compile(r"(^|_)trace$"),
        acquire=frozenset({"span"}),
        release=frozenset({"end", "fail"}),
        hard=False,
        constructors=frozenset(),
        home=("obs",),
    ),
    _Protocol(
        name="pppd",
        style="result",
        receiver=None,
        acquire=frozenset(),
        release=frozenset({"carrier_lost", "disconnect", "stop"}),
        hard=False,
        constructors=frozenset({"Pppd"}),
        home=("ppp",),
    ),
)

#: Receivers whose ``.run(cmd)`` calls manipulate kernel state.
_COMMAND_RECEIVERS = frozenset({"ip", "iptables"})


def expr_key(expr: ast.AST) -> Optional[str]:
    """Dotted key of a Name/Attribute chain, else ``None``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = expr_key(expr.value)
        return None if base is None else f"{base}.{expr.attr}"
    return None


def _last(key: str) -> str:
    return key.rsplit(".", 1)[-1]


def _normalize(key: str) -> str:
    """Class-pairing key: keep ``self`` roots, wildcard other objects.

    ``best._span`` and ``ticket._span`` are the same ticket attribute
    seen through different locals, so both normalize to ``*._span``.
    """
    parts = key.split(".")
    if len(parts) == 1 or parts[0] == "self":
        return key
    return ".".join(["*"] + parts[1:])


def _module_is_home(module: LintModule, proto: _Protocol) -> bool:
    parts = module.repro_parts
    return parts is not None and parts[: len(proto.home)] == proto.home


def _match_release(call: ast.Call) -> Optional[Tuple[_Protocol, str]]:
    if not isinstance(call.func, ast.Attribute):
        return None
    receiver = expr_key(call.func.value)
    if receiver is None:
        return None
    for proto in PROTOCOLS:
        if call.func.attr not in proto.release:
            continue
        if proto.style == "receiver":
            assert proto.receiver is not None
            if not proto.receiver.search(_last(receiver)):
                continue
        return proto, receiver
    return None


def _match_acquire_call(call: ast.Call) -> Optional[Tuple[_Protocol, Optional[str]]]:
    """``(protocol, receiver key)``; receiver is ``None`` for constructors."""
    if isinstance(call.func, ast.Attribute):
        receiver = expr_key(call.func.value)
        if receiver is None:
            return None
        for proto in PROTOCOLS:
            if call.func.attr in proto.acquire and proto.receiver is not None:
                if proto.receiver.search(_last(receiver)):
                    return proto, receiver
    elif isinstance(call.func, ast.Name):
        for proto in PROTOCOLS:
            if call.func.id in proto.constructors:
                return proto, None
    return None


def _guard_key(test: ast.expr) -> Optional[str]:
    """The resource a None-guard ``if`` is checking, if any."""
    if isinstance(test, ast.Compare):
        return expr_key(test.left)
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return expr_key(test.operand)
    return expr_key(test)


@dataclass
class _Acquire:
    proto: _Protocol
    key: Optional[str]  # receiver key or assignment binding; None = discarded
    stmt: ast.stmt
    call: ast.Call
    bound_local: Optional[str]  # set when the binding is a bare local name


@dataclass
class _Release:
    proto: _Protocol
    key: str
    stmt: ast.stmt


@dataclass
class _FunctionScan:
    """Acquire/release/alias inventory of one function body."""

    func: FunctionDefLike
    acquires: List[_Acquire] = field(default_factory=list)
    releases: List[_Release] = field(default_factory=list)
    discarded: List[_Acquire] = field(default_factory=list)
    #: local name -> attribute key it was read from (release evidence).
    aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> attribute key it was stored into (ownership escape).
    attr_escapes: Dict[str, str] = field(default_factory=dict)
    #: ``if <key> ...:`` statements guarding a same-key release.
    guard_ifs: List[Tuple[str, ast.If]] = field(default_factory=list)


def _assign_pairs(stmt: ast.Assign) -> Iterable[Tuple[ast.expr, ast.expr]]:
    """(target, value) pairs, unpacking parallel tuple assignments."""
    for target in stmt.targets:
        if (
            isinstance(target, ast.Tuple)
            and isinstance(stmt.value, ast.Tuple)
            and len(target.elts) == len(stmt.value.elts)
        ):
            yield from zip(target.elts, stmt.value.elts)
        else:
            yield target, stmt.value


def scan_function(func: FunctionDefLike) -> _FunctionScan:
    """Inventory every lifecycle-relevant site in ``func``'s own scope."""
    scan = _FunctionScan(func=func)
    for stmt in scope_statements(func):
        in_with = isinstance(stmt, (ast.With, ast.AsyncWith))
        for node in stmt_exprs(stmt):
            if not isinstance(node, ast.Call):
                continue
            released = _match_release(node)
            if released is not None:
                scan.releases.append(_Release(released[0], released[1], stmt))
            acquired = _match_acquire_call(node)
            if acquired is None or in_with:
                continue  # `with` acquires release via __exit__
            proto, receiver = acquired
            if proto.style == "receiver":
                assert receiver is not None
                local = receiver if "." not in receiver else None
                scan.acquires.append(_Acquire(proto, receiver, stmt, node, local))
            else:
                binding, local = _result_binding(stmt, node)
                if binding is None and local is None and _is_discarded(stmt, node):
                    scan.discarded.append(_Acquire(proto, None, stmt, node, None))
                elif binding is not None or local is not None:
                    scan.acquires.append(
                        _Acquire(proto, binding or local, stmt, node, local)
                    )
                # else: transferred (returned / passed on) — owner elsewhere
        if isinstance(stmt, ast.Assign):
            for target, value in _assign_pairs(stmt):
                if isinstance(target, ast.Name) and isinstance(value, ast.Attribute):
                    value_key = expr_key(value)
                    if value_key is not None and "." in value_key:
                        scan.aliases[target.id] = value_key
                elif isinstance(target, ast.Attribute) and isinstance(value, ast.Name):
                    target_key = expr_key(target)
                    if target_key is not None:
                        scan.attr_escapes[value.id] = target_key
        if isinstance(stmt, ast.If):
            key = _guard_key(stmt.test)
            if key is not None:
                for inner in walk_same_scope(stmt):
                    if isinstance(inner, ast.Call):
                        released = _match_release(inner)
                        if released is not None and released[1] == key:
                            scan.guard_ifs.append((key, stmt))
                            break
    return scan


def _result_binding(
    stmt: ast.stmt, call: ast.Call
) -> Tuple[Optional[str], Optional[str]]:
    """How a result-style acquire is bound: ``(attr key, local name)``."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            return None, target.id
        key = expr_key(target)
        if key is not None:
            return key, None
    return None, None


def _is_discarded(stmt: ast.stmt, call: ast.Call) -> bool:
    return isinstance(stmt, ast.Expr) and stmt.value is call


#: Parents under which a Load of the resource name does not escape it:
#: receiver position, truthiness/None guards, and a bare expression.
_SAFE_PARENTS = (
    ast.Attribute,
    ast.Compare,
    ast.UnaryOp,
    ast.BoolOp,
    ast.If,
    ast.While,
    ast.IfExp,
    ast.Expr,
)


def _local_escapes(func: FunctionDefLike, name: str) -> bool:
    """Whether local ``name`` leaves the function's hands."""
    parents: Dict[int, ast.AST] = {}
    for node in walk_same_scope(func):
        for child in ast.iter_child_nodes(node):
            # lint: allow(id-ordering) -- identity map within one parse;
            # only looked up, never iterated, so order cannot leak out.
            parents.setdefault(id(child), node)
    for node in walk_same_scope(func):
        if (
            isinstance(node, ast.Name)
            and node.id == name
            and isinstance(node.ctx, ast.Load)
        ):
            parent = parents.get(id(node))  # lint: allow(id-ordering)
            if parent is None or not isinstance(parent, _SAFE_PARENTS):
                return True
            if isinstance(parent, ast.IfExp) and node is not parent.test:
                return True
    return False


def _release_nodes(
    cfg: Cfg, scan: _FunctionScan, proto: _Protocol, key: str
) -> List[int]:
    """CFG nodes that release ``key``, None-guard ``if``\\ s included."""
    stmts: List[ast.stmt] = [
        release.stmt
        for release in scan.releases
        if release.proto is proto and release.key == key
    ]
    stmts.extend(guard for guard_key, guard in scan.guard_ifs if guard_key == key)
    nodes = []
    for stmt in stmts:
        index = cfg.node_for(stmt)
        if index is not None:
            nodes.append(index)
    return nodes


def _fmt(methods: FrozenSet[str]) -> str:
    return "/".join(sorted(methods))


@register
class ResourceLifecycleRule(Rule):
    """Paired side effects must pair on every path, exceptions included."""

    id = "resource-lifecycle"
    severity = Severity.ERROR
    description = (
        "prove every acquire (lock, isolation, pppd, trace span) reaches its "
        "release on all control-flow paths, exception edges included, and "
        "that stored resources and ip/iptables installs pair class-wide"
    )

    # -- per-function CFG checks ----------------------------------------

    def check(self, module: LintModule) -> Iterable[Finding]:
        active = [p for p in PROTOCOLS if not _module_is_home(module, p)]
        if not active:
            return
        for func in function_defs(module.tree):
            scan = scan_function(func)
            relevant = (
                any(a.proto in active for a in scan.acquires)
                or any(a.proto in active for a in scan.discarded)
                or any(r.proto in active and r.proto.hard for r in scan.releases)
            )
            if not relevant:
                continue
            cfg = build_cfg(func)
            for acquire in scan.discarded:
                if acquire.proto in active:
                    yield self.finding(
                        module,
                        acquire.call,
                        f"{acquire.proto.name} acquired and discarded; bind the "
                        f"result so {_fmt(acquire.proto.release)} can be called",
                    )
            for acquire in scan.acquires:
                if acquire.proto not in active or acquire.key is None:
                    continue
                yield from self._check_acquire(module, cfg, scan, acquire)
            yield from self._check_teardowns(module, cfg, scan, active)

    def _check_acquire(
        self, module: LintModule, cfg: Cfg, scan: _FunctionScan, acquire: _Acquire
    ) -> Iterable[Finding]:
        assert acquire.key is not None
        index = cfg.node_for(acquire.stmt)
        if index is None:
            return
        stops = _release_nodes(cfg, scan, acquire.proto, acquire.key)
        local_owned = (
            acquire.bound_local is not None
            and acquire.bound_local not in scan.attr_escapes
            and not _local_escapes(scan.func, acquire.bound_local)
        )
        if local_owned:
            after = cfg.reachable_after(index, stops)
            if EXIT_NORMAL in after:
                yield self.finding(
                    module,
                    acquire.call,
                    f"{acquire.proto.name} '{acquire.key}' can reach a normal "
                    f"exit without {_fmt(acquire.proto.release)}; an early "
                    f"return is skipping the teardown",
                )
        if acquire.proto.hard:
            after = cfg.reachable_after(index, stops)
            if EXIT_RAISE in after:
                yield self.finding(
                    module,
                    acquire.call,
                    f"{acquire.proto.name} '{acquire.key}' can leak on an "
                    f"exception path; call {_fmt(acquire.proto.release)} in a "
                    f"finally (or except + re-raise)",
                )

    def _check_teardowns(
        self,
        module: LintModule,
        cfg: Cfg,
        scan: _FunctionScan,
        active: List[_Protocol],
    ) -> Iterable[Finding]:
        acquired_keys = {(a.proto.name, a.key) for a in scan.acquires}
        seen: Set[Tuple[str, str]] = set()
        for release in scan.releases:
            proto = release.proto
            if (
                proto not in active
                or not proto.hard
                or (proto.name, release.key) in acquired_keys
                or (proto.name, release.key) in seen
            ):
                continue
            seen.add((proto.name, release.key))
            stops = _release_nodes(cfg, scan, proto, release.key)
            if teardown_skippable(cfg, stops):
                anchor = min(
                    (
                        r.stmt
                        for r in scan.releases
                        if r.proto is proto and r.key == release.key
                    ),
                    key=lambda s: s.lineno,
                )
                yield self.finding(
                    module,
                    anchor,
                    f"release of {proto.name} '{release.key}' can be skipped "
                    f"by an exception path; move it into a finally",
                )

    # -- project phase: class-wide pairing ------------------------------

    def summarize(self, module: LintModule) -> Optional[Any]:
        classes = []
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            entry = self._summarize_class(module, cls)
            if entry is not None:
                classes.append(entry)
        return {"classes": classes} if classes else None

    def _summarize_class(
        self, module: LintModule, cls: ast.ClassDef
    ) -> Optional[Dict[str, Any]]:
        acquires: List[List[Any]] = []
        releases: List[List[str]] = []
        installs: List[List[Any]] = []
        removes: List[List[str]] = []
        for func in function_defs(cls):
            scan = scan_function(func)
            for acquire in scan.acquires:
                if _module_is_home(module, acquire.proto) or acquire.key is None:
                    continue
                key = acquire.key
                if acquire.bound_local is not None:
                    if acquire.bound_local in scan.attr_escapes:
                        key = scan.attr_escapes[acquire.bound_local]
                    else:
                        continue  # function-local ownership: CFG checks cover it
                acquires.append(
                    [
                        acquire.proto.name,
                        _normalize(key),
                        acquire.call.lineno,
                        acquire.call.col_offset,
                    ]
                )
            for release in scan.releases:
                if _module_is_home(module, release.proto):
                    continue
                key = scan.aliases.get(release.key, release.key)
                releases.append([release.proto.name, _normalize(key)])
            for stmt in scope_statements(func):
                for node in stmt_exprs(stmt):
                    if isinstance(node, ast.Call):
                        self._collect_command(node, installs, removes)
        if not (acquires or releases or installs or removes):
            return None
        return {
            "class": cls.name,
            "acquires": acquires,
            "releases": releases,
            "installs": installs,
            "removes": removes,
        }

    def _collect_command(
        self, call: ast.Call, installs: List[List[Any]], removes: List[List[str]]
    ) -> None:
        if (
            not isinstance(call.func, ast.Attribute)
            or call.func.attr != "run"
            or not call.args
        ):
            return
        receiver = expr_key(call.func.value)
        if receiver is None or _last(receiver) not in _COMMAND_RECEIVERS:
            return
        text = _render_command(call.args[0])
        if text is None:
            return
        parsed = _parse_command(_last(receiver), text)
        if parsed is None:
            return
        kind, key = parsed
        if kind == "install":
            installs.append([key, text, call.lineno, call.col_offset])
        else:
            removes.append([key])

    def finish(self, contributions: List[Tuple[str, Any]]) -> Iterable[Finding]:
        merged: Dict[str, Dict[str, Any]] = {}
        for path, payload in contributions:
            for entry in payload["classes"]:
                bucket = merged.setdefault(
                    entry["class"],
                    {"acquires": [], "releases": set(), "installs": [], "removes": set()},
                )
                bucket["acquires"].extend(
                    (proto, key, path, line, col)
                    for proto, key, line, col in entry["acquires"]
                )
                bucket["releases"].update(
                    (proto, key) for proto, key in entry["releases"]
                )
                bucket["installs"].extend(
                    (key, text, path, line, col)
                    for key, text, line, col in entry["installs"]
                )
                bucket["removes"].update(key for (key,) in entry["removes"])
        for cls in sorted(merged):
            bucket = merged[cls]
            proto_by_name = {p.name: p for p in PROTOCOLS}
            for proto_name, key, path, line, col in bucket["acquires"]:
                if (proto_name, key) in bucket["releases"]:
                    continue
                proto = proto_by_name[proto_name]
                yield Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        f"{proto_name} stored into '{key}' has no matching "
                        f"release ({_fmt(proto.release)}) anywhere in class {cls}"
                    ),
                )
            for key, text, path, line, col in bucket["installs"]:
                if key in bucket["removes"]:
                    continue
                yield Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        f"'{text}' installs kernel state with no matching "
                        f"removal command in class {cls}"
                    ),
                )


def _render_command(arg: ast.expr) -> Optional[str]:
    """Best-effort text of a command argument; f-string holes kept."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr):
        parts: List[str] = []
        for piece in arg.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            elif isinstance(piece, ast.FormattedValue):
                key = expr_key(piece.value)
                if key is None and isinstance(piece.value, ast.Constant):
                    key = str(piece.value.value)
                parts.append("{" + (key if key is not None else "*") + "}")
        return "".join(parts)
    return None


def _token_after(tokens: List[str], word: str) -> Optional[str]:
    try:
        index = tokens.index(word)
    except ValueError:
        return None
    return tokens[index + 1] if index + 1 < len(tokens) else None


def _parse_command(receiver: str, text: str) -> Optional[Tuple[str, str]]:
    """Classify a rendered command: ``("install" | "remove", pairing key)``.

    Pairing keys are deliberately coarse — the table number, the rule
    preference, the chain name — so an install rendered with a local
    variable still matches a removal rendered with the same value via
    ``self``.
    """
    tokens = text.split()
    if not tokens:
        return None
    if receiver == "iptables":
        table = _token_after(tokens, "-t") or "filter"
        for flag in ("-A", "-I"):
            chain = _token_after(tokens, flag)
            if chain is not None:
                return "install", f"ipt:{table}:{chain}"
        chain = _token_after(tokens, "-D")
        if chain is not None:
            return "remove", f"ipt:{table}:{chain}"
        return None
    if tokens[0] == "route":
        table = _token_after(tokens, "table")
        if table is None:
            return None
        if tokens[1] == "add":
            return "install", f"route:{table}"
        if tokens[1] in ("del", "flush"):
            return "remove", f"route:{table}"
        return None
    if tokens[0] == "rule":
        pref = _token_after(tokens, "pref")
        if pref is None:
            return None
        if tokens[1] == "add":
            return "install", f"rule:{pref}"
        if tokens[1] == "del":
            return "remove", f"rule:{pref}"
    return None
