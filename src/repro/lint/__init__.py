"""repro.lint — domain-aware static analysis for the reproduction.

Three rule families guard the properties the reproduction depends on:

- **determinism** (:mod:`repro.lint.rules.determinism`) — no wall-clock
  reads, no unseeded or module-level randomness, no iteration-order
  dependence on sets or ``id()``; the golden run digests in
  :mod:`repro.bench.determinism` are only meaningful if every byte of
  simulated output is a pure function of the experiment seed;
- **FSM exhaustiveness** (:mod:`repro.lint.rules.fsm`) — the RFC 1661
  transition table in :mod:`repro.ppp.fsm` must cover the full
  state × event matrix, name only declared target states, and keep
  every state reachable; subclasses may only override policy hooks;
- **typing** (:mod:`repro.lint.rules.typing_defs`) — the ``sim``,
  ``ppp``, ``vsys`` and ``bench`` packages require fully annotated
  defs, mirroring the mypy ``disallow_untyped_defs`` escalation in
  ``pyproject.toml`` so violations surface even where mypy is absent;
- **retry policy** (:mod:`repro.lint.rules.retry`) — no ``time.sleep``
  and no hand-rolled ``range()``-based retry loops; every retry goes
  through :class:`repro.core.retry.RetryPolicy` so attempt budgets and
  backoff schedules are declared and seed-deterministic;
- **worker safety** (:mod:`repro.lint.rules.worker_safety`) — code in
  :mod:`repro.parallel` must not mutate module-level state from inside
  functions; campaign jobs are pure functions of their payload, which
  is what makes ``-j 1`` and ``-j N`` results bit-identical;
- **metric names** (:mod:`repro.lint.rules.metric_name`) — metric and
  span names are static lowercase dotted literals (or precomputed
  variables); runtime-built names would explode the OpenMetrics family
  set and defeat the exporter's byte-identity gate;
- **resource lifecycle** (:mod:`repro.lint.rules.lifecycle`) — every
  acquire (interface lock, isolation install, pppd spawn, trace span)
  reaches its matching release on all control-flow paths, exception
  edges included, proven over the intra-function CFG
  (:mod:`repro.lint.cfg`); stored resources and ``ip``/``iptables``
  installs must pair class-wide (:mod:`repro.lint.project`);
- **lease protocol** (:mod:`repro.lint.rules.lease`) — FleetController
  lease sites await and destructure the ticket outcome, handle
  ``"failed"`` explicitly, subscribe to ``ticket.revoked`` before the
  next yield (PR 7's lost-wakeup fix), and keep
  ``controller.release`` on every exception path.

The runner shards per-file work through :mod:`repro.parallel`
(``repro lint -j N``) with a content-addressed result cache keyed by
file digest + rule-set digest; findings are byte-identical at any
worker count.

Findings are suppressed per line with ``# lint: allow(<rule-id>)``
pragmas (see :func:`repro.lint.core.parse_pragmas`).  The CLI entry is
``python -m repro lint``; see ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from repro.lint.core import (
    RULES,
    Finding,
    LintModule,
    Rule,
    Severity,
    UnknownRuleError,
    register,
)
from repro.lint.report import human_report, jsonl_report
from repro.lint.runner import (
    iter_python_files,
    lint_campaign,
    lint_file,
    lint_paths,
    ruleset_digest,
)

# Importing the rule modules registers every rule in RULES.
from repro.lint.rules import (  # noqa: F401  (registration)
    determinism,
    fsm,
    lease,
    lifecycle,
    metric_name,
    retry,
    typing_defs,
    worker_safety,
)

__all__ = [
    "Finding",
    "LintModule",
    "RULES",
    "Rule",
    "Severity",
    "UnknownRuleError",
    "human_report",
    "iter_python_files",
    "jsonl_report",
    "lint_campaign",
    "lint_file",
    "lint_paths",
    "register",
    "ruleset_digest",
]
