"""File discovery and the lint driver loop.

Two drivers share one per-file worker and one merge:

- :func:`lint_paths` — the sequential path: read → ``lint_file`` →
  merge, all in-process.
- :func:`lint_campaign` — the sharded path: each file becomes a
  ``kind="lint"`` job for :func:`repro.parallel.run_campaign`, keyed
  by its content digest so the result cache survives edits elsewhere
  in the tree, then the *same* merge runs over the worker outputs.

The merge is where determinism lives: per-file results are combined
in sorted path order, project-phase rules (``Rule.finish``) see the
same path-sorted contributions either way, and the final findings are
sorted by :meth:`Finding.sort_key` — so ``-j 1`` and ``-j N`` reports
are byte-identical by construction.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.lint.core import (
    Finding,
    LintModule,
    PathLike,
    Rule,
    Severity,
    select_rules,
)
from repro.lint.project import ProjectIndex

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def iter_python_files(paths: Iterable[PathLike]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in sorted, stable order.

    Overlapping arguments (``repro lint src src/repro``) are deduped
    by resolved path — every file is yielded at most once, the first
    time it is reached.
    """
    seen = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    resolved = candidate.resolve()
                    if resolved not in seen:
                        seen.add(resolved)
                        yield candidate
        elif path.suffix == ".py":
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield path


def _parse_error_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule="parse-error",
        severity=Severity.ERROR,
        path=path,
        line=exc.lineno or 1,
        col=exc.offset or 0,
        message=f"cannot parse: {exc.msg}",
    )


def lint_file(path: PathLike, rules: Sequence[Rule]) -> Dict[str, Any]:
    """Run per-file checks on one file; returns a JSON-able payload.

    The payload is the unit that travels through campaign workers and
    the result cache: pragma-filtered findings, each rule's project
    contribution, and the file's pragma table (so project-phase
    findings can be pragma-filtered at merge time).
    """
    try:
        module = LintModule.from_path(path)
    except SyntaxError as exc:
        finding = _parse_error_finding(str(path), exc)
        return {"findings": [finding.to_dict()], "contrib": {}, "allows": {}}
    findings: List[Finding] = []
    contrib: Dict[str, Any] = {}
    for rule in rules:
        for finding in rule.check(module):
            if not module.allowed(finding.rule, finding.line):
                findings.append(finding)
        payload = rule.summarize(module)
        if payload is not None:
            contrib[rule.id] = payload
    findings.sort(key=Finding.sort_key)
    return {
        "findings": [finding.to_dict() for finding in findings],
        "contrib": contrib,
        "allows": {str(line): sorted(ids) for line, ids in module.allows.items()},
    }


def _merge(
    file_results: List[Tuple[str, Dict[str, Any]]], rules: Sequence[Rule]
) -> List[Finding]:
    """Combine per-file payloads and run the project phase.

    ``file_results`` pairs each path *string* with its payload; sorting
    happens here (on the string, not the Path — their orders differ)
    so sequential and sharded runs merge identically.
    """
    index = ProjectIndex()
    findings: List[Finding] = []
    for path, payload in sorted(file_results, key=lambda pair: pair[0]):
        findings.extend(Finding.from_dict(data) for data in payload["findings"])
        allows = {
            int(line): list(ids) for line, ids in payload.get("allows", {}).items()
        }
        index.add_file(path, payload.get("contrib", {}), allows)
    for rule in rules:
        contributions = index.contributions(rule.id)
        if not contributions:
            continue
        for finding in rule.finish(contributions):
            if not index.allowed(finding.path, finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_paths(
    paths: Iterable[PathLike], rule_ids: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run the selected rules over every file; pragmas filtered out.

    Unparsable files surface as synthetic ``parse-error`` findings
    rather than aborting the run, so one bad file cannot hide findings
    in the rest of the tree.
    """
    rules = select_rules(rule_ids)
    file_results = [
        (str(file_path), lint_file(file_path, rules))
        for file_path in iter_python_files(paths)
    ]
    return _merge(file_results, rules)


def lint_campaign(
    paths: Iterable[PathLike],
    rule_ids: Optional[Iterable[str]] = None,
    workers: int = 1,
    cache: Optional[Any] = None,
) -> Tuple[List[Finding], Any]:
    """Sharded lint run; returns ``(findings, CampaignResult)``.

    Byte-identical to :func:`lint_paths` at any worker count: workers
    only run the per-file phase, and the merge re-sorts their outputs
    by path before the project phase.
    """
    from repro.parallel import run_campaign
    from repro.parallel.entrypoints import lint_jobs

    rules = select_rules(rule_ids)
    rule_names = [rule.id for rule in rules]
    files = list(iter_python_files(paths))
    jobs = lint_jobs(files, rule_names)
    result = run_campaign(jobs, workers=workers, cache=cache)
    file_results = [
        (output.stable["path"], output.stable["result"])
        for output in result.results
    ]
    return _merge(file_results, rules), result


@lru_cache(maxsize=1)
def ruleset_digest() -> str:
    """Content digest of the lint package itself.

    Used as the cache's source digest: cached per-file results stay
    valid across edits elsewhere in the tree (the per-file content
    digest in each job key covers the file itself) but are invalidated
    whenever any rule, the CFG builder, or this runner changes.
    """
    from repro.parallel.cache import tree_digest

    return tree_digest(Path(__file__).parent)
