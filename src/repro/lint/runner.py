"""File discovery and the lint driver loop."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional

from repro.lint.core import Finding, LintModule, PathLike, Severity, select_rules

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def iter_python_files(paths: Iterable[PathLike]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in sorted, stable order."""
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Iterable[PathLike], rule_ids: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run the selected rules over every file; pragmas filtered out.

    Unparsable files surface as synthetic ``parse-error`` findings
    rather than aborting the run, so one bad file cannot hide findings
    in the rest of the tree.
    """
    rules = select_rules(rule_ids)
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            module = LintModule.from_path(file_path)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="parse-error",
                    severity=Severity.ERROR,
                    path=str(file_path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"cannot parse: {exc.msg}",
                )
            )
            continue
        for rule in rules:
            for finding in rule.check(module):
                if not module.allowed(finding.rule, finding.line):
                    findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings
