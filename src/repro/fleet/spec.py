"""The fleet grammar: how many nodes, which slices, what workload.

A :class:`FleetSpec` describes a whole campaign declaratively — node
count, sharding group size, the slices competing for each node's UMTS
interface (with priorities), the paper's workload to run on every
node-pair, and an optional fault plan — and is a pure-data value:
:meth:`FleetSpec.to_payload` / :meth:`FleetSpec.from_payload` round-trip
it through JSON so campaign jobs stay spawn-safe and cacheable (the
:mod:`repro.parallel` contract).

Sharding model: the fleet is partitioned into deterministic *groups* of
at most ``group_size`` nodes.  Each group is one independent simulation
(its own engine, Internet core, UMTS operator and controller) seeded
from ``RandomStreams(seed).fork(f"fleet.group{index}")`` — which is what
makes ``repro fleet -j N`` byte-identical at any worker count: a group's
timeline never depends on which process runs it or on any other group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

#: Hard cap on nodes per group: the shared-kernel engine batches a
#: whole group's TTI-aligned events through one bucket walk, so a
#: single simulation comfortably interleaves hundreds of datacalls.
#: The per-node /24s are carved out of 10.64.0.0/10 below (second
#: octets 64-191, then the 10.202/16 and 10.203/16 third-octet
#: ranges) and stay clear of the operators' mobile pools
#: (10.199.0.0/16 commercial, 10.201.0.0/16 micro-cell).
MAX_GROUP_SIZE = 512

#: Workloads a fleet campaign can schedule on its node-pairs.
FLEET_KINDS = ("voip", "cbr")


class FleetSpecError(ValueError):
    """A fleet spec is malformed or names an unknown workload/fault."""


@dataclass(frozen=True)
class SliceSpec:
    """One slice competing for the UMTS interface on every node."""

    name: str
    xid: int
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise FleetSpecError(f"bad slice name {self.name!r}")
        if self.xid <= 0:
            raise FleetSpecError(f"slice xid must be positive, got {self.xid!r}")


@dataclass(frozen=True)
class NodeSpec:
    """One simulated PlanetLab node: name plus its LAN addressing.

    ``scenario`` names the scenario-grammar point shaping this node's
    radio (its cell's bearer ladder and handover schedule); empty means
    the plain operator defaults.
    """

    name: str
    address: str
    gateway: str
    prefix_len: int = 24
    scenario: str = ""


#: The default contention pair: a best-effort slice that leases first
#: and a high-priority slice arriving mid-experiment (the preemption
#: path the controller semantics are specified against).
DEFAULT_SLICES: Tuple[SliceSpec, ...] = (
    SliceSpec("fleet_best", 620, priority=0),
    SliceSpec("fleet_gold", 621, priority=10),
)


@dataclass(frozen=True)
class FleetSpec:
    """A whole fleet campaign, as pure data."""

    nodes: int
    group_size: int = 8
    slices: Tuple[SliceSpec, ...] = DEFAULT_SLICES
    kind: str = "voip"
    duration: float = 4.0
    stagger: float = 10.0
    drain: float = 3.0
    seed: int = 3
    faults: Tuple[str, ...] = ()
    preemption: bool = True
    retry_preempted: int = 1
    starvation_threshold: float = 120.0
    deadline: float = 0.0  # 0: derive from the slice/workload shape
    #: Scenario-grammar points assigned round-robin across the fleet's
    #: nodes (node ``k`` of the whole fleet draws ``scenarios[k % n]``),
    #: so one spec covers many grammar points deterministically.
    scenarios: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise FleetSpecError(f"nodes must be >= 1, got {self.nodes!r}")
        if not 2 <= self.group_size <= MAX_GROUP_SIZE:
            raise FleetSpecError(
                f"group_size must be in [2, {MAX_GROUP_SIZE}], got {self.group_size!r}"
            )
        if self.kind not in FLEET_KINDS:
            raise FleetSpecError(
                f"unknown workload {self.kind!r} (known: {', '.join(FLEET_KINDS)})"
            )
        if self.duration <= 0:
            raise FleetSpecError(f"duration must be positive, got {self.duration!r}")
        if self.stagger < 0 or self.drain < 0:
            raise FleetSpecError("stagger and drain must be >= 0")
        if self.retry_preempted < 0:
            raise FleetSpecError(
                f"retry_preempted must be >= 0, got {self.retry_preempted!r}"
            )
        if self.starvation_threshold <= 0:
            raise FleetSpecError("starvation_threshold must be positive")
        if self.deadline < 0:
            raise FleetSpecError(f"deadline must be >= 0, got {self.deadline!r}")
        if not self.slices:
            raise FleetSpecError("at least one slice is required")
        names = [s.name for s in self.slices]
        xids = [s.xid for s in self.slices]
        if len(set(names)) != len(names) or len(set(xids)) != len(xids):
            raise FleetSpecError("slice names and xids must be unique")
        # Validate the fault plan eagerly so a typo fails at spec build
        # time, not inside a worker process halfway through a campaign.
        if self.faults:
            from repro.faults.plan import FaultPlan, FaultSpecError

            try:
                FaultPlan.from_spec(*self.faults)
            except FaultSpecError as exc:
                raise FleetSpecError(f"bad fault spec: {exc}") from None
        # Same eagerness for scenario-grammar points: an unknown name
        # fails at spec build time, with the grammar's own message.
        if self.scenarios:
            from repro.scenarios import ScenarioSpecError, grammar_point

            for name in self.scenarios:
                try:
                    grammar_point(name)
                except ScenarioSpecError as exc:
                    raise FleetSpecError(f"bad scenario: {exc}") from None

    # -- sharding ---------------------------------------------------------

    def group_sizes(self) -> List[int]:
        """Node count of every group, in group order."""
        full, rest = divmod(self.nodes, self.group_size)
        sizes = [self.group_size] * full
        if rest:
            sizes.append(rest)
        return sizes

    def group_count(self) -> int:
        """How many independent simulations the campaign shards into."""
        return len(self.group_sizes())

    def node_specs(self, group_index: int) -> List[NodeSpec]:
        """The nodes of one group, with deterministic names/addresses.

        Addressing is *per group* (each group is its own simulation, so
        the same /24s recur in every group): node ``i < 128`` lives in
        ``10.(64+i).0.0/24`` — the historic layout, unchanged — and the
        fleet-scale tail ``i >= 128`` fills the ``10.202.(i-128).0/24``
        then ``10.203.(i-384).0/24`` ranges, all clear of both operator
        mobile pools.
        """
        sizes = self.group_sizes()
        if not 0 <= group_index < len(sizes):
            raise FleetSpecError(
                f"group index {group_index!r} out of range (0..{len(sizes) - 1})"
            )
        # Scenario assignment uses the node's *fleet-wide* index, so a
        # node's grammar point never depends on how the fleet happens
        # to be sharded into groups.
        base = sum(sizes[:group_index])
        specs = []
        for i in range(sizes[group_index]):
            scenario = ""
            if self.scenarios:
                scenario = self.scenarios[(base + i) % len(self.scenarios)]
            if i < 128:
                subnet = f"10.{64 + i}.0"
            elif i < 384:
                subnet = f"10.202.{i - 128}"
            else:
                subnet = f"10.203.{i - 384}"
            specs.append(
                NodeSpec(
                    name=f"fleet{group_index:04d}-n{i:02d}.onelab.eu",
                    address=f"{subnet}.100",
                    gateway=f"{subnet}.1",
                    scenario=scenario,
                )
            )
        return specs

    def pair_count(self, group_index: int) -> int:
        """Node-pairs scheduled inside one group (leftover node idles)."""
        return len(self.node_specs(group_index)) // 2

    def effective_deadline(self) -> float:
        """Simulated seconds a group run may take before it is a hang."""
        if self.deadline:
            return self.deadline
        per_attempt = 90.0 + self.duration + self.drain + self.stagger
        return 120.0 + len(self.slices) * per_attempt * (1 + self.retry_preempted)

    # -- payload round-trip ------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """A JSON-able dict for :class:`repro.parallel.jobs.Job` payloads."""
        return {
            "nodes": self.nodes,
            "group_size": self.group_size,
            "slices": [[s.name, s.xid, s.priority] for s in self.slices],
            "kind": self.kind,
            "duration": self.duration,
            "stagger": self.stagger,
            "drain": self.drain,
            "seed": self.seed,
            "faults": list(self.faults),
            "preemption": self.preemption,
            "retry_preempted": self.retry_preempted,
            "starvation_threshold": self.starvation_threshold,
            "deadline": self.deadline,
            "scenarios": list(self.scenarios),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FleetSpec":
        """Rebuild a spec inside a worker from its job payload."""
        return cls(
            nodes=int(payload["nodes"]),
            group_size=int(payload["group_size"]),
            slices=tuple(
                SliceSpec(name, int(xid), int(priority))
                for name, xid, priority in payload["slices"]
            ),
            kind=str(payload["kind"]),
            duration=float(payload["duration"]),
            stagger=float(payload["stagger"]),
            drain=float(payload["drain"]),
            seed=int(payload["seed"]),
            faults=tuple(payload["faults"]),
            preemption=bool(payload["preemption"]),
            retry_preempted=int(payload["retry_preempted"]),
            starvation_threshold=float(payload["starvation_threshold"]),
            deadline=float(payload["deadline"]),
            scenarios=tuple(payload.get("scenarios", ())),
        )
