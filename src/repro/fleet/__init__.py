"""repro.fleet — many nodes, many slices, one management plane.

The fleet layer scales the paper's single-node testbed to hundreds of
simulated PlanetLab nodes (each with its own modem/operator/vsys/
connection stack) arbitrated by a central lease controller, and runs
the §3 VoIP/CBR characterization across node-pairs as a sharded,
deterministic campaign.  See docs/FLEET.md.
"""

from repro.fleet.campaign import GroupRun, node_clean, run_group
from repro.fleet.controller import (
    FleetController,
    FleetLeaseError,
    LeaseTicket,
    jain_index,
)
from repro.fleet.spec import (
    DEFAULT_SLICES,
    FLEET_KINDS,
    FleetSpec,
    FleetSpecError,
    NodeSpec,
    SliceSpec,
)
from repro.fleet.testbed import FleetGroup

__all__ = [
    "DEFAULT_SLICES",
    "FLEET_KINDS",
    "FleetController",
    "FleetGroup",
    "FleetLeaseError",
    "FleetSpec",
    "FleetSpecError",
    "GroupRun",
    "LeaseTicket",
    "NodeSpec",
    "SliceSpec",
    "jain_index",
    "node_clean",
    "run_group",
]
