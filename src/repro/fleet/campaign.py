"""Running the paper's experiment across one fleet group.

For every node-pair and every slice, a driver process requests the
sender node's UMTS lease from the controller, brings the connection up
through the slice's own ``umts`` vsys front-end (start + add), runs the
paper's VoIP/CBR flow from the sender sliver to the receiver node's
sliver over ``ppp0``, and tears everything down — racing, the whole
time, the controller's ``revoked`` signal: a preemption or node kill
mid-datacall stops the traffic and still walks the *graceful* teardown
path (``umts stop`` → release), so netfilter/RPDB isolation is removed
by the same code as a voluntary stop.

Lost-wakeup safety: revocations and flow completion are funnelled into
a per-attempt :class:`~repro.sim.process.Store` (which buffers) rather
than raced on bare signals, so a revoke that lands while the driver is
blocked inside ``umts start`` is never dropped.

The group report is pure data with a SHA-256 digest over its canonical
JSON — the unit the :mod:`repro.parallel` campaign runner shards,
caches, and merges byte-identically at any ``-j``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Generator, List, Optional

from repro.core.frontend import UmtsCommand
from repro.core.isolation import UMTS_TABLE
from repro.core.retry import RetryPolicy
from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.sim.process import Store, spawn
from repro.testbed.planetlab import PlanetLabNode
from repro.traffic.decoder import ItgDecoder
from repro.traffic.flows import FlowSpec, cbr, voip_g711
from repro.traffic.receiver import ItgReceiver
from repro.traffic.sender import ItgSender

from repro.fleet.controller import FleetController
from repro.fleet.spec import FleetSpec, SliceSpec
from repro.fleet.testbed import FleetGroup

#: Base destination port; each (slice, attempt) on a receiver node gets
#: its own port so concurrent flows never collide on one stack.
BASE_DPORT = 9000


def _flow_spec(spec: FleetSpec, dport: int) -> FlowSpec:
    """The paper's workload with an explicit per-attempt port."""
    if spec.kind == "cbr":
        return cbr(duration=spec.duration, dport=dport)
    return voip_g711(duration=spec.duration, dport=dport)


def node_clean(node: PlanetLabNode) -> bool:
    """The PR-4 invariant, per node: all live, or all released."""
    backend = node.umts_backend
    if backend is None or node.connection is None:
        return True
    if node.connection.is_up:
        return backend.lock.locked
    return (
        not backend.lock.locked
        and not backend.isolation.active
        and "ppp0" not in node.stack.interfaces
        and node.stack.ip.route_list(UMTS_TABLE) == []
    )


class GroupRun:
    """One group's full campaign: build, schedule, run, report."""

    def __init__(
        self,
        spec: FleetSpec,
        group_index: int,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.spec = spec
        self.group_index = group_index
        self.group = FleetGroup(spec, group_index)
        sim = self.group.sim
        if metrics is not None:
            sim.metrics = metrics
        self.controller = FleetController(
            sim,
            preemption=spec.preemption,
            starvation_threshold=spec.starvation_threshold,
        )
        for node in self.group.nodes:
            self.controller.register_node(node.name, on_kill=self._make_on_kill(node))
        if spec.faults:
            plan = FaultPlan.from_spec(*spec.faults)
            registry = plan.install(sim, rng=self.group.streams.stream("faults"))
            self.controller.bind_faults(registry)
        self.records: List[Dict[str, Any]] = []
        self._schedule_scenarios()

    def _schedule_scenarios(self) -> None:
        """Arm each node's grammar point: ladder moves and handovers.

        Events fire at absolute sim times; one that lands while the
        node has no data call up is simply a no-op (the lease may be
        held by a later wave at that moment), keeping the schedule a
        pure function of the spec.
        """
        sim = self.group.sim
        for node in self.group.nodes:
            scenario = self.group.node_scenarios.get(node.name)
            if scenario is None:
                continue
            for at, target in scenario.ladder.moves:
                sim.post(at, self._apply_move, node, target)
            for at, csq, cell in self.group.node_handover_cells.get(node.name, ()):
                sim.post(at, self._apply_handover, node, cell, csq)

    def _apply_move(self, node: PlanetLabNode, target: int) -> None:
        call = self.group.call_for(node)
        if call is not None:
            call.rab.renegotiate(target)

    def _apply_handover(self, node: PlanetLabNode, cell: Any, csq: int) -> None:
        from repro.scenarios import signal_grade_cap

        node.modem.handover_to(cell)
        call = self.group.call_for(node)
        if call is not None:
            scenario = self.group.node_scenarios[node.name]
            call.rab.renegotiate(
                signal_grade_cap(csq, len(scenario.ladder.rats))
            )

    def _make_on_kill(self, node: PlanetLabNode) -> Any:
        def on_kill(reason: str) -> None:
            call = self.group.call_for(node)
            if call is not None:
                self.group.operator.drop_call(call, reason)

        return on_kill

    # -- execution ---------------------------------------------------------

    def execute(self) -> None:
        """Spawn every experiment and run the group to quiescence."""
        sim = self.group.sim
        for pair_index, (sender, receiver) in enumerate(self.group.pairs()):
            for slice_index, slice_spec in enumerate(self.spec.slices):
                sender_scenario = self.group.node_scenarios.get(sender.name)
                record = {
                    "experiment": (
                        f"g{self.group_index:04d}.p{pair_index:02d}."
                        f"{slice_spec.name}"
                    ),
                    "node": sender.name,
                    "peer": receiver.name,
                    "slice": slice_spec.name,
                    "priority": slice_spec.priority,
                    "scenario": "" if sender_scenario is None else sender_scenario.name,
                    "attempts": 0,
                    "outcome": "pending",
                    "done": False,
                    "summary": None,
                }
                self.records.append(record)
                spawn(
                    sim,
                    self._experiment(
                        record, pair_index, slice_index, sender, receiver, slice_spec
                    ),
                    name=f"fleet:{record['experiment']}",
                )
        deadline = self.spec.effective_deadline()
        while sim.now < deadline and not all(r["done"] for r in self.records):
            sim.run(until=min(sim.now + 10.0, deadline))
        for record in self.records:
            if not record["done"]:
                record["outcome"] = "timeout"
        sim.run(until=sim.now + self.spec.drain)

    def _experiment(
        self,
        record: Dict[str, Any],
        pair_index: int,
        slice_index: int,
        sender_node: PlanetLabNode,
        receiver_node: PlanetLabNode,
        slice_spec: SliceSpec,
    ) -> Generator[Any, Any, None]:
        spec = self.spec
        sim = self.group.sim
        # Low-priority slices lease first; each later slice arrives
        # ``stagger`` seconds deeper into the previous one's data call
        # (the deterministic preemption window).  The small per-pair
        # skew spreads dial-up bursts without reordering anything.
        yield slice_index * spec.stagger + pair_index * 0.5
        outcome = "pending"
        policy = RetryPolicy(max_attempts=spec.retry_preempted + 1, base_delay=0.0)
        for attempt in policy.attempts():
            record["attempts"] = attempt + 1
            outcome = yield from self._attempt(
                record, pair_index, slice_index, attempt,
                sender_node, receiver_node, slice_spec,
            )
            if outcome != "preempted":
                break
        record["outcome"] = outcome
        record["done"] = True
        metrics = sim.metrics
        if metrics is not None:
            if outcome == "completed":
                metrics.counter("fleet.experiment.completed").inc()
            elif outcome == "preempted":
                metrics.counter("fleet.experiment.preempted").inc()
            else:
                metrics.counter("fleet.experiment.failed").inc()

    def _attempt(
        self,
        record: Dict[str, Any],
        pair_index: int,
        slice_index: int,
        attempt: int,
        sender_node: PlanetLabNode,
        receiver_node: PlanetLabNode,
        slice_spec: SliceSpec,
    ) -> Generator[Any, Any, str]:
        spec = self.spec
        sim = self.group.sim
        ticket = self.controller.request(
            sender_node.name, slice_spec.name, slice_spec.priority
        )
        status, detail = yield ticket.outcome
        if status == "failed":
            return "unleased"
        # From grant to release every revocation lands in this store —
        # a Store buffers, so a revoke during ``umts start`` is caught
        # at the next get instead of being lost.
        events: Store = Store(sim, name=f"lease-events:{record['experiment']}")
        ticket.revoked.wait(lambda reason: events.put(("revoked", reason)))
        umts = UmtsCommand(sender_node.slivers[slice_spec.name])
        started = yield umts.start()
        if not started.ok:
            umts.close()
            self.controller.release(ticket)
            return "failed"
        if len(events):
            # Revoked while dialing: tear down before any traffic.
            return (yield from self._teardown(ticket, umts, events.get_nowait()[1]))
        added = yield umts.add_destination(receiver_node.address)
        # Destinations persist on the node across sessions, so a later
        # slice's add may find its peer "already added" — that is fine.
        add_ok = added.ok or "already added" in added.text
        if not add_ok or len(events):
            reason = events.get_nowait()[1] if len(events) else "add failed"
            return (yield from self._teardown(ticket, umts, reason))
        dport = BASE_DPORT + slice_index * 8 + attempt
        flow = _flow_spec(spec, dport)
        flow_id = 1 + (pair_index * 8 + slice_index) * 8 + attempt
        receiver = ItgReceiver(
            sim, receiver_node.slivers[slice_spec.name].socket(), port=dport
        )
        sender = ItgSender(
            sim,
            sender_node.slivers[slice_spec.name].socket(),
            receiver_node.address,
            flow,
            self.group.streams.stream(
                f"itg.p{pair_index}.s{slice_index}.a{attempt}"
            ),
            flow_id=flow_id,
        )
        process = sender.start()
        process.done.wait(lambda value: events.put(("finished", value)))
        kind, value = yield events.get()
        if kind == "revoked":
            sender.stop()
            return (yield from self._teardown(ticket, umts, str(value)))
        yield spec.drain  # let in-flight probes and echoes land
        summary = ItgDecoder(sender.log, receiver.log_for(flow_id)).summary()
        record["summary"] = {
            "packets_sent": summary.packets_sent,
            "packets_received": summary.packets_received,
            "loss_fraction": round(summary.loss_fraction, 9),
            "bitrate_kbps": round(summary.mean_bitrate_kbps, 6),
            "mean_rtt_s": round(summary.mean_rtt, 9),
        }
        yield from self._teardown(ticket, umts, None)
        return "completed"

    def _teardown(
        self, ticket: Any, umts: UmtsCommand, revoke_reason: Optional[str]
    ) -> Generator[Any, Any, str]:
        """Graceful holder-owned teardown, revoked or not.

        ``umts stop`` may legitimately fail here — a killed node's lock
        was already force-released by the ``went_down`` cleanup — and
        the lease is released either way.
        """
        try:
            yield umts.stop()
        finally:
            # Even a fault thrown into the stop must free the lease:
            # a leaked ticket starves every later waiter on the node.
            umts.close()
            self.controller.release(ticket)
        if revoke_reason is None:
            return "completed"
        if revoke_reason.startswith("preempted"):
            return "preempted"
        return "killed"

    # -- reporting ---------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """The group's stable record: experiments, fairness, digest."""
        experiments = sorted(
            (
                {key: value for key, value in record.items() if key != "done"}
                for record in self.records
            ),
            key=lambda r: r["experiment"],
        )
        fairness = self.controller.fairness()
        metrics = self.group.sim.metrics
        if metrics is not None:
            metrics.gauge("fleet.fairness.jain").set(fairness["jain_hold_s"])
        body = {
            "group": self.group_index,
            "nodes": len(self.group.nodes),
            "experiments": experiments,
            "fairness": fairness,
            "dead_nodes": sorted(self.controller.dead_nodes()),
            "clean": all(node_clean(node) for node in self.group.nodes),
            "finished": all(record["done"] for record in self.records),
            "sim_time": round(self.group.sim.now, 6),
        }
        body["digest"] = hashlib.sha256(
            json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()
        return body


def run_group(
    spec: FleetSpec, group_index: int, metrics: Optional[MetricsRegistry] = None
) -> Dict[str, Any]:
    """Build, run, and report one fleet group (the job entry point)."""
    run = GroupRun(spec, group_index, metrics=metrics)
    run.execute()
    return run.report()
