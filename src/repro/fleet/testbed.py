"""One fleet group: N PlanetLab nodes, one operator, one engine.

A :class:`FleetGroup` is the many-node generalization of the two-node
:class:`~repro.testbed.scenarios.OneLabScenario`: every node gets its
own LAN tail into a shared Internet core, its own 3G card camping on
its own cell of a shared commercial operator, and a sliver of *every*
slice in the spec (each authorized for the ``umts`` vsys script) — so
the paper's one-slice-at-a-time exclusivity rule is contested on every
single node, which is exactly what the
:class:`~repro.fleet.controller.FleetController` arbitrates.

A node spec may name a scenario-grammar point; the group then shapes
that node's *radio*: its cell carries the point's bearer ladder and
its handover target cells are pre-built (the campaign schedules the
mid-call events).  The grammar's roaming and remote-SIM dimensions are
single-testbed concerns (a second operator; sim-global serial faults)
and are exercised by ``repro chaos --scenario-grammar``, not per fleet
node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.modem.cards import GlobetrotterGT3G
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams, UniformVariate
from repro.testbed.internet import Internet
from repro.testbed.planetlab import PlanetLabNode
from repro.testbed.scenarios import GGSN_PUBLIC_ADDR, GGSN_ROUTER_ADDR
from repro.umts.datacall import DataCall
from repro.umts.operator import commercial_operator
from repro.vserver.slice import Slice

from repro.fleet.spec import FleetSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios import ScenarioSpec


class FleetGroup:
    """The simulated testbed for one shard of the fleet."""

    def __init__(self, spec: FleetSpec, group_index: int):
        self.spec = spec
        self.group_index = group_index
        self.sim = Simulator()
        # Every group forks its own stream family from the campaign
        # seed: group timelines are independent of each other and of
        # which worker process runs them (the -j byte-identity bar).
        self.streams = RandomStreams(spec.seed).fork(f"fleet.group{group_index}")
        self.internet = Internet(self.sim)
        self.operator = commercial_operator(self.sim, self.streams.fork("operator"))
        self.operator.connect_to_internet(
            self.internet.router, GGSN_PUBLIC_ADDR, GGSN_ROUTER_ADDR
        )
        self.slices: Dict[str, Slice] = {
            s.name: Slice(s.name, s.xid) for s in spec.slices
        }
        self.nodes: List[PlanetLabNode] = []
        #: node name → the grammar point shaping its radio (if any).
        self.node_scenarios: Dict[str, "ScenarioSpec"] = {}
        #: node name → ``(at, csq, cell)`` handover targets, pre-built
        #: here so cell creation order (and names) is deterministic.
        self.node_handover_cells: Dict[str, List[Tuple[float, int, object]]] = {}
        for node_spec in spec.node_specs(group_index):
            node = PlanetLabNode(
                self.sim, node_spec.name, self.streams.fork(node_spec.name)
            )
            node.attach_lan(
                self.internet,
                node_spec.address,
                node_spec.gateway,
                prefix_len=node_spec.prefix_len,
                jitter=UniformVariate(0.0, 0.0004),
            )
            for slice_spec in spec.slices:
                node.create_sliver(self.slices[slice_spec.name])
            scenario = None
            if node_spec.scenario:
                from repro.scenarios import grammar_point

                scenario = grammar_point(node_spec.scenario)
                self.node_scenarios[node_spec.name] = scenario
            cell = self.operator.new_cell(
                rab_config=None if scenario is None else scenario.ladder.rab_config()
            )
            node.install_umts_card(GlobetrotterGT3G, cell, apn=self.operator.apn)
            if scenario is not None and scenario.handover.events:
                self.node_handover_cells[node_spec.name] = [
                    (
                        at,
                        csq,
                        self.operator.new_cell(
                            base_csq=csq,
                            rab_config=scenario.ladder.rab_config(),
                        ),
                    )
                    for at, csq in scenario.handover.events
                ]
            for slice_spec in spec.slices:
                node.authorize_umts(slice_spec.name)
            self.operator.dns.add_record(node_spec.name, node_spec.address)
            self.nodes.append(node)

    def pairs(self) -> List[Tuple[PlanetLabNode, PlanetLabNode]]:
        """Consecutive (sender, receiver) node-pairs; a leftover idles."""
        return [
            (self.nodes[i], self.nodes[i + 1])
            for i in range(0, len(self.nodes) - 1, 2)
        ]

    def call_for(self, node: PlanetLabNode) -> Optional[DataCall]:
        """The node's active data call, matched by its mobile address."""
        if node.connection is None:
            return None
        address = node.connection.address()
        if address is None:
            return None
        for call in self.operator.calls:
            if str(call.assigned_address) == str(address):
                return call
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FleetGroup g{self.group_index:04d} nodes={len(self.nodes)} "
            f"slices={sorted(self.slices)}>"
        )
