"""The fleet's management plane: per-node UMTS interface leases.

The paper's exclusivity rule — one slice owns the UMTS interface at a
time, enforced on the node by the ``umts`` back-end's
:class:`~repro.core.lock.InterfaceLock` — becomes, fleet-wide, an
arbitration problem.  The :class:`FleetController` runs it as a lease
protocol *above* the node-local lock:

- a slice **requests** the interface of a node and gets a
  :class:`LeaseTicket`; the request resolves through the ticket's
  ``outcome`` signal as ``("granted", ticket)`` or
  ``("failed", reason)``;
- per node there is a FIFO queue, ordered by priority first and
  arrival order within a priority, so equal-priority slices can never
  overtake each other;
- with preemption enabled, a request of strictly higher priority than
  the current holder fires the holder's ``revoked`` signal.  Revocation
  is **graceful**: the holder owns its own teardown (stop traffic,
  ``umts stop``, then :meth:`FleetController.release`) so the vsys
  back-end never sees two slices racing the interface — the node-local
  lock stays the ground truth and the netfilter/RPDB isolation is
  removed by the same path as a voluntary stop;
- a node **dying** while leased (the ``fleet:node_kill`` chaos mode)
  force-drops its data call — the connection manager's ``went_down``
  cleanup then force-releases the node lock and removes the isolation
  rules, exactly the PR-4 invariant — revokes the holder, and fails
  every queued ticket immediately, so death never starves the queue.

Fairness is accounted per slice (requests, grants, preemptions
suffered, failures, wait/hold time) and summarized with Jain's fairness
index over both grant counts and total hold time.  All metrics live on
the run's :class:`~repro.obs.metrics.MetricsRegistry` via the standard
``sim.metrics`` zero-cost-when-``None`` contract, and every lease
transition is a TraceBus event (grants open a ``fleet.lease`` span) so
arbitration shows up in ``repro report`` timelines.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import LATENCY_BUCKETS
from repro.sim.engine import Simulator
from repro.sim.process import Signal


class FleetLeaseError(Exception):
    """Lease protocol misuse (unknown node, double release)."""


class LeaseTicket:
    """One slice's claim on one node's UMTS interface."""

    def __init__(
        self, sim: Simulator, node: str, slice_name: str, priority: int, seq: int
    ):
        self.node = node
        self.slice_name = slice_name
        self.priority = priority
        self.seq = seq
        self.requested_at = sim.now
        self.granted_at: Optional[float] = None
        self.released_at: Optional[float] = None
        self.state = "queued"  # queued | granted | released | failed
        self.revoke_reason: Optional[str] = None
        #: fires ("granted", ticket) or ("failed", reason) exactly once.
        self.outcome = Signal(sim, f"lease.outcome.{node}.{slice_name}")
        #: fires (reason) if the controller wants the interface back.
        self.revoked = Signal(sim, f"lease.revoked.{node}.{slice_name}")
        self._span: Any = None

    @property
    def granted(self) -> bool:
        return self.state == "granted"

    def wait_time(self) -> Optional[float]:
        """Seconds spent queued, or ``None`` while not yet granted."""
        if self.granted_at is None:
            return None
        return self.granted_at - self.requested_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LeaseTicket {self.slice_name}@{self.node} prio={self.priority} "
            f"{self.state}>"
        )


class _NodeState:
    """Controller-side state of one node's interface."""

    __slots__ = ("name", "holder", "queue", "dead", "on_kill")

    def __init__(self, name: str, on_kill: Optional[Callable[[str], None]]):
        self.name = name
        self.holder: Optional[LeaseTicket] = None
        self.queue: List[LeaseTicket] = []
        self.dead = False
        self.on_kill = on_kill


class _SliceStats:
    """Per-slice fairness ledger."""

    __slots__ = ("requests", "grants", "preemptions", "failed", "wait_s", "hold_s")

    def __init__(self) -> None:
        self.requests = 0
        self.grants = 0
        self.preemptions = 0
        self.failed = 0
        self.wait_s = 0.0
        self.hold_s = 0.0


def jain_index(values: List[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n is worst."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


class FleetController:
    """Central lease arbiter for every node in one fleet group."""

    def __init__(
        self,
        sim: Simulator,
        preemption: bool = True,
        starvation_threshold: float = 120.0,
    ):
        self.sim = sim
        self.preemption = preemption
        self.starvation_threshold = starvation_threshold
        self._nodes: Dict[str, _NodeState] = {}
        self._order: List[str] = []
        self._seq = itertools.count()
        self._stats: Dict[str, _SliceStats] = {}
        self.killed: List[str] = []
        # Touch every fleet metric family up front so zero-valued
        # counters (starved, preemptions, ...) still appear in the
        # OpenMetrics export of an uneventful campaign.
        metrics = sim.metrics
        if metrics is not None:
            metrics.counter("fleet.lease.requests")
            metrics.counter("fleet.lease.grants")
            metrics.counter("fleet.lease.releases")
            metrics.counter("fleet.lease.preemptions")
            metrics.counter("fleet.lease.failed")
            metrics.counter("fleet.lease.starved")
            metrics.counter("fleet.node.killed")
            metrics.histogram("fleet.lease.wait_seconds", LATENCY_BUCKETS)
            metrics.histogram("fleet.lease.hold_seconds", LATENCY_BUCKETS)
            metrics.gauge("fleet.lease.queue_depth")

    # -- registration ------------------------------------------------------

    def register_node(
        self, name: str, on_kill: Optional[Callable[[str], None]] = None
    ) -> None:
        """Put one node's interface under controller management.

        ``on_kill(reason)`` models the node dying: it should drop the
        node's active data call so the stack's own ``went_down`` path
        cleans up the lock and isolation rules.
        """
        if name in self._nodes:
            raise FleetLeaseError(f"node {name!r} already registered")
        self._nodes[name] = _NodeState(name, on_kill)
        self._order.append(name)

    def bind_faults(self, registry: Any) -> None:
        """Subscribe the ``fleet`` injection point of a fault registry."""
        registry.subscribe("fleet", self._fleet_fault)

    # -- the lease protocol ------------------------------------------------

    def request(self, node: str, slice_name: str, priority: int = 0) -> LeaseTicket:
        """Queue a lease request; resolve via ``ticket.outcome``.

        Resolution is always asynchronous (a zero-delay event), so the
        caller can yield on the outcome signal after this returns
        without racing the decision.
        """
        state = self._nodes.get(node)
        if state is None:
            raise FleetLeaseError(f"unknown node {node!r}")
        ticket = LeaseTicket(self.sim, node, slice_name, priority, next(self._seq))
        stats = self._stats.setdefault(slice_name, _SliceStats())
        stats.requests += 1
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter("fleet.lease.requests").inc()
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                "fleet.lease.request",
                node=node,
                slice=slice_name,
                priority=priority,
            )
        if state.dead:
            self.sim.post(0.0, self._fail, ticket, "node dead")
            return ticket
        state.queue.append(ticket)
        self._update_depth(state)
        holder = state.holder
        if (
            self.preemption
            and holder is not None
            and priority > holder.priority
            and holder.revoke_reason is None
        ):
            self._revoke(holder, f"preempted by {slice_name}", preemption=True)
        self.sim.post(0.0, self._pump, state)
        return ticket

    def release(self, ticket: LeaseTicket) -> None:
        """Give a granted interface back (also after a revocation)."""
        state = self._nodes.get(ticket.node)
        if state is None or ticket.state != "granted":
            return
        ticket.state = "released"
        ticket.released_at = self.sim.now
        granted_at = (
            ticket.granted_at if ticket.granted_at is not None else ticket.released_at
        )
        hold = ticket.released_at - granted_at
        self._stats.setdefault(ticket.slice_name, _SliceStats()).hold_s += hold
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter("fleet.lease.releases").inc()
            metrics.histogram("fleet.lease.hold_seconds", LATENCY_BUCKETS).observe(hold)
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                "fleet.lease.release",
                node=ticket.node,
                slice=ticket.slice_name,
                hold_s=round(hold, 6),
            )
        if ticket._span is not None:
            status = "revoked" if ticket.revoke_reason else "ok"
            ticket._span.end(status=status)
            ticket._span = None
        if state.holder is ticket:
            state.holder = None
        self.sim.post(0.0, self._pump, state)

    def kill_node(self, name: str, reason: str = "node killed") -> None:
        """A node dies: drop its call, revoke the holder, drain the queue.

        Queued tickets resolve as failed *immediately* — a dead node
        must never starve its waiters — and later requests fail at
        request time.
        """
        state = self._nodes.get(name)
        if state is None:
            raise FleetLeaseError(f"unknown node {name!r}")
        if state.dead:
            return
        state.dead = True
        self.killed.append(name)
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter("fleet.node.killed").inc()
        trace = self.sim.trace
        if trace is not None:
            trace.emit("fleet.node.kill", node=name, reason=reason)
        if state.on_kill is not None:
            state.on_kill(reason)
        holder = state.holder
        if holder is not None and holder.revoke_reason is None:
            self._revoke(holder, reason, preemption=False)
        queued, state.queue = state.queue, []
        for ticket in queued:
            self._fail(ticket, reason)
        self._update_depth(state)

    # -- accounting --------------------------------------------------------

    def fairness(self) -> Dict[str, Any]:
        """The per-slice ledger plus Jain indices, JSON-ready."""
        slices: Dict[str, Any] = {}
        for name in sorted(self._stats):
            stats = self._stats[name]
            mean_wait = stats.wait_s / stats.grants if stats.grants else 0.0
            slices[name] = {
                "requests": stats.requests,
                "grants": stats.grants,
                "preemptions": stats.preemptions,
                "failed": stats.failed,
                "mean_wait_s": round(mean_wait, 6),
                "hold_s": round(stats.hold_s, 6),
            }
        ordered = [self._stats[name] for name in sorted(self._stats)]
        return {
            "slices": slices,
            "jain_grants": round(jain_index([float(s.grants) for s in ordered]), 6),
            "jain_hold_s": round(jain_index([s.hold_s for s in ordered]), 6),
        }

    def dead_nodes(self) -> List[str]:
        """Names of every node killed so far, in kill order."""
        return list(self.killed)

    # -- internals ---------------------------------------------------------

    def _pump(self, state: _NodeState) -> None:
        """Grant the best queued ticket if the interface is free."""
        if state.holder is not None or state.dead or not state.queue:
            return
        best = min(state.queue, key=lambda t: (-t.priority, t.seq))
        state.queue.remove(best)
        state.holder = best
        best.state = "granted"
        best.granted_at = self.sim.now
        wait = best.granted_at - best.requested_at
        stats = self._stats.setdefault(best.slice_name, _SliceStats())
        stats.grants += 1
        stats.wait_s += wait
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter("fleet.lease.grants").inc()
            metrics.histogram("fleet.lease.wait_seconds", LATENCY_BUCKETS).observe(wait)
            if wait > self.starvation_threshold:
                metrics.counter("fleet.lease.starved").inc()
        self._update_depth(state)
        trace = self.sim.trace
        if trace is not None:
            best._span = trace.span(
                "fleet.lease",
                node=best.node,
                slice=best.slice_name,
                priority=best.priority,
                wait_s=round(wait, 6),
            )
        best.outcome.fire(("granted", best))

    def _revoke(self, ticket: LeaseTicket, reason: str, preemption: bool) -> None:
        ticket.revoke_reason = reason
        if preemption:
            self._stats.setdefault(ticket.slice_name, _SliceStats()).preemptions += 1
        metrics = self.sim.metrics
        if metrics is not None and preemption:
            metrics.counter("fleet.lease.preemptions").inc()
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                "fleet.lease.preempt" if preemption else "fleet.lease.revoke",
                node=ticket.node,
                slice=ticket.slice_name,
                reason=reason,
            )
        self.sim.post(0.0, ticket.revoked.fire, reason)

    def _fail(self, ticket: LeaseTicket, reason: str) -> None:
        if ticket.state not in ("queued",):
            return
        ticket.state = "failed"
        self._stats.setdefault(ticket.slice_name, _SliceStats()).failed += 1
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter("fleet.lease.failed").inc()
        ticket.outcome.fire(("failed", reason))

    def _update_depth(self, state: _NodeState) -> None:
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.gauge("fleet.lease.queue_depth").set(float(len(state.queue)))

    def _fleet_fault(self, spec: Any) -> bool:
        """Apply a triggered ``fleet`` fault (the chaos grammar hook)."""
        if spec.mode != "node_kill" or not self._order:
            return False
        index = int(spec.params.get("node", "0")) % len(self._order)
        self.kill_node(self._order[index], reason="chaos node_kill")
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        held = sum(1 for s in self._nodes.values() if s.holder is not None)
        return (
            f"<FleetController nodes={len(self._nodes)} held={held} "
            f"dead={len(self.killed)}>"
        )
