"""iproute2 emulation: routing tables and the routing policy database.

The paper's back-end steers UMTS-slice traffic by (1) creating an
*additional routing table* whose only entry is a default route through
``ppp0`` and (2) installing RPDB *rules* that send packets carrying the
UMTS fwmark — or sourced from the ppp0 address — to that table.  This
package models exactly that data plane:

- :class:`Route` / :class:`RoutingTable` — longest-prefix-match tables;
- :class:`Rule` / :class:`RoutingPolicyDatabase` — priority-ordered
  policy rules selecting a table by fwmark / source / input interface;
- :class:`IpRoute2` — an ``ip route`` / ``ip rule`` command facade (both
  a typed API and a string-command parser) so the privileged back-end
  can issue the same commands the real tool receives.
"""

from repro.routing.iproute2 import IpRoute2, IpRouteError
from repro.routing.rpdb import RoutingPolicyDatabase, Rule
from repro.routing.table import Route, RoutingTable

__all__ = [
    "IpRoute2",
    "IpRouteError",
    "Route",
    "RoutingPolicyDatabase",
    "RoutingTable",
    "Rule",
]
