"""The routing policy database (RPDB).

Linux consults an ordered list of rules for every routing decision;
each rule has a selector (source prefix, fwmark, input interface, ...)
and an action, normally "look up table T".  If the selected table has
no matching route the walk continues with the next rule — that
*continue-on-miss* behaviour is what lets the paper add a high-priority
``fwmark → umts`` rule without breaking ordinary traffic: unmarked
packets fall through to the ``main`` table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.addressing import (
    AddressLike,
    IPv4Address,
    IPv4Network,
    NetworkLike,
    ip,
    network,
)
from repro.routing.table import Route, RoutingTable

MAIN_TABLE = "main"
DEFAULT_TABLE = "default"

#: Priorities of the three rules Linux installs at boot.
PREF_LOCAL = 0
PREF_MAIN = 32766
PREF_DEFAULT = 32767


class Rule:
    """One RPDB rule: selector → lookup table.

    Only the selectors the reproduction needs are modelled: ``src``
    (the ``from`` clause), ``fwmark`` and ``iif``.  ``None`` means
    "match anything" for that field.
    """

    __slots__ = ("pref", "table", "src", "fwmark", "iif")

    def __init__(
        self,
        pref: int,
        table: str,
        src: Optional[NetworkLike] = None,
        fwmark: Optional[int] = None,
        iif: Optional[str] = None,
    ):
        self.pref = pref
        self.table = table
        self.src: Optional[IPv4Network] = network(src) if src is not None else None
        self.fwmark = fwmark
        self.iif = iif

    def matches(
        self,
        dst: IPv4Address,
        src: Optional[IPv4Address],
        mark: int,
        iif: Optional[str],
    ) -> bool:
        """Whether the selector accepts this packet."""
        if self.src is not None and (src is None or src not in self.src):
            return False
        if self.fwmark is not None and mark != self.fwmark:
            return False
        if self.iif is not None and iif != self.iif:
            return False
        return True

    def key(self) -> tuple:
        """Identity key used for delete semantics."""
        return (self.pref, self.table, self.src, self.fwmark, self.iif)

    def __repr__(self) -> str:
        parts = [f"{self.pref}:"]
        parts.append(f"from {self.src}" if self.src is not None else "from all")
        if self.fwmark is not None:
            parts.append(f"fwmark {self.fwmark:#x}")
        if self.iif is not None:
            parts.append(f"iif {self.iif}")
        parts.append(f"lookup {self.table}")
        return " ".join(parts)


class RoutingPolicyDatabase:
    """Tables plus the priority-ordered rule list.

    A fresh RPDB has ``main`` and ``default`` tables and the standard
    rules pointing at them.  (The kernel's ``local`` table is handled
    directly by the stack's is-this-address-mine check.)
    """

    def __init__(self) -> None:
        self._tables: Dict[str, RoutingTable] = {}
        self._rules: List[Rule] = []
        self.table(MAIN_TABLE)
        self.table(DEFAULT_TABLE)
        self.add_rule(Rule(PREF_MAIN, MAIN_TABLE))
        self.add_rule(Rule(PREF_DEFAULT, DEFAULT_TABLE))

    # -- tables ------------------------------------------------------

    def table(self, name: str) -> RoutingTable:
        """Return (creating if needed) the table called ``name``."""
        if name not in self._tables:
            self._tables[name] = RoutingTable(name)
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        """Whether a table called ``name`` exists."""
        return name in self._tables

    def drop_table(self, name: str) -> None:
        """Delete a user table entirely (``main``/``default`` are kept)."""
        if name in (MAIN_TABLE, DEFAULT_TABLE):
            raise ValueError(f"refusing to drop built-in table {name!r}")
        self._tables.pop(name, None)

    @property
    def main(self) -> RoutingTable:
        """The main routing table."""
        return self._tables[MAIN_TABLE]

    def purge_dev(self, dev: str) -> int:
        """Remove routes through ``dev`` from every table (device gone)."""
        return sum(table.remove_dev(dev) for table in self._tables.values())

    # -- rules -------------------------------------------------------

    def add_rule(self, rule: Rule) -> None:
        """Insert a rule, keeping the list sorted by preference."""
        if any(r.key() == rule.key() for r in self._rules):
            raise ValueError(f"rule already exists: {rule!r}")
        self._rules.append(rule)
        self._rules.sort(key=lambda r: r.pref)

    def delete_rule(
        self,
        pref: Optional[int] = None,
        table: Optional[str] = None,
        src: Optional[NetworkLike] = None,
        fwmark: Optional[int] = None,
    ) -> int:
        """Delete rules matching every given criterion; returns count."""
        src_net = network(src) if src is not None else None
        survivors = []
        removed = 0
        for rule in self._rules:
            if (
                (pref is None or rule.pref == pref)
                and (table is None or rule.table == table)
                and (src_net is None or rule.src == src_net)
                and (fwmark is None or rule.fwmark == fwmark)
            ):
                removed += 1
            else:
                survivors.append(rule)
        if not removed:
            raise ValueError("no matching rule")
        self._rules = survivors
        return removed

    def rules(self) -> List[Rule]:
        """The rules in evaluation order."""
        return list(self._rules)

    # -- lookup ------------------------------------------------------

    def lookup(
        self,
        dst: AddressLike,
        src: Optional[AddressLike] = None,
        mark: int = 0,
        iif: Optional[str] = None,
        oif: Optional[str] = None,
    ) -> Optional[Route]:
        """Full policy-routing decision.

        Walks the rules in priority order; for each matching rule, does
        an LPM lookup in its table and returns the first hit.  A miss
        continues with the next rule (Linux's behaviour for a table
        with no matching route).  ``oif`` constrains the lookup to one
        output device (SO_BINDTODEVICE).
        """
        destination = ip(dst)
        source = ip(src) if src is not None else None
        for rule in self._rules:
            if not rule.matches(destination, source, mark, iif):
                continue
            table = self._tables.get(rule.table)
            if table is None:
                continue
            route = table.lookup(destination, oif=oif)
            if route is not None:
                return route
        return None
