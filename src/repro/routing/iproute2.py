"""An ``ip`` command facade over the RPDB.

The privileged back-end in the paper shells out to ``iproute2``.  To
keep that fidelity, :class:`IpRoute2` accepts the same command strings
(``"route add default dev ppp0 table umts"``) in addition to a typed
Python API, and records every executed command so tests can assert the
exact sequence the back-end issued.
"""

from __future__ import annotations

import shlex
from typing import List, Optional

from repro.net.addressing import AddressLike, NetworkLike
from repro.routing.rpdb import RoutingPolicyDatabase, Rule
from repro.routing.table import Route


class IpRouteError(Exception):
    """Raised for malformed or failing ``ip`` commands."""


class IpRoute2:
    """``ip route`` / ``ip rule`` against one node's RPDB."""

    def __init__(self, rpdb: RoutingPolicyDatabase):
        self.rpdb = rpdb
        #: every command string executed through :meth:`run`.
        self.history: List[str] = []

    # -- typed API ---------------------------------------------------

    def route_add(
        self,
        prefix: NetworkLike,
        dev: str,
        via: Optional[AddressLike] = None,
        src: Optional[AddressLike] = None,
        metric: int = 0,
        table: str = "main",
        replace: bool = False,
    ) -> Route:
        """Install a route (``ip route add``; ``replace`` for ``ip route replace``)."""
        route = Route(prefix, dev, via=via, src=src, metric=metric)
        self.rpdb.table(table).add(route, replace=replace)
        return route

    def route_del(
        self,
        prefix: NetworkLike,
        dev: Optional[str] = None,
        via: Optional[AddressLike] = None,
        table: str = "main",
    ) -> None:
        """Remove a route (``ip route del``)."""
        try:
            self.rpdb.table(table).delete(prefix, dev=dev, via=via)
        except ValueError as exc:
            raise IpRouteError(str(exc)) from exc

    def route_flush_table(self, table: str) -> None:
        """Empty a table (``ip route flush table T``)."""
        self.rpdb.table(table).flush()

    def route_list(self, table: str = "main") -> List[Route]:
        """Routes in a table (``ip route show table T``)."""
        return list(self.rpdb.table(table))

    def rule_add(
        self,
        table: str,
        pref: int,
        src: Optional[NetworkLike] = None,
        fwmark: Optional[int] = None,
        iif: Optional[str] = None,
    ) -> Rule:
        """Install a policy rule (``ip rule add``)."""
        rule = Rule(pref, table, src=src, fwmark=fwmark, iif=iif)
        try:
            self.rpdb.add_rule(rule)
        except ValueError as exc:
            raise IpRouteError(str(exc)) from exc
        return rule

    def rule_del(
        self,
        pref: Optional[int] = None,
        table: Optional[str] = None,
        src: Optional[NetworkLike] = None,
        fwmark: Optional[int] = None,
    ) -> int:
        """Delete matching rules (``ip rule del``)."""
        try:
            return self.rpdb.delete_rule(pref=pref, table=table, src=src, fwmark=fwmark)
        except ValueError as exc:
            raise IpRouteError(str(exc)) from exc

    def rule_list(self) -> List[Rule]:
        """Rules in evaluation order (``ip rule show``)."""
        return self.rpdb.rules()

    # -- string-command front door ------------------------------------

    def run(self, command: str) -> None:
        """Execute an ``ip`` command string, e.g.
        ``"route add default dev ppp0 table umts"`` or
        ``"rule add fwmark 0x1 lookup umts pref 100"``.

        Only the verbs the paper's back-end needs are supported; anything
        else raises :class:`IpRouteError`.
        """
        self.history.append(command)
        argv = shlex.split(command)
        if argv and argv[0] == "ip":
            argv = argv[1:]
        if len(argv) < 2:
            raise IpRouteError(f"short command: {command!r}")
        obj, verb, rest = argv[0], argv[1], argv[2:]
        if obj == "route":
            self._run_route(verb, rest, command)
        elif obj == "rule":
            self._run_rule(verb, rest, command)
        else:
            raise IpRouteError(f"unsupported object {obj!r} in {command!r}")

    def _run_route(self, verb: str, rest: List[str], command: str) -> None:
        if verb == "flush":
            if len(rest) == 2 and rest[0] == "table":
                self.route_flush_table(rest[1])
                return
            raise IpRouteError(f"bad route flush: {command!r}")
        if verb not in ("add", "del", "replace"):
            raise IpRouteError(f"unsupported route verb {verb!r}")
        if not rest:
            raise IpRouteError(f"missing prefix: {command!r}")
        prefix = rest[0]
        options = _parse_pairs(rest[1:], command)
        table = options.pop("table", "main")
        dev = options.pop("dev", None)
        via = options.pop("via", None)
        src = options.pop("src", None)
        metric = int(options.pop("metric", 0))
        if options:
            raise IpRouteError(f"unsupported route options {sorted(options)} in {command!r}")
        if verb in ("add", "replace"):
            if dev is None:
                raise IpRouteError(f"route add needs dev: {command!r}")
            self.route_add(
                prefix,
                dev,
                via=via,
                src=src,
                metric=metric,
                table=table,
                replace=(verb == "replace"),
            )
        else:
            self.route_del(prefix, dev=dev, via=via, table=table)

    def _run_rule(self, verb: str, rest: List[str], command: str) -> None:
        if verb not in ("add", "del"):
            raise IpRouteError(f"unsupported rule verb {verb!r}")
        options = _parse_pairs(rest, command)
        table = options.pop("lookup", options.pop("table", None))
        pref = options.pop("pref", options.pop("priority", None))
        src = options.pop("from", None)
        if src == "all":
            src = None
        fwmark = options.pop("fwmark", None)
        iif = options.pop("iif", None)
        if options:
            raise IpRouteError(f"unsupported rule options {sorted(options)} in {command!r}")
        mark = int(fwmark, 0) if fwmark is not None else None
        if verb == "add":
            if table is None or pref is None:
                raise IpRouteError(f"rule add needs lookup and pref: {command!r}")
            self.rule_add(table, int(pref), src=src, fwmark=mark, iif=iif)
        else:
            self.rule_del(
                pref=int(pref) if pref is not None else None,
                table=table,
                src=src,
                fwmark=mark,
            )


def _parse_pairs(tokens: List[str], command: str) -> dict:
    """Parse alternating keyword/value tokens into a dict."""
    if len(tokens) % 2 != 0:
        raise IpRouteError(f"dangling token in {command!r}")
    pairs = {}
    for i in range(0, len(tokens), 2):
        pairs[tokens[i]] = tokens[i + 1]
    return pairs
