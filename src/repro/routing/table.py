"""Routing tables with longest-prefix-match lookup."""

from __future__ import annotations

from typing import List, Optional

from repro.net.addressing import (
    AddressLike,
    IPv4Address,
    IPv4Network,
    NetworkLike,
    ip,
    network,
)


class Route:
    """One routing-table entry.

    Mirrors the fields of an ``ip route`` entry that matter here:
    destination ``prefix``, optional gateway ``via``, output device
    ``dev``, optional preferred source address ``src`` and a ``metric``
    used to break ties between equal-length prefixes.
    """

    __slots__ = ("prefix", "via", "dev", "src", "metric")

    def __init__(
        self,
        prefix: NetworkLike,
        dev: str,
        via: Optional[AddressLike] = None,
        src: Optional[AddressLike] = None,
        metric: int = 0,
    ):
        self.prefix: IPv4Network = network(prefix)
        self.dev = dev
        self.via: Optional[IPv4Address] = ip(via) if via is not None else None
        self.src: Optional[IPv4Address] = ip(src) if src is not None else None
        self.metric = metric

    def matches(self, dst: IPv4Address) -> bool:
        """True when ``dst`` falls inside this route's prefix."""
        return dst in self.prefix

    def key(self) -> tuple:
        """Identity key used for replace/delete semantics."""
        return (self.prefix, self.dev, self.via, self.metric)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Route) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        parts = ["default" if self.prefix.prefixlen == 0 else str(self.prefix)]
        if self.via is not None:
            parts.append(f"via {self.via}")
        parts.append(f"dev {self.dev}")
        if self.src is not None:
            parts.append(f"src {self.src}")
        if self.metric:
            parts.append(f"metric {self.metric}")
        return " ".join(parts)


class RoutingTable:
    """A named list of routes with longest-prefix-match lookup."""

    def __init__(self, name: str):
        self.name = name
        self._routes: List[Route] = []

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self):
        return iter(self._routes)

    def add(self, route: Route, replace: bool = False) -> None:
        """Install a route.

        Duplicate (same prefix/dev/via/metric) installs raise unless
        ``replace`` is set, mirroring ``ip route add`` vs ``replace``.
        """
        existing = [r for r in self._routes if r.key() == route.key()]
        if existing:
            if not replace:
                raise ValueError(f"route already exists: {route!r}")
            for r in existing:
                self._routes.remove(r)
        self._routes.append(route)

    def delete(
        self,
        prefix: NetworkLike,
        dev: Optional[str] = None,
        via: Optional[AddressLike] = None,
    ) -> None:
        """Remove routes matching the given prefix (and dev/via if given)."""
        target = network(prefix)
        gateway = ip(via) if via is not None else None
        survivors = []
        removed = 0
        for route in self._routes:
            if (
                route.prefix == target
                and (dev is None or route.dev == dev)
                and (gateway is None or route.via == gateway)
            ):
                removed += 1
            else:
                survivors.append(route)
        if not removed:
            raise ValueError(f"no such route: {prefix}")
        self._routes = survivors

    def flush(self) -> None:
        """Remove every route."""
        self._routes.clear()

    def remove_dev(self, dev: str) -> int:
        """Remove all routes through ``dev`` (interface went away)."""
        before = len(self._routes)
        self._routes = [r for r in self._routes if r.dev != dev]
        return before - len(self._routes)

    def lookup(self, dst: AddressLike, oif: Optional[str] = None) -> Optional[Route]:
        """Longest-prefix match; ties broken by lowest metric, then
        most-recent install (Linux picks the first found; we keep it
        deterministic).  ``oif`` restricts candidates to one output
        device (the SO_BINDTODEVICE-constrained lookup)."""
        destination = ip(dst)
        best: Optional[Route] = None
        for route in self._routes:
            if not route.matches(destination):
                continue
            if oif is not None and route.dev != oif:
                continue
            if best is None:
                best = route
                continue
            if route.prefix.prefixlen > best.prefix.prefixlen:
                best = route
            elif (
                route.prefix.prefixlen == best.prefix.prefixlen
                and route.metric < best.metric
            ):
                best = route
        return best

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RoutingTable {self.name!r} routes={len(self._routes)}>"
