"""pppd — the PPP daemon.

Runs LCP then IPCP over a frame transport and, once IPCP opens,
creates the point-to-point interface:

- in **client** mode (the PlanetLab node): ``ppp0`` with the address
  the operator assigned, plus a host route to the peer — and *no*
  default route, because the paper's design keeps the default on
  ``eth0`` and gives the UMTS table its own default instead;
- in **server** mode (the GGSN): one interface per session, with a
  host route to the mobile's assigned address so the core network can
  route downlink traffic into the right session.

The transport is anything with ``send_frame(frame)`` that calls our
:meth:`Pppd.receive_frame` for inbound frames — a direct test pipe, or
the serial→modem→radio chain in the full testbed.
"""

from __future__ import annotations

import itertools
import random as _random
from typing import Any, Callable, Optional, Union

from repro.net.addressing import AddressLike
from repro.net.interface import PPPInterface
from repro.net.packet import Packet
from repro.net.stack import IPStack
from repro.ppp.frame import PPP_IP, PPP_IPCP, PPP_LCP, ControlPacket, PPPFrame
from repro.ppp.ipcp import IpcpClientFsm, IpcpServerFsm
from repro.ppp.lcp import LcpFsm
from repro.routing.table import Route
from repro.sim.engine import Event, Simulator
from repro.sim.process import Signal

_unit_numbers = itertools.count()


class PppError(Exception):
    """Session setup or teardown failure."""


class _TransportChannel:
    """Adapter making a pppd session look like an interface channel."""

    def __init__(self, pppd: "Pppd") -> None:
        self._pppd = pppd

    def send(self, packet: Packet) -> bool:
        if not self._pppd.is_up:
            return False
        self._pppd.transport.send_frame(PPPFrame(PPP_IP, packet))
        return True


class Pppd:
    """One PPP session endpoint (client or server)."""

    def __init__(
        self,
        sim: Simulator,
        stack: IPStack,
        transport: Any,
        role: str = "client",
        ifname: Optional[str] = None,
        local_address: Optional[AddressLike] = None,
        assign_address: Optional[AddressLike] = None,
        dns1: Optional[AddressLike] = None,
        dns2: Optional[AddressLike] = None,
        rng: Optional[_random.Random] = None,
        add_peer_route: bool = True,
        request_dns: bool = False,
        echo_interval: Optional[float] = None,
        echo_failure: int = 4,
        on_up: Optional[Callable[[PPPInterface], None]] = None,
        on_down: Optional[Callable[[str], None]] = None,
    ) -> None:
        if role not in ("client", "server"):
            raise PppError(f"unknown role {role!r}")
        if role == "server" and (local_address is None or assign_address is None):
            raise PppError("server role needs local_address and assign_address")
        self.sim = sim
        self.stack = stack
        self.transport = transport
        self.role = role
        self.ifname = ifname or f"ppp{next(_unit_numbers)}"
        self.add_peer_route = add_peer_route
        self.echo_interval = echo_interval
        self.echo_failure = echo_failure
        self._echo_missed = 0
        self._echo_timer: Optional[Event] = None
        self.on_up_cb = on_up
        self.on_down_cb = on_down
        self.malformed_frames = 0
        self.iface: Optional[PPPInterface] = None
        #: fired with the interface when the session reaches data phase.
        self.up = Signal(sim, f"{self.ifname}.up")
        #: fired with a reason string when the session ends.
        self.down = Signal(sim, f"{self.ifname}.down")
        self.failed = Signal(sim, f"{self.ifname}.failed")
        self.ipcp: Union[IpcpClientFsm, IpcpServerFsm]
        self.lcp = LcpFsm(
            sim,
            self._send_lcp,
            on_up=self._lcp_up,
            on_down=self._lcp_down,
            on_fail=self._negotiation_failed,
            rng=rng,
        )
        if role == "client":
            self.ipcp = IpcpClientFsm(
                sim,
                self._send_ipcp,
                on_up=self._ipcp_up,
                on_down=self._ipcp_down,
                on_fail=self._negotiation_failed,
                request_dns=request_dns,
            )
        else:
            self.ipcp = IpcpServerFsm(
                sim,
                self._send_ipcp,
                on_up=self._ipcp_up,
                on_down=self._ipcp_down,
                on_fail=self._negotiation_failed,
                local_address=local_address,
                assign_address=assign_address,
                dns1=dns1,
                dns2=dns2,
            )
        if hasattr(transport, "set_receiver"):
            transport.set_receiver(self.receive_frame)

    # -- lifecycle ------------------------------------------------------

    @property
    def is_up(self) -> bool:
        """True while the session is in the data phase."""
        return self.iface is not None and self.ipcp.is_open

    def start(self) -> None:
        """Begin LCP negotiation (the moment pppd attaches to the tty)."""
        self.lcp.open()

    def disconnect(self, reason: str = "user hangup") -> None:
        """Graceful teardown: close IPCP and LCP, remove the interface."""
        if self.ipcp.is_open:
            self.ipcp.close(reason)
        self.lcp.close(reason)
        self._teardown(reason)

    def carrier_lost(self, reason: str = "carrier lost") -> None:
        """Hard teardown without Terminate exchange (modem hangup)."""
        self.ipcp.abort(reason)
        self.lcp.abort(reason)
        self._teardown(reason)

    # -- frame I/O ---------------------------------------------------------

    def receive_frame(self, frame: PPPFrame) -> None:
        """Inbound frame from the transport."""
        if frame.protocol in (PPP_LCP, PPP_IPCP) and not isinstance(
            frame.payload, ControlPacket
        ):
            # A control frame whose payload did not survive the line.
            # Real pppd drops what fails the parse; crashing the FSMs
            # on line noise would be the un-typed failure mode.
            self.malformed_frames += 1
            trace = self.sim.trace
            if trace is not None:
                trace.emit(
                    "ppp.malformed_frame", ifname=self.ifname, proto=frame.protocol
                )
            return
        if frame.protocol == PPP_LCP:
            from repro.ppp.frame import ECHO_REP

            if frame.payload.code == ECHO_REP:
                self.note_echo_reply()
            self.lcp.receive(frame.payload)
        elif frame.protocol == PPP_IPCP:
            if self.lcp.is_open:
                self.ipcp.receive(frame.payload)
        elif frame.protocol == PPP_IP:
            if self.iface is not None:
                self.iface.deliver(frame.payload)
        # Unknown protocols would elicit Protocol-Reject; ignored here.

    def _send_lcp(self, packet: ControlPacket) -> None:
        self.transport.send_frame(PPPFrame(PPP_LCP, packet))

    def _send_ipcp(self, packet: ControlPacket) -> None:
        self.transport.send_frame(PPPFrame(PPP_IPCP, packet))

    # -- FSM callbacks -------------------------------------------------------

    def _lcp_up(self) -> None:
        self.ipcp.open()

    def _ipcp_up(self) -> None:
        ipcp = self.ipcp
        if isinstance(ipcp, IpcpClientFsm):
            local = ipcp.local_address
            peer: Optional[Any] = ipcp.peer_address
        else:
            local = ipcp.local_address
            peer = ipcp.assigned_address
        if local is None or peer is None:
            self._negotiation_failed("IPCP opened without addresses")
            return
        iface = PPPInterface(self.ifname)
        iface.configure_p2p(local, peer)
        self.stack.add_interface(iface)
        iface.attach(_TransportChannel(self))
        iface.bring_up()
        if self.add_peer_route:
            self.stack.rpdb.main.add(
                Route(f"{peer}/32", self.ifname, src=local), replace=True
            )
        self.iface = iface
        if self.echo_interval is not None:
            self._arm_echo_timer()
        if self.on_up_cb is not None:
            self.on_up_cb(iface)
        self.up.fire(iface)

    def _lcp_down(self, reason: str) -> None:
        # LCP leaving the data phase takes IPCP's lower layer with it;
        # abort IPCP so a later LCP re-open renegotiates the network
        # layer from scratch (and re-creates the interface).
        self.ipcp.abort(reason)
        self._teardown(reason)

    def _ipcp_down(self, reason: str) -> None:
        self._teardown(reason)

    def _negotiation_failed(self, reason: str) -> None:
        self._teardown(reason)
        self.failed.fire(reason)

    def _teardown(self, reason: str) -> None:
        if self._echo_timer is not None:
            self._echo_timer.cancel()
            self._echo_timer = None
        if self.iface is not None:
            name = self.iface.name
            self.iface = None
            if name in self.stack.interfaces:
                self.stack.remove_interface(name)
            if self.on_down_cb is not None:
                self.on_down_cb(reason)
            self.down.fire(reason)

    # -- LCP echo keepalive ----------------------------------------------------

    def _arm_echo_timer(self) -> None:
        assert self.echo_interval is not None  # guarded by callers
        self._echo_timer = self.sim.schedule(self.echo_interval, self._echo_tick)

    def _echo_tick(self) -> None:
        self._echo_timer = None
        if not self.is_up:
            return
        self._echo_missed += 1
        if self._echo_missed > self.echo_failure:
            self.carrier_lost("LCP echo timeout")
            return
        from repro.ppp.frame import ECHO_REQ

        self.lcp.send_packet(
            ControlPacket(ECHO_REQ, 0, {"magic": self.lcp.options.get("magic", 0)})
        )
        self._arm_echo_timer()

    def note_echo_reply(self) -> None:
        """Reset the keepalive miss counter (called on Echo-Reply)."""
        self._echo_missed = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.is_up else "down"
        return f"<Pppd {self.role} {self.ifname} {state}>"
