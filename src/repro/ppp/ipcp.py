"""IPCP — the PPP IP Control Protocol.

This is how the mobile node gets its address: the client requests
``0.0.0.0``; the server (the operator's GGSN) Configure-Naks with the
address it assigned from its pool; the client re-requests that address
and the server acks it.  The primary/secondary DNS options follow the
same nak-to-assign pattern and are carried along.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.net.addressing import UNSPECIFIED, AddressLike, IPv4Address, ip
from repro.ppp.frame import CONF_ACK, CONF_NAK
from repro.ppp.fsm import NegotiationFsm


class IpcpClientFsm(NegotiationFsm):
    """The mobile side: asks for an address, accepts what it is given.

    With ``request_dns`` the client also asks for the operator's DNS
    servers (requesting ``0.0.0.0`` and taking the Configure-Nak'd
    values), which is how pppd's ``usepeerdns`` works.
    """

    protocol_name = "IPCP"

    def __init__(self, *args: Any, request_dns: bool = False, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.request_dns = request_dns

    def initial_options(self) -> Dict[str, Any]:
        options = {"addr": str(UNSPECIFIED)}
        if self.request_dns:
            options["dns1"] = str(UNSPECIFIED)
            options["dns2"] = str(UNSPECIFIED)
        return options

    def on_nak(self, suggested: Dict[str, Any]) -> None:
        """Fold in the server's assignment, tracing the offered address."""
        super().on_nak(suggested)
        if "addr" in suggested:
            trace = self.sim.trace
            if trace is not None:
                trace.emit(
                    "ppp.ipcp.addr_offered",
                    addr=str(suggested["addr"]),
                    dns1=str(suggested.get("dns1", "")),
                    dns2=str(suggested.get("dns2", "")),
                )

    def check_peer_options(self, options: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        # The server announces its own address; the client accepts it.
        return CONF_ACK, options

    @property
    def local_address(self) -> Optional[IPv4Address]:
        """The address the server assigned us (after open)."""
        addr = self.options.get("addr")
        if addr is None or str(addr) == str(UNSPECIFIED):
            return None
        return ip(addr)

    @property
    def peer_address(self) -> Optional[IPv4Address]:
        """The server's address (after open)."""
        addr = self.peer_options.get("addr")
        return ip(addr) if addr else None

    @property
    def dns_servers(self) -> Tuple[Optional[IPv4Address], Optional[IPv4Address]]:
        """Primary/secondary DNS pushed by the operator, if any.

        The unspecified address (a request the server never answered)
        reads back as None.
        """

        def parse(value: Any) -> Optional[IPv4Address]:
            if not value:
                return None
            parsed = ip(value)
            return None if str(parsed) == str(UNSPECIFIED) else parsed

        return parse(self.options.get("dns1")), parse(self.options.get("dns2"))


class IpcpServerFsm(NegotiationFsm):
    """The GGSN side: owns the pool assignment for this session."""

    protocol_name = "IPCP"

    def __init__(
        self,
        *args: Any,
        local_address: AddressLike,
        assign_address: AddressLike,
        dns1: Optional[AddressLike] = None,
        dns2: Optional[AddressLike] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._local = ip(local_address)
        self._assign = ip(assign_address)
        self._dns1 = ip(dns1) if dns1 is not None else None
        self._dns2 = ip(dns2) if dns2 is not None else None

    def initial_options(self) -> Dict[str, Any]:
        return {"addr": str(self._local)}

    def check_peer_options(self, options: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        wanted = options.get("addr")
        suggestions: Dict[str, Any] = {}
        if wanted is None or str(wanted) != str(self._assign):
            suggestions["addr"] = str(self._assign)
        if "dns1" in options and self._dns1 is not None and str(options["dns1"]) != str(self._dns1):
            suggestions["dns1"] = str(self._dns1)
        if "dns2" in options and self._dns2 is not None and str(options["dns2"]) != str(self._dns2):
            suggestions["dns2"] = str(self._dns2)
        if suggestions:
            merged = dict(options)
            merged.update(suggestions)
            if "addr" in suggestions:
                trace = self.sim.trace
                if trace is not None:
                    trace.emit("ppp.ipcp.addr_assigned", addr=str(self._assign))
            return CONF_NAK, merged
        return CONF_ACK, options

    @property
    def local_address(self) -> IPv4Address:
        """The GGSN-side address of the point-to-point link."""
        return self._local

    @property
    def assigned_address(self) -> IPv4Address:
        """The address handed to the mobile."""
        return self._assign
