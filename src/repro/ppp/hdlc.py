"""HDLC-like byte framing (RFC 1662).

``ppp_async`` frames every PPP packet between 0x7E flags and escapes
flag/escape/control octets with 0x7D followed by the octet XOR 0x20.
A 16-bit FCS (CRC-16/X.25) protects the frame.

The simulation moves :class:`~repro.ppp.frame.PPPFrame` objects rather
than octet streams, but this module implements the real encoding so
the byte-level behaviour is available (and property-tested): encode →
decode is the identity for any payload, and corrupted frames are
rejected by FCS.
"""

from __future__ import annotations

FLAG = 0x7E
ESCAPE = 0x7D
ESCAPE_XOR = 0x20


class HdlcError(Exception):
    """Malformed or corrupted HDLC frame."""


def _fcs16(data: bytes) -> int:
    """CRC-16/X.25 as used by PPP (RFC 1662 appendix)."""
    fcs = 0xFFFF
    for byte in data:
        fcs ^= byte
        for _ in range(8):
            if fcs & 1:
                fcs = (fcs >> 1) ^ 0x8408
            else:
                fcs >>= 1
    return fcs ^ 0xFFFF


def _needs_escape(byte: int) -> bool:
    return byte in (FLAG, ESCAPE) or byte < 0x20


def hdlc_encode(payload: bytes) -> bytes:
    """Encode a payload into one flagged, escaped, FCS-protected frame."""
    fcs = _fcs16(payload)
    body = payload + bytes([fcs & 0xFF, (fcs >> 8) & 0xFF])
    out = bytearray([FLAG])
    for byte in body:
        if _needs_escape(byte):
            out.append(ESCAPE)
            out.append(byte ^ ESCAPE_XOR)
        else:
            out.append(byte)
    out.append(FLAG)
    return bytes(out)


def hdlc_decode(frame: bytes) -> bytes:
    """Decode one frame produced by :func:`hdlc_encode`.

    Raises :class:`HdlcError` on missing flags, bad escapes, truncated
    frames, or FCS mismatch.
    """
    if len(frame) < 2 or frame[0] != FLAG or frame[-1] != FLAG:
        raise HdlcError("frame not delimited by flag octets")
    body = bytearray()
    escaped = False
    for byte in frame[1:-1]:
        if escaped:
            body.append(byte ^ ESCAPE_XOR)
            escaped = False
        elif byte == ESCAPE:
            escaped = True
        elif byte == FLAG:
            raise HdlcError("unescaped flag inside frame")
        else:
            body.append(byte)
    if escaped:
        raise HdlcError("frame ends mid-escape")
    if len(body) < 2:
        raise HdlcError("frame too short for FCS")
    payload, fcs_bytes = bytes(body[:-2]), body[-2:]
    received_fcs = fcs_bytes[0] | (fcs_bytes[1] << 8)
    if _fcs16(payload) != received_fcs:
        raise HdlcError("FCS mismatch")
    return payload
