"""HDLC-like byte framing (RFC 1662).

``ppp_async`` frames every PPP packet between 0x7E flags and escapes
flag/escape/control octets with 0x7D followed by the octet XOR 0x20.
A 16-bit FCS (CRC-16/X.25) protects the frame.

The simulation moves :class:`~repro.ppp.frame.PPPFrame` objects rather
than octet streams, but this module implements the real encoding so
the byte-level behaviour is available (and property-tested): encode →
decode is the identity for any payload, and corrupted frames are
rejected by FCS.

The codec is table-driven rather than per-byte Python loops: the FCS
uses the standard 256-entry CRC table (one lookup per byte instead of
eight shift/xor rounds), escaping maps each octet through a
precomputed 256-entry expansion table joined in C, and the decoder
walks ``bytes.find`` from escape to escape so unescaped spans are
copied as slices.
"""

from __future__ import annotations

FLAG = 0x7E
ESCAPE = 0x7D
ESCAPE_XOR = 0x20

_FLAG_BYTES = b"\x7e"


class HdlcError(Exception):
    """Malformed or corrupted HDLC frame."""


def _build_fcs_table() -> tuple:
    table = []
    for byte in range(256):
        fcs = byte
        for _ in range(8):
            if fcs & 1:
                fcs = (fcs >> 1) ^ 0x8408
            else:
                fcs >>= 1
        table.append(fcs)
    return tuple(table)


#: One CRC-16/X.25 step per input byte: ``fcs = (fcs >> 8) ^ TABLE[(fcs ^ b) & 0xFF]``.
_FCS_TABLE = _build_fcs_table()

#: Octet → its on-the-wire form: ``0x7D, b ^ 0x20`` for flag/escape/control
#: octets, the octet itself otherwise.
_ESCAPE_TABLE = tuple(
    bytes((ESCAPE, byte ^ ESCAPE_XOR))
    if (byte in (FLAG, ESCAPE) or byte < 0x20)
    else bytes((byte,))
    for byte in range(256)
)


def _fcs16(data: bytes) -> int:
    """CRC-16/X.25 as used by PPP (RFC 1662 appendix), table-driven."""
    fcs = 0xFFFF
    table = _FCS_TABLE
    for byte in data:
        fcs = (fcs >> 8) ^ table[(fcs ^ byte) & 0xFF]
    return fcs ^ 0xFFFF


def _needs_escape(byte: int) -> bool:
    return byte in (FLAG, ESCAPE) or byte < 0x20


def hdlc_encode(payload: bytes) -> bytes:
    """Encode a payload into one flagged, escaped, FCS-protected frame."""
    fcs = _fcs16(payload)
    body = payload + bytes((fcs & 0xFF, (fcs >> 8) & 0xFF))
    escaped = b"".join(map(_ESCAPE_TABLE.__getitem__, body))
    return _FLAG_BYTES + escaped + _FLAG_BYTES


def hdlc_decode(frame: bytes) -> bytes:
    """Decode one frame produced by :func:`hdlc_encode`.

    Raises :class:`HdlcError` on missing flags, bad escapes, truncated
    frames, or FCS mismatch.
    """
    if len(frame) < 2 or frame[0] != FLAG or frame[-1] != FLAG:
        raise HdlcError("frame not delimited by flag octets")
    frame = bytes(frame)
    end = len(frame) - 1
    find = frame.find
    cut = find(ESCAPE, 1, end)
    if cut < 0:
        # Fast path: nothing escaped; one scan for stray flags, one slice.
        if find(FLAG, 1, end) >= 0:
            raise HdlcError("unescaped flag inside frame")
        body = frame[1:end]
    else:
        out = bytearray()
        pos = 1
        while cut >= 0:
            if find(FLAG, pos, cut) >= 0:
                raise HdlcError("unescaped flag inside frame")
            out += frame[pos:cut]
            if cut + 1 >= end:
                raise HdlcError("frame ends mid-escape")
            out.append(frame[cut + 1] ^ ESCAPE_XOR)
            pos = cut + 2
            cut = find(ESCAPE, pos, end)
        if find(FLAG, pos, end) >= 0:
            raise HdlcError("unescaped flag inside frame")
        out += frame[pos:end]
        body = bytes(out)
    if len(body) < 2:
        raise HdlcError("frame too short for FCS")
    payload = body[:-2]
    received_fcs = body[-2] | (body[-1] << 8)
    if _fcs16(payload) != received_fcs:
        raise HdlcError("FCS mismatch")
    return payload
