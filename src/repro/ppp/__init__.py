"""PPP — the Point-to-Point Protocol over the 3G modem.

The paper's node needs the full PPP kernel module set
(``ppp_generic``, ``ppp_async``, ...) plus user-space pppd driven by
wvdial.  This package reproduces the protocol machinery:

- :mod:`repro.ppp.frame` — PPP frames and the LCP/IPCP control packets;
- :mod:`repro.ppp.hdlc` — the HDLC-like byte framing (flag/escape
  octets), exercised by property tests as the wire encoding;
- :mod:`repro.ppp.fsm` — the RFC 1661 option-negotiation automaton
  (simplified but with retransmission and Term-Req/Ack teardown);
- :mod:`repro.ppp.lcp` / :mod:`repro.ppp.ipcp` — the two control
  protocols the dial-up needs (link establishment, IP address
  assignment);
- :mod:`repro.ppp.daemon` — ``Pppd``: runs LCP then IPCP over a frame
  transport and, once up, creates the ``ppp0`` interface on the node's
  stack (or the per-session interface on the GGSN, in server mode).
"""

from repro.ppp.daemon import Pppd, PppError
from repro.ppp.frame import (
    PPP_IP,
    PPP_IPCP,
    PPP_LCP,
    ControlPacket,
    PPPFrame,
)
from repro.ppp.fsm import FsmState
from repro.ppp.hdlc import HdlcError, hdlc_decode, hdlc_encode

__all__ = [
    "ControlPacket",
    "FsmState",
    "HdlcError",
    "PPPFrame",
    "PPP_IP",
    "PPP_IPCP",
    "PPP_LCP",
    "Pppd",
    "PppError",
    "hdlc_decode",
    "hdlc_encode",
]
