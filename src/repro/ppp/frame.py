"""PPP frames and control packets.

Besides the object-level :class:`PPPFrame` the simulation moves
around, this module provides the byte-level protocol-field codec used
with :mod:`repro.ppp.hdlc`: :func:`pack_protocol` /
:func:`unpack_protocol` and the :func:`frame_info` /
:func:`deframe_info` round-trip.  The pack side is a 65536-entry lazy
cache of two-byte headers (the three PPP protocols we emit are
precomputed), and the parse side slices a :class:`memoryview` instead
of copying the information field.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.ppp.hdlc import hdlc_decode, hdlc_encode

#: PPP protocol field values (RFC 1661 / assigned numbers).
PPP_IP = 0x0021
PPP_LCP = 0xC021
PPP_IPCP = 0x8021

#: LCP/IPCP packet codes (RFC 1661 §5).
CONF_REQ = 1
CONF_ACK = 2
CONF_NAK = 3
CONF_REJ = 4
TERM_REQ = 5
TERM_ACK = 6
CODE_REJ = 7
ECHO_REQ = 9
ECHO_REP = 10

CODE_NAMES = {
    CONF_REQ: "Configure-Request",
    CONF_ACK: "Configure-Ack",
    CONF_NAK: "Configure-Nak",
    CONF_REJ: "Configure-Reject",
    TERM_REQ: "Terminate-Request",
    TERM_ACK: "Terminate-Ack",
    CODE_REJ: "Code-Reject",
    ECHO_REQ: "Echo-Request",
    ECHO_REP: "Echo-Reply",
}


class ControlPacket:
    """An LCP or IPCP packet: code, identifier, option dictionary.

    Options are a name→value mapping rather than packed TLVs; the
    HDLC layer (see :mod:`repro.ppp.hdlc`) shows what the octets would
    look like, but negotiation logic is clearer over parsed options.
    """

    __slots__ = ("code", "identifier", "options")

    def __init__(self, code: int, identifier: int, options: Optional[Dict[str, Any]] = None):
        self.code = code
        self.identifier = identifier
        self.options = dict(options or {})

    def __repr__(self) -> str:
        name = CODE_NAMES.get(self.code, f"code-{self.code}")
        return f"<{name} id={self.identifier} {self.options!r}>"


class PPPFrame:
    """One PPP frame: protocol number plus payload.

    The payload is a :class:`ControlPacket` for LCP/IPCP frames or an
    IP :class:`~repro.net.packet.Packet` for data frames.
    """

    __slots__ = ("protocol", "payload")

    def __init__(self, protocol: int, payload: Any):
        self.protocol = protocol
        self.payload = payload

    @property
    def wire_length(self) -> int:
        """Approximate on-the-wire size in bytes (for serialization time).

        Data frames: IP length + 4 bytes PPP overhead (address/control
        stripped by ACFC, 2-byte protocol + FCS approximation).
        Control frames: a small fixed size.
        """
        if self.protocol == PPP_IP:
            return self.payload.length + 4
        return 16

    def __repr__(self) -> str:
        return f"<PPPFrame proto={self.protocol:#06x} {self.payload!r}>"


class FrameError(Exception):
    """Malformed PPP byte frame (bad protocol field or truncation)."""


#: Protocol number → packed big-endian header, filled lazily; the
#: protocols the stack actually emits are seeded up front so the hot
#: path never misses.
_PROTOCOL_CACHE: Dict[int, bytes] = {
    proto: proto.to_bytes(2, "big") for proto in (PPP_IP, PPP_LCP, PPP_IPCP)
}


def pack_protocol(protocol: int) -> bytes:
    """The two-byte big-endian PPP protocol field, cached per protocol."""
    header = _PROTOCOL_CACHE.get(protocol)
    if header is None:
        if not 0 <= protocol <= 0xFFFF:
            raise FrameError(f"protocol {protocol!r} does not fit in 16 bits")
        header = _PROTOCOL_CACHE[protocol] = protocol.to_bytes(2, "big")
    return header


def unpack_protocol(data: bytes) -> Tuple[int, memoryview]:
    """Split ``protocol || information`` without copying the information.

    Returns the protocol number and a :class:`memoryview` over the
    information field; callers that need ``bytes`` convert explicitly.
    """
    if len(data) < 2:
        raise FrameError("frame shorter than the 2-byte protocol field")
    view = memoryview(data)
    return (data[0] << 8) | data[1], view[2:]


def frame_info(protocol: int, info: bytes) -> bytes:
    """HDLC-frame an information field under a PPP protocol number."""
    return hdlc_encode(pack_protocol(protocol) + info)


def deframe_info(frame: bytes) -> Tuple[int, bytes]:
    """Inverse of :func:`frame_info`; validates FCS and the protocol field."""
    protocol, info = unpack_protocol(hdlc_decode(frame))
    return protocol, bytes(info)
