"""PPP frames and control packets."""

from __future__ import annotations

from typing import Any, Dict, Optional

#: PPP protocol field values (RFC 1661 / assigned numbers).
PPP_IP = 0x0021
PPP_LCP = 0xC021
PPP_IPCP = 0x8021

#: LCP/IPCP packet codes (RFC 1661 §5).
CONF_REQ = 1
CONF_ACK = 2
CONF_NAK = 3
CONF_REJ = 4
TERM_REQ = 5
TERM_ACK = 6
CODE_REJ = 7
ECHO_REQ = 9
ECHO_REP = 10

CODE_NAMES = {
    CONF_REQ: "Configure-Request",
    CONF_ACK: "Configure-Ack",
    CONF_NAK: "Configure-Nak",
    CONF_REJ: "Configure-Reject",
    TERM_REQ: "Terminate-Request",
    TERM_ACK: "Terminate-Ack",
    CODE_REJ: "Code-Reject",
    ECHO_REQ: "Echo-Request",
    ECHO_REP: "Echo-Reply",
}


class ControlPacket:
    """An LCP or IPCP packet: code, identifier, option dictionary.

    Options are a name→value mapping rather than packed TLVs; the
    HDLC layer (see :mod:`repro.ppp.hdlc`) shows what the octets would
    look like, but negotiation logic is clearer over parsed options.
    """

    __slots__ = ("code", "identifier", "options")

    def __init__(self, code: int, identifier: int, options: Optional[Dict[str, Any]] = None):
        self.code = code
        self.identifier = identifier
        self.options = dict(options or {})

    def __repr__(self) -> str:
        name = CODE_NAMES.get(self.code, f"code-{self.code}")
        return f"<{name} id={self.identifier} {self.options!r}>"


class PPPFrame:
    """One PPP frame: protocol number plus payload.

    The payload is a :class:`ControlPacket` for LCP/IPCP frames or an
    IP :class:`~repro.net.packet.Packet` for data frames.
    """

    __slots__ = ("protocol", "payload")

    def __init__(self, protocol: int, payload: Any):
        self.protocol = protocol
        self.payload = payload

    @property
    def wire_length(self) -> int:
        """Approximate on-the-wire size in bytes (for serialization time).

        Data frames: IP length + 4 bytes PPP overhead (address/control
        stripped by ACFC, 2-byte protocol + FCS approximation).
        Control frames: a small fixed size.
        """
        if self.protocol == PPP_IP:
            return self.payload.length + 4
        return 16

    def __repr__(self) -> str:
        return f"<PPPFrame proto={self.protocol:#06x} {self.payload!r}>"
