"""LCP — the PPP Link Control Protocol.

Negotiates link parameters before any network protocol runs.  Two
options are modelled: ``mru`` and ``magic`` (the magic number, whose
collision check is PPP's looped-back-link detection).
"""

from __future__ import annotations

import random as _random
from typing import Any, Dict, Optional, Tuple

from repro.ppp.frame import CONF_ACK, CONF_NAK
from repro.ppp.fsm import NegotiationFsm

DEFAULT_MRU = 1500
MIN_MRU = 576


class LcpFsm(NegotiationFsm):
    """One side's LCP automaton."""

    protocol_name = "LCP"

    def __init__(self, *args: Any, mru: int = DEFAULT_MRU,
                 rng: Optional[_random.Random] = None, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.mru = mru
        self._rng = rng
        self.loopback_detected = False

    def initial_options(self) -> Dict[str, Any]:
        magic = self._rng.getrandbits(32) if self._rng is not None else 0x1234ABCD
        return {"mru": self.mru, "magic": magic}

    def check_peer_options(self, options: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        suggestions: Dict[str, Any] = {}
        peer_magic = options.get("magic")
        if peer_magic is not None and peer_magic == self.options.get("magic"):
            # Same magic number on both sides: the link is looped back.
            self.loopback_detected = True
            suggestions["magic"] = (self.options["magic"] + 1) & 0xFFFFFFFF
            trace = self.sim.trace
            if trace is not None:
                trace.error("ppp.lcp.loopback", magic=peer_magic)
        peer_mru = options.get("mru", DEFAULT_MRU)
        if peer_mru < MIN_MRU:
            suggestions["mru"] = DEFAULT_MRU
            trace = self.sim.trace
            if trace is not None:
                trace.emit("ppp.lcp.mru_naked", offered=peer_mru, suggested=DEFAULT_MRU)
        if suggestions:
            merged = dict(options)
            merged.update(suggestions)
            return CONF_NAK, merged
        return CONF_ACK, options

    @property
    def negotiated_mru(self) -> int:
        """The MRU in effect once the link is open (peer's, else default)."""
        return int(self.peer_options.get("mru", DEFAULT_MRU))
