"""The PPP option-negotiation automaton (RFC 1661, simplified).

One :class:`NegotiationFsm` instance drives one control protocol (LCP
or IPCP) on one side of the link.  It keeps the familiar states —
CLOSED, REQ-SENT, ACK-RCVD, ACK-SENT, OPENED, CLOSING — retransmits
Configure-Requests on the restart timer, honours Configure-Nak by
adjusting its own requested options, and tears down with
Terminate-Request/Ack.

Subclasses provide the option policy:

- :meth:`initial_options` — what we ask for;
- :meth:`check_peer_options` — ack or nak the peer's request;
- :meth:`on_nak` — fold the peer's suggestions into our next request.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Optional, Tuple

from repro.ppp.frame import (
    CONF_ACK,
    CONF_NAK,
    CONF_REQ,
    ECHO_REP,
    ECHO_REQ,
    TERM_ACK,
    TERM_REQ,
    ControlPacket,
)
from repro.sim.engine import Event, Simulator

#: RFC 1661 defaults.
RESTART_INTERVAL = 3.0
MAX_CONFIGURE = 10
MAX_TERMINATE = 2


class FsmState(enum.Enum):
    """Automaton states (the subset a two-party dial-up visits)."""

    CLOSED = "closed"
    REQ_SENT = "req-sent"
    ACK_RCVD = "ack-rcvd"
    ACK_SENT = "ack-sent"
    OPENED = "opened"
    CLOSING = "closing"


class NegotiationFsm:
    """One side of an LCP/IPCP negotiation."""

    #: protocol name for diagnostics ("LCP"/"IPCP").
    protocol_name = "control"

    def __init__(
        self,
        sim: Simulator,
        send_packet: Callable[[ControlPacket], None],
        on_up: Optional[Callable[[], None]] = None,
        on_down: Optional[Callable[[str], None]] = None,
        on_fail: Optional[Callable[[str], None]] = None,
        restart_interval: float = RESTART_INTERVAL,
        max_configure: int = MAX_CONFIGURE,
    ):
        self.sim = sim
        self.send_packet = send_packet
        self.on_up = on_up
        self.on_down = on_down
        self.on_fail = on_fail
        self.restart_interval = restart_interval
        self.max_configure = max_configure
        self.state = FsmState.CLOSED
        self.options: Dict[str, Any] = {}
        #: the peer's options as acknowledged by us.
        self.peer_options: Dict[str, Any] = {}
        self._next_id = 1
        self._current_id: Optional[int] = None
        self._restart_counter = 0
        self._terminate_counter = 0
        self._timer: Optional[Event] = None
        self._nego_span = None

    # -- observability -------------------------------------------------

    def _set_state(self, new_state: "FsmState", reason: str = "") -> None:
        """Move the automaton, emitting the transition on the trace bus."""
        old_state = self.state
        self.state = new_state
        if old_state is new_state:
            return
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                f"ppp.{self.protocol_name.lower()}.state",
                kind="transition",
                old=old_state.value,
                new=new_state.value,
                reason=reason,
            )
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter(f"ppp.{self.protocol_name.lower()}.transitions").inc()

    def _begin_nego_span(self) -> None:
        trace = self.sim.trace
        if trace is not None:
            self._nego_span = trace.span(
                f"ppp.{self.protocol_name.lower()}.negotiation"
            )

    def _end_nego_span(self, status: str, reason: str = "") -> None:
        span, self._nego_span = self._nego_span, None
        if span is not None:
            if status == "ok":
                span.end()
            else:
                span.fail(reason)

    # -- option policy hooks -------------------------------------------

    def initial_options(self) -> Dict[str, Any]:
        """Options for our first Configure-Request."""
        return {}

    def check_peer_options(
        self, options: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        """Judge the peer's Configure-Request.

        Returns ``(CONF_ACK, options)`` to accept or
        ``(CONF_NAK, suggested)`` to push back.
        """
        return CONF_ACK, options

    def on_nak(self, suggested: Dict[str, Any]) -> None:
        """Fold the peer's Configure-Nak suggestions into our options."""
        self.options.update(suggested)

    # -- public controls ------------------------------------------------

    @property
    def is_open(self) -> bool:
        """True once both sides acknowledged each other."""
        return self.state == FsmState.OPENED

    def open(self) -> None:
        """Start negotiating (administrative Open + link Up)."""
        if self.state != FsmState.CLOSED:
            return
        self.options = self.initial_options()
        self._restart_counter = self.max_configure
        self._begin_nego_span()
        self._send_configure_request()
        self._set_state(FsmState.REQ_SENT, "open")

    def close(self, reason: str = "administrative close") -> None:
        """Tear the protocol down with Terminate-Request."""
        if self.state == FsmState.CLOSED:
            return
        was_open = self.state == FsmState.OPENED
        self._set_state(FsmState.CLOSING, reason)
        self._end_nego_span("error", reason)
        self._terminate_counter = MAX_TERMINATE
        self._send_terminate_request()
        if was_open and self.on_down is not None:
            self.on_down(reason)

    def abort(self, reason: str = "lower layer down") -> None:
        """Hard stop without Terminate exchange (carrier lost)."""
        was_open = self.state == FsmState.OPENED
        self._cancel_timer()
        self._set_state(FsmState.CLOSED, reason)
        self._end_nego_span("error", reason)
        if was_open and self.on_down is not None:
            self.on_down(reason)

    # -- packet input -----------------------------------------------------

    def receive(self, packet: ControlPacket) -> None:
        """Feed one received LCP/IPCP packet into the automaton."""
        if self.state == FsmState.CLOSED and packet.code != TERM_REQ:
            return
        if packet.code == CONF_REQ:
            self._rcv_configure_request(packet)
        elif packet.code == CONF_ACK:
            self._rcv_configure_ack(packet)
        elif packet.code == CONF_NAK:
            self._rcv_configure_nak(packet)
        elif packet.code == TERM_REQ:
            self._rcv_terminate_request(packet)
        elif packet.code == TERM_ACK:
            self._rcv_terminate_ack(packet)
        elif packet.code == ECHO_REQ:
            if self.state == FsmState.OPENED:
                self.send_packet(
                    ControlPacket(ECHO_REP, packet.identifier, packet.options)
                )
        # Echo-Reply and unknown codes are ignored.

    # -- state transitions ---------------------------------------------

    def _rcv_configure_request(self, packet: ControlPacket) -> None:
        if self.state == FsmState.CLOSING:
            return
        verdict, options = self.check_peer_options(dict(packet.options))
        if verdict == CONF_ACK:
            self.peer_options = dict(packet.options)
            self.send_packet(ControlPacket(CONF_ACK, packet.identifier, packet.options))
            if self.state == FsmState.ACK_RCVD:
                self._enter_opened()
            elif self.state == FsmState.OPENED:
                # Renegotiation: drop back and re-request our side.
                self._restart_counter = self.max_configure
                self._begin_nego_span()
                self._send_configure_request()
                self._set_state(FsmState.ACK_SENT, "renegotiation")
            else:
                self._set_state(FsmState.ACK_SENT, "peer request acked")
        else:
            self.send_packet(ControlPacket(CONF_NAK, packet.identifier, options))
            if self.state == FsmState.ACK_SENT:
                self._set_state(FsmState.REQ_SENT, "peer request naked")

    def _rcv_configure_ack(self, packet: ControlPacket) -> None:
        if packet.identifier != self._current_id:
            return  # stale ack
        if self.state == FsmState.REQ_SENT:
            self._set_state(FsmState.ACK_RCVD, "our request acked")
        elif self.state == FsmState.ACK_SENT:
            self._enter_opened()

    def _rcv_configure_nak(self, packet: ControlPacket) -> None:
        if packet.identifier != self._current_id:
            return
        if self.state in (FsmState.REQ_SENT, FsmState.ACK_RCVD, FsmState.ACK_SENT):
            self.on_nak(dict(packet.options))
            self._send_configure_request()
            if self.state == FsmState.ACK_RCVD:
                self._set_state(FsmState.REQ_SENT, "our request naked")

    def _rcv_terminate_request(self, packet: ControlPacket) -> None:
        self.send_packet(ControlPacket(TERM_ACK, packet.identifier))
        was_open = self.state == FsmState.OPENED
        self._cancel_timer()
        self._set_state(FsmState.CLOSED, "peer terminated")
        self._end_nego_span("error", "peer terminated")
        if was_open and self.on_down is not None:
            self.on_down("peer terminated")

    def _rcv_terminate_ack(self, packet: ControlPacket) -> None:
        if self.state == FsmState.CLOSING:
            self._cancel_timer()
            self._set_state(FsmState.CLOSED, "terminate acked")

    def _enter_opened(self) -> None:
        self._cancel_timer()
        self._set_state(FsmState.OPENED, "both sides acked")
        self._end_nego_span("ok")
        if self.on_up is not None:
            self.on_up()

    # -- transmission and timers -------------------------------------------

    def _send_configure_request(self) -> None:
        self._current_id = self._next_id
        self._next_id += 1
        self.send_packet(ControlPacket(CONF_REQ, self._current_id, self.options))
        self._arm_timer()

    def _send_terminate_request(self) -> None:
        self.send_packet(ControlPacket(TERM_REQ, self._next_id))
        self._next_id += 1
        self._arm_timer()

    def _arm_timer(self) -> None:
        self._cancel_timer()
        self._timer = self.sim.schedule(self.restart_interval, self._on_timeout)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        if self.state in (FsmState.REQ_SENT, FsmState.ACK_RCVD, FsmState.ACK_SENT):
            self._restart_counter -= 1
            if self._restart_counter <= 0:
                self._set_state(FsmState.CLOSED, "negotiation timed out")
                self._end_nego_span("error", "negotiation timed out")
                trace = self.sim.trace
                if trace is not None:
                    trace.error(
                        f"ppp.{self.protocol_name.lower()}.timeout",
                        protocol=self.protocol_name,
                    )
                if self.on_fail is not None:
                    self.on_fail(f"{self.protocol_name}: negotiation timed out")
                return
            self._send_configure_request()
            metrics = self.sim.metrics
            if metrics is not None:
                metrics.counter(
                    f"ppp.{self.protocol_name.lower()}.retransmits"
                ).inc()
        elif self.state == FsmState.CLOSING:
            self._terminate_counter -= 1
            if self._terminate_counter <= 0:
                self._set_state(FsmState.CLOSED, "terminate retries exhausted")
                return
            self._send_terminate_request()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.protocol_name}-fsm {self.state.value}>"
