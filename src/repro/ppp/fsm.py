"""The PPP option-negotiation automaton (RFC 1661, simplified).

One :class:`NegotiationFsm` instance drives one control protocol (LCP
or IPCP) on one side of the link.  It keeps the familiar states —
CLOSED, REQ-SENT, ACK-RCVD, ACK-SENT, OPENED, CLOSING — retransmits
Configure-Requests on the restart timer, honours Configure-Nak by
adjusting its own requested options, and tears down with
Terminate-Request/Ack.

The automaton is **table-driven**: :data:`TRANSITIONS` declares one
:class:`Transition` for every (state, event) pair of the
:class:`FsmState` × :class:`FsmEvent` matrix — the RFC 1661 §4.1
transition table restricted to the states a two-party dial-up visits.
``repro lint``'s ``fsm-exhaustive`` rule statically extracts this
table and proves it total (every pair handled, no undeclared target
states, every state reachable), so an incomplete edit fails CI before
any simulation runs.  :meth:`NegotiationFsm._dispatch` is the only
consumer: it looks the pair up, runs the bound action method, and
asserts the state landed inside the declared target set.

Subclasses provide the option policy (and *only* the option policy —
the ``fsm-policy-override`` lint rule rejects subclasses that shadow
the machinery):

- :meth:`initial_options` — what we ask for;
- :meth:`check_peer_options` — ack or nak the peer's request;
- :meth:`on_nak` — fold the peer's suggestions into our next request.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, NamedTuple, Optional, Tuple

from repro.ppp.frame import (
    CONF_ACK,
    CONF_NAK,
    CONF_REQ,
    ECHO_REP,
    ECHO_REQ,
    TERM_ACK,
    TERM_REQ,
    ControlPacket,
)
from repro.sim.engine import Event, Simulator

#: RFC 1661 defaults.
RESTART_INTERVAL = 3.0
MAX_CONFIGURE = 10
MAX_TERMINATE = 2


class FsmState(enum.Enum):
    """Automaton states (the subset a two-party dial-up visits)."""

    CLOSED = "closed"
    REQ_SENT = "req-sent"
    ACK_RCVD = "ack-rcvd"
    ACK_SENT = "ack-sent"
    OPENED = "opened"
    CLOSING = "closing"


class FsmEvent(enum.Enum):
    """The event alphabet (RFC 1661 §4.1, condensed).

    ``OPEN``/``CLOSE`` are the administrative events, ``ABORT`` is
    lower-layer-down (carrier lost), ``TIMEOUT`` covers TO+/TO-, and
    the ``RCV_*`` events are the receive events RCR/RCA/RCN/RTR/RTA
    plus the echo and unknown-code receptions (RXR/RUC).
    """

    OPEN = "open"
    CLOSE = "close"
    ABORT = "abort"
    TIMEOUT = "timeout"
    RCV_CONF_REQ = "rcv-conf-req"
    RCV_CONF_ACK = "rcv-conf-ack"
    RCV_CONF_NAK = "rcv-conf-nak"
    RCV_TERM_REQ = "rcv-term-req"
    RCV_TERM_ACK = "rcv-term-ack"
    RCV_ECHO_REQ = "rcv-echo-req"
    RCV_ECHO_REP = "rcv-echo-rep"
    RCV_UNKNOWN = "rcv-unknown"


class Transition(NamedTuple):
    """One cell of the event×state matrix.

    ``action`` names the :class:`NegotiationFsm` method that handles
    the event; ``targets`` is the closed set of states the automaton
    may be in afterwards (asserted on every dispatch, proved total by
    the ``fsm-exhaustive`` lint rule).
    """

    action: str
    targets: Tuple[FsmState, ...]


#: Where every automaton starts (read by the lint reachability check).
INITIAL_STATE = FsmState.CLOSED

#: The full RFC 1661 event×state matrix.  Every (state, event) pair
#: must be present — ``repro lint`` fails the build otherwise — so a
#: reader (or a reviewer) can audit the automaton without chasing
#: ``if`` chains, exactly like the state table in RFC 1661 §4.1.
TRANSITIONS: Dict[Tuple[FsmState, FsmEvent], Transition] = {
    # -- CLOSED: nothing running; only Open or a peer's Terminate-Request
    #    (politely acked) provoke any action.
    (FsmState.CLOSED, FsmEvent.OPEN): Transition("_act_open", (FsmState.REQ_SENT,)),
    (FsmState.CLOSED, FsmEvent.CLOSE): Transition("_act_ignore", (FsmState.CLOSED,)),
    (FsmState.CLOSED, FsmEvent.ABORT): Transition("_act_abort", (FsmState.CLOSED,)),
    (FsmState.CLOSED, FsmEvent.TIMEOUT): Transition("_act_ignore", (FsmState.CLOSED,)),
    (FsmState.CLOSED, FsmEvent.RCV_CONF_REQ): Transition("_act_ignore", (FsmState.CLOSED,)),
    (FsmState.CLOSED, FsmEvent.RCV_CONF_ACK): Transition("_act_ignore", (FsmState.CLOSED,)),
    (FsmState.CLOSED, FsmEvent.RCV_CONF_NAK): Transition("_act_ignore", (FsmState.CLOSED,)),
    (FsmState.CLOSED, FsmEvent.RCV_TERM_REQ): Transition("_act_term_req", (FsmState.CLOSED,)),
    (FsmState.CLOSED, FsmEvent.RCV_TERM_ACK): Transition("_act_ignore", (FsmState.CLOSED,)),
    (FsmState.CLOSED, FsmEvent.RCV_ECHO_REQ): Transition("_act_ignore", (FsmState.CLOSED,)),
    (FsmState.CLOSED, FsmEvent.RCV_ECHO_REP): Transition("_act_ignore", (FsmState.CLOSED,)),
    (FsmState.CLOSED, FsmEvent.RCV_UNKNOWN): Transition("_act_ignore", (FsmState.CLOSED,)),
    # -- REQ_SENT: our Configure-Request is out, nothing acked yet.
    (FsmState.REQ_SENT, FsmEvent.OPEN): Transition("_act_ignore", (FsmState.REQ_SENT,)),
    (FsmState.REQ_SENT, FsmEvent.CLOSE): Transition("_act_close", (FsmState.CLOSING,)),
    (FsmState.REQ_SENT, FsmEvent.ABORT): Transition("_act_abort", (FsmState.CLOSED,)),
    (FsmState.REQ_SENT, FsmEvent.TIMEOUT): Transition(
        "_act_timeout_configure", (FsmState.REQ_SENT, FsmState.CLOSED)
    ),
    (FsmState.REQ_SENT, FsmEvent.RCV_CONF_REQ): Transition(
        "_act_conf_req_req_sent", (FsmState.ACK_SENT, FsmState.REQ_SENT)
    ),
    (FsmState.REQ_SENT, FsmEvent.RCV_CONF_ACK): Transition(
        "_act_conf_ack_req_sent", (FsmState.ACK_RCVD,)
    ),
    (FsmState.REQ_SENT, FsmEvent.RCV_CONF_NAK): Transition(
        "_act_conf_nak_resend", (FsmState.REQ_SENT,)
    ),
    (FsmState.REQ_SENT, FsmEvent.RCV_TERM_REQ): Transition("_act_term_req", (FsmState.CLOSED,)),
    (FsmState.REQ_SENT, FsmEvent.RCV_TERM_ACK): Transition("_act_ignore", (FsmState.REQ_SENT,)),
    (FsmState.REQ_SENT, FsmEvent.RCV_ECHO_REQ): Transition("_act_ignore", (FsmState.REQ_SENT,)),
    (FsmState.REQ_SENT, FsmEvent.RCV_ECHO_REP): Transition("_act_ignore", (FsmState.REQ_SENT,)),
    (FsmState.REQ_SENT, FsmEvent.RCV_UNKNOWN): Transition("_act_ignore", (FsmState.REQ_SENT,)),
    # -- ACK_RCVD: the peer acked our request; waiting to ack theirs.
    (FsmState.ACK_RCVD, FsmEvent.OPEN): Transition("_act_ignore", (FsmState.ACK_RCVD,)),
    (FsmState.ACK_RCVD, FsmEvent.CLOSE): Transition("_act_close", (FsmState.CLOSING,)),
    (FsmState.ACK_RCVD, FsmEvent.ABORT): Transition("_act_abort", (FsmState.CLOSED,)),
    (FsmState.ACK_RCVD, FsmEvent.TIMEOUT): Transition(
        "_act_timeout_configure", (FsmState.ACK_RCVD, FsmState.CLOSED)
    ),
    (FsmState.ACK_RCVD, FsmEvent.RCV_CONF_REQ): Transition(
        "_act_conf_req_ack_rcvd", (FsmState.OPENED, FsmState.ACK_RCVD)
    ),
    (FsmState.ACK_RCVD, FsmEvent.RCV_CONF_ACK): Transition("_act_ignore", (FsmState.ACK_RCVD,)),
    (FsmState.ACK_RCVD, FsmEvent.RCV_CONF_NAK): Transition(
        "_act_conf_nak_back_to_req_sent", (FsmState.REQ_SENT,)
    ),
    (FsmState.ACK_RCVD, FsmEvent.RCV_TERM_REQ): Transition("_act_term_req", (FsmState.CLOSED,)),
    (FsmState.ACK_RCVD, FsmEvent.RCV_TERM_ACK): Transition("_act_ignore", (FsmState.ACK_RCVD,)),
    (FsmState.ACK_RCVD, FsmEvent.RCV_ECHO_REQ): Transition("_act_ignore", (FsmState.ACK_RCVD,)),
    (FsmState.ACK_RCVD, FsmEvent.RCV_ECHO_REP): Transition("_act_ignore", (FsmState.ACK_RCVD,)),
    (FsmState.ACK_RCVD, FsmEvent.RCV_UNKNOWN): Transition("_act_ignore", (FsmState.ACK_RCVD,)),
    # -- ACK_SENT: we acked the peer's request; ours is still pending.
    (FsmState.ACK_SENT, FsmEvent.OPEN): Transition("_act_ignore", (FsmState.ACK_SENT,)),
    (FsmState.ACK_SENT, FsmEvent.CLOSE): Transition("_act_close", (FsmState.CLOSING,)),
    (FsmState.ACK_SENT, FsmEvent.ABORT): Transition("_act_abort", (FsmState.CLOSED,)),
    (FsmState.ACK_SENT, FsmEvent.TIMEOUT): Transition(
        "_act_timeout_configure", (FsmState.ACK_SENT, FsmState.CLOSED)
    ),
    (FsmState.ACK_SENT, FsmEvent.RCV_CONF_REQ): Transition(
        "_act_conf_req_ack_sent", (FsmState.ACK_SENT, FsmState.REQ_SENT)
    ),
    (FsmState.ACK_SENT, FsmEvent.RCV_CONF_ACK): Transition(
        "_act_conf_ack_ack_sent", (FsmState.OPENED,)
    ),
    (FsmState.ACK_SENT, FsmEvent.RCV_CONF_NAK): Transition(
        "_act_conf_nak_resend", (FsmState.ACK_SENT,)
    ),
    (FsmState.ACK_SENT, FsmEvent.RCV_TERM_REQ): Transition("_act_term_req", (FsmState.CLOSED,)),
    (FsmState.ACK_SENT, FsmEvent.RCV_TERM_ACK): Transition("_act_ignore", (FsmState.ACK_SENT,)),
    (FsmState.ACK_SENT, FsmEvent.RCV_ECHO_REQ): Transition("_act_ignore", (FsmState.ACK_SENT,)),
    (FsmState.ACK_SENT, FsmEvent.RCV_ECHO_REP): Transition("_act_ignore", (FsmState.ACK_SENT,)),
    (FsmState.ACK_SENT, FsmEvent.RCV_UNKNOWN): Transition("_act_ignore", (FsmState.ACK_SENT,)),
    # -- OPENED: the data phase.  A fresh Configure-Request from the
    #    peer means renegotiation; echoes are answered here only.
    (FsmState.OPENED, FsmEvent.OPEN): Transition("_act_ignore", (FsmState.OPENED,)),
    (FsmState.OPENED, FsmEvent.CLOSE): Transition("_act_close", (FsmState.CLOSING,)),
    (FsmState.OPENED, FsmEvent.ABORT): Transition("_act_abort", (FsmState.CLOSED,)),
    (FsmState.OPENED, FsmEvent.TIMEOUT): Transition("_act_ignore", (FsmState.OPENED,)),
    (FsmState.OPENED, FsmEvent.RCV_CONF_REQ): Transition(
        "_act_conf_req_opened", (FsmState.ACK_SENT, FsmState.OPENED)
    ),
    (FsmState.OPENED, FsmEvent.RCV_CONF_ACK): Transition("_act_ignore", (FsmState.OPENED,)),
    (FsmState.OPENED, FsmEvent.RCV_CONF_NAK): Transition("_act_ignore", (FsmState.OPENED,)),
    (FsmState.OPENED, FsmEvent.RCV_TERM_REQ): Transition("_act_term_req", (FsmState.CLOSED,)),
    (FsmState.OPENED, FsmEvent.RCV_TERM_ACK): Transition("_act_ignore", (FsmState.OPENED,)),
    (FsmState.OPENED, FsmEvent.RCV_ECHO_REQ): Transition("_act_echo_reply", (FsmState.OPENED,)),
    (FsmState.OPENED, FsmEvent.RCV_ECHO_REP): Transition("_act_ignore", (FsmState.OPENED,)),
    (FsmState.OPENED, FsmEvent.RCV_UNKNOWN): Transition("_act_ignore", (FsmState.OPENED,)),
    # -- CLOSING: our Terminate-Request is out; waiting for the ack.
    (FsmState.CLOSING, FsmEvent.OPEN): Transition("_act_ignore", (FsmState.CLOSING,)),
    (FsmState.CLOSING, FsmEvent.CLOSE): Transition("_act_close", (FsmState.CLOSING,)),
    (FsmState.CLOSING, FsmEvent.ABORT): Transition("_act_abort", (FsmState.CLOSED,)),
    (FsmState.CLOSING, FsmEvent.TIMEOUT): Transition(
        "_act_timeout_terminate", (FsmState.CLOSING, FsmState.CLOSED)
    ),
    (FsmState.CLOSING, FsmEvent.RCV_CONF_REQ): Transition("_act_ignore", (FsmState.CLOSING,)),
    (FsmState.CLOSING, FsmEvent.RCV_CONF_ACK): Transition("_act_ignore", (FsmState.CLOSING,)),
    (FsmState.CLOSING, FsmEvent.RCV_CONF_NAK): Transition("_act_ignore", (FsmState.CLOSING,)),
    (FsmState.CLOSING, FsmEvent.RCV_TERM_REQ): Transition("_act_term_req", (FsmState.CLOSED,)),
    (FsmState.CLOSING, FsmEvent.RCV_TERM_ACK): Transition("_act_term_ack", (FsmState.CLOSED,)),
    (FsmState.CLOSING, FsmEvent.RCV_ECHO_REQ): Transition("_act_ignore", (FsmState.CLOSING,)),
    (FsmState.CLOSING, FsmEvent.RCV_ECHO_REP): Transition("_act_ignore", (FsmState.CLOSING,)),
    (FsmState.CLOSING, FsmEvent.RCV_UNKNOWN): Transition("_act_ignore", (FsmState.CLOSING,)),
}

#: Packet code → receive event.  Codes outside the map (Configure-
#: Reject, Code-Reject, ...) classify as RCV_UNKNOWN and are ignored
#: in every state, which is the pre-table behaviour.
_CODE_EVENTS: Dict[int, FsmEvent] = {
    CONF_REQ: FsmEvent.RCV_CONF_REQ,
    CONF_ACK: FsmEvent.RCV_CONF_ACK,
    CONF_NAK: FsmEvent.RCV_CONF_NAK,
    TERM_REQ: FsmEvent.RCV_TERM_REQ,
    TERM_ACK: FsmEvent.RCV_TERM_ACK,
    ECHO_REQ: FsmEvent.RCV_ECHO_REQ,
    ECHO_REP: FsmEvent.RCV_ECHO_REP,
}


class NegotiationFsm:
    """One side of an LCP/IPCP negotiation."""

    #: protocol name for diagnostics ("LCP"/"IPCP").
    protocol_name = "control"

    def __init__(
        self,
        sim: Simulator,
        send_packet: Callable[[ControlPacket], None],
        on_up: Optional[Callable[[], None]] = None,
        on_down: Optional[Callable[[str], None]] = None,
        on_fail: Optional[Callable[[str], None]] = None,
        restart_interval: float = RESTART_INTERVAL,
        max_configure: int = MAX_CONFIGURE,
    ) -> None:
        self.sim = sim
        self.send_packet = send_packet
        self.on_up = on_up
        self.on_down = on_down
        self.on_fail = on_fail
        self.restart_interval = restart_interval
        self.max_configure = max_configure
        self.state = INITIAL_STATE
        self.options: Dict[str, Any] = {}
        #: the peer's options as acknowledged by us.
        self.peer_options: Dict[str, Any] = {}
        self._next_id = 1
        self._current_id: Optional[int] = None
        self._restart_counter = 0
        self._terminate_counter = 0
        self._timer: Optional[Event] = None
        self._nego_span: Optional[Any] = None
        # Trace/metric names built once here: hot paths must pass static
        # names (metric-name lint rule), and the vocabulary is fixed by
        # the subclass ("LCP"/"IPCP").
        proto = self.protocol_name.lower()
        self._state_event_name = "ppp." + proto + ".state"
        self._transitions_counter_name = "ppp." + proto + ".transitions"
        self._nego_span_name = "ppp." + proto + ".negotiation"
        self._timeout_event_name = "ppp." + proto + ".timeout"
        self._retransmits_counter_name = "ppp." + proto + ".retransmits"

    # -- observability -------------------------------------------------

    def _set_state(self, new_state: FsmState, reason: str = "") -> None:
        """Move the automaton, emitting the transition on the trace bus."""
        old_state = self.state
        self.state = new_state
        if old_state is new_state:
            return
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                self._state_event_name,
                kind="transition",
                old=old_state.value,
                new=new_state.value,
                reason=reason,
            )
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter(self._transitions_counter_name).inc()

    def _begin_nego_span(self) -> None:
        trace = self.sim.trace
        if trace is not None:
            self._nego_span = trace.span(self._nego_span_name)

    def _end_nego_span(self, status: str, reason: str = "") -> None:
        span, self._nego_span = self._nego_span, None
        if span is not None:
            if status == "ok":
                span.end()
            else:
                span.fail(reason)

    # -- option policy hooks -------------------------------------------

    def initial_options(self) -> Dict[str, Any]:
        """Options for our first Configure-Request."""
        return {}

    def check_peer_options(
        self, options: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        """Judge the peer's Configure-Request.

        Returns ``(CONF_ACK, options)`` to accept or
        ``(CONF_NAK, suggested)`` to push back.
        """
        return CONF_ACK, options

    def on_nak(self, suggested: Dict[str, Any]) -> None:
        """Fold the peer's Configure-Nak suggestions into our options."""
        self.options.update(suggested)

    # -- public controls ------------------------------------------------

    @property
    def is_open(self) -> bool:
        """True once both sides acknowledged each other."""
        return self.state == FsmState.OPENED

    def open(self) -> None:
        """Start negotiating (administrative Open + link Up)."""
        self._dispatch(FsmEvent.OPEN)

    def close(self, reason: str = "administrative close") -> None:
        """Tear the protocol down with Terminate-Request."""
        self._dispatch(FsmEvent.CLOSE, reason)

    def abort(self, reason: str = "lower layer down") -> None:
        """Hard stop without Terminate exchange (carrier lost)."""
        self._dispatch(FsmEvent.ABORT, reason)

    # -- packet input -----------------------------------------------------

    def receive(self, packet: ControlPacket) -> None:
        """Feed one received LCP/IPCP packet into the automaton."""
        event = _CODE_EVENTS.get(packet.code, FsmEvent.RCV_UNKNOWN)
        if event in (FsmEvent.RCV_CONF_ACK, FsmEvent.RCV_CONF_NAK):
            if packet.identifier != self._current_id:
                return  # stale ack/nak for a request we no longer own
        self._dispatch(event, packet)

    # -- dispatch ---------------------------------------------------------

    def _dispatch(self, event: FsmEvent, *args: Any) -> None:
        """Run the declared action for (state, event) and check the landing.

        The assert is the runtime mirror of the static
        ``fsm-exhaustive`` check: an action may only leave the
        automaton in a state the table declared for its cell.
        """
        transition = TRANSITIONS[(self.state, event)]
        getattr(self, transition.action)(*args)
        assert self.state in transition.targets, (
            f"{self.protocol_name}: action {transition.action} left state "
            f"{self.state} not in declared {transition.targets}"
        )

    # -- actions ---------------------------------------------------------

    def _act_ignore(self, *_args: Any) -> None:
        """The event is a no-op in this state."""

    def _act_open(self) -> None:
        self.options = self.initial_options()
        self._restart_counter = self.max_configure
        self._begin_nego_span()
        self._send_configure_request()
        self._set_state(FsmState.REQ_SENT, "open")

    def _act_close(self, reason: str) -> None:
        was_open = self.state == FsmState.OPENED
        self._set_state(FsmState.CLOSING, reason)
        self._end_nego_span("error", reason)
        self._terminate_counter = MAX_TERMINATE
        self._send_terminate_request()
        if was_open and self.on_down is not None:
            self.on_down(reason)

    def _act_abort(self, reason: str) -> None:
        was_open = self.state == FsmState.OPENED
        self._cancel_timer()
        self._set_state(FsmState.CLOSED, reason)
        self._end_nego_span("error", reason)
        if was_open and self.on_down is not None:
            self.on_down(reason)

    def _ack_peer(self, packet: ControlPacket) -> None:
        """Accept the peer's Configure-Request: record and echo it back."""
        self.peer_options = dict(packet.options)
        self.send_packet(ControlPacket(CONF_ACK, packet.identifier, packet.options))

    def _act_conf_req_req_sent(self, packet: ControlPacket) -> None:
        verdict, options = self.check_peer_options(dict(packet.options))
        if verdict == CONF_ACK:
            self._ack_peer(packet)
            self._set_state(FsmState.ACK_SENT, "peer request acked")
        else:
            self.send_packet(ControlPacket(CONF_NAK, packet.identifier, options))

    def _act_conf_req_ack_sent(self, packet: ControlPacket) -> None:
        verdict, options = self.check_peer_options(dict(packet.options))
        if verdict == CONF_ACK:
            self._ack_peer(packet)
        else:
            self.send_packet(ControlPacket(CONF_NAK, packet.identifier, options))
            self._set_state(FsmState.REQ_SENT, "peer request naked")

    def _act_conf_req_ack_rcvd(self, packet: ControlPacket) -> None:
        verdict, options = self.check_peer_options(dict(packet.options))
        if verdict == CONF_ACK:
            self._ack_peer(packet)
            self._enter_opened()
        else:
            self.send_packet(ControlPacket(CONF_NAK, packet.identifier, options))

    def _act_conf_req_opened(self, packet: ControlPacket) -> None:
        verdict, options = self.check_peer_options(dict(packet.options))
        if verdict == CONF_ACK:
            # Renegotiation (RFC 1661 Opened+RCR: tld, scr, sca): the
            # data phase ends *now* — on_down must fire so the upper
            # layer releases its interface — and resumes only when
            # both sides re-ack.  The scr MUST go out before the sca
            # (pppd's fsm.c does the same): the peer has to see our
            # Configure-Request while it is still in Ack-Sent, not
            # after our Ack re-opened it, or two crossing
            # renegotiations knock each other out of Opened forever.
            if self.on_down is not None:
                self.on_down("renegotiation")
            self._restart_counter = self.max_configure
            self._begin_nego_span()
            self._send_configure_request()
            self._ack_peer(packet)
            self._set_state(FsmState.ACK_SENT, "renegotiation")
        else:
            self.send_packet(ControlPacket(CONF_NAK, packet.identifier, options))

    def _act_conf_ack_req_sent(self, packet: ControlPacket) -> None:
        self._set_state(FsmState.ACK_RCVD, "our request acked")

    def _act_conf_ack_ack_sent(self, packet: ControlPacket) -> None:
        self._enter_opened()

    def _act_conf_nak_resend(self, packet: ControlPacket) -> None:
        self.on_nak(dict(packet.options))
        self._send_configure_request()

    def _act_conf_nak_back_to_req_sent(self, packet: ControlPacket) -> None:
        self.on_nak(dict(packet.options))
        self._send_configure_request()
        self._set_state(FsmState.REQ_SENT, "our request naked")

    def _act_term_req(self, packet: ControlPacket) -> None:
        self.send_packet(ControlPacket(TERM_ACK, packet.identifier))
        was_open = self.state == FsmState.OPENED
        self._cancel_timer()
        self._set_state(FsmState.CLOSED, "peer terminated")
        self._end_nego_span("error", "peer terminated")
        if was_open and self.on_down is not None:
            self.on_down("peer terminated")

    def _act_term_ack(self, packet: ControlPacket) -> None:
        self._cancel_timer()
        self._set_state(FsmState.CLOSED, "terminate acked")

    def _act_echo_reply(self, packet: ControlPacket) -> None:
        self.send_packet(ControlPacket(ECHO_REP, packet.identifier, packet.options))

    def _act_timeout_configure(self) -> None:
        self._restart_counter -= 1
        if self._restart_counter <= 0:
            self._set_state(FsmState.CLOSED, "negotiation timed out")
            self._end_nego_span("error", "negotiation timed out")
            trace = self.sim.trace
            if trace is not None:
                trace.error(
                    self._timeout_event_name,
                    protocol=self.protocol_name,
                )
            if self.on_fail is not None:
                self.on_fail(f"{self.protocol_name}: negotiation timed out")
            return
        self._send_configure_request()
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter(self._retransmits_counter_name).inc()

    def _act_timeout_terminate(self) -> None:
        self._terminate_counter -= 1
        if self._terminate_counter <= 0:
            self._set_state(FsmState.CLOSED, "terminate retries exhausted")
            return
        self._send_terminate_request()

    def _enter_opened(self) -> None:
        self._cancel_timer()
        self._set_state(FsmState.OPENED, "both sides acked")
        self._end_nego_span("ok")
        if self.on_up is not None:
            self.on_up()

    # -- transmission and timers -------------------------------------------

    def _send_configure_request(self) -> None:
        self._current_id = self._next_id
        self._next_id += 1
        self.send_packet(ControlPacket(CONF_REQ, self._current_id, self.options))
        self._arm_timer()

    def _send_terminate_request(self) -> None:
        self.send_packet(ControlPacket(TERM_REQ, self._next_id))
        self._next_id += 1
        self._arm_timer()

    def _arm_timer(self) -> None:
        self._cancel_timer()
        self._timer = self.sim.schedule(self.restart_interval, self._on_timeout)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        self._dispatch(FsmEvent.TIMEOUT)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.protocol_name}-fsm {self.state.value}>"
