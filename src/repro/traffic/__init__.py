"""D-ITG reproduction — synthetic traffic generation and QoS decoding.

The paper's measurements use D-ITG (Distributed Internet Traffic
Generator, by the same research group): a sender producing packet
streams whose inter-departure times (IDT) and packet sizes (PS) follow
configurable stochastic processes, a receiver logging arrivals, and a
decoder (ITGDec) computing bitrate, jitter, packet loss and RTT over
non-overlapping windows (200 ms in the paper).

The pieces map one-to-one:

- :class:`FlowSpec` (+ the :func:`voip_g711` / :func:`cbr` factories) —
  the workload definitions, including the paper's two flows;
- :class:`ItgSender` — ITGSend: one process per flow, RTT metering via
  receiver echoes;
- :class:`ItgReceiver` — ITGRecv: logs arrivals, echoes RTT probes;
- :class:`ItgDecoder` — ITGDec: windowed QoS series and summaries.
"""

from repro.traffic.decoder import FlowSummary, ItgDecoder
from repro.traffic.flows import (
    FlowSpec,
    cbr,
    exponential_onoff,
    poisson,
    telnet_like,
    voip_g711,
)
from repro.traffic.logfile import (
    LogFormatError,
    load_receiver_log,
    load_sender_log,
    save_receiver_log,
    save_sender_log,
)
from repro.traffic.records import ProbePayload, ReceiverLog, RecvRecord, SenderLog, SentRecord
from repro.traffic.receiver import ItgReceiver
from repro.traffic.script import ItgScriptRunner, ScriptError, ScriptFlow, parse_script
from repro.traffic.sender import ItgSender

__all__ = [
    "FlowSpec",
    "FlowSummary",
    "ItgDecoder",
    "ItgReceiver",
    "ItgScriptRunner",
    "ItgSender",
    "LogFormatError",
    "ScriptError",
    "ScriptFlow",
    "ProbePayload",
    "ReceiverLog",
    "RecvRecord",
    "SenderLog",
    "SentRecord",
    "cbr",
    "exponential_onoff",
    "load_receiver_log",
    "load_sender_log",
    "parse_script",
    "poisson",
    "save_receiver_log",
    "save_sender_log",
    "telnet_like",
    "voip_g711",
]
