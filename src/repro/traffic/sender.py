"""ITGSend — the traffic sender."""

from __future__ import annotations

import itertools
import random as _random
from typing import Optional

from repro.net.addressing import AddressLike
from repro.net.errors import NetworkError
from repro.net.socket import UDPSocket
from repro.obs.metrics import LATENCY_BUCKETS
from repro.sim.engine import Simulator
from repro.sim.process import Process, spawn
from repro.traffic.flows import MAX_PAYLOAD, MIN_PAYLOAD, FlowSpec
from repro.traffic.records import ProbePayload, RttRecord, SenderLog, SentRecord

_flow_ids = itertools.count(1)


class ItgSender:
    """One flow's sender process.

    Emits probes following the spec's IDT/PS processes and, for flows
    metered in RTT mode, matches echo replies arriving on the same
    socket back to their send timestamps.

    The socket is any :class:`~repro.net.socket.UDPSocket` — a root
    context one or a sliver's (which is how the experiments run inside
    a PlanetLab slice).
    """

    def __init__(
        self,
        sim: Simulator,
        socket: UDPSocket,
        dst: AddressLike,
        spec: FlowSpec,
        rng: _random.Random,
        flow_id: Optional[int] = None,
    ):
        self.sim = sim
        self.socket = socket
        self.dst = dst
        self.spec = spec
        self.rng = rng
        self.flow_id = flow_id if flow_id is not None else next(_flow_ids)
        self.log = SenderLog(self.flow_id, spec.name)
        self._sent_times = {}
        self._seq = itertools.count()
        self._process: Optional[Process] = None
        # Per-packet fast paths: the IDT/PS samplers with their RNG
        # method lookups hoisted (identical draw sequence to
        # ``spec.idt.sample(rng)`` / ``spec.ps.sample(rng)``).
        self._idt_sample = spec.idt.sampler(rng)
        self._ps_sample = spec.ps.sampler(rng)
        socket.on_receive = self._on_receive
        if socket.port == 0:
            socket.bind()

    def start(self, at: float = 0.0) -> Process:
        """Begin generating at simulation time offset ``at`` from now."""
        if self._process is not None:
            raise RuntimeError("sender already started")

        def body():
            if at > 0:
                yield at
            sim = self.sim
            emit_one = self._emit_one
            idt_sample = self._idt_sample
            duration = self.spec.duration
            started = sim.now
            while sim.now - started < duration:
                emit_one()
                yield max(1e-6, idt_sample())

        self._process = spawn(self.sim, body(), name=f"itgsend:{self.spec.name}")
        return self._process

    def stop(self) -> None:
        """Abort the flow early."""
        if self._process is not None and self._process.alive:
            self._process.interrupt("stopped")

    def _emit_one(self) -> None:
        seq = next(self._seq)
        size = int(round(self._ps_sample()))
        size = max(MIN_PAYLOAD, min(MAX_PAYLOAD, size))
        payload = ProbePayload(self.flow_id, seq, kind="probe", meter=self.spec.meter)
        try:
            self.socket.sendto(payload, size, self.dst, self.spec.dport, tos=self.spec.tos)
        except NetworkError:
            self.log.send_errors += 1
            return
        now = self.sim.now
        self.log.sent.append(SentRecord(seq, size, now))
        if self.spec.meter == "rtt":
            self._sent_times[seq] = now
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter("traffic.packets_sent").inc()

    def _on_receive(self, payload, src, sport, packet) -> None:
        if not isinstance(payload, ProbePayload):
            return
        if payload.kind != "reply" or payload.flow_id != self.flow_id:
            return
        sent_at = self._sent_times.pop(payload.seq, None)
        if sent_at is None:
            return
        now = self.sim.now
        self.log.rtt.append(RttRecord(payload.seq, now - sent_at, now))
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.histogram("traffic.rtt_seconds", LATENCY_BUCKETS).observe(
                now - sent_at
            )

    @property
    def finished(self) -> bool:
        """Whether the generation process has completed."""
        return self._process is not None and not self._process.alive
