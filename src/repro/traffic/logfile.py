"""Packet-log files — the D-ITG workflow's artifact.

§3.1: "After the traffic generations ended, we retrieved the log files
from the two nodes and we analyzed them by means of ITGDec."  These
helpers serialize :class:`SenderLog`/:class:`ReceiverLog` to a simple
line format and load them back, so the decode step can run offline on
saved artifacts exactly like ITGDec does — and two runs can be diffed
at the packet level.

Timestamps are written with ``repr`` so floats round-trip exactly.
Format (one record per line)::

    # itg-sender-log flow=1 name=voip-g711
    S <seq> <size> <sent_at>
    R <seq> <rtt> <completed_at>      # RTT samples in sender logs
    E <count>                         # send errors
    # itg-receiver-log flow=1
    P <seq> <size> <sent_at> <received_at>
"""

from __future__ import annotations

import pathlib
from typing import Union

from repro.traffic.records import (
    ReceiverLog,
    RecvRecord,
    RttRecord,
    SenderLog,
    SentRecord,
)

PathLike = Union[str, pathlib.Path]


class LogFormatError(Exception):
    """The file is not a recognisable ITG log."""


def save_sender_log(log: SenderLog, path: PathLike) -> pathlib.Path:
    """Write a sender log; returns the path."""
    target = pathlib.Path(path)
    lines = [f"# itg-sender-log flow={log.flow_id} name={log.name}"]
    for record in log.sent:
        lines.append(f"S {record.seq} {record.size} {record.sent_at!r}")
    for record in log.rtt:
        lines.append(f"R {record.seq} {record.rtt!r} {record.completed_at!r}")
    lines.append(f"E {log.send_errors}")
    target.write_text("\n".join(lines) + "\n")
    return target


def load_sender_log(path: PathLike) -> SenderLog:
    """Read back a file written by :func:`save_sender_log`."""
    lines = pathlib.Path(path).read_text().splitlines()
    if not lines or not lines[0].startswith("# itg-sender-log"):
        raise LogFormatError(f"{path}: not a sender log")
    header = dict(
        part.split("=", 1) for part in lines[0].split()[2:] if "=" in part
    )
    log = SenderLog(int(header.get("flow", 0)), header.get("name", ""))
    for line in lines[1:]:
        fields = line.split()
        if not fields or fields[0] == "#":
            continue
        if fields[0] == "S":
            log.sent.append(
                SentRecord(int(fields[1]), int(fields[2]), float(fields[3]))
            )
        elif fields[0] == "R":
            log.rtt.append(
                RttRecord(int(fields[1]), float(fields[2]), float(fields[3]))
            )
        elif fields[0] == "E":
            log.send_errors = int(fields[1])
        else:
            raise LogFormatError(f"{path}: bad record {line!r}")
    return log


def save_receiver_log(log: ReceiverLog, path: PathLike) -> pathlib.Path:
    """Write a receiver log; returns the path."""
    target = pathlib.Path(path)
    lines = [f"# itg-receiver-log flow={log.flow_id} name={log.name}"]
    for record in log.received:
        lines.append(
            f"P {record.seq} {record.size} {record.sent_at!r} "
            f"{record.received_at!r}"
        )
    target.write_text("\n".join(lines) + "\n")
    return target


def load_receiver_log(path: PathLike) -> ReceiverLog:
    """Read back a file written by :func:`save_receiver_log`."""
    lines = pathlib.Path(path).read_text().splitlines()
    if not lines or not lines[0].startswith("# itg-receiver-log"):
        raise LogFormatError(f"{path}: not a receiver log")
    header = dict(
        part.split("=", 1) for part in lines[0].split()[2:] if "=" in part
    )
    log = ReceiverLog(int(header.get("flow", 0)), header.get("name", ""))
    for line in lines[1:]:
        fields = line.split()
        if not fields or fields[0] == "#":
            continue
        if fields[0] == "P":
            log.add(
                RecvRecord(
                    int(fields[1]),
                    int(fields[2]),
                    float(fields[3]),
                    float(fields[4]),
                )
            )
        else:
            raise LogFormatError(f"{path}: bad record {line!r}")
    return log
