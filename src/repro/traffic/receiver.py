"""ITGRecv — the traffic receiver."""

from __future__ import annotations

from typing import Dict

from repro.net.errors import NetworkError
from repro.net.socket import UDPSocket
from repro.obs.metrics import LATENCY_BUCKETS
from repro.sim.engine import Simulator
from repro.traffic.records import ProbePayload, ReceiverLog, RecvRecord


class ItgReceiver:
    """The receiving endpoint for any number of flows on one port.

    Keeps one :class:`ReceiverLog` per flow id and echoes RTT-metered
    probes back to the sender (same payload size, ``kind="reply"``),
    which is how D-ITG closes the RTT measurement loop.
    """

    def __init__(self, sim: Simulator, socket: UDPSocket, port: int = 8999):
        self.sim = sim
        self.socket = socket
        if socket.port == 0:
            socket.bind(port=port)
        socket.on_receive = self._on_receive
        self.logs: Dict[int, ReceiverLog] = {}
        self.reply_errors = 0
        self.unknown_payloads = 0

    def log_for(self, flow_id: int) -> ReceiverLog:
        """The (created-on-demand) log of one flow."""
        if flow_id not in self.logs:
            self.logs[flow_id] = ReceiverLog(flow_id)
        return self.logs[flow_id]

    def _on_receive(self, payload, src, sport, packet) -> None:
        if not isinstance(payload, ProbePayload) or payload.kind != "probe":
            self.unknown_payloads += 1
            return
        log = self.log_for(payload.flow_id)
        log.add(
            RecvRecord(
                seq=payload.seq,
                size=packet.size,
                sent_at=packet.sent_at,
                received_at=self.sim.now,
            )
        )
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter("traffic.packets_received").inc()
            metrics.histogram("traffic.owd_seconds", LATENCY_BUCKETS).observe(
                self.sim.now - packet.sent_at
            )
        if payload.meter == "rtt":
            reply = ProbePayload(payload.flow_id, payload.seq, kind="reply")
            try:
                self.socket.sendto(reply, packet.size, src, sport)
            except NetworkError:
                self.reply_errors += 1

    @property
    def total_received(self) -> int:
        """Packets received across all flows."""
        return sum(log.packets_received for log in self.logs.values())
