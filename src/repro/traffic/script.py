"""D-ITG script mode — `ITGSend <script_file>`.

Real D-ITG can generate many flows at once, one per line of a script
file, each line using the ITGSend command flags.  This module parses
the subset of that flag language the experiments need and runs the
resulting flows concurrently:

====  =======================================  =================
flag  meaning                                  maps to
====  =======================================  =================
-a    destination address                      sender destination
-rp   destination (receiver) port              ``FlowSpec.dport``
-t    duration in **milliseconds**             ``FlowSpec.duration``
-C    constant rate, packets/s                 constant IDT
-E    exponentially distributed IDT, mean pps  exponential IDT
-O    Poisson arrivals, mean pps (alias of -E) exponential IDT
-c    constant payload size, bytes             constant PS
-u    uniform payload size: min max            uniform PS
-n    normal payload size: mean stdev          normal PS
-m    meter: ``rttm`` or ``owdm``              ``FlowSpec.meter``
-d    start delay in milliseconds              sender start offset
====  =======================================  =================

Example script (two flows of the paper's §3 plus background noise)::

    -a 138.96.250.100 -rp 8999 -C 100 -c 90 -t 120000 -m rttm
    -a 138.96.250.100 -rp 9001 -E 50 -u 64 512 -t 60000 -m owdm
"""

from __future__ import annotations

import shlex
from typing import List, NamedTuple, Optional

from repro.sim.engine import Simulator
from repro.sim.rng import (
    ConstantVariate,
    ExponentialVariate,
    NormalVariate,
    UniformVariate,
)
from repro.traffic.flows import MAX_PAYLOAD, MIN_PAYLOAD, FlowSpec
from repro.traffic.sender import ItgSender


class ScriptError(Exception):
    """Malformed ITGSend script line."""


class ScriptFlow(NamedTuple):
    """One parsed script line."""

    destination: str
    spec: FlowSpec
    start_delay: float


def parse_script_line(line: str, default_duration: float = 120.0) -> Optional[ScriptFlow]:
    """Parse one ITGSend flag line; returns None for blank/comment lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    tokens = shlex.split(stripped)
    destination: Optional[str] = None
    dport = 8999
    duration = default_duration
    idt = None
    ps = None
    meter = "owd"
    start_delay = 0.0
    i = 0

    def take(count: int) -> List[str]:
        nonlocal i
        values = tokens[i + 1 : i + 1 + count]
        if len(values) < count:
            raise ScriptError(f"flag {tokens[i]!r} missing operands in {line!r}")
        i += count
        return values

    while i < len(tokens):
        flag = tokens[i]
        if flag == "-a":
            destination = take(1)[0]
        elif flag == "-rp":
            dport = int(take(1)[0])
        elif flag == "-t":
            duration = float(take(1)[0]) / 1000.0
        elif flag == "-C":
            idt = ConstantVariate(1.0 / float(take(1)[0]))
        elif flag in ("-E", "-O"):
            idt = ExponentialVariate(1.0 / float(take(1)[0]))
        elif flag == "-c":
            ps = ConstantVariate(float(take(1)[0]))
        elif flag == "-u":
            low, high = take(2)
            ps = UniformVariate(float(low), float(high))
        elif flag == "-n":
            mu, sigma = take(2)
            ps = NormalVariate(
                float(mu), float(sigma), low=MIN_PAYLOAD, high=MAX_PAYLOAD
            )
        elif flag == "-m":
            mode = take(1)[0]
            if mode not in ("rttm", "owdm"):
                raise ScriptError(f"unknown meter {mode!r} in {line!r}")
            meter = "rtt" if mode == "rttm" else "owd"
        elif flag == "-d":
            start_delay = float(take(1)[0]) / 1000.0
        else:
            raise ScriptError(f"unsupported flag {flag!r} in {line!r}")
        i += 1
    if destination is None:
        raise ScriptError(f"script line without -a destination: {line!r}")
    if idt is None:
        idt = ConstantVariate(0.001)  # D-ITG's default 1000 pps
    if ps is None:
        ps = ConstantVariate(512)  # D-ITG's default payload
    spec = FlowSpec(
        idt=idt,
        ps=ps,
        duration=duration,
        dport=dport,
        meter=meter,
        name=f"script:{destination}:{dport}",
    )
    return ScriptFlow(destination, spec, start_delay)


def parse_script(text: str, default_duration: float = 120.0) -> List[ScriptFlow]:
    """Parse a whole script (one flow per non-comment line)."""
    flows = []
    for line in text.splitlines():
        parsed = parse_script_line(line, default_duration=default_duration)
        if parsed is not None:
            flows.append(parsed)
    return flows


class ItgScriptRunner:
    """ITGSend in script mode: start every parsed flow concurrently.

    ``socket_factory`` supplies a fresh socket per flow (e.g.
    ``sliver.socket``), matching how ITGSend opens one UDP socket per
    generated flow.
    """

    def __init__(self, sim: Simulator, socket_factory, streams, script_text: str):
        self.sim = sim
        self.flows = parse_script(script_text)
        if not self.flows:
            raise ScriptError("script defines no flows")
        self.senders: List[ItgSender] = []
        for index, flow in enumerate(self.flows):
            sender = ItgSender(
                sim,
                socket_factory(),
                flow.destination,
                flow.spec,
                streams.stream(f"itg-script.{index}"),
            )
            self.senders.append(sender)

    def start(self) -> None:
        """Launch all flows (honouring each one's -d start delay)."""
        for flow, sender in zip(self.flows, self.senders):
            sender.start(at=flow.start_delay)

    @property
    def finished(self) -> bool:
        """True once every flow's generator completed."""
        return all(sender.finished for sender in self.senders)
