"""Flow specifications — the IDT/PS process pairs D-ITG generates.

The two factories used throughout the reproduction are the paper's
workloads (§3.1):

- :func:`voip_g711` — "a single VoIP-like flow made of 72 Kbps of UDP
  CBR traffic resembling the characteristics of a real VoIP call using
  codec G.711": 100 packets/s of 90-byte payloads (72 kbit/s at the
  application layer);
- :func:`cbr` with the defaults ``rate=1 Mbit/s`` — "a 1-Mbps UDP CBR
  flow with packet size equal to 1024 Bytes and packet rate equal to
  122 pps".
"""

from __future__ import annotations

from typing import Optional

from repro.sim.rng import (
    ConstantVariate,
    Distribution,
    ExponentialVariate,
    ParetoVariate,
)

#: Smallest payload the generator will emit (D-ITG's sequence header).
MIN_PAYLOAD = 8
#: Largest payload that fits an Ethernet MTU with IP+UDP headers.
MAX_PAYLOAD = 1472


class FlowSpec:
    """One unidirectional flow: IDT and PS processes plus metering."""

    def __init__(
        self,
        idt: Distribution,
        ps: Distribution,
        duration: float = 120.0,
        dport: int = 8999,
        meter: str = "rtt",
        tos: int = 0,
        name: str = "flow",
    ):
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration!r}")
        if meter not in ("owd", "rtt"):
            raise ValueError(f"meter must be 'owd' or 'rtt', got {meter!r}")
        self.idt = idt
        self.ps = ps
        self.duration = duration
        self.dport = dport
        self.meter = meter
        self.tos = tos
        self.name = name

    def expected_packet_rate(self) -> float:
        """Packets per second implied by the IDT process mean."""
        return 1.0 / self.idt.mean()

    def expected_bitrate(self) -> float:
        """Application-layer bit/s implied by the IDT and PS means."""
        return self.expected_packet_rate() * self.ps.mean() * 8.0

    def __repr__(self) -> str:
        return (
            f"<FlowSpec {self.name!r} idt={self.idt!r} ps={self.ps!r} "
            f"duration={self.duration}s meter={self.meter}>"
        )


def voip_g711(duration: float = 120.0, dport: int = 8999, meter: str = "rtt") -> FlowSpec:
    """The paper's VoIP-like flow: 100 pps × 90 B = 72 kbit/s CBR."""
    return FlowSpec(
        idt=ConstantVariate(0.010),
        ps=ConstantVariate(90),
        duration=duration,
        dport=dport,
        meter=meter,
        name="voip-g711",
    )


def cbr(
    rate_bps: float = 1_000_000.0,
    packet_size: int = 1024,
    duration: float = 120.0,
    dport: int = 8999,
    meter: str = "rtt",
    name: Optional[str] = None,
) -> FlowSpec:
    """A UDP constant-bitrate flow.

    With the defaults this is the paper's saturation workload: 1024-byte
    packets at 122 pps ≈ 1 Mbit/s.
    """
    if rate_bps <= 0 or packet_size <= 0:
        raise ValueError("rate and packet size must be positive")
    pps = rate_bps / (packet_size * 8.0)
    return FlowSpec(
        idt=ConstantVariate(1.0 / pps),
        ps=ConstantVariate(packet_size),
        duration=duration,
        dport=dport,
        meter=meter,
        name=name or f"cbr-{int(rate_bps / 1000)}k",
    )


def poisson(
    mean_rate_pps: float,
    packet_size: int = 512,
    duration: float = 120.0,
    dport: int = 8999,
    meter: str = "rtt",
) -> FlowSpec:
    """Poisson arrivals (exponential IDT) with fixed packet size."""
    if mean_rate_pps <= 0:
        raise ValueError("rate must be positive")
    return FlowSpec(
        idt=ExponentialVariate(1.0 / mean_rate_pps),
        ps=ConstantVariate(packet_size),
        duration=duration,
        dport=dport,
        meter=meter,
        name=f"poisson-{mean_rate_pps:g}pps",
    )


def telnet_like(duration: float = 120.0, dport: int = 8999) -> FlowSpec:
    """An interactive-session-like flow: Pareto sizes, exponential IDT."""
    return FlowSpec(
        idt=ExponentialVariate(0.2, high=5.0),
        ps=ParetoVariate(2.5, 40, low=MIN_PAYLOAD, high=MAX_PAYLOAD),
        duration=duration,
        dport=dport,
        meter="owd",
        name="telnet-like",
    )


def exponential_onoff(
    rate_bps: float,
    packet_size: int = 512,
    duration: float = 120.0,
    dport: int = 8999,
) -> FlowSpec:
    """Bursty traffic: exponential IDT sized to an average rate."""
    pps = rate_bps / (packet_size * 8.0)
    return FlowSpec(
        idt=ExponentialVariate(1.0 / pps),
        ps=ConstantVariate(packet_size),
        duration=duration,
        dport=dport,
        meter="owd",
        name=f"exp-{int(rate_bps / 1000)}k",
    )
