"""Packet logs — what ITGSend and ITGRecv write to disk in real D-ITG."""

from __future__ import annotations

from typing import List, NamedTuple


class ProbePayload:
    """The payload of every generated packet.

    Carries what D-ITG puts in its header: flow id, sequence number,
    and the metering mode (so the receiver knows whether to echo).
    ``kind`` distinguishes probes from RTT echo replies.
    """

    __slots__ = ("flow_id", "seq", "kind", "meter")

    def __init__(self, flow_id: int, seq: int, kind: str = "probe", meter: str = "owd"):
        self.flow_id = flow_id
        self.seq = seq
        self.kind = kind
        self.meter = meter

    def __repr__(self) -> str:
        return f"<Probe flow={self.flow_id} seq={self.seq} {self.kind}>"


class SentRecord(NamedTuple):
    """One transmitted packet, as the sender's log records it."""

    seq: int
    size: int
    sent_at: float


class RecvRecord(NamedTuple):
    """One received packet: sizes and both timestamps (OWD = delta)."""

    seq: int
    size: int
    sent_at: float
    received_at: float

    @property
    def owd(self) -> float:
        """One-way delay (exact — simulation clocks are common)."""
        return self.received_at - self.sent_at


class RttRecord(NamedTuple):
    """One completed RTT measurement at the sender."""

    seq: int
    rtt: float
    completed_at: float


class SenderLog:
    """ITGSend's log for one flow."""

    def __init__(self, flow_id: int, name: str = ""):
        self.flow_id = flow_id
        self.name = name
        self.sent: List[SentRecord] = []
        self.rtt: List[RttRecord] = []
        self.send_errors = 0

    @property
    def packets_sent(self) -> int:
        """Number of successfully handed-off packets."""
        return len(self.sent)

    @property
    def bytes_sent(self) -> int:
        """Total payload bytes offered."""
        return sum(r.size for r in self.sent)


class ReceiverLog:
    """ITGRecv's log for one flow."""

    def __init__(self, flow_id: int, name: str = ""):
        self.flow_id = flow_id
        self.name = name
        self.received: List[RecvRecord] = []
        self._seen = set()
        self.duplicates = 0

    def add(self, record: RecvRecord) -> None:
        """Record an arrival, tracking duplicates by sequence number."""
        if record.seq in self._seen:
            self.duplicates += 1
            return
        self._seen.add(record.seq)
        self.received.append(record)

    def has_seq(self, seq: int) -> bool:
        """Whether the sequence number arrived."""
        return seq in self._seen

    @property
    def packets_received(self) -> int:
        """Number of distinct packets that arrived."""
        return len(self.received)

    @property
    def bytes_received(self) -> int:
        """Total payload bytes delivered."""
        return sum(r.size for r in self.received)
