"""ITGDec — turning packet logs into the paper's QoS series.

Every quantity is reported exactly the way §3.1 describes: "samples
[...] represent the average values calculated over non-overlapping
windows of 200 milliseconds":

- **bitrate** — payload bits delivered per window (kbit/s), binned by
  arrival time;
- **jitter** — mean absolute one-way-delay variation between
  consecutive arrivals in the window (seconds);
- **loss** — packets sent in the window that never arrived (pkt/window,
  binned by send time, matching the figure's "Packet loss [pkt/200ms]"
  axis);
- **RTT** — mean round-trip time of the probes sent in the window.
"""

from __future__ import annotations

import math
from array import array
from typing import Iterable, NamedTuple, Optional, Tuple

from repro.obs.streaming import StreamingWindows
from repro.sim.monitor import TimeSeries
from repro.traffic.records import ReceiverLog, SenderLog

DEFAULT_WINDOW = 0.2

#: Samples per bulk-ingest batch when draining an iterator into the
#: window aggregator: big enough to amortize the call, small enough to
#: keep the decoder constant-memory.
_INGEST_CHUNK = 4096


class FlowSummary(NamedTuple):
    """End-of-run totals for one flow."""

    packets_sent: int
    packets_received: int
    packets_lost: int
    loss_fraction: float
    mean_bitrate_kbps: float
    mean_owd: float
    max_owd: float
    mean_jitter: float
    max_jitter: float
    mean_rtt: float
    max_rtt: float
    duration: float


class ItgDecoder:
    """Decode one flow's sender+receiver logs."""

    def __init__(
        self,
        sender_log: SenderLog,
        receiver_log: ReceiverLog,
        window: float = DEFAULT_WINDOW,
    ):
        if sender_log.flow_id != receiver_log.flow_id:
            raise ValueError(
                f"flow id mismatch: sender {sender_log.flow_id} vs "
                f"receiver {receiver_log.flow_id}"
            )
        if window <= 0:
            raise ValueError("window must be positive")
        self.sender_log = sender_log
        self.receiver_log = receiver_log
        self.window = window

    # -- time origin -----------------------------------------------------

    @property
    def origin(self) -> float:
        """Time axis zero: the first transmission."""
        if not self.sender_log.sent:
            return 0.0
        return self.sender_log.sent[0].sent_at

    @property
    def send_end(self) -> float:
        """End of the generation phase (last transmission)."""
        if not self.sender_log.sent:
            return 0.0
        return self.sender_log.sent[-1].sent_at

    def _span(self, end: Optional[float]) -> float:
        if end is not None:
            return end
        last_arrival = (
            self.receiver_log.received[-1].received_at
            if self.receiver_log.received
            else self.send_end
        )
        return max(self.send_end, last_arrival) + self.window

    # -- series ---------------------------------------------------------

    def _arrivals(self):
        """Received records in arrival order (logs may interleave)."""
        return sorted(self.receiver_log.received, key=lambda r: r.received_at)

    def _windowed(
        self,
        name: str,
        mode: str,
        samples: Iterable[Tuple[float, float]],
        end: float,
    ) -> TimeSeries:
        """Stream time-ordered samples straight into the paper's windows.

        No raw per-sample series is buffered: samples are drained into
        fixed-size ``array('d')`` column chunks and bulk-ingested, so
        memory stays constant beyond the windowed output itself while
        the aggregation loop runs at the batch rate.
        """
        agg = StreamingWindows(self.window, mode=mode, start=0.0, end=end)
        t_col = array("d")
        v_col = array("d")
        for t, value in samples:
            t_col.append(t)
            v_col.append(value)
            if len(t_col) >= _INGEST_CHUNK:
                agg.add_many(t_col, v_col)
                del t_col[:], v_col[:]
        if t_col:
            agg.add_many(t_col, v_col)
        times, values = agg.finish()
        out = TimeSeries(name)
        out.times = times
        out.values = values
        return out

    def bitrate_kbps(self, end: Optional[float] = None) -> TimeSeries:
        """Received payload bitrate per window, in kbit/s."""
        series = self._windowed(
            "bitrate_kbps",
            "sum",
            (
                (record.received_at - self.origin, record.size * 8.0)
                for record in self._arrivals()
            ),
            self._span(end) - self.origin,
        )
        series.values = [bits / self.window / 1000.0 for bits in series.values]
        return series

    def owd_series(self, end: Optional[float] = None) -> TimeSeries:
        """Mean one-way delay per window, in seconds."""
        return self._windowed(
            "owd",
            "mean",
            (
                (record.received_at - self.origin, record.owd)
                for record in self._arrivals()
            ),
            self._span(end) - self.origin,
        )

    def _jitter_samples(self) -> Iterable[Tuple[float, float]]:
        previous_owd = None
        for record in self._arrivals():
            if previous_owd is not None:
                yield record.received_at - self.origin, abs(record.owd - previous_owd)
            previous_owd = record.owd

    def jitter_series(self, end: Optional[float] = None) -> TimeSeries:
        """Mean |OWD variation| between consecutive arrivals, per window."""
        return self._windowed(
            "jitter", "mean", self._jitter_samples(), self._span(end) - self.origin
        )

    def loss_series(self, end: Optional[float] = None) -> TimeSeries:
        """Packets lost per window (binned by send time)."""
        return self._windowed(
            "loss",
            "sum",
            (
                (
                    record.sent_at - self.origin,
                    0.0 if self.receiver_log.has_seq(record.seq) else 1.0,
                )
                for record in sorted(self.sender_log.sent, key=lambda r: r.sent_at)
            ),
            self.send_end - self.origin + self.window,
        )

    def rtt_series(self, end: Optional[float] = None) -> TimeSeries:
        """Mean RTT per window (binned by probe send time), seconds."""
        samples = sorted(
            (record.completed_at - record.rtt, record.rtt)
            for record in self.sender_log.rtt
        )
        return self._windowed(
            "rtt",
            "mean",
            ((sent_at - self.origin, rtt) for sent_at, rtt in samples),
            self.send_end - self.origin + self.window,
        )

    # -- summary -----------------------------------------------------------

    def summary(self) -> FlowSummary:
        """End-of-run aggregate statistics."""
        sent = self.sender_log.packets_sent
        received = self.receiver_log.packets_received
        lost = sent - received
        owds = [r.owd for r in self._arrivals()]
        jitters = []
        for before, after in zip(owds, owds[1:]):
            jitters.append(abs(after - before))
        rtts = [r.rtt for r in self.sender_log.rtt]
        span = self.send_end - self.origin
        total_bits = self.receiver_log.bytes_received * 8.0
        return FlowSummary(
            packets_sent=sent,
            packets_received=received,
            packets_lost=lost,
            loss_fraction=(lost / sent) if sent else math.nan,
            mean_bitrate_kbps=(total_bits / span / 1000.0) if span > 0 else math.nan,
            mean_owd=_mean(owds),
            max_owd=max(owds) if owds else math.nan,
            mean_jitter=_mean(jitters),
            max_jitter=max(jitters) if jitters else math.nan,
            mean_rtt=_mean(rtts),
            max_rtt=max(rtts) if rtts else math.nan,
            duration=span,
        )


def _mean(values) -> float:
    return sum(values) / len(values) if values else math.nan
