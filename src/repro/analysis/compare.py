"""Side-by-side comparison of two experiment runs.

The paper's figures always juxtapose the UMTS-to-Ethernet and the
Ethernet-to-Ethernet path; :func:`compare_paths` does the same over two
:class:`~repro.testbed.experiment.ExperimentResult` objects and
produces both the numbers and a printable report.
"""

from __future__ import annotations

import math
from typing import List, NamedTuple


class PathComparison(NamedTuple):
    """The per-metric contrast between two runs (a / b ratios)."""

    label_a: str
    label_b: str
    bitrate_ratio: float
    jitter_ratio: float
    rtt_ratio: float
    loss_a: int
    loss_b: int
    bitrate_fluctuation_ratio: float


def _safe_ratio(a: float, b: float) -> float:
    if b == 0 or b != b:
        return math.inf if a else math.nan
    return a / b


def compare_paths(result_a, result_b, label_a: str = "a", label_b: str = "b") -> PathComparison:
    """Contrast two :class:`ExperimentResult` runs metric by metric."""
    summary_a, summary_b = result_a.summary, result_b.summary
    return PathComparison(
        label_a=label_a,
        label_b=label_b,
        bitrate_ratio=_safe_ratio(
            summary_a.mean_bitrate_kbps, summary_b.mean_bitrate_kbps
        ),
        jitter_ratio=_safe_ratio(summary_a.mean_jitter, summary_b.mean_jitter),
        rtt_ratio=_safe_ratio(summary_a.mean_rtt, summary_b.mean_rtt),
        loss_a=summary_a.packets_lost,
        loss_b=summary_b.packets_lost,
        bitrate_fluctuation_ratio=_safe_ratio(
            result_a.bitrate_kbps().stdev(), result_b.bitrate_kbps().stdev()
        ),
    )


def report_lines(comparison: PathComparison) -> List[str]:
    """A printable summary of a :class:`PathComparison`."""
    a, b = comparison.label_a, comparison.label_b
    return [
        f"{a} vs {b}:",
        f"  bitrate ratio       : {comparison.bitrate_ratio:6.2f}x",
        f"  bitrate fluctuation : {comparison.bitrate_fluctuation_ratio:6.2f}x",
        f"  jitter ratio        : {comparison.jitter_ratio:6.2f}x",
        f"  RTT ratio           : {comparison.rtt_ratio:6.2f}x",
        f"  loss                : {comparison.loss_a} vs {comparison.loss_b} packets",
    ]
