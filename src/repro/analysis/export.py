"""Exporting experiment data for external plotting.

The paper's figures are gnuplot time plots of 200 ms-window samples;
these helpers write the same series as CSV so any plotting tool can
regenerate them from a run:

- :func:`series_to_csv` — one :class:`TimeSeries` per file;
- :func:`export_experiment` — the four figure series of an
  :class:`~repro.testbed.experiment.ExperimentResult` (plus the RAB
  grade timeline when present) into a directory.
"""

from __future__ import annotations

import csv
import pathlib
from typing import List, Tuple, Union

from repro.sim.monitor import TimeSeries

PathLike = Union[str, pathlib.Path]


def series_to_csv(
    series: TimeSeries,
    path: PathLike,
    value_header: str = "value",
    time_header: str = "time_s",
) -> pathlib.Path:
    """Write one series as a two-column CSV; returns the path.

    NaN placeholders (empty windows) are written as empty cells, which
    both gnuplot and pandas read as missing data.
    """
    target = pathlib.Path(path)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([time_header, value_header])
        for t, v in series.as_pairs():
            writer.writerow([f"{t:.6f}", "" if v != v else f"{v:.9g}"])
    return target


def export_experiment(result, directory: PathLike, prefix: str = "") -> List[pathlib.Path]:
    """Write an experiment's figure series into ``directory``.

    Produces ``<prefix>bitrate_kbps.csv``, ``jitter_s.csv``,
    ``loss_pkt.csv``, ``rtt_s.csv`` and, for UMTS runs,
    ``rab_grade_bps.csv``.  Returns the written paths.
    """
    target = pathlib.Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written = []
    for name, series in (
        ("bitrate_kbps", result.bitrate_kbps()),
        ("jitter_s", result.jitter_series()),
        ("loss_pkt", result.loss_series()),
        ("rtt_s", result.rtt_series()),
    ):
        written.append(
            series_to_csv(series, target / f"{prefix}{name}.csv", value_header=name)
        )
    if result.rab_history is not None:
        written.append(
            series_to_csv(
                result.rab_history,
                target / f"{prefix}rab_grade_bps.csv",
                value_header="rab_grade_bps",
            )
        )
    return written


def read_csv_series(path: PathLike) -> List[Tuple[float, float]]:
    """Read back a CSV written by :func:`series_to_csv` (round-trip aid).

    Missing values come back as NaN.
    """
    pairs: List[Tuple[float, float]] = []
    with pathlib.Path(path).open() as handle:
        reader = csv.reader(handle)
        next(reader)  # header
        for row in reader:
            time = float(row[0])
            value = float(row[1]) if row[1] else float("nan")
            pairs.append((time, value))
    return pairs
