"""Summary statistics over plain value sequences.

NaN values (empty-window placeholders from
:meth:`~repro.sim.monitor.TimeSeries.window_average`) are skipped
everywhere, so series can be fed in directly.

:func:`stream_summary` exposes the constant-memory path — running
moments plus P² quantile estimates from
:mod:`repro.obs.streaming` — for campaign-scale inputs that never
materialize a list.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.obs.streaming import QuantileSketch

#: Quantiles :func:`stream_summary` estimates by default.
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)

#: Samples per bulk-ingest batch in :func:`stream_summary`.
_SUMMARY_CHUNK = 4096


def _finite(values: Sequence[float]) -> List[float]:
    return [v for v in values if v == v and not math.isinf(v)]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of the finite values (NaN when none)."""
    finite = _finite(values)
    if not finite:
        return math.nan
    return sum(finite) / len(finite)


def stream_summary(
    values: Iterable[float],
    quantiles: Sequence[float] = SUMMARY_QUANTILES,
) -> Dict[str, float]:
    """Constant-memory summary of an arbitrarily long value stream.

    Consumes any iterable once and returns count/sum/mean/stdev/
    extremes plus P² estimates for ``quantiles`` (keys like ``p50``).
    Infinite values are skipped like everywhere else in this module;
    the sketch handles NaN itself.  Samples are drained into
    fixed-size ``array('d')`` chunks and bulk-ingested, keeping the
    constant-memory guarantee while the moment accumulation runs at
    the batch rate.
    """
    sketch = QuantileSketch(quantiles=quantiles)
    chunk = array("d")
    for value in values:
        if math.isinf(value):
            continue
        chunk.append(value)
        if len(chunk) >= _SUMMARY_CHUNK:
            sketch.observe_many(chunk)
            del chunk[:]
    if chunk:
        sketch.observe_many(chunk)
    return sketch.as_dict()


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation of the finite values."""
    finite = _finite(values)
    if len(finite) < 2:
        return math.nan
    mu = mean(finite)
    return math.sqrt(sum((v - mu) ** 2 for v in finite) / len(finite))


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (0..100) with linear interpolation."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    finite = sorted(_finite(values))
    if not finite:
        return math.nan
    if len(finite) == 1:
        return finite[0]
    rank = (q / 100.0) * (len(finite) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return finite[low]
    fraction = rank - low
    # lo + f*(hi-lo) rather than lo*(1-f) + hi*f: the weighted form can
    # underflow subnormals to 0.0, breaking percentile monotonicity.
    return finite[low] + fraction * (finite[high] - finite[low])


def median(values: Sequence[float]) -> float:
    """The 50th percentile."""
    return percentile(values, 50.0)


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """A normal-approximation 95% CI for the mean.

    Fine for the bench's n=20 repetition summaries; returns
    (NaN, NaN) for fewer than 2 finite values.
    """
    finite = _finite(values)
    if len(finite) < 2:
        return (math.nan, math.nan)
    mu = mean(finite)
    # Sample stdev (n-1) for the standard error.
    variance = sum((v - mu) ** 2 for v in finite) / (len(finite) - 1)
    half_width = 1.96 * math.sqrt(variance / len(finite))
    return (mu - half_width, mu + half_width)
