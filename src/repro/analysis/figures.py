"""Terminal renderings of windowed QoS series."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.sim.monitor import TimeSeries

_BLOCKS = " .:-=+*#%@"


def sparkline(series: TimeSeries, scale: Optional[float] = None, width: int = 72) -> str:
    """Render a series as one line of density characters.

    ``scale`` fixes the full-height value (defaults to the series max)
    so several sparklines can share an axis.  NaN samples render as
    spaces.  Series longer than ``width`` are averaged down.
    """
    if len(series) == 0:
        return "(no samples)"
    if len(series) > width:
        span = series.times[-1] - series.times[0]
        series = series.window_average(span / width + 1e-9, start=series.times[0])
    finite = [v for v in series.values if v == v]
    if not finite:
        return "(no samples)"
    top = scale if scale is not None else (max(finite) or 1.0)
    cells = []
    for value in series.values:
        if value != value:
            cells.append(" ")
        else:
            index = min(len(_BLOCKS) - 1, max(0, int(value / top * (len(_BLOCKS) - 1))))
            cells.append(_BLOCKS[index])
    return "".join(cells)


def render_series_table(
    rows: Sequence[Tuple[str, TimeSeries]],
    step: float = 10.0,
    unit_scale: float = 1.0,
    header: str = "",
) -> List[str]:
    """Tabulate several series side-by-side in ``step``-second rows.

    Returns the lines (caller prints), e.g.::

        time      UMTS        Ethernet
           0s    137.62       999.43
          10s    140.08      1000.21

    The mean of each window is shown; empty windows print ``-``.
    """
    if not rows:
        return []
    lines = []
    labels = [label for label, _ in rows]
    lines.append(("time".rjust(6)) + "".join(label.rjust(14) for label in labels))
    if header:
        lines.insert(0, header)
    end = max(
        (series.times[-1] for _, series in rows if len(series)), default=0.0
    )
    t = 0.0
    while t <= end:
        cells = []
        for _, series in rows:
            value = series.between(t, t + step).mean() * unit_scale
            cells.append(f"{value:14.2f}" if value == value else "-".rjust(14))
        lines.append(f"{t:5.0f}s" + "".join(cells))
        t += step
    return lines
