"""Aggregating repetition summaries.

§3.1 runs every experiment 20 times; this turns the resulting list of
:class:`~repro.traffic.decoder.FlowSummary` objects into per-metric
mean / spread / 95% CI rows — what a paper's "mean ± CI over N runs"
table reports.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence

from repro.analysis.stats import confidence_interval_95, mean, stdev

#: FlowSummary fields worth aggregating across repetitions.
AGGREGATED_METRICS = [
    "mean_bitrate_kbps",
    "mean_jitter",
    "max_jitter",
    "mean_rtt",
    "max_rtt",
    "mean_owd",
    "loss_fraction",
]


class MetricAggregate(NamedTuple):
    """One metric across N repetitions."""

    metric: str
    runs: int
    mean: float
    stdev: float
    ci_low: float
    ci_high: float
    minimum: float
    maximum: float


def aggregate_summaries(summaries: Sequence) -> Dict[str, MetricAggregate]:
    """Aggregate repetition summaries metric by metric."""
    if not summaries:
        raise ValueError("no summaries to aggregate")
    out: Dict[str, MetricAggregate] = {}
    for metric in AGGREGATED_METRICS:
        values = [getattr(summary, metric) for summary in summaries]
        finite = [v for v in values if v == v]
        low, high = confidence_interval_95(values)
        out[metric] = MetricAggregate(
            metric=metric,
            runs=len(summaries),
            mean=mean(values),
            stdev=stdev(values),
            ci_low=low,
            ci_high=high,
            minimum=min(finite) if finite else float("nan"),
            maximum=max(finite) if finite else float("nan"),
        )
    return out


def aggregate_report(summaries: Sequence) -> List[str]:
    """Printable mean ± CI rows for every aggregated metric."""
    aggregates = aggregate_summaries(summaries)
    lines = [f"{'metric':22} {'mean':>12} {'95% CI':>26} {'min..max':>24}"]
    for metric, agg in aggregates.items():
        lines.append(
            f"{metric:22} {agg.mean:12.6g} "
            f"[{agg.ci_low:11.6g}, {agg.ci_high:11.6g}] "
            f"{agg.minimum:11.6g}..{agg.maximum:<11.6g}"
        )
    return lines
