"""Analysis helpers: statistics, path comparison, terminal figures.

The benches and examples share these: robust summary statistics over
windowed series (:mod:`repro.analysis.stats`), side-by-side comparison
of two experiment runs the way the paper's figures juxtapose the two
paths (:mod:`repro.analysis.compare`), and terminal renderings of the
200 ms-window series (:mod:`repro.analysis.figures`).
"""

from repro.analysis.aggregate import (
    MetricAggregate,
    aggregate_report,
    aggregate_summaries,
)
from repro.analysis.compare import PathComparison, compare_paths
from repro.analysis.export import export_experiment, read_csv_series, series_to_csv
from repro.analysis.figures import render_series_table, sparkline
from repro.analysis.stats import (
    SUMMARY_QUANTILES,
    confidence_interval_95,
    mean,
    median,
    percentile,
    stdev,
    stream_summary,
)

__all__ = [
    "MetricAggregate",
    "PathComparison",
    "aggregate_report",
    "aggregate_summaries",
    "compare_paths",
    "confidence_interval_95",
    "export_experiment",
    "mean",
    "median",
    "percentile",
    "read_csv_series",
    "render_series_table",
    "series_to_csv",
    "sparkline",
    "stdev",
    "stream_summary",
    "SUMMARY_QUANTILES",
]
